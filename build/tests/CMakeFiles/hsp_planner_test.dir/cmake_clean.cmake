file(REMOVE_RECURSE
  "CMakeFiles/hsp_planner_test.dir/hsp_planner_test.cc.o"
  "CMakeFiles/hsp_planner_test.dir/hsp_planner_test.cc.o.d"
  "hsp_planner_test"
  "hsp_planner_test.pdb"
  "hsp_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsp_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
