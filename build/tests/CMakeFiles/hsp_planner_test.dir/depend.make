# Empty dependencies file for hsp_planner_test.
# This may be replaced when dependencies are built.
