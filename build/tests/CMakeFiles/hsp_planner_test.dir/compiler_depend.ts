# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hsp_planner_test.
