file(REMOVE_RECURSE
  "CMakeFiles/hybrid_planner_test.dir/hybrid_planner_test.cc.o"
  "CMakeFiles/hybrid_planner_test.dir/hybrid_planner_test.cc.o.d"
  "hybrid_planner_test"
  "hybrid_planner_test.pdb"
  "hybrid_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
