# Empty dependencies file for hybrid_planner_test.
# This may be replaced when dependencies are built.
