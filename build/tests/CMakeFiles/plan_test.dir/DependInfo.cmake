
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/plan_test.cc" "tests/CMakeFiles/plan_test.dir/plan_test.cc.o" "gcc" "tests/CMakeFiles/plan_test.dir/plan_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/hsparql_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/cdp/CMakeFiles/hsparql_cdp.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hsparql_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hsp/CMakeFiles/hsparql_hsp.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/hsparql_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hsparql_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/hsparql_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hsparql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
