# Empty compiler generated dependencies file for modifiers_test.
# This may be replaced when dependencies are built.
