file(REMOVE_RECURSE
  "CMakeFiles/modifiers_test.dir/modifiers_test.cc.o"
  "CMakeFiles/modifiers_test.dir/modifiers_test.cc.o.d"
  "modifiers_test"
  "modifiers_test.pdb"
  "modifiers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modifiers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
