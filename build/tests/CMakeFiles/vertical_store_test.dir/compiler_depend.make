# Empty compiler generated dependencies file for vertical_store_test.
# This may be replaced when dependencies are built.
