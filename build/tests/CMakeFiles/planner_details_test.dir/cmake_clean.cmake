file(REMOVE_RECURSE
  "CMakeFiles/planner_details_test.dir/planner_details_test.cc.o"
  "CMakeFiles/planner_details_test.dir/planner_details_test.cc.o.d"
  "planner_details_test"
  "planner_details_test.pdb"
  "planner_details_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_details_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
