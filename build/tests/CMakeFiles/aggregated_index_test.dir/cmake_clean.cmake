file(REMOVE_RECURSE
  "CMakeFiles/aggregated_index_test.dir/aggregated_index_test.cc.o"
  "CMakeFiles/aggregated_index_test.dir/aggregated_index_test.cc.o.d"
  "aggregated_index_test"
  "aggregated_index_test.pdb"
  "aggregated_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregated_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
