# Empty dependencies file for aggregated_index_test.
# This may be replaced when dependencies are built.
