file(REMOVE_RECURSE
  "CMakeFiles/term_compare_test.dir/term_compare_test.cc.o"
  "CMakeFiles/term_compare_test.dir/term_compare_test.cc.o.d"
  "term_compare_test"
  "term_compare_test.pdb"
  "term_compare_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/term_compare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
