# Empty compiler generated dependencies file for optional_union_test.
# This may be replaced when dependencies are built.
