file(REMOVE_RECURSE
  "CMakeFiles/optional_union_test.dir/optional_union_test.cc.o"
  "CMakeFiles/optional_union_test.dir/optional_union_test.cc.o.d"
  "optional_union_test"
  "optional_union_test.pdb"
  "optional_union_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optional_union_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
