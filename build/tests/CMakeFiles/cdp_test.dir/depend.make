# Empty dependencies file for cdp_test.
# This may be replaced when dependencies are built.
