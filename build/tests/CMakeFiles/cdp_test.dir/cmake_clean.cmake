file(REMOVE_RECURSE
  "CMakeFiles/cdp_test.dir/cdp_test.cc.o"
  "CMakeFiles/cdp_test.dir/cdp_test.cc.o.d"
  "cdp_test"
  "cdp_test.pdb"
  "cdp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
