file(REMOVE_RECURSE
  "CMakeFiles/variable_graph_test.dir/variable_graph_test.cc.o"
  "CMakeFiles/variable_graph_test.dir/variable_graph_test.cc.o.d"
  "variable_graph_test"
  "variable_graph_test.pdb"
  "variable_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variable_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
