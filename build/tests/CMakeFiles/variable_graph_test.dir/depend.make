# Empty dependencies file for variable_graph_test.
# This may be replaced when dependencies are built.
