# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/rdf_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/sparql_test[1]_include.cmake")
include("/root/repo/build/tests/analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/variable_graph_test[1]_include.cmake")
include("/root/repo/build/tests/mwis_test[1]_include.cmake")
include("/root/repo/build/tests/heuristics_test[1]_include.cmake")
include("/root/repo/build/tests/hsp_planner_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/cdp_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/optional_union_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_planner_test[1]_include.cmake")
include("/root/repo/build/tests/char_sets_test[1]_include.cmake")
include("/root/repo/build/tests/results_io_test[1]_include.cmake")
include("/root/repo/build/tests/vertical_store_test[1]_include.cmake")
include("/root/repo/build/tests/modifiers_test[1]_include.cmake")
include("/root/repo/build/tests/compressed_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/sip_test[1]_include.cmake")
include("/root/repo/build/tests/term_compare_test[1]_include.cmake")
include("/root/repo/build/tests/aggregated_index_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/planner_details_test[1]_include.cmake")
