# Empty dependencies file for bench_sip.
# This may be replaced when dependencies are built.
