file(REMOVE_RECURSE
  "CMakeFiles/bench_sip.dir/bench_sip.cc.o"
  "CMakeFiles/bench_sip.dir/bench_sip.cc.o.d"
  "bench_sip"
  "bench_sip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
