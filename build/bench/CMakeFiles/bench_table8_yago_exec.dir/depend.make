# Empty dependencies file for bench_table8_yago_exec.
# This may be replaced when dependencies are built.
