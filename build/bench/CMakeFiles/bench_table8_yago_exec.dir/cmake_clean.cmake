file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_yago_exec.dir/bench_table8_yago_exec.cc.o"
  "CMakeFiles/bench_table8_yago_exec.dir/bench_table8_yago_exec.cc.o.d"
  "bench_table8_yago_exec"
  "bench_table8_yago_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_yago_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
