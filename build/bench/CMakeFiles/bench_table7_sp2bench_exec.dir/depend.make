# Empty dependencies file for bench_table7_sp2bench_exec.
# This may be replaced when dependencies are built.
