file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_sp2bench_exec.dir/bench_table7_sp2bench_exec.cc.o"
  "CMakeFiles/bench_table7_sp2bench_exec.dir/bench_table7_sp2bench_exec.cc.o.d"
  "bench_table7_sp2bench_exec"
  "bench_table7_sp2bench_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_sp2bench_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
