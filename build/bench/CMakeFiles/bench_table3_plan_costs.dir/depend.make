# Empty dependencies file for bench_table3_plan_costs.
# This may be replaced when dependencies are built.
