file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_planner.dir/bench_hybrid_planner.cc.o"
  "CMakeFiles/bench_hybrid_planner.dir/bench_hybrid_planner.cc.o.d"
  "bench_hybrid_planner"
  "bench_hybrid_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
