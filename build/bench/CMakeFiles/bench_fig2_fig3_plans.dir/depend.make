# Empty dependencies file for bench_fig2_fig3_plans.
# This may be replaced when dependencies are built.
