file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_fig3_plans.dir/bench_fig2_fig3_plans.cc.o"
  "CMakeFiles/bench_fig2_fig3_plans.dir/bench_fig2_fig3_plans.cc.o.d"
  "bench_fig2_fig3_plans"
  "bench_fig2_fig3_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_fig3_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
