# Empty dependencies file for bench_heuristic_validation.
# This may be replaced when dependencies are built.
