file(REMOVE_RECURSE
  "CMakeFiles/bench_heuristic_validation.dir/bench_heuristic_validation.cc.o"
  "CMakeFiles/bench_heuristic_validation.dir/bench_heuristic_validation.cc.o.d"
  "bench_heuristic_validation"
  "bench_heuristic_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heuristic_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
