file(REMOVE_RECURSE
  "CMakeFiles/bench_mwis_scalability.dir/bench_mwis_scalability.cc.o"
  "CMakeFiles/bench_mwis_scalability.dir/bench_mwis_scalability.cc.o.d"
  "bench_mwis_scalability"
  "bench_mwis_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mwis_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
