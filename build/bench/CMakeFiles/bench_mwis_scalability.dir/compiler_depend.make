# Empty compiler generated dependencies file for bench_mwis_scalability.
# This may be replaced when dependencies are built.
