file(REMOVE_RECURSE
  "libhsparql_bench_util.a"
)
