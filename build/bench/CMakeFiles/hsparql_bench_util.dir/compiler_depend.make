# Empty compiler generated dependencies file for hsparql_bench_util.
# This may be replaced when dependencies are built.
