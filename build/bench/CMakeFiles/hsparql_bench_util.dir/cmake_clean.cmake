file(REMOVE_RECURSE
  "CMakeFiles/hsparql_bench_util.dir/bench_exec_common.cc.o"
  "CMakeFiles/hsparql_bench_util.dir/bench_exec_common.cc.o.d"
  "CMakeFiles/hsparql_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/hsparql_bench_util.dir/bench_util.cc.o.d"
  "libhsparql_bench_util.a"
  "libhsparql_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsparql_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
