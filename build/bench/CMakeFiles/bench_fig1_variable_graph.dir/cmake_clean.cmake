file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_variable_graph.dir/bench_fig1_variable_graph.cc.o"
  "CMakeFiles/bench_fig1_variable_graph.dir/bench_fig1_variable_graph.cc.o.d"
  "bench_fig1_variable_graph"
  "bench_fig1_variable_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_variable_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
