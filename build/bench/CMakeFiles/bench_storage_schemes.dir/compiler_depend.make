# Empty compiler generated dependencies file for bench_storage_schemes.
# This may be replaced when dependencies are built.
