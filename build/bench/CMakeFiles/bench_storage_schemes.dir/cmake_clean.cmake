file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_schemes.dir/bench_storage_schemes.cc.o"
  "CMakeFiles/bench_storage_schemes.dir/bench_storage_schemes.cc.o.d"
  "bench_storage_schemes"
  "bench_storage_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
