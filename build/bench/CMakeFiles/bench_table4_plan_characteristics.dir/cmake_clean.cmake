file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_plan_characteristics.dir/bench_table4_plan_characteristics.cc.o"
  "CMakeFiles/bench_table4_plan_characteristics.dir/bench_table4_plan_characteristics.cc.o.d"
  "bench_table4_plan_characteristics"
  "bench_table4_plan_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_plan_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
