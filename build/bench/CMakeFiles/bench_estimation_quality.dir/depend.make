# Empty dependencies file for bench_estimation_quality.
# This may be replaced when dependencies are built.
