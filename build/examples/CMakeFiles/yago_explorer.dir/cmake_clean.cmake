file(REMOVE_RECURSE
  "CMakeFiles/yago_explorer.dir/yago_explorer.cpp.o"
  "CMakeFiles/yago_explorer.dir/yago_explorer.cpp.o.d"
  "yago_explorer"
  "yago_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yago_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
