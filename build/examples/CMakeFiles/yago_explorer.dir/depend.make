# Empty dependencies file for yago_explorer.
# This may be replaced when dependencies are built.
