file(REMOVE_RECURSE
  "CMakeFiles/sp2bench_analytics.dir/sp2bench_analytics.cpp.o"
  "CMakeFiles/sp2bench_analytics.dir/sp2bench_analytics.cpp.o.d"
  "sp2bench_analytics"
  "sp2bench_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp2bench_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
