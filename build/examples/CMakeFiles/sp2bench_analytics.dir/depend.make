# Empty dependencies file for sp2bench_analytics.
# This may be replaced when dependencies are built.
