file(REMOVE_RECURSE
  "CMakeFiles/explain.dir/explain.cpp.o"
  "CMakeFiles/explain.dir/explain.cpp.o.d"
  "explain"
  "explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
