file(REMOVE_RECURSE
  "libhsparql_storage.a"
)
