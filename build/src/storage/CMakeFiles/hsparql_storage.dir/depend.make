# Empty dependencies file for hsparql_storage.
# This may be replaced when dependencies are built.
