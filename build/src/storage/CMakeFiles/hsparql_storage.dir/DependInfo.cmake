
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/aggregated_index.cc" "src/storage/CMakeFiles/hsparql_storage.dir/aggregated_index.cc.o" "gcc" "src/storage/CMakeFiles/hsparql_storage.dir/aggregated_index.cc.o.d"
  "/root/repo/src/storage/compressed.cc" "src/storage/CMakeFiles/hsparql_storage.dir/compressed.cc.o" "gcc" "src/storage/CMakeFiles/hsparql_storage.dir/compressed.cc.o.d"
  "/root/repo/src/storage/ordering.cc" "src/storage/CMakeFiles/hsparql_storage.dir/ordering.cc.o" "gcc" "src/storage/CMakeFiles/hsparql_storage.dir/ordering.cc.o.d"
  "/root/repo/src/storage/statistics.cc" "src/storage/CMakeFiles/hsparql_storage.dir/statistics.cc.o" "gcc" "src/storage/CMakeFiles/hsparql_storage.dir/statistics.cc.o.d"
  "/root/repo/src/storage/triple_store.cc" "src/storage/CMakeFiles/hsparql_storage.dir/triple_store.cc.o" "gcc" "src/storage/CMakeFiles/hsparql_storage.dir/triple_store.cc.o.d"
  "/root/repo/src/storage/vertical_store.cc" "src/storage/CMakeFiles/hsparql_storage.dir/vertical_store.cc.o" "gcc" "src/storage/CMakeFiles/hsparql_storage.dir/vertical_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdf/CMakeFiles/hsparql_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hsparql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
