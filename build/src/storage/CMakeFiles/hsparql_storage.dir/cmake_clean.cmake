file(REMOVE_RECURSE
  "CMakeFiles/hsparql_storage.dir/aggregated_index.cc.o"
  "CMakeFiles/hsparql_storage.dir/aggregated_index.cc.o.d"
  "CMakeFiles/hsparql_storage.dir/compressed.cc.o"
  "CMakeFiles/hsparql_storage.dir/compressed.cc.o.d"
  "CMakeFiles/hsparql_storage.dir/ordering.cc.o"
  "CMakeFiles/hsparql_storage.dir/ordering.cc.o.d"
  "CMakeFiles/hsparql_storage.dir/statistics.cc.o"
  "CMakeFiles/hsparql_storage.dir/statistics.cc.o.d"
  "CMakeFiles/hsparql_storage.dir/triple_store.cc.o"
  "CMakeFiles/hsparql_storage.dir/triple_store.cc.o.d"
  "CMakeFiles/hsparql_storage.dir/vertical_store.cc.o"
  "CMakeFiles/hsparql_storage.dir/vertical_store.cc.o.d"
  "libhsparql_storage.a"
  "libhsparql_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsparql_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
