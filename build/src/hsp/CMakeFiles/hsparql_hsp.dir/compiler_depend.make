# Empty compiler generated dependencies file for hsparql_hsp.
# This may be replaced when dependencies are built.
