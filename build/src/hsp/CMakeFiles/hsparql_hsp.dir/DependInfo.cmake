
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hsp/heuristics.cc" "src/hsp/CMakeFiles/hsparql_hsp.dir/heuristics.cc.o" "gcc" "src/hsp/CMakeFiles/hsparql_hsp.dir/heuristics.cc.o.d"
  "/root/repo/src/hsp/hsp_planner.cc" "src/hsp/CMakeFiles/hsparql_hsp.dir/hsp_planner.cc.o" "gcc" "src/hsp/CMakeFiles/hsparql_hsp.dir/hsp_planner.cc.o.d"
  "/root/repo/src/hsp/mwis.cc" "src/hsp/CMakeFiles/hsparql_hsp.dir/mwis.cc.o" "gcc" "src/hsp/CMakeFiles/hsparql_hsp.dir/mwis.cc.o.d"
  "/root/repo/src/hsp/plan.cc" "src/hsp/CMakeFiles/hsparql_hsp.dir/plan.cc.o" "gcc" "src/hsp/CMakeFiles/hsparql_hsp.dir/plan.cc.o.d"
  "/root/repo/src/hsp/variable_graph.cc" "src/hsp/CMakeFiles/hsparql_hsp.dir/variable_graph.cc.o" "gcc" "src/hsp/CMakeFiles/hsparql_hsp.dir/variable_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparql/CMakeFiles/hsparql_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hsparql_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/hsparql_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hsparql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
