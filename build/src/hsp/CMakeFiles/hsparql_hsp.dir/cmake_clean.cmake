file(REMOVE_RECURSE
  "CMakeFiles/hsparql_hsp.dir/heuristics.cc.o"
  "CMakeFiles/hsparql_hsp.dir/heuristics.cc.o.d"
  "CMakeFiles/hsparql_hsp.dir/hsp_planner.cc.o"
  "CMakeFiles/hsparql_hsp.dir/hsp_planner.cc.o.d"
  "CMakeFiles/hsparql_hsp.dir/mwis.cc.o"
  "CMakeFiles/hsparql_hsp.dir/mwis.cc.o.d"
  "CMakeFiles/hsparql_hsp.dir/plan.cc.o"
  "CMakeFiles/hsparql_hsp.dir/plan.cc.o.d"
  "CMakeFiles/hsparql_hsp.dir/variable_graph.cc.o"
  "CMakeFiles/hsparql_hsp.dir/variable_graph.cc.o.d"
  "libhsparql_hsp.a"
  "libhsparql_hsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsparql_hsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
