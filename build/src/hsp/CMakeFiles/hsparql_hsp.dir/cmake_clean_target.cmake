file(REMOVE_RECURSE
  "libhsparql_hsp.a"
)
