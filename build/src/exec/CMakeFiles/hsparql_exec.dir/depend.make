# Empty dependencies file for hsparql_exec.
# This may be replaced when dependencies are built.
