file(REMOVE_RECURSE
  "CMakeFiles/hsparql_exec.dir/binding_table.cc.o"
  "CMakeFiles/hsparql_exec.dir/binding_table.cc.o.d"
  "CMakeFiles/hsparql_exec.dir/executor.cc.o"
  "CMakeFiles/hsparql_exec.dir/executor.cc.o.d"
  "CMakeFiles/hsparql_exec.dir/results_io.cc.o"
  "CMakeFiles/hsparql_exec.dir/results_io.cc.o.d"
  "CMakeFiles/hsparql_exec.dir/term_compare.cc.o"
  "CMakeFiles/hsparql_exec.dir/term_compare.cc.o.d"
  "libhsparql_exec.a"
  "libhsparql_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsparql_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
