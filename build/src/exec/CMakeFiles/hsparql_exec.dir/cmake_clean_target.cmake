file(REMOVE_RECURSE
  "libhsparql_exec.a"
)
