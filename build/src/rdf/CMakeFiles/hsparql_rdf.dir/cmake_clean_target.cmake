file(REMOVE_RECURSE
  "libhsparql_rdf.a"
)
