file(REMOVE_RECURSE
  "CMakeFiles/hsparql_rdf.dir/dictionary.cc.o"
  "CMakeFiles/hsparql_rdf.dir/dictionary.cc.o.d"
  "CMakeFiles/hsparql_rdf.dir/graph.cc.o"
  "CMakeFiles/hsparql_rdf.dir/graph.cc.o.d"
  "CMakeFiles/hsparql_rdf.dir/ntriples.cc.o"
  "CMakeFiles/hsparql_rdf.dir/ntriples.cc.o.d"
  "CMakeFiles/hsparql_rdf.dir/term.cc.o"
  "CMakeFiles/hsparql_rdf.dir/term.cc.o.d"
  "CMakeFiles/hsparql_rdf.dir/triple.cc.o"
  "CMakeFiles/hsparql_rdf.dir/triple.cc.o.d"
  "libhsparql_rdf.a"
  "libhsparql_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsparql_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
