# Empty compiler generated dependencies file for hsparql_rdf.
# This may be replaced when dependencies are built.
