file(REMOVE_RECURSE
  "CMakeFiles/hsparql_workload.dir/queries.cc.o"
  "CMakeFiles/hsparql_workload.dir/queries.cc.o.d"
  "CMakeFiles/hsparql_workload.dir/sp2bench_gen.cc.o"
  "CMakeFiles/hsparql_workload.dir/sp2bench_gen.cc.o.d"
  "CMakeFiles/hsparql_workload.dir/yago_gen.cc.o"
  "CMakeFiles/hsparql_workload.dir/yago_gen.cc.o.d"
  "libhsparql_workload.a"
  "libhsparql_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsparql_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
