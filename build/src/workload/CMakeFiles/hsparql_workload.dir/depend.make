# Empty dependencies file for hsparql_workload.
# This may be replaced when dependencies are built.
