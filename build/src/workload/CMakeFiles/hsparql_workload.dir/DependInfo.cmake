
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/queries.cc" "src/workload/CMakeFiles/hsparql_workload.dir/queries.cc.o" "gcc" "src/workload/CMakeFiles/hsparql_workload.dir/queries.cc.o.d"
  "/root/repo/src/workload/sp2bench_gen.cc" "src/workload/CMakeFiles/hsparql_workload.dir/sp2bench_gen.cc.o" "gcc" "src/workload/CMakeFiles/hsparql_workload.dir/sp2bench_gen.cc.o.d"
  "/root/repo/src/workload/yago_gen.cc" "src/workload/CMakeFiles/hsparql_workload.dir/yago_gen.cc.o" "gcc" "src/workload/CMakeFiles/hsparql_workload.dir/yago_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdf/CMakeFiles/hsparql_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hsparql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
