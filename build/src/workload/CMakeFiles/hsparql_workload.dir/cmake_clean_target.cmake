file(REMOVE_RECURSE
  "libhsparql_workload.a"
)
