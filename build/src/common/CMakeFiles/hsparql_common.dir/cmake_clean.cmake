file(REMOVE_RECURSE
  "CMakeFiles/hsparql_common.dir/rng.cc.o"
  "CMakeFiles/hsparql_common.dir/rng.cc.o.d"
  "CMakeFiles/hsparql_common.dir/status.cc.o"
  "CMakeFiles/hsparql_common.dir/status.cc.o.d"
  "CMakeFiles/hsparql_common.dir/string_util.cc.o"
  "CMakeFiles/hsparql_common.dir/string_util.cc.o.d"
  "libhsparql_common.a"
  "libhsparql_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsparql_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
