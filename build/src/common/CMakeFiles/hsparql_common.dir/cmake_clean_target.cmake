file(REMOVE_RECURSE
  "libhsparql_common.a"
)
