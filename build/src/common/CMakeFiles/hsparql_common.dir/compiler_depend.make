# Empty compiler generated dependencies file for hsparql_common.
# This may be replaced when dependencies are built.
