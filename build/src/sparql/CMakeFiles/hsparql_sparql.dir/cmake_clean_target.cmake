file(REMOVE_RECURSE
  "libhsparql_sparql.a"
)
