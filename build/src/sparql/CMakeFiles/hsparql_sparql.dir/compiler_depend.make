# Empty compiler generated dependencies file for hsparql_sparql.
# This may be replaced when dependencies are built.
