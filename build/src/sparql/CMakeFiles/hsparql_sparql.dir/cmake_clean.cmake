file(REMOVE_RECURSE
  "CMakeFiles/hsparql_sparql.dir/analyzer.cc.o"
  "CMakeFiles/hsparql_sparql.dir/analyzer.cc.o.d"
  "CMakeFiles/hsparql_sparql.dir/ast.cc.o"
  "CMakeFiles/hsparql_sparql.dir/ast.cc.o.d"
  "CMakeFiles/hsparql_sparql.dir/lexer.cc.o"
  "CMakeFiles/hsparql_sparql.dir/lexer.cc.o.d"
  "CMakeFiles/hsparql_sparql.dir/parser.cc.o"
  "CMakeFiles/hsparql_sparql.dir/parser.cc.o.d"
  "CMakeFiles/hsparql_sparql.dir/rewrite.cc.o"
  "CMakeFiles/hsparql_sparql.dir/rewrite.cc.o.d"
  "libhsparql_sparql.a"
  "libhsparql_sparql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsparql_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
