file(REMOVE_RECURSE
  "libhsparql_cdp.a"
)
