
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdp/cardinality.cc" "src/cdp/CMakeFiles/hsparql_cdp.dir/cardinality.cc.o" "gcc" "src/cdp/CMakeFiles/hsparql_cdp.dir/cardinality.cc.o.d"
  "/root/repo/src/cdp/cdp_planner.cc" "src/cdp/CMakeFiles/hsparql_cdp.dir/cdp_planner.cc.o" "gcc" "src/cdp/CMakeFiles/hsparql_cdp.dir/cdp_planner.cc.o.d"
  "/root/repo/src/cdp/char_sets.cc" "src/cdp/CMakeFiles/hsparql_cdp.dir/char_sets.cc.o" "gcc" "src/cdp/CMakeFiles/hsparql_cdp.dir/char_sets.cc.o.d"
  "/root/repo/src/cdp/cost_model.cc" "src/cdp/CMakeFiles/hsparql_cdp.dir/cost_model.cc.o" "gcc" "src/cdp/CMakeFiles/hsparql_cdp.dir/cost_model.cc.o.d"
  "/root/repo/src/cdp/hybrid_planner.cc" "src/cdp/CMakeFiles/hsparql_cdp.dir/hybrid_planner.cc.o" "gcc" "src/cdp/CMakeFiles/hsparql_cdp.dir/hybrid_planner.cc.o.d"
  "/root/repo/src/cdp/leftdeep_planner.cc" "src/cdp/CMakeFiles/hsparql_cdp.dir/leftdeep_planner.cc.o" "gcc" "src/cdp/CMakeFiles/hsparql_cdp.dir/leftdeep_planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hsp/CMakeFiles/hsparql_hsp.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hsparql_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/hsparql_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/hsparql_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hsparql_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
