# Empty dependencies file for hsparql_cdp.
# This may be replaced when dependencies are built.
