file(REMOVE_RECURSE
  "CMakeFiles/hsparql_cdp.dir/cardinality.cc.o"
  "CMakeFiles/hsparql_cdp.dir/cardinality.cc.o.d"
  "CMakeFiles/hsparql_cdp.dir/cdp_planner.cc.o"
  "CMakeFiles/hsparql_cdp.dir/cdp_planner.cc.o.d"
  "CMakeFiles/hsparql_cdp.dir/char_sets.cc.o"
  "CMakeFiles/hsparql_cdp.dir/char_sets.cc.o.d"
  "CMakeFiles/hsparql_cdp.dir/cost_model.cc.o"
  "CMakeFiles/hsparql_cdp.dir/cost_model.cc.o.d"
  "CMakeFiles/hsparql_cdp.dir/hybrid_planner.cc.o"
  "CMakeFiles/hsparql_cdp.dir/hybrid_planner.cc.o.d"
  "CMakeFiles/hsparql_cdp.dir/leftdeep_planner.cc.o"
  "CMakeFiles/hsparql_cdp.dir/leftdeep_planner.cc.o.d"
  "libhsparql_cdp.a"
  "libhsparql_cdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsparql_cdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
