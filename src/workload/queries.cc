#include "workload/queries.h"

namespace hsparql::workload {

namespace {

constexpr std::string_view kSp2bPrefixes =
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
    "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n"
    "PREFIX bench: <http://localhost/vocabulary/bench/>\n"
    "PREFIX dc: <http://purl.org/dc/elements/1.1/>\n"
    "PREFIX dcterms: <http://purl.org/dc/terms/>\n"
    "PREFIX swrc: <http://swrc.ontoware.org/ontology#>\n"
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n";

constexpr std::string_view kYagoPrefixes =
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
    "PREFIX y: <http://yago-knowledge.org/resource/>\n";

std::string Sp2b(std::string_view body) {
  return std::string(kSp2bPrefixes) + std::string(body);
}
std::string Yago(std::string_view body) {
  return std::string(kYagoPrefixes) + std::string(body);
}

std::string Sp3Variant(std::string_view property) {
  return Sp2b(
      "SELECT ?article WHERE {\n"
      "  ?article rdf:type bench:Article .\n"
      "  ?article ?property ?value .\n"
      "  FILTER (?property = swrc:" +
      std::string(property) + ")\n}\n");
}

std::vector<WorkloadQuery> BuildQueries() {
  std::vector<WorkloadQuery> q;

  q.push_back(WorkloadQuery{
      "SP1", Dataset::kSp2Bench,
      "Year of 'Journal 1 (1940)' (light subject star)",
      Sp2b("SELECT ?yr ?jrnl WHERE {\n"
           "  ?jrnl rdf:type bench:Journal .\n"
           "  ?jrnl dc:title \"Journal 1 (1940)\" .\n"
           "  ?jrnl dcterms:issued ?yr .\n}\n"),
      PaperTable2Row{3, 2, 2, 1, 0, 1, 2, 2, 2, 2, 0, 0, 0, 0, 0},
      PaperTable4Row{2, 0, 'L', 2, 0, 'L', true},
      PaperTimings{0.10, 19.52, 0.25, 11.92}});

  q.push_back(WorkloadQuery{
      "SP2a", Dataset::kSp2Bench,
      "Inproceedings with all 10 properties (heavy subject star)",
      Sp2b("SELECT ?inproc WHERE {\n"
           "  ?inproc rdf:type bench:Inproceedings .\n"
           "  ?inproc dc:creator ?author .\n"
           "  ?inproc bench:booktitle ?booktitle .\n"
           "  ?inproc dc:title ?title .\n"
           "  ?inproc dcterms:partOf ?proc .\n"
           "  ?inproc rdfs:seeAlso ?ee .\n"
           "  ?inproc swrc:pages ?page .\n"
           "  ?inproc foaf:homepage ?url .\n"
           "  ?inproc dcterms:issued ?yr .\n"
           "  ?inproc bench:abstract ?abstract .\n}\n"),
      PaperTable2Row{10, 10, 1, 1, 0, 9, 1, 9, 9, 9, 0, 0, 0, 0, 0},
      PaperTable4Row{9, 0, 'L', 9, 0, 'L', false},
      PaperTimings{0.15, 3267.01, 355.50, 3561.0}});

  q.push_back(WorkloadQuery{
      "SP2b", Dataset::kSp2Bench,
      "SP2a without homepage/abstract (8-pattern subject star)",
      Sp2b("SELECT ?inproc WHERE {\n"
           "  ?inproc rdf:type bench:Inproceedings .\n"
           "  ?inproc dc:creator ?author .\n"
           "  ?inproc bench:booktitle ?booktitle .\n"
           "  ?inproc dc:title ?title .\n"
           "  ?inproc dcterms:partOf ?proc .\n"
           "  ?inproc rdfs:seeAlso ?ee .\n"
           "  ?inproc swrc:pages ?page .\n"
           "  ?inproc dcterms:issued ?yr .\n}\n"),
      PaperTable2Row{8, 8, 1, 1, 0, 7, 1, 7, 7, 7, 0, 0, 0, 0, 0},
      PaperTable4Row{7, 0, 'L', 7, 0, 'L', false},
      PaperTimings{0.13, 1035.12, 1000.75, 1103.0}});

  // SP3(a,b,c): filtering queries; HSP rewrites the FILTER into the
  // pattern ("_2" = the 2-pattern rewritten form of Table 2).
  const PaperTable2Row sp3_row{2, 2, 1, 1, 0, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0};
  q.push_back(WorkloadQuery{
      "SP3a", Dataset::kSp2Bench, "Articles with swrc:pages (filter query)",
      Sp3Variant("pages"), sp3_row, PaperTable4Row{1, 0, 'L', 1, 0, 'L', true},
      PaperTimings{0.09, 80.92, 85.14, 82.91}});
  q.push_back(WorkloadQuery{
      "SP3b", Dataset::kSp2Bench, "Articles with swrc:month (sparser filter)",
      Sp3Variant("month"), sp3_row, PaperTable4Row{1, 0, 'L', 1, 0, 'L', true},
      PaperTimings{0.09, 8.74, 11.95, 9.61}});
  q.push_back(WorkloadQuery{
      "SP3c", Dataset::kSp2Bench, "Articles with swrc:isbn (empty result)",
      Sp3Variant("isbn"), sp3_row, PaperTable4Row{1, 0, 'L', 1, 0, 'L', true},
      PaperTimings{0.09, 12.55, 13.97, 14.81}});

  q.push_back(WorkloadQuery{
      "SP4a", Dataset::kSp2Bench,
      "Author pairs publishing in the same journal (chain of stars)",
      Sp2b("SELECT ?name1 ?name2 WHERE {\n"
           "  ?article1 dc:creator ?name1 .\n"
           "  ?article1 swrc:journal ?journal .\n"
           "  ?article2 swrc:journal ?journal .\n"
           "  ?article2 dc:creator ?name2 .\n"
           "  ?name1 rdf:type foaf:Person .\n"
           "  ?name2 rdf:type foaf:Person .\n}\n"),
      PaperTable2Row{6, 5, 2, 5, 0, 4, 2, 5, 1, 2, 0, 1, 0, 2, 0},
      PaperTable4Row{3, 2, 'B', 3, 2, 'B', true},
      PaperTimings{0.13, 3602.09, 3634.60, std::nullopt}});

  q.push_back(WorkloadQuery{
      "SP4b", Dataset::kSp2Bench,
      "Authors and the journals' titles they publish in (star + chain)",
      Sp2b("SELECT ?name ?title WHERE {\n"
           "  ?article dc:creator ?name .\n"
           "  ?article swrc:journal ?journal .\n"
           "  ?article rdf:type bench:Article .\n"
           "  ?name rdf:type foaf:Person .\n"
           "  ?journal dc:title ?title .\n}\n"),
      PaperTable2Row{5, 5, 2, 4, 0, 3, 2, 4, 2, 2, 0, 0, 0, 2, 0},
      PaperTable4Row{2, 2, 'B', 2, 2, 'B', false},
      PaperTimings{0.12, 1766.29, 2781.75, 1909.13}});

  q.push_back(WorkloadQuery{
      "SP5", Dataset::kSp2Bench,
      "Who carries the title 'Journal 1 (1940)' (selective selection)",
      Sp2b("SELECT ?journal ?predicate WHERE {\n"
           "  ?journal ?predicate \"Journal 1 (1940)\" .\n}\n"),
      PaperTable2Row{1, 2, 2, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0},
      PaperTable4Row{0, 0, 'L', 0, 0, 'L', true},
      PaperTimings{0.06, 0.06, 0.10, 0.09}});

  q.push_back(WorkloadQuery{
      "SP6", Dataset::kSp2Bench,
      "All articles (unselective selection, large result)",
      Sp2b("SELECT ?article WHERE {\n"
           "  ?article rdf:type bench:Article .\n}\n"),
      PaperTable2Row{1, 1, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0},
      PaperTable4Row{0, 0, 'L', 0, 0, 'L', true},
      PaperTimings{0.06, 0.43, 22.85, 0.48}});

  q.push_back(WorkloadQuery{
      "Y1", Dataset::kYago,
      "Married actors directing a movie they acted in, with home geography",
      Yago("SELECT ?p ?m WHERE {\n"
           "  ?p rdf:type y:wordnet_actor .\n"
           "  ?p y:livesIn ?c .\n"
           "  ?p y:actedIn ?m .\n"
           "  ?p y:directed ?m .\n"
           "  ?p y:marriedTo ?sp .\n"
           "  ?m rdf:type y:wordnet_movie .\n"
           "  ?c y:locatedIn ?x .\n"
           "  ?x y:locatedIn ?z .\n}\n"),
      PaperTable2Row{8, 6, 2, 4, 0, 6, 2, 7, 4, 4, 0, 0, 0, 3, 0},
      PaperTable4Row{5, 2, 'B', 5, 2, 'B', false},
      PaperTimings{0.13, 6.04, 15.75, 7.69}});

  q.push_back(WorkloadQuery{
      "Y2", Dataset::kYago,
      "Actors who acted and directed (verbatim, paper Table 9)",
      Yago("SELECT ?a WHERE {\n"
           "  ?a rdf:type y:wordnet_actor .\n"
           "  ?a y:livesIn ?city .\n"
           "  ?a y:actedIn ?m1 .\n"
           "  ?m1 rdf:type y:wordnet_movie .\n"
           "  ?a y:directed ?m2 .\n"
           "  ?m2 rdf:type y:wordnet_movie .\n}\n"),
      PaperTable2Row{6, 4, 1, 3, 0, 3, 3, 5, 3, 3, 0, 0, 0, 2, 0},
      PaperTable4Row{3, 2, 'L', 3, 2, 'B', false},
      PaperTimings{0.12, 8.65, 9.95, 9.07}});

  q.push_back(WorkloadQuery{
      "Y3", Dataset::kYago,
      "Entities related to a village and a site (verbatim, paper Table 5)",
      Yago("SELECT ?p WHERE {\n"
           "  ?p ?ss ?c1 .\n"
           "  ?p ?dd ?c2 .\n"
           "  ?c1 rdf:type y:wordnet_village .\n"
           "  ?c1 y:locatedIn ?x .\n"
           "  ?c2 rdf:type y:wordnet_site .\n"
           "  ?c2 y:locatedIn ?y .\n}\n"),
      PaperTable2Row{6, 7, 1, 3, 2, 2, 2, 5, 2, 3, 0, 0, 0, 2, 0},
      PaperTable4Row{4, 1, 'B', 4, 1, 'B', true},
      PaperTimings{0.14, 25.69, 81.20, 538.65}});

  q.push_back(WorkloadQuery{
      "Y4", Dataset::kYago,
      "Scientists three generic hops from a city (chain query)",
      Yago("SELECT ?a ?x ?z WHERE {\n"
           "  ?a rdf:type y:wordnet_scientist .\n"
           "  ?a ?p1 ?x .\n"
           "  ?x ?p2 ?y .\n"
           "  ?y ?p3 ?z .\n"
           "  ?z rdf:type y:wordnet_city .\n}\n"),
      PaperTable2Row{5, 7, 3, 4, 3, 0, 2, 4, 1, 1, 0, 0, 0, 3, 0},
      PaperTable4Row{2, 2, 'B', 2, 2, 'B', false},
      PaperTimings{0.13, 2.32, 90.45, 1113.0}});

  return q;
}

}  // namespace

const std::vector<WorkloadQuery>& AllQueries() {
  static const std::vector<WorkloadQuery>* queries =
      new std::vector<WorkloadQuery>(BuildQueries());
  return *queries;
}

const WorkloadQuery* FindQuery(std::string_view id) {
  for (const WorkloadQuery& q : AllQueries()) {
    if (q.id == id) return &q;
  }
  return nullptr;
}

std::string_view Figure1ExampleQuery() {
  static constexpr std::string_view kQuery =
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
      "PREFIX bench: <http://localhost/vocabulary/bench/>\n"
      "PREFIX dc: <http://purl.org/dc/elements/1.1/>\n"
      "PREFIX dcterms: <http://purl.org/dc/terms/>\n"
      "SELECT ?yr ?jrnl WHERE {\n"
      "  ?jrnl rdf:type bench:Journal .\n"
      "  ?jrnl dc:title \"Journal 1 (1940)\" .\n"
      "  ?jrnl dcterms:issued ?yr .\n"
      "  ?jrnl dcterms:revised ?rev .\n"
      "  FILTER (?rev = \"1942\")\n"
      "}\n";
  return kQuery;
}

}  // namespace hsparql::workload
