// YAGO-like synthetic data generator (DESIGN.md substitution #4).
//
// The paper evaluates on a cleaned 16M-triple YAGO dump. This generator
// reproduces the slice the Y1–Y4 queries exercise: actors who live in
// cities, act in and (sometimes) direct movies — with a deliberate
// correlation so some actors direct a movie they also acted in (query Y1
// joins ?p actedIn ?m with ?p directed ?m) — marriages between actors,
// villages/sites/regions with locatedIn chains ending in wordnet_city
// entities (query Y4's path), and scientists born in villages and working
// at sites (queries Y3/Y4). Location references are Zipf-skewed to model
// YAGO's hub nodes (§4, HEURISTIC 2 discussion).
#ifndef HSPARQL_WORKLOAD_YAGO_GEN_H_
#define HSPARQL_WORKLOAD_YAGO_GEN_H_

#include <cstdint>

#include "common/rng.h"
#include "rdf/graph.h"

namespace hsparql::workload {

struct YagoConfig {
  std::uint64_t seed = kDefaultSeed;
  std::size_t num_actors = 20000;
  std::size_t num_movies = 10000;
  std::size_t num_scientists = 5000;
  std::size_t num_villages = 2000;
  std::size_t num_sites = 1000;
  std::size_t num_regions = 200;
  std::size_t num_cities = 100;
  double married_rate = 0.4;   // actors married to another actor
  double director_rate = 0.25; // actors who also direct
  /// Probability that a directing actor directs a movie they acted in.
  double self_direct_rate = 0.6;
  std::size_t avg_roles = 3;   // actedIn edges per actor

  static YagoConfig FromTargetTriples(std::uint64_t target,
                                      std::uint64_t seed = kDefaultSeed);
};

rdf::Graph GenerateYago(const YagoConfig& config);

}  // namespace hsparql::workload

#endif  // HSPARQL_WORKLOAD_YAGO_GEN_H_
