// SP2Bench-like synthetic data generator (DESIGN.md substitution #3).
//
// The paper scales SP2Bench [29] to 50M triples; SP2Bench models the DBLP
// bibliography. This generator reproduces the entity mix the workload
// touches: one "Journal 1 (YYYY)" per year with title/issued, Articles with
// creator/journal/pages/seeAlso, Proceedings with Inproceedings carrying
// the full 10-property star of query SP2a, and a Zipf-productive author
// population typed foaf:Person. Deterministic for a given seed.
#ifndef HSPARQL_WORKLOAD_SP2BENCH_GEN_H_
#define HSPARQL_WORKLOAD_SP2BENCH_GEN_H_

#include <cstdint>

#include "common/rng.h"
#include "rdf/graph.h"

namespace hsparql::workload {

struct Sp2bConfig {
  std::uint64_t seed = kDefaultSeed;
  /// Years covered, starting at 1940 (one journal volume per year).
  std::size_t years = 50;
  std::size_t articles_per_journal = 40;
  std::size_t proceedings_per_year = 2;
  std::size_t inproceedings_per_proceeding = 25;
  std::size_t num_authors = 2000;
  /// Fraction of optional properties (homepage, month, abstract).
  double optional_property_rate = 0.8;

  /// Sizes the knobs so the generated graph has roughly `target` triples.
  static Sp2bConfig FromTargetTriples(std::uint64_t target,
                                      std::uint64_t seed = kDefaultSeed);
};

/// Generates the dataset. Triple count is approximately
///   years * (3 + articles_per_journal * ~7.5
///            + proceedings_per_year * (2 + inproceedings * ~9.5))
///   + num_authors * 2.
rdf::Graph GenerateSp2b(const Sp2bConfig& config);

}  // namespace hsparql::workload

#endif  // HSPARQL_WORKLOAD_SP2BENCH_GEN_H_
