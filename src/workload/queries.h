// The benchmark query workload: six SP2Bench queries (plus variants) and
// four YAGO queries, with the paper's published per-query numbers for
// side-by-side reporting.
//
// Y2 and Y3 are verbatim from the paper (Tables 9 and 5). The exact text of
// the others lives in the unavailable tech report [35]; they are
// reconstructed to match Table 2's syntactic census (see DESIGN.md
// substitution #5 and EXPERIMENTS.md for the two documented
// inconsistencies in the paper's own table).
#ifndef HSPARQL_WORKLOAD_QUERIES_H_
#define HSPARQL_WORKLOAD_QUERIES_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hsparql::workload {

/// Which dataset a query runs against.
enum class Dataset { kSp2Bench, kYago };

/// The paper's Table 2 row for a query, verbatim (two cells of the SP4b
/// row are internally inconsistent in the paper itself; see
/// EXPERIMENTS.md).
struct PaperTable2Row {
  int patterns;
  int variables;
  int projection_vars;
  int shared_vars;
  int const0, const1, const2;
  int joins;
  int max_star;
  int ss, pp, oo, sp, so, po;
};

/// The paper's Table 4 row.
struct PaperTable4Row {
  int hsp_merge, hsp_hash;
  char hsp_shape;  // 'L' or 'B'
  int cdp_merge, cdp_hash;
  char cdp_shape;
  bool similar;
};

/// The paper's Tables 6/7/8 timings in milliseconds (reference only — our
/// substrate differs; shape, not absolute numbers, is the target).
struct PaperTimings {
  double planning_ms;                  // Table 6
  std::optional<double> hsp_exec_ms;   // Tables 7/8, MonetDB/HSP
  std::optional<double> cdp_exec_ms;   // RDF-3X/CDP
  std::optional<double> sql_exec_ms;   // MonetDB/SQL (nullopt = XXX / DNF)
};

struct WorkloadQuery {
  std::string id;           // "SP1", "Y3", ...
  Dataset dataset;
  std::string description;
  std::string sparql;
  PaperTable2Row table2;
  PaperTable4Row table4;
  PaperTimings timings;
};

/// All 14 workload queries (SP1, SP2a, SP2b, SP3a-c, SP4a, SP4b, SP5, SP6,
/// Y1-Y4), in the paper's order.
const std::vector<WorkloadQuery>& AllQueries();

/// Lookup by id; nullptr if unknown.
const WorkloadQuery* FindQuery(std::string_view id);

/// The §3 example query (journal revised in 1942) whose variable graph is
/// the paper's Figure 1.
std::string_view Figure1ExampleQuery();

}  // namespace hsparql::workload

#endif  // HSPARQL_WORKLOAD_QUERIES_H_
