#include "workload/yago_gen.h"

#include <algorithm>
#include <string>
#include <vector>

#include "workload/vocab.h"

namespace hsparql::workload {

namespace v = vocab;

YagoConfig YagoConfig::FromTargetTriples(std::uint64_t target,
                                         std::uint64_t seed) {
  YagoConfig config;
  config.seed = seed;
  // Rough per-actor triple cost: type + livesIn + avg_roles +
  // married_rate*2 + director_rate + one movie-type triple per 2 actors +
  // scientists at 1/4 of actors costing 3 each. Solve for actors.
  double per_actor = 1 + 1 + static_cast<double>(config.avg_roles) +
                     config.married_rate * 2 + config.director_rate + 0.5 +
                     0.25 * 3;
  config.num_actors = std::max<std::size_t>(
      200, static_cast<std::size_t>(static_cast<double>(target) / per_actor));
  config.num_movies = config.num_actors / 2;
  config.num_scientists = config.num_actors / 4;
  config.num_villages = std::max<std::size_t>(50, config.num_actors / 10);
  config.num_sites = std::max<std::size_t>(25, config.num_actors / 20);
  config.num_regions = std::max<std::size_t>(10, config.num_actors / 100);
  config.num_cities = std::max<std::size_t>(5, config.num_actors / 200);
  return config;
}

namespace {

std::string Entity(std::string_view kind, std::size_t i) {
  return std::string(v::kYago) + std::string(kind) + std::to_string(i);
}

}  // namespace

rdf::Graph GenerateYago(const YagoConfig& config) {
  rdf::Graph graph;
  SplitMix64 rng(config.seed);

  // Geography, top of the locatedIn chain first: continents <- countries
  // <- cities <- regions <- villages/sites. Query Y1 walks two locatedIn
  // hops up from an actor's home city, query Y4 three generic hops down
  // from a scientist to a wordnet_city.
  std::vector<std::string> continents;
  for (std::size_t i = 0; i < 6; ++i) {
    continents.push_back(Entity("Continent", i));
    graph.AddIri(continents.back(), v::kRdfType, v::kWordnetRegion);
  }
  std::vector<std::string> countries;
  std::size_t num_countries = std::max<std::size_t>(5, config.num_cities / 4);
  for (std::size_t i = 0; i < num_countries; ++i) {
    countries.push_back(Entity("Country", i));
    graph.AddIri(countries.back(), v::kRdfType, v::kWordnetRegion);
    graph.AddIri(countries.back(), v::kYagoLocatedIn,
                 continents[i % continents.size()]);
  }
  std::vector<std::string> cities;
  for (std::size_t i = 0; i < config.num_cities; ++i) {
    cities.push_back(Entity("City", i));
    graph.AddIri(cities.back(), v::kRdfType, v::kWordnetCity);
    graph.AddIri(cities.back(), v::kYagoLocatedIn,
                 countries[i % countries.size()]);
  }
  ZipfSampler city_pick(config.num_cities, 1.0, config.seed ^ 0xc17);
  std::vector<std::string> regions;
  for (std::size_t i = 0; i < config.num_regions; ++i) {
    regions.push_back(Entity("Region", i));
    graph.AddIri(regions.back(), v::kRdfType, v::kWordnetRegion);
    graph.AddIri(regions.back(), v::kYagoLocatedIn,
                 cities[city_pick.Next()]);
  }
  ZipfSampler region_pick(config.num_regions, 1.0, config.seed ^ 0x4e6);
  std::vector<std::string> villages;
  for (std::size_t i = 0; i < config.num_villages; ++i) {
    villages.push_back(Entity("Village", i));
    graph.AddIri(villages.back(), v::kRdfType, v::kWordnetVillage);
    graph.AddIri(villages.back(), v::kYagoLocatedIn,
                 regions[region_pick.Next()]);
  }
  std::vector<std::string> sites;
  for (std::size_t i = 0; i < config.num_sites; ++i) {
    sites.push_back(Entity("Site", i));
    graph.AddIri(sites.back(), v::kRdfType, v::kWordnetSite);
    graph.AddIri(sites.back(), v::kYagoLocatedIn,
                 regions[region_pick.Next()]);
  }

  // Movies.
  std::vector<std::string> movies;
  movies.reserve(config.num_movies);
  for (std::size_t i = 0; i < config.num_movies; ++i) {
    movies.push_back(Entity("Movie", i));
    graph.AddIri(movies.back(), v::kRdfType, v::kWordnetMovie);
  }
  ZipfSampler movie_pick(config.num_movies, 0.8, config.seed ^ 0x30f1e);

  // Actors: live somewhere, act, sometimes direct, sometimes marry.
  std::vector<std::string> actors;
  actors.reserve(config.num_actors);
  for (std::size_t i = 0; i < config.num_actors; ++i) {
    actors.push_back(Entity("Actor", i));
  }
  ZipfSampler village_pick(config.num_villages, 1.0, config.seed ^ 0x1337);
  for (std::size_t i = 0; i < config.num_actors; ++i) {
    const std::string& actor = actors[i];
    graph.AddIri(actor, v::kRdfType, v::kWordnetActor);
    graph.AddIri(actor, v::kYagoLivesIn, cities[city_pick.Next()]);
    std::size_t roles = 1 + rng.NextBounded(2 * config.avg_roles - 1);
    std::string first_role;
    for (std::size_t r = 0; r < roles; ++r) {
      const std::string& movie = movies[movie_pick.Next()];
      if (r == 0) first_role = movie;
      graph.AddIri(actor, v::kYagoActedIn, movie);
    }
    if (rng.NextDouble() < config.director_rate) {
      // Correlation for Y1/Y2: often directs a movie they acted in.
      const std::string& directed =
          rng.NextDouble() < config.self_direct_rate
              ? first_role
              : movies[movie_pick.Next()];
      graph.AddIri(actor, v::kYagoDirected, directed);
    }
    if (rng.NextDouble() < config.married_rate) {
      graph.AddIri(actor, v::kYagoMarriedTo,
                   actors[rng.NextBounded(config.num_actors)]);
    }
  }

  // Scientists: born in villages, work at sites (Y3's star, Y4's chain).
  for (std::size_t i = 0; i < config.num_scientists; ++i) {
    const std::string sci = Entity("Scientist", i);
    graph.AddIri(sci, v::kRdfType, v::kWordnetScientist);
    graph.AddIri(sci, v::kYagoBornIn, villages[village_pick.Next()]);
    graph.AddIri(sci, v::kYagoWorksAt,
                 sites[rng.NextBounded(config.num_sites)]);
  }
  return graph;
}

}  // namespace hsparql::workload
