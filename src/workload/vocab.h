// Shared vocabulary IRIs for the two synthetic datasets.
#ifndef HSPARQL_WORKLOAD_VOCAB_H_
#define HSPARQL_WORKLOAD_VOCAB_H_

#include <string_view>

namespace hsparql::workload::vocab {

// Namespaces (prefix expansions used in the workload queries).
inline constexpr std::string_view kRdf =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
inline constexpr std::string_view kRdfs =
    "http://www.w3.org/2000/01/rdf-schema#";
inline constexpr std::string_view kBench = "http://localhost/vocabulary/bench/";
inline constexpr std::string_view kDc = "http://purl.org/dc/elements/1.1/";
inline constexpr std::string_view kDcterms = "http://purl.org/dc/terms/";
inline constexpr std::string_view kSwrc = "http://swrc.ontoware.org/ontology#";
inline constexpr std::string_view kFoaf = "http://xmlns.com/foaf/0.1/";
inline constexpr std::string_view kSp2b = "http://localhost/publications/";
inline constexpr std::string_view kYago = "http://yago-knowledge.org/resource/";

// SP2Bench-style properties and classes.
inline constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr std::string_view kRdfsSeeAlso =
    "http://www.w3.org/2000/01/rdf-schema#seeAlso";
inline constexpr std::string_view kDcTitle =
    "http://purl.org/dc/elements/1.1/title";
inline constexpr std::string_view kDcCreator =
    "http://purl.org/dc/elements/1.1/creator";
inline constexpr std::string_view kDctermsIssued =
    "http://purl.org/dc/terms/issued";
inline constexpr std::string_view kDctermsPartOf =
    "http://purl.org/dc/terms/partOf";
inline constexpr std::string_view kDctermsRevised =
    "http://purl.org/dc/terms/revised";
inline constexpr std::string_view kSwrcPages =
    "http://swrc.ontoware.org/ontology#pages";
inline constexpr std::string_view kSwrcMonth =
    "http://swrc.ontoware.org/ontology#month";
inline constexpr std::string_view kSwrcJournal =
    "http://swrc.ontoware.org/ontology#journal";
inline constexpr std::string_view kFoafName =
    "http://xmlns.com/foaf/0.1/name";
inline constexpr std::string_view kFoafHomepage =
    "http://xmlns.com/foaf/0.1/homepage";
inline constexpr std::string_view kFoafPerson =
    "http://xmlns.com/foaf/0.1/Person";
inline constexpr std::string_view kBenchJournal =
    "http://localhost/vocabulary/bench/Journal";
inline constexpr std::string_view kBenchArticle =
    "http://localhost/vocabulary/bench/Article";
inline constexpr std::string_view kBenchInproceedings =
    "http://localhost/vocabulary/bench/Inproceedings";
inline constexpr std::string_view kBenchProceedings =
    "http://localhost/vocabulary/bench/Proceedings";
inline constexpr std::string_view kBenchBooktitle =
    "http://localhost/vocabulary/bench/booktitle";
inline constexpr std::string_view kBenchAbstract =
    "http://localhost/vocabulary/bench/abstract";

// YAGO-style properties and wordnet classes.
inline constexpr std::string_view kYagoActedIn =
    "http://yago-knowledge.org/resource/actedIn";
inline constexpr std::string_view kYagoDirected =
    "http://yago-knowledge.org/resource/directed";
inline constexpr std::string_view kYagoLivesIn =
    "http://yago-knowledge.org/resource/livesIn";
inline constexpr std::string_view kYagoLocatedIn =
    "http://yago-knowledge.org/resource/locatedIn";
inline constexpr std::string_view kYagoMarriedTo =
    "http://yago-knowledge.org/resource/marriedTo";
inline constexpr std::string_view kYagoBornIn =
    "http://yago-knowledge.org/resource/bornIn";
inline constexpr std::string_view kYagoWorksAt =
    "http://yago-knowledge.org/resource/worksAt";
inline constexpr std::string_view kWordnetActor =
    "http://yago-knowledge.org/resource/wordnet_actor";
inline constexpr std::string_view kWordnetMovie =
    "http://yago-knowledge.org/resource/wordnet_movie";
inline constexpr std::string_view kWordnetVillage =
    "http://yago-knowledge.org/resource/wordnet_village";
inline constexpr std::string_view kWordnetSite =
    "http://yago-knowledge.org/resource/wordnet_site";
inline constexpr std::string_view kWordnetCity =
    "http://yago-knowledge.org/resource/wordnet_city";
inline constexpr std::string_view kWordnetRegion =
    "http://yago-knowledge.org/resource/wordnet_region";
inline constexpr std::string_view kWordnetScientist =
    "http://yago-knowledge.org/resource/wordnet_scientist";

}  // namespace hsparql::workload::vocab

#endif  // HSPARQL_WORKLOAD_VOCAB_H_
