#include "workload/sp2bench_gen.h"

#include <algorithm>
#include <string>

#include "workload/vocab.h"

namespace hsparql::workload {

namespace v = vocab;

Sp2bConfig Sp2bConfig::FromTargetTriples(std::uint64_t target,
                                         std::uint64_t seed) {
  Sp2bConfig config;
  config.seed = seed;
  config.years = std::clamp<std::size_t>(target / 3000, 10, 60);
  config.num_authors =
      std::clamp<std::uint64_t>(target / 100, 200, 200000);
  std::uint64_t remaining =
      target > config.num_authors * 2 ? target - config.num_authors * 2 : 0;
  double per_year = static_cast<double>(remaining) /
                    static_cast<double>(config.years);
  // Articles per journal are capped: the same-journal self-join of query
  // SP4a grows quadratically in this knob, and SP2Bench's own journals are
  // similarly bounded. The rest of the per-year budget goes to
  // inproceedings (~9.5 triples each across two proceedings).
  config.articles_per_journal = std::clamp<std::size_t>(
      static_cast<std::size_t>(per_year * 0.35 / 7.5), 4, 120);
  config.proceedings_per_year = 2;
  double article_triples =
      static_cast<double>(config.articles_per_journal) * 7.5;
  double inproc_budget = per_year - article_triples - 4.0;
  config.inproceedings_per_proceeding = std::max<std::size_t>(
      4, static_cast<std::size_t>(inproc_budget / 9.5 / 2.0));
  return config;
}

namespace {

std::string Instance(std::string_view local) {
  return std::string(v::kSp2b) + std::string(local);
}

}  // namespace

rdf::Graph GenerateSp2b(const Sp2bConfig& config) {
  rdf::Graph graph;
  SplitMix64 rng(config.seed);
  ZipfSampler author_sampler(config.num_authors, 1.2, config.seed ^ 0x5eed);

  // Authors (foaf:Person with a name).
  std::vector<std::string> authors;
  authors.reserve(config.num_authors);
  for (std::size_t i = 0; i < config.num_authors; ++i) {
    authors.push_back(Instance("Person" + std::to_string(i)));
    graph.AddIri(authors.back(), v::kRdfType, v::kFoafPerson);
    graph.AddLiteral(authors.back(), v::kFoafName,
                     "Author " + std::to_string(i));
  }

  auto optional = [&]() {
    return rng.NextDouble() < config.optional_property_rate;
  };

  std::size_t article_counter = 0;
  std::size_t inproc_counter = 0;
  for (std::size_t y = 0; y < config.years; ++y) {
    const std::string year = std::to_string(1940 + y);
    // One journal volume per year: "Journal 1 (YYYY)".
    const std::string journal = Instance("Journal1/" + year);
    graph.AddIri(journal, v::kRdfType, v::kBenchJournal);
    graph.AddLiteral(journal, v::kDcTitle, "Journal 1 (" + year + ")");
    graph.AddLiteral(journal, v::kDctermsIssued, year);
    // Every volume gets a revision two years later (the §3 example query
    // selects Journal 1 (1940) revised in "1942").
    graph.AddLiteral(journal, v::kDctermsRevised, std::to_string(1942 + y));

    // Articles published in the journal.
    for (std::size_t a = 0; a < config.articles_per_journal; ++a) {
      const std::string article =
          Instance("Article" + std::to_string(article_counter++));
      graph.AddIri(article, v::kRdfType, v::kBenchArticle);
      graph.AddLiteral(article, v::kDcTitle,
                       "Article " + std::to_string(article_counter) + " (" +
                           year + ")");
      graph.AddIri(article, v::kSwrcJournal, journal);
      graph.AddLiteral(article, v::kDctermsIssued, year);
      graph.AddIri(article, v::kDcCreator, authors[author_sampler.Next()]);
      graph.AddLiteral(article, v::kSwrcPages,
                       std::to_string(1 + rng.NextBounded(400)));
      graph.AddIri(article, v::kRdfsSeeAlso,
                   "http://dblp.example.org/article/" +
                       std::to_string(article_counter));
      if (optional()) {
        graph.AddLiteral(article, v::kSwrcMonth,
                         std::to_string(1 + rng.NextBounded(12)));
      }
    }

    // Proceedings with inproceedings (the SP2a star needs all 10 props).
    for (std::size_t p = 0; p < config.proceedings_per_year; ++p) {
      const std::string proc =
          Instance("Proceeding" + std::to_string(y) + "/" +
                   std::to_string(p));
      graph.AddIri(proc, v::kRdfType, v::kBenchProceedings);
      graph.AddLiteral(proc, v::kDctermsIssued, year);
      for (std::size_t i = 0; i < config.inproceedings_per_proceeding; ++i) {
        const std::string inproc =
            Instance("Inproceeding" + std::to_string(inproc_counter++));
        graph.AddIri(inproc, v::kRdfType, v::kBenchInproceedings);
        graph.AddIri(inproc, v::kDcCreator, authors[author_sampler.Next()]);
        graph.AddLiteral(inproc, v::kBenchBooktitle,
                         "Conference " + std::to_string(p) + " (" + year +
                             ")");
        graph.AddLiteral(inproc, v::kDcTitle,
                         "Inproceeding " + std::to_string(inproc_counter));
        graph.AddIri(inproc, v::kDctermsPartOf, proc);
        graph.AddIri(inproc, v::kRdfsSeeAlso,
                     "http://dblp.example.org/inproc/" +
                         std::to_string(inproc_counter));
        graph.AddLiteral(inproc, v::kSwrcPages,
                         std::to_string(1 + rng.NextBounded(400)));
        graph.AddLiteral(inproc, v::kDctermsIssued, year);
        if (optional()) {
          graph.AddIri(inproc, v::kFoafHomepage,
                       "http://www.example.org/inproc/" +
                           std::to_string(inproc_counter));
        }
        if (optional()) {
          graph.AddLiteral(inproc, v::kBenchAbstract,
                           "Abstract of inproceeding " +
                               std::to_string(inproc_counter));
        }
      }
    }
  }
  return graph;
}

}  // namespace hsparql::workload
