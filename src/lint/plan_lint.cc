#include "lint/plan_lint.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "hsp/heuristics.h"
#include "storage/ordering.h"

namespace hsparql::lint {

using hsp::JoinAlgo;
using hsp::LogicalPlan;
using hsp::PlanNode;
using sparql::Query;
using sparql::TriplePattern;
using sparql::VarId;

std::string_view SeverityName(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

std::string_view RuleIdName(RuleId rule) {
  switch (rule) {
    case RuleId::kNodeArity:
      return "node-arity";
    case RuleId::kDuplicateNodeId:
      return "duplicate-node-id";
    case RuleId::kNodeIdUnassigned:
      return "node-id-unassigned";
    case RuleId::kPatternIndexOutOfRange:
      return "pattern-index-out-of-range";
    case RuleId::kScanBoundPrefix:
      return "scan-bound-prefix";
    case RuleId::kScanSortVar:
      return "scan-sort-var";
    case RuleId::kMergeJoinNoVar:
      return "merge-join-no-var";
    case RuleId::kJoinVarUnboundSide:
      return "join-var-unbound-side";
    case RuleId::kMergeInputsUnsorted:
      return "merge-inputs-unsorted";
    case RuleId::kLeftOuterMergeJoin:
      return "left-outer-merge-join";
    case RuleId::kCartesianSharesVars:
      return "cartesian-shares-vars";
    case RuleId::kFilterVarUnbound:
      return "filter-var-unbound";
    case RuleId::kProjectionVarUnbound:
      return "projection-var-unbound";
    case RuleId::kOrderByVarUnbound:
      return "order-by-var-unbound";
    case RuleId::kHspMergeVarNotChosen:
      return "hsp-merge-var-not-chosen";
    case RuleId::kHspMergeChainShape:
      return "hsp-merge-chain-shape";
    case RuleId::kHspScanOrder:
      return "hsp-scan-order";
    case RuleId::kHspAccessPathMismatch:
      return "hsp-access-path-mismatch";
    case RuleId::kLeapfrogOrderInvalid:
      return "leapfrog-order-invalid";
    case RuleId::kLeapfrogVarNotCovered:
      return "leapfrog-var-not-covered";
    case RuleId::kLeapfrogNoAccessPath:
      return "leapfrog-no-access-path";
    case RuleId::kLeapfrogOrderVarUnused:
      return "leapfrog-order-var-unused";
  }
  return "unknown-rule";
}

std::string_view RuleIdCode(RuleId rule) {
  switch (rule) {
    case RuleId::kNodeArity:
      return "PL001";
    case RuleId::kDuplicateNodeId:
      return "PL002";
    case RuleId::kNodeIdUnassigned:
      return "PL003";
    case RuleId::kPatternIndexOutOfRange:
      return "PL004";
    case RuleId::kScanBoundPrefix:
      return "PL101";
    case RuleId::kScanSortVar:
      return "PL102";
    case RuleId::kMergeJoinNoVar:
      return "PL201";
    case RuleId::kJoinVarUnboundSide:
      return "PL202";
    case RuleId::kMergeInputsUnsorted:
      return "PL203";
    case RuleId::kLeftOuterMergeJoin:
      return "PL204";
    case RuleId::kCartesianSharesVars:
      return "PL205";
    case RuleId::kFilterVarUnbound:
      return "PL301";
    case RuleId::kProjectionVarUnbound:
      return "PL302";
    case RuleId::kOrderByVarUnbound:
      return "PL303";
    case RuleId::kHspMergeVarNotChosen:
      return "PL401";
    case RuleId::kHspMergeChainShape:
      return "PL402";
    case RuleId::kHspScanOrder:
      return "PL403";
    case RuleId::kHspAccessPathMismatch:
      return "PL404";
    case RuleId::kLeapfrogOrderInvalid:
      return "PL501";
    case RuleId::kLeapfrogVarNotCovered:
      return "PL502";
    case RuleId::kLeapfrogNoAccessPath:
      return "PL503";
    case RuleId::kLeapfrogOrderVarUnused:
      return "PL504";
  }
  return "PL???";
}

namespace {

std::string FormatDiagnostic(Severity severity, RuleId rule, int node_id,
                             std::string_view message) {
  std::ostringstream os;
  os << SeverityName(severity) << ' ' << RuleIdCode(rule) << " ["
     << RuleIdName(rule) << "] node " << node_id << ": " << message;
  return os.str();
}

/// "?name", or a placeholder for ids the query does not know (a linted
/// plan may reference anything).
std::string NameOf(const Query& query, VarId v) {
  if (v == sparql::kInvalidVarId) return "(none)";
  if (static_cast<std::size_t>(v) < query.var_names.size()) {
    return "?" + query.var_names[v];
  }
  return "?#" + std::to_string(v);
}

}  // namespace

std::string Diagnostic::ToString() const {
  return FormatDiagnostic(severity, rule_id, node_id, message);
}

bool LintReport::ok() const { return num_errors() == 0; }

int LintReport::num_errors() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

bool LintReport::Has(RuleId rule) const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [rule](const Diagnostic& d) { return d.rule_id == rule; });
}

std::string LintReport::ToString() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

Status ReportToStatus(const LintReport& report) {
  if (report.ok()) return Status::OK();
  const Diagnostic* first = nullptr;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity == Severity::kError) {
      first = &d;
      break;
    }
  }
  std::string msg = "plan-lint: " + first->ToString();
  int extra = report.num_errors() - 1;
  if (extra > 0) msg += " (+" + std::to_string(extra) + " more)";
  return Status::Internal(std::move(msg));
}

Status RuntimeViolation(RuleId rule, int node_id, std::string detail) {
  return Status::Internal(
      "plan-lint: " +
      FormatDiagnostic(Severity::kError, rule, node_id, detail));
}

namespace {

/// Facts the analysis propagates bottom-up, mirroring exactly what the
/// executor's BindingTable carries for the same subtree: the output schema
/// (`vars`, first-occurrence order) and the variable prefix the rows are
/// sorted by (`sorted_by`, empty == unordered). The lattice is documented
/// in DESIGN.md; the transfer functions below must stay in lockstep with
/// exec/executor.cc.
struct NodeFacts {
  std::vector<VarId> vars;
  std::vector<VarId> sorted_by;

  bool Binds(VarId v) const {
    return std::find(vars.begin(), vars.end(), v) != vars.end();
  }
  bool SortedBy(VarId v) const {
    return !sorted_by.empty() && sorted_by[0] == v;
  }
};

class Linter {
 public:
  Linter(const Query& query, const LogicalPlan& plan)
      : query_(query), plan_(plan) {}

  LintReport Run() {
    if (plan_.root() != nullptr) Walk(plan_.root());
    return std::move(report_);
  }

 private:
  void Emit(Severity severity, RuleId rule, const PlanNode* node,
            std::string message) {
    report_.diagnostics.push_back(Diagnostic{
        severity, rule, node == nullptr ? -1 : node->id, std::move(message)});
  }
  void Error(RuleId rule, const PlanNode* node, std::string message) {
    Emit(Severity::kError, rule, node, std::move(message));
  }

  void CheckId(const PlanNode* node) {
    if (node->id < 0) {
      Error(RuleId::kNodeIdUnassigned, node,
            "node id is unassigned (LogicalPlan::AssignIds never ran on "
            "this tree)");
      return;
    }
    if (!seen_ids_.insert(node->id).second) {
      Error(RuleId::kDuplicateNodeId, node,
            "node id " + std::to_string(node->id) +
                " is assigned to more than one node");
    }
  }

  bool CheckArity(const PlanNode* node) {
    std::size_t want = 0;
    bool at_least = false;
    switch (node->kind) {
      case PlanNode::Kind::kScan:
      case PlanNode::Kind::kLeapfrog:
        want = 0;
        break;
      case PlanNode::Kind::kJoin:
        want = 2;
        break;
      case PlanNode::Kind::kUnion:
        want = 1;
        at_least = true;
        break;
      case PlanNode::Kind::kFilter:
      case PlanNode::Kind::kProject:
      case PlanNode::Kind::kSort:
      case PlanNode::Kind::kLimit:
        want = 1;
        break;
    }
    std::size_t got = node->children.size();
    if (at_least ? got >= want : got == want) return true;
    Error(RuleId::kNodeArity, node,
          "operator has " + std::to_string(got) + " children, expected " +
              (at_least ? "at least " : "") + std::to_string(want));
    return false;
  }

  NodeFacts Walk(const PlanNode* node) {
    CheckId(node);
    if (!CheckArity(node)) {
      // Still surface diagnostics from whatever children exist, but give
      // up on this node's own semantics: report no facts.
      for (const auto& child : node->children) Walk(child.get());
      return {};
    }
    switch (node->kind) {
      case PlanNode::Kind::kScan:
        return WalkScan(node);
      case PlanNode::Kind::kJoin:
        return WalkJoin(node);
      case PlanNode::Kind::kFilter:
        return WalkFilter(node);
      case PlanNode::Kind::kProject:
        return WalkProject(node);
      case PlanNode::Kind::kUnion:
        return WalkUnion(node);
      case PlanNode::Kind::kSort:
        return WalkSort(node);
      case PlanNode::Kind::kLimit:
        return Walk(node->children[0].get());  // pure row slice
      case PlanNode::Kind::kLeapfrog:
        return WalkLeapfrog(node);
    }
    return {};
  }

  /// PL5xx: the leapfrog triejoin invariants. The elimination order must be
  /// a duplicate-free cover of exactly the participating patterns'
  /// variables, and every pattern must have a trie access path among the
  /// six orderings (constants first, then its variables in elimination
  /// order) — impossible only when a variable repeats within a pattern.
  NodeFacts WalkLeapfrog(const PlanNode* node) {
    bool order_ok = true;
    if (node->leapfrog_order.empty()) {
      Error(RuleId::kLeapfrogOrderInvalid, node,
            "leapfrog join has an empty variable-elimination order");
      order_ok = false;
    }
    std::set<VarId> order_vars;
    for (VarId v : node->leapfrog_order) {
      if (!order_vars.insert(v).second) {
        Error(RuleId::kLeapfrogOrderInvalid, node,
              "elimination order lists " + NameOf(query_, v) + " twice");
        order_ok = false;
      }
    }

    std::set<VarId> pattern_vars;
    for (std::size_t idx : node->leapfrog_patterns) {
      if (idx >= query_.patterns.size()) {
        Error(RuleId::kPatternIndexOutOfRange, node,
              "leapfrog join references pattern tp" + std::to_string(idx) +
                  " but the query has " +
                  std::to_string(query_.patterns.size()) + " patterns");
        continue;
      }
      const TriplePattern& tp = query_.patterns[idx];
      std::vector<VarId> vars = tp.Variables();
      std::size_t var_positions = 0;
      for (rdf::Position pos : rdf::kAllPositions) {
        if (tp.at(pos).is_variable()) ++var_positions;
      }
      if (vars.size() < var_positions) {
        Error(RuleId::kLeapfrogNoAccessPath, node,
              "tp" + std::to_string(idx) +
                  " repeats a variable, so no ordering among the six sorts "
                  "its trie levels in elimination order");
      }
      for (VarId v : vars) {
        pattern_vars.insert(v);
        if (order_vars.count(v) == 0) {
          Error(RuleId::kLeapfrogVarNotCovered, node,
                "tp" + std::to_string(idx) + " binds " + NameOf(query_, v) +
                    ", which the elimination order does not cover");
        }
      }
    }
    for (VarId v : node->leapfrog_order) {
      if (pattern_vars.count(v) == 0) {
        Error(RuleId::kLeapfrogOrderVarUnused, node,
              "elimination order lists " + NameOf(query_, v) +
                  ", which no participating pattern mentions");
      }
    }

    // Output schema and sortedness, exactly as the executor emits them:
    // one column per elimination variable, rows lexicographically sorted
    // in elimination order.
    NodeFacts facts;
    facts.vars = node->leapfrog_order;
    if (order_ok) facts.sorted_by = node->leapfrog_order;
    return facts;
  }

  NodeFacts WalkScan(const PlanNode* node) {
    if (node->pattern_index >= query_.patterns.size()) {
      Error(RuleId::kPatternIndexOutOfRange, node,
            "scan references pattern tp" +
                std::to_string(node->pattern_index) + " but the query has " +
                std::to_string(query_.patterns.size()) + " patterns");
      return {};
    }
    const TriplePattern& tp = query_.patterns[node->pattern_index];
    const auto positions = storage::OrderingPositions(node->ordering);

    // Bound prefix: the access path is a binary-searched range only when
    // every constant of the pattern sorts before every variable.
    std::size_t k = 0;
    while (k < 3 && tp.at(positions[k]).is_constant()) ++k;
    for (std::size_t i = k; i < 3; ++i) {
      if (tp.at(positions[i]).is_constant()) {
        Error(RuleId::kScanBoundPrefix, node,
              "ordering " + std::string(storage::OrderingName(node->ordering)) +
                  " does not place the bound terms of tp" +
                  std::to_string(node->pattern_index) +
                  " as a prefix (constant at sort priority " +
                  std::to_string(i) + ")");
        break;
      }
    }

    // Output schema and sortedness, exactly as the executor derives them:
    // the pattern's distinct variables in ordering priority after the
    // bound prefix; that sequence is also the sort order.
    NodeFacts facts;
    for (std::size_t i = k; i < 3; ++i) {
      const sparql::PatternTerm& t = tp.at(positions[i]);
      if (t.is_variable() && !facts.Binds(t.var)) facts.vars.push_back(t.var);
    }
    facts.sorted_by = facts.vars;

    VarId derived =
        facts.vars.empty() ? sparql::kInvalidVarId : facts.vars.front();
    if (node->sort_var != derived) {
      Error(RuleId::kScanSortVar, node,
            "scan declares sort_var " + NameOf(query_, node->sort_var) +
                " but ordering " +
                std::string(storage::OrderingName(node->ordering)) +
                " sorts tp" + std::to_string(node->pattern_index) + " by " +
                NameOf(query_, derived));
    }
    return facts;
  }

  NodeFacts WalkJoin(const PlanNode* node) {
    NodeFacts left = Walk(node->children[0].get());
    NodeFacts right = Walk(node->children[1].get());

    if (node->left_outer && node->algo == JoinAlgo::kMerge) {
      Error(RuleId::kLeftOuterMergeJoin, node,
            "left outer joins are hash-only; the merge path cannot emit "
            "unmatched left rows");
    }

    const VarId var = node->join_var;
    if (var == sparql::kInvalidVarId) {
      if (node->algo == JoinAlgo::kMerge) {
        Error(RuleId::kMergeJoinNoVar, node,
              "merge join has no join variable (cartesian merge joins are "
              "impossible)");
      } else {
        // A declared cartesian product over subtrees that do share
        // variables is legal (the executor hash-joins all shared
        // variables) but almost certainly a planner mistake.
        for (VarId v : left.vars) {
          if (right.Binds(v)) {
            Emit(Severity::kWarning, RuleId::kCartesianSharesVars, node,
                 "join is declared cartesian but its inputs share " +
                     NameOf(query_, v));
            break;
          }
        }
      }
    } else {
      if (!left.Binds(var) || !right.Binds(var)) {
        Error(RuleId::kJoinVarUnboundSide, node,
              "join variable " + NameOf(query_, var) +
                  " is not bound by the " +
                  (left.Binds(var) ? "right" : "left") + " subtree");
      } else if (node->algo == JoinAlgo::kMerge) {
        if (!left.SortedBy(var)) {
          Error(RuleId::kMergeInputsUnsorted, node,
                "left input of merge join is not provably sorted on " +
                    NameOf(query_, var));
        }
        if (!right.SortedBy(var)) {
          Error(RuleId::kMergeInputsUnsorted, node,
                "right input of merge join is not provably sorted on " +
                    NameOf(query_, var));
        }
      }
    }

    NodeFacts facts;
    facts.vars = left.vars;
    for (VarId v : right.vars) {
      if (!facts.Binds(v)) facts.vars.push_back(v);
    }
    // Merge joins emit in key order; hash joins probe in left order (and
    // so does the cartesian loop), preserving the left sort prefix.
    if (node->algo == JoinAlgo::kMerge) {
      facts.sorted_by = {var};
    } else {
      facts.sorted_by = left.sorted_by;
    }
    return facts;
  }

  NodeFacts WalkFilter(const PlanNode* node) {
    NodeFacts facts = Walk(node->children[0].get());
    const sparql::Filter& f = node->filter;
    if (!facts.Binds(f.var)) {
      Error(RuleId::kFilterVarUnbound, node,
            "filter references " + NameOf(query_, f.var) +
                ", which the subtree does not bind");
    }
    if (f.rhs_var.has_value() && !facts.Binds(*f.rhs_var)) {
      Error(RuleId::kFilterVarUnbound, node,
            "filter references " + NameOf(query_, *f.rhs_var) +
                ", which the subtree does not bind");
    }
    return facts;  // filters preserve schema and row order
  }

  NodeFacts WalkProject(const PlanNode* node) {
    NodeFacts in = Walk(node->children[0].get());
    NodeFacts facts;
    facts.vars = node->projection;
    for (VarId v : node->projection) {
      if (!in.Binds(v)) {
        Error(RuleId::kProjectionVarUnbound, node,
              "projection references " + NameOf(query_, v) +
                  ", which the subtree does not bind");
      }
    }
    if (node->distinct) {
      // DISTINCT re-sorts rows lexicographically by the projected columns.
      facts.sorted_by = facts.vars;
    } else {
      // Sortedness survives as the longest projected prefix of the
      // child's sort order.
      for (VarId v : in.sorted_by) {
        if (!facts.Binds(v)) break;
        facts.sorted_by.push_back(v);
      }
    }
    return facts;
  }

  NodeFacts WalkUnion(const PlanNode* node) {
    NodeFacts facts;
    for (const auto& child : node->children) {
      NodeFacts branch = Walk(child.get());
      for (VarId v : branch.vars) {
        if (!facts.Binds(v)) facts.vars.push_back(v);
      }
    }
    // Branch concatenation destroys any order.
    return facts;
  }

  NodeFacts WalkSort(const PlanNode* node) {
    NodeFacts facts = Walk(node->children[0].get());
    for (const sparql::Query::OrderKey& key : node->order_keys) {
      if (!facts.Binds(key.var)) {
        Error(RuleId::kOrderByVarUnbound, node,
              "ORDER BY references " + NameOf(query_, key.var) +
                  ", which the subtree does not bind");
      }
    }
    // Rows are now in ORDER BY term order, which is not a TermId order:
    // no downstream operator may treat the output as variable-sorted.
    facts.sorted_by.clear();
    return facts;
  }

  const Query& query_;
  const LogicalPlan& plan_;
  LintReport report_;
  std::set<int> seen_ids_;
};

/// The PL4xx pack: checks that a plan is plausible Algorithm 1 output.
/// Every merge join must sit in a per-variable left-deep chain of scans
/// (the "merge-join block" of a chosen variable), chains must respect the
/// H1 scan order, and every scan's access path must be one Algorithm 2
/// could have assigned.
class HspPackLinter {
 public:
  HspPackLinter(const hsp::PlannedQuery& planned, bool h1_type_exception,
                LintReport* report)
      : query_(planned.query),
        h1_type_exception_(h1_type_exception),
        report_(report) {
    for (VarId v : planned.chosen_variables) chosen_.insert(v);
  }

  void Run(const PlanNode* root) {
    if (root != nullptr) Walk(root);
  }

 private:
  void Error(RuleId rule, const PlanNode* node, std::string message) {
    report_->diagnostics.push_back(Diagnostic{
        Severity::kError, rule, node == nullptr ? -1 : node->id,
        std::move(message)});
  }

  bool IsMergeOn(const PlanNode* node, VarId var) const {
    return node->kind == PlanNode::Kind::kJoin &&
           node->algo == JoinAlgo::kMerge && node->join_var == var;
  }

  /// A scan outside any merge chain: Algorithm 1 assigned it either no
  /// chosen variable (leftover) or a chosen variable whose block has a
  /// single pattern. Either way Algorithm 2 fixes the ordering.
  void CheckLooseScan(const PlanNode* scan) {
    if (scan->pattern_index >= query_.patterns.size()) return;  // PL004
    const TriplePattern& tp = query_.patterns[scan->pattern_index];
    std::vector<VarId> candidates;
    candidates.push_back(sparql::kInvalidVarId);
    for (VarId v : tp.Variables()) {
      if (chosen_.count(v) > 0) candidates.push_back(v);
    }
    for (VarId v : candidates) {
      if (hsp::AssignOrderedRelation(tp, v).ordering == scan->ordering) {
        return;
      }
    }
    Error(RuleId::kHspAccessPathMismatch, scan,
          "scan of tp" + std::to_string(scan->pattern_index) + " uses " +
              std::string(storage::OrderingName(scan->ordering)) +
              ", which Algorithm 2 cannot assign for any chosen variable "
              "of the pattern");
  }

  /// A scan inside the merge chain of chosen variable `var`.
  void CheckChainScan(const PlanNode* scan, VarId var) {
    if (scan->pattern_index >= query_.patterns.size()) return;  // PL004
    const TriplePattern& tp = query_.patterns[scan->pattern_index];
    storage::Ordering want = hsp::AssignOrderedRelation(tp, var).ordering;
    if (scan->ordering != want) {
      Error(RuleId::kHspAccessPathMismatch, scan,
            "scan of tp" + std::to_string(scan->pattern_index) +
                " in the merge block of " + NameOf(query_, var) + " uses " +
                std::string(storage::OrderingName(scan->ordering)) +
                ", but Algorithm 2 assigns " +
                std::string(storage::OrderingName(want)));
    }
  }

  /// Walks the left spine of the maximal merge chain rooted at `root` and
  /// checks shape (left-deep, scans only), H1 scan order, and Algorithm 2
  /// access paths. Returns after recursing into any non-chain subtrees.
  void WalkChain(const PlanNode* root) {
    const VarId var = root->join_var;
    if (var == sparql::kInvalidVarId) return;  // PL201 already fired
    if (chosen_.count(var) == 0) {
      Error(RuleId::kHspMergeVarNotChosen, root,
            "merge join on " + NameOf(query_, var) +
                ", which no MWIS round of Algorithm 1 chose");
    }

    // Collect the chain scans bottom-up: descend the left spine gathering
    // right children (top-down), then the leftmost leaf, then reverse.
    std::vector<const PlanNode*> rights_topdown;
    const PlanNode* cur = root;
    bool shape_ok = true;
    while (IsMergeOn(cur, var)) {
      const PlanNode* right = cur->children[1].get();
      if (right->kind == PlanNode::Kind::kScan) {
        rights_topdown.push_back(right);
      } else {
        Error(RuleId::kHspMergeChainShape, cur,
              "right input of a merge join must be a scan in Algorithm 1's "
              "left-deep merge blocks");
        shape_ok = false;
        Walk(right);
      }
      cur = cur->children[0].get();
    }
    std::vector<const PlanNode*> chain;
    if (cur->kind == PlanNode::Kind::kScan) {
      chain.push_back(cur);
    } else {
      Error(RuleId::kHspMergeChainShape, root,
            "leftmost input of the merge block of " + NameOf(query_, var) +
                " is not a scan");
      shape_ok = false;
      Walk(cur);
    }
    chain.insert(chain.end(), rights_topdown.rbegin(), rights_topdown.rend());

    for (const PlanNode* scan : chain) CheckChainScan(scan, var);

    if (shape_ok) {
      // HEURISTIC 1: scans join most-selective-first within a block.
      hsp::ScanOrderLess less{&query_, h1_type_exception_};
      for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        if (less(chain[i + 1]->pattern_index, chain[i]->pattern_index)) {
          Error(RuleId::kHspScanOrder, chain[i + 1],
                "merge block of " + NameOf(query_, var) + " joins tp" +
                    std::to_string(chain[i + 1]->pattern_index) +
                    " after tp" + std::to_string(chain[i]->pattern_index) +
                    ", violating the H1 scan order");
        }
      }
    }
  }

  void Walk(const PlanNode* node) {
    if (node->kind == PlanNode::Kind::kScan) {
      CheckLooseScan(node);
      return;
    }
    if (node->kind == PlanNode::Kind::kJoin &&
        node->algo == JoinAlgo::kMerge) {
      WalkChain(node);
      return;
    }
    for (const auto& child : node->children) Walk(child.get());
  }

  const Query& query_;
  bool h1_type_exception_;
  LintReport* report_;
  std::set<VarId> chosen_;
};

}  // namespace

LintReport LintPlan(const Query& query, const LogicalPlan& plan) {
  return Linter(query, plan).Run();
}

LintReport LintHspPlan(const hsp::PlannedQuery& planned,
                       bool h1_type_exception) {
  LintReport report = LintPlan(planned.query, planned.plan);
  HspPackLinter(planned, h1_type_exception, &report)
      .Run(planned.plan.root());
  return report;
}

}  // namespace hsparql::lint
