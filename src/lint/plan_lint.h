// PlanLint: static analysis of logical plans before execution.
//
// The paper's planner is *syntactic*: a plan is correct only because
// structural invariants hold — every merge join consumes inputs sorted on
// its join variable (the mapping M : TP -> (ordered relation, variable) of
// Algorithm 2), filters/projections/sorts only touch variables their
// subtree binds, and OPTIONAL attaches as a left outer *hash* join. The
// executor assumes all of this and treats violations as planner bugs. The
// linter proves the invariants on the plan tree instead of discovering
// them at run time: it propagates sortedness and bound-variable facts
// bottom-up through every operator (mirroring the executor's physical
// semantics exactly) and emits a typed diagnostic for each violated rule.
//
// Three hook points share this one vocabulary (see DESIGN.md §"PlanLint"):
//  * every planner re-checks its output in debug builds,
//  * the executor optionally lints at entry (ExecOptions::lint_plans) and
//    phrases its own runtime malformed-plan errors as lint rules, and
//  * the bench/example binaries expose a --lint flag.
#ifndef HSPARQL_LINT_PLAN_LINT_H_
#define HSPARQL_LINT_PLAN_LINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "hsp/hsp_planner.h"
#include "hsp/plan.h"
#include "sparql/ast.h"

namespace hsparql::lint {

/// How bad a diagnostic is. kError marks a plan the executor would reject
/// or answer incorrectly; kWarning marks a legal but suspicious shape
/// (e.g. a cartesian product whose inputs do share variables).
enum class Severity : std::uint8_t { kWarning, kError };

std::string_view SeverityName(Severity severity);  // "warning" / "error"

/// Every rule PlanLint can fire. Stable ids: PL0xx structure, PL1xx scans,
/// PL2xx joins, PL3xx variable binding, PL4xx the HSP-specific pack,
/// PL5xx the leapfrog (worst-case-optimal join) invariants.
/// The full catalog with one-line semantics lives in DESIGN.md.
enum class RuleId : std::uint8_t {
  // Structure -------------------------------------------------------------
  kNodeArity,               // PL001 wrong child count for the node kind
  kDuplicateNodeId,         // PL002 two nodes share an id
  kNodeIdUnassigned,        // PL003 id < 0 (AssignIds never ran)
  kPatternIndexOutOfRange,  // PL004 scan names a pattern the query lacks
  // Scans -----------------------------------------------------------------
  kScanBoundPrefix,    // PL101 bound terms are not a prefix of the ordering
  kScanSortVar,        // PL102 declared sort_var != ordering-derived one
  // Joins -----------------------------------------------------------------
  kMergeJoinNoVar,       // PL201 merge join without a join variable
  kJoinVarUnboundSide,   // PL202 join_var missing from a subtree's output
  kMergeInputsUnsorted,  // PL203 merge-join input not sorted on join_var
  kLeftOuterMergeJoin,   // PL204 left_outer on a merge join (hash only)
  kCartesianSharesVars,  // PL205 cartesian join over overlapping subtrees
  // Variable binding -------------------------------------------------------
  kFilterVarUnbound,      // PL301 filter references an unbound variable
  kProjectionVarUnbound,  // PL302 projection references an unbound variable
  kOrderByVarUnbound,     // PL303 sort key references an unbound variable
  // HSP pack (H1–H5 / Algorithm 1+2 preconditions) -------------------------
  kHspMergeVarNotChosen,   // PL401 merge join on a var MWIS never selected
  kHspMergeChainShape,     // PL402 merge block is not a left-deep scan chain
  kHspScanOrder,           // PL403 chain scans violate the H1 scan order
  kHspAccessPathMismatch,  // PL404 scan ordering not from Algorithm 2
  // Leapfrog (worst-case-optimal n-ary join) -------------------------------
  kLeapfrogOrderInvalid,   // PL501 elimination order empty or has duplicates
  kLeapfrogVarNotCovered,  // PL502 pattern variable missing from the order
  kLeapfrogNoAccessPath,   // PL503 pattern's trie access path is not one of
                           //       the six orderings (repeated variable)
  kLeapfrogOrderVarUnused,  // PL504 order variable no pattern mentions
};

/// Stable mnemonic, e.g. "merge-inputs-unsorted".
std::string_view RuleIdName(RuleId rule);
/// Stable code, e.g. "PL203".
std::string_view RuleIdCode(RuleId rule);

/// One finding. `node_id` is the offending PlanNode's id (-1 when the
/// node has none or the finding is plan-global).
struct Diagnostic {
  Severity severity = Severity::kError;
  RuleId rule_id = RuleId::kNodeArity;
  int node_id = -1;
  std::string message;

  /// "error PL203 [merge-inputs-unsorted] @3: left input of merge join..."
  std::string ToString() const;
};

/// All findings for one plan, in tree (pre-order) discovery order.
struct LintReport {
  std::vector<Diagnostic> diagnostics;

  /// True when no *error* diagnostics were produced (warnings allowed).
  bool ok() const;
  /// True when nothing at all fired.
  bool clean() const { return diagnostics.empty(); }
  int num_errors() const;
  bool Has(RuleId rule) const;
  /// One diagnostic per line; "" when clean.
  std::string ToString() const;
};

/// Rules every planner must satisfy (structure, scans, joins, bindings).
/// `query` is the *working* query the plan's pattern indices reference —
/// PlannedQuery::query, not the user's input (FILTER rewriting may have
/// changed patterns).
LintReport LintPlan(const sparql::Query& query, const hsp::LogicalPlan& plan);

/// LintPlan plus the PL4xx HSP pack: the plan must look like Algorithm 1
/// output for `planned.chosen_variables` — merge joins only on chosen
/// variables, per-variable left-deep scan chains in H1 order, and scan
/// access paths assignable by Algorithm 2. `h1_type_exception` mirrors
/// HspOptions::h1_type_exception (the rdf:type demotion in H1).
LintReport LintHspPlan(const hsp::PlannedQuery& planned,
                       bool h1_type_exception = true);

/// Folds a failed report into the Status vocabulary the executor returns
/// for malformed plans: Internal("plan-lint: <first error> (+N more)").
/// OK when the report has no errors.
Status ReportToStatus(const LintReport& report);

/// A single rule violation detected *at run time* (the executor's
/// malformed-plan checks), phrased identically to the static diagnostics
/// so both layers share one vocabulary.
Status RuntimeViolation(RuleId rule, int node_id, std::string detail);

}  // namespace hsparql::lint

#endif  // HSPARQL_LINT_PLAN_LINT_H_
