// Hybrid planner: HSP's structure, statistics where heuristics are blind.
//
// The paper's abstract proposes exactly this: the heuristics "can be used
// separately or complementary to each other, and also in traditional
// cost-based optimisers to create a hybrid planner", and §7 plans to
// "integrate our solution with the MonetDB run-time optimizer in order to
// handle queries such as large star joins for which our heuristics fail to
// produce near to optimal plans" (SP2a/SP2b/Y1/Y2 in the evaluation).
//
// The hybrid keeps Algorithm 1's skeleton — variable graph, maximum-weight
// independent sets, merge-join blocks, Algorithm 2 access paths — and
// replaces the three decisions the paper identifies as HSP's weak spots
// with statistics-backed ones:
//  1. ties between maximum-weight independent sets are broken by the
//     estimated total cardinality of the covered patterns (instead of
//     H3/H4/H2/H5);
//  2. scans inside a merge block are ordered by exact cardinality
//     (instead of HEURISTIC 1) — the join ordering CDP wins on for the
//     syntactically-similar stars;
//  3. blocks and leftovers are connected greedily by smallest estimated
//     join result (instead of block order + RandomChooseOne).
#ifndef HSPARQL_CDP_HYBRID_PLANNER_H_
#define HSPARQL_CDP_HYBRID_PLANNER_H_

#include "cdp/cardinality.h"
#include "common/result.h"
#include "hsp/hsp_planner.h"

namespace hsparql::cdp {

struct HybridOptions {
  bool rewrite_filters = true;  // inherits HSP's FILTER rewriting
  /// Arbitrate the finished binary tree against one worst-case-optimal
  /// leapfrog triejoin over the whole BGP, costed with the same model.
  bool use_leapfrog = false;
};

/// HSP + statistics. Covers the paper's conjunctive subset (like the
/// baselines; OPTIONAL/UNION stay with HspPlanner).
class HybridPlanner : public plan::Planner {
 public:
  HybridPlanner(const storage::TripleStore* store,
                const storage::Statistics* stats, HybridOptions options = {})
      : estimator_(store, stats), options_(options) {}

  Result<hsp::PlannedQuery> Plan(const sparql::Query& query) const;

  Result<hsp::PlannedQuery> Plan(
      const plan::AnalyzedQuery& query) const override {
    return Plan(query.query);
  }
  std::string_view Name() const override { return "hybrid"; }
  std::string OptionsFingerprint() const override {
    return std::string(options_.rewrite_filters ? "rw" : "norw") +
           (options_.use_leapfrog ? ";lf" : "");
  }

 private:
  CardinalityEstimator estimator_;
  HybridOptions options_;
};

}  // namespace hsparql::cdp

#endif  // HSPARQL_CDP_HYBRID_PLANNER_H_
