// Cardinality estimation for the cost-based baselines.
//
// Leaf (triple-pattern) cardinalities are *exact* — this is precisely what
// RDF-3X's aggregated and one-value indexes provide (§2). Join cardinality
// uses the classic independence assumption
//     |L ⋈v R| = |L| * |R| / max(d_L(v), d_R(v))
// over every shared variable, with distinct-value counts d(.) carried
// through the plan. The paper argues this is exactly where cost-based
// SPARQL optimisation is brittle (join-selection correlations); the CDP
// reproduction inherits that brittleness deliberately.
#ifndef HSPARQL_CDP_CARDINALITY_H_
#define HSPARQL_CDP_CARDINALITY_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "hsp/plan.h"
#include "sparql/ast.h"
#include "storage/statistics.h"
#include "storage/triple_store.h"

namespace hsparql::cdp {

/// Estimated size and per-variable distinct counts of a (sub)result.
struct Estimate {
  double rows = 0.0;
  std::unordered_map<sparql::VarId, double> distinct;

  double DistinctOf(sparql::VarId v) const {
    auto it = distinct.find(v);
    return it == distinct.end() ? rows : it->second;
  }
};

class CardinalityEstimator {
 public:
  CardinalityEstimator(const storage::TripleStore* store,
                       const storage::Statistics* stats)
      : store_(store), stats_(stats) {}

  /// Exact pattern cardinality plus estimated per-variable distincts.
  Estimate EstimatePattern(const sparql::Query& query,
                           std::size_t pattern_index) const;

  /// Independence-assumption join of two sub-results on `shared` variables.
  Estimate EstimateJoin(const Estimate& left, const Estimate& right,
                        std::span<const sparql::VarId> shared) const;

  /// Fills `cards[node->id]` for every node of `plan` bottom-up (joins use
  /// all shared variables of the subtrees' schemas; filters assume a
  /// pass-through of 0.9 for != and 0.1 for other comparisons).
  std::vector<std::uint64_t> EstimatePlanCardinalities(
      const sparql::Query& query, const hsp::LogicalPlan& plan) const;

 private:
  const storage::TripleStore* store_;
  const storage::Statistics* stats_;
};

}  // namespace hsparql::cdp

#endif  // HSPARQL_CDP_CARDINALITY_H_
