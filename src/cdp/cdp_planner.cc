#include "cdp/cdp_planner.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <iostream>
#include <map>
#include <numeric>

#include "cdp/cost_model.h"
#include "hsp/leapfrog.h"
#include "lint/plan_lint.h"
#include "sparql/rewrite.h"

namespace hsparql::cdp {

using hsp::JoinAlgo;
using hsp::PlanNode;
using sparql::Query;
using sparql::VarId;

namespace {

std::unique_ptr<PlanNode> ClonePlan(const PlanNode* node) {
  auto copy = std::make_unique<PlanNode>(node->kind);
  copy->pattern_index = node->pattern_index;
  copy->ordering = node->ordering;
  copy->sort_var = node->sort_var;
  copy->algo = node->algo;
  copy->join_var = node->join_var;
  copy->left_outer = node->left_outer;
  copy->filter = node->filter;
  copy->projection = node->projection;
  copy->distinct = node->distinct;
  copy->order_keys = node->order_keys;
  copy->limit_count = node->limit_count;
  copy->limit_offset = node->limit_offset;
  copy->leapfrog_order = node->leapfrog_order;
  copy->leapfrog_patterns = node->leapfrog_patterns;
  for (const auto& child : node->children) {
    copy->children.push_back(ClonePlan(child.get()));
  }
  return copy;
}

/// One Pareto entry of the DP table: the cheapest plan for a pattern set
/// whose output is sorted on `order`.
struct DpEntry {
  double cost = 0.0;
  Estimate est;
  VarId order = sparql::kInvalidVarId;
  std::unique_ptr<PlanNode> plan;
};

/// Cross products are permitted but heavily discouraged: their cost is the
/// hash-join constant plus the full output size (CDP in the paper refuses
/// them outright at compile time; see DESIGN.md).
double CartesianCost(double lc, double rc) {
  return 300000.0 + lc * rc;
}

}  // namespace

Result<hsp::PlannedQuery> CdpPlanner::Plan(const Query& input) const {
  if (input.patterns.empty()) {
    return Status::InvalidArgument("query has no triple patterns");
  }
  if (input.HasGraphPatternExtensions()) {
    return Status::Unsupported(
        "CDP covers the paper's conjunctive subset; OPTIONAL/UNION queries "
        "are planned by HspPlanner");
  }
  if (input.patterns.size() > options_.max_patterns) {
    return Status::Unsupported("CDP dynamic programming supports at most " +
                               std::to_string(options_.max_patterns) +
                               " triple patterns");
  }
  hsp::PlannedQuery out;
  out.query = input;
  if (options_.rewrite_filters) {
    out.rewrite_report = sparql::RewriteFilters(&out.query);
  }
  const Query& query = out.query;
  const std::size_t n = query.patterns.size();
  const std::uint32_t full = static_cast<std::uint32_t>((1u << n) - 1);

  // Variables present in each pattern subset.
  std::vector<std::vector<VarId>> mask_vars(full + 1);
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    std::uint32_t low = mask & (mask - 1);
    if (low == 0) {
      mask_vars[mask] = query
                            .patterns[static_cast<std::size_t>(
                                std::countr_zero(mask))]
                            .Variables();
      continue;
    }
    std::uint32_t bit = mask ^ low;
    mask_vars[mask] = mask_vars[low];
    for (VarId v : mask_vars[bit]) {
      if (std::find(mask_vars[mask].begin(), mask_vars[mask].end(), v) ==
          mask_vars[mask].end()) {
        mask_vars[mask].push_back(v);
      }
    }
  }

  std::vector<std::vector<DpEntry>> dp(full + 1);
  auto add_entry = [&](std::uint32_t mask, DpEntry entry) {
    for (DpEntry& existing : dp[mask]) {
      if (existing.order == entry.order) {
        if (entry.cost < existing.cost) existing = std::move(entry);
        return;
      }
    }
    dp[mask].push_back(std::move(entry));
  };

  // ---- Leaves: every access path (interesting order) per pattern. ----
  for (std::size_t i = 0; i < n; ++i) {
    const sparql::TriplePattern& tp = query.patterns[i];
    Estimate est = estimator_.EstimatePattern(query, i);
    std::vector<VarId> choices;  // kInvalidVarId = natural order first
    choices.push_back(sparql::kInvalidVarId);
    for (VarId v : tp.Variables()) choices.push_back(v);
    std::vector<storage::Ordering> seen;
    for (VarId v : choices) {
      hsp::OrderedRelationChoice c = hsp::AssignOrderedRelation(tp, v);
      if (std::find(seen.begin(), seen.end(), c.ordering) != seen.end()) {
        continue;
      }
      seen.push_back(c.ordering);
      DpEntry entry;
      entry.cost = 0.0;  // selection cost excluded (paper §6.2)
      entry.est = est;
      entry.order = c.sort_var;
      entry.plan = PlanNode::Scan(i, c.ordering, c.sort_var);
      add_entry(static_cast<std::uint32_t>(1u << i), std::move(entry));
    }
  }

  // ---- DP over subsets. ----
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    if (std::popcount(mask) < 2) continue;
    for (std::uint32_t sub = (mask - 1) & mask; sub != 0;
         sub = (sub - 1) & mask) {
      std::uint32_t rest = mask ^ sub;
      if (dp[sub].empty() || dp[rest].empty()) continue;
      // Shared variables between the two sides.
      std::vector<VarId> shared;
      for (VarId v : mask_vars[sub]) {
        if (std::find(mask_vars[rest].begin(), mask_vars[rest].end(), v) !=
            mask_vars[rest].end()) {
          shared.push_back(v);
        }
      }
      for (const DpEntry& l : dp[sub]) {
        for (const DpEntry& r : dp[rest]) {
          Estimate est = estimator_.EstimateJoin(l.est, r.est, shared);
          double base = l.cost + r.cost;
          if (shared.empty()) {
            DpEntry entry;
            entry.cost = base + CartesianCost(l.est.rows, r.est.rows);
            entry.est = est;
            entry.order = l.order;
            entry.plan =
                PlanNode::Join(JoinAlgo::kHash, sparql::kInvalidVarId,
                               ClonePlan(l.plan.get()),
                               ClonePlan(r.plan.get()));
            add_entry(mask, std::move(entry));
            continue;
          }
          // Merge join on a shared variable both sides are sorted on.
          for (VarId v : shared) {
            if (l.order != v || r.order != v) continue;
            DpEntry entry;
            entry.cost = base + MergeJoinCost(l.est.rows, r.est.rows);
            entry.est = est;
            entry.order = v;
            entry.plan =
                PlanNode::Join(JoinAlgo::kMerge, v, ClonePlan(l.plan.get()),
                               ClonePlan(r.plan.get()));
            add_entry(mask, std::move(entry));
          }
          // Hash join (equates every shared variable; preserves the left
          // input's order, matching the executor).
          DpEntry entry;
          entry.cost = base + HashJoinCost(l.est.rows, r.est.rows);
          entry.est = est;
          entry.order = l.order;
          entry.plan =
              PlanNode::Join(JoinAlgo::kHash, shared.front(),
                             ClonePlan(l.plan.get()), ClonePlan(r.plan.get()));
          add_entry(mask, std::move(entry));
        }
      }
    }
  }

  if (dp[full].empty()) {
    return Status::Internal("CDP produced no plan");  // unreachable
  }
  DpEntry* best = &dp[full][0];
  for (DpEntry& e : dp[full]) {
    if (e.cost < best->cost) best = &e;
  }

  std::unique_ptr<PlanNode> plan = std::move(best->plan);
  // Leapfrog alternative: price one worst-case-optimal n-ary join over the
  // whole BGP against the DP's best binary tree. The estimated output is
  // the same logical result, so best->est.rows prices both sides. Only
  // cyclic/star shapes are considered (LeapfrogFavorable) — on acyclic
  // queries leapfrog has no worst-case advantage, so cost-model noise
  // should not be able to route them away from the binary plan.
  if (options_.use_leapfrog && n >= 2) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    if (hsp::LeapfrogEligible(query, all) &&
        hsp::LeapfrogFavorable(query, all)) {
      std::vector<double> leaf_rows;
      leaf_rows.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        leaf_rows.push_back(estimator_.EstimatePattern(query, i).rows);
      }
      if (LeapfrogJoinCost(leaf_rows, best->est.rows) < best->cost) {
        std::vector<VarId> elim = hsp::LeapfrogEliminationOrder(query, all);
        plan = PlanNode::Leapfrog(std::move(elim), std::move(all));
      }
    }
  }
  for (const sparql::Filter& f : query.filters) {
    plan = PlanNode::Filter(f, std::move(plan));
  }
  std::vector<VarId> projection =
      query.select_all ? mask_vars[full] : query.projection;
  plan = PlanNode::Project(std::move(projection), query.distinct,
                           std::move(plan));
  plan = hsp::AttachSolutionModifiers(query, std::move(plan));
  out.plan = hsp::LogicalPlan(std::move(plan));
#ifndef NDEBUG
  // Debug builds statically verify every emitted plan (src/lint/).
  if (lint::LintReport report = lint::LintPlan(out.query, out.plan);
      !report.clean()) {
    std::cerr << "CdpPlanner emitted a plan failing PlanLint:\n"
              << report.ToString();
    assert(false && "CdpPlanner emitted a plan failing PlanLint");
  }
#endif
  return out;
}

}  // namespace hsparql::cdp
