// The "MonetDB/SQL" baseline: a relational optimizer that only considers
// left-deep trees (§6.2.1, last paragraph).
//
// Faithful to the paper's SQL translation:
//  * each triple pattern is evaluated on the ordered relation that (a) puts
//    its constants first so selections use binary search (HEURISTIC 1's
//    access-path rule) and (b) sorts, among the pattern's variables, the
//    one with the most occurrences in the whole query;
//  * join order is cost-based (the underlying SQL optimizer's job) but the
//    search space is restricted to left-deep trees with base-relation right
//    children;
//  * equality FILTERs are folded into the patterns — predicate pushdown is
//    table stakes for a SQL optimizer.
#ifndef HSPARQL_CDP_LEFTDEEP_PLANNER_H_
#define HSPARQL_CDP_LEFTDEEP_PLANNER_H_

#include "cdp/cardinality.h"
#include "common/result.h"
#include "hsp/hsp_planner.h"
#include "sparql/ast.h"

namespace hsparql::cdp {

struct LeftDeepOptions {
  bool rewrite_filters = true;  // SQL predicate pushdown
  std::size_t max_patterns = 16;
};

/// Left-deep-only cost-based planner.
class LeftDeepPlanner : public plan::Planner {
 public:
  LeftDeepPlanner(const storage::TripleStore* store,
                  const storage::Statistics* stats,
                  LeftDeepOptions options = {})
      : estimator_(store, stats), options_(options) {}

  Result<hsp::PlannedQuery> Plan(const sparql::Query& query) const;

  Result<hsp::PlannedQuery> Plan(
      const plan::AnalyzedQuery& query) const override {
    return Plan(query.query);
  }
  std::string_view Name() const override { return "sql"; }
  std::string OptionsFingerprint() const override {
    return std::string(options_.rewrite_filters ? "rw" : "norw") + ";max=" +
           std::to_string(options_.max_patterns);
  }

 private:
  CardinalityEstimator estimator_;
  LeftDeepOptions options_;
};

}  // namespace hsparql::cdp

#endif  // HSPARQL_CDP_LEFTDEEP_PLANNER_H_
