// Characteristic-sets cardinality estimation (Neumann & Moerkotte, ICDE
// 2011 — the paper's reference [21], named in §2 as the technique that
// "could be used to enhance existing SQL optimizers for supporting
// efficient SPARQL processing").
//
// A subject's *characteristic set* is the set of predicates it carries.
// Star queries (multiple patterns sharing a subject variable, predicates
// bound) are estimated exactly from the histogram of characteristic sets:
//
//   |star(p1..pk)| = Σ_{S ⊇ {p1..pk}} count(S) · Π_i occ(S, pi)/count(S)
//
// where count(S) is the number of subjects with characteristic set S and
// occ(S, p) the total number of p-triples those subjects carry (capturing
// multi-valued predicates). Bound objects scale the estimate by the
// per-predicate selectivity count(p, o)/count(p). This removes exactly
// the correlation blindness the paper blames for cost-based SPARQL
// optimisation being brittle (§1).
#ifndef HSPARQL_CDP_CHAR_SETS_H_
#define HSPARQL_CDP_CHAR_SETS_H_

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sparql/ast.h"
#include "storage/triple_store.h"

namespace hsparql::cdp {

/// Characteristic-sets histogram of a dataset.
class CharacteristicSets {
 public:
  /// One pass over the spo relation.
  static CharacteristicSets Compute(const storage::TripleStore& store);

  /// Number of distinct characteristic sets.
  std::size_t num_sets() const { return sets_.size(); }

  /// Estimated cardinality of the subject star over the given pattern
  /// indices of `query`. Requires: every pattern has a bound predicate
  /// (resolvable against the store's dictionary), all patterns share the
  /// same subject variable, and the subject occurs only at the subject
  /// position. Returns nullopt if the shape does not qualify.
  std::optional<double> EstimateStar(
      const sparql::Query& query,
      const std::vector<std::size_t>& pattern_indices) const;

  /// Distinct subjects whose characteristic set contains all predicates.
  std::uint64_t SubjectsWithAll(const std::vector<rdf::TermId>& preds) const;

 private:
  struct SetStats {
    std::vector<rdf::TermId> predicates;  // sorted
    std::uint64_t subject_count = 0;
    // Parallel to predicates: total triples with that predicate among the
    // set's subjects.
    std::vector<std::uint64_t> occurrences;
  };

  CharacteristicSets() = default;

  const storage::TripleStore* store_ = nullptr;
  std::vector<SetStats> sets_;
};

}  // namespace hsparql::cdp

#endif  // HSPARQL_CDP_CHAR_SETS_H_
