#include "cdp/cardinality.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace hsparql::cdp {

using rdf::Position;
using sparql::Query;
using sparql::TriplePattern;
using sparql::VarId;
using storage::Binding;

Estimate CardinalityEstimator::EstimatePattern(
    const Query& query, std::size_t pattern_index) const {
  const TriplePattern& tp = query.patterns[pattern_index];
  const rdf::Dictionary& dict = store_->dictionary();

  std::vector<Binding> bindings;
  bool impossible = false;
  for (Position pos : rdf::kAllPositions) {
    const sparql::PatternTerm& t = tp.at(pos);
    if (!t.is_constant()) continue;
    auto id = dict.Find(t.constant);
    if (!id.has_value()) {
      impossible = true;
      break;
    }
    bindings.push_back(Binding{pos, *id});
  }

  Estimate est;
  if (impossible) {
    for (VarId v : tp.Variables()) est.distinct[v] = 0.0;
    return est;
  }
  est.rows = static_cast<double>(stats_->ExactCount(bindings));
  for (VarId v : tp.Variables()) {
    // A repeated variable in one pattern uses its first position.
    Position pos = tp.PositionsOf(v).front();
    est.distinct[v] =
        static_cast<double>(stats_->EstimateDistinct(bindings, pos));
  }
  return est;
}

Estimate CardinalityEstimator::EstimateJoin(
    const Estimate& left, const Estimate& right,
    std::span<const VarId> shared) const {
  Estimate out;
  out.rows = left.rows * right.rows;
  for (VarId v : shared) {
    double d = std::max(left.DistinctOf(v), right.DistinctOf(v));
    if (d > 0.0) out.rows /= d;
  }
  if (left.rows == 0.0 || right.rows == 0.0) out.rows = 0.0;
  // Carry distincts, capped by the output size.
  auto carry = [&](const Estimate& side) {
    for (const auto& [v, d] : side.distinct) {
      double capped = std::min(d, out.rows);
      auto it = out.distinct.find(v);
      if (it == out.distinct.end()) {
        out.distinct[v] = capped;
      } else {
        it->second = std::min(it->second, capped);
      }
    }
  };
  carry(left);
  carry(right);
  return out;
}

std::vector<std::uint64_t> CardinalityEstimator::EstimatePlanCardinalities(
    const Query& query, const hsp::LogicalPlan& plan) const {
  std::vector<std::uint64_t> cards(
      static_cast<std::size_t>(plan.num_nodes()), 0);

  // Bottom-up walk returning (estimate, schema vars).
  std::function<std::pair<Estimate, std::vector<VarId>>(
      const hsp::PlanNode*)>
      walk = [&](const hsp::PlanNode* node)
      -> std::pair<Estimate, std::vector<VarId>> {
    std::pair<Estimate, std::vector<VarId>> result;
    switch (node->kind) {
      case hsp::PlanNode::Kind::kScan: {
        result.first = EstimatePattern(query, node->pattern_index);
        result.second = query.patterns[node->pattern_index].Variables();
        break;
      }
      case hsp::PlanNode::Kind::kJoin: {
        auto left = walk(node->children[0].get());
        auto right = walk(node->children[1].get());
        std::vector<VarId> shared;
        for (VarId v : left.second) {
          if (std::find(right.second.begin(), right.second.end(), v) !=
              right.second.end()) {
            shared.push_back(v);
          }
        }
        result.first = EstimateJoin(left.first, right.first, shared);
        result.second = left.second;
        for (VarId v : right.second) {
          if (std::find(result.second.begin(), result.second.end(), v) ==
              result.second.end()) {
            result.second.push_back(v);
          }
        }
        break;
      }
      case hsp::PlanNode::Kind::kFilter: {
        auto child = walk(node->children[0].get());
        result = child;
        double selectivity =
            node->filter.op == sparql::FilterOp::kNe ? 0.9 : 0.1;
        result.first.rows *= selectivity;
        for (auto& [v, d] : result.first.distinct) {
          d = std::min(d, result.first.rows);
        }
        break;
      }
      case hsp::PlanNode::Kind::kProject: {
        result = walk(node->children[0].get());
        break;
      }
      case hsp::PlanNode::Kind::kSort: {
        result = walk(node->children[0].get());
        break;
      }
      case hsp::PlanNode::Kind::kLimit: {
        result = walk(node->children[0].get());
        result.first.rows = std::min(
            result.first.rows, static_cast<double>(node->limit_count));
        break;
      }
      case hsp::PlanNode::Kind::kLeapfrog: {
        // The n-ary intersection produces the same logical result as the
        // equivalent binary join tree: fold the pairwise join estimate
        // over the participating patterns in listed order.
        bool first = true;
        for (std::size_t idx : node->leapfrog_patterns) {
          Estimate est = EstimatePattern(query, idx);
          std::vector<VarId> vars = query.patterns[idx].Variables();
          if (first) {
            result.first = std::move(est);
            result.second = std::move(vars);
            first = false;
            continue;
          }
          std::vector<VarId> shared;
          for (VarId v : vars) {
            if (std::find(result.second.begin(), result.second.end(), v) !=
                result.second.end()) {
              shared.push_back(v);
            }
          }
          result.first = EstimateJoin(result.first, est, shared);
          for (VarId v : vars) {
            if (std::find(result.second.begin(), result.second.end(), v) ==
                result.second.end()) {
              result.second.push_back(v);
            }
          }
        }
        break;
      }
      case hsp::PlanNode::Kind::kUnion: {
        // Bag union: rows add up, schemas merge, distincts upper-bounded
        // by the sums.
        for (const auto& child : node->children) {
          auto branch = walk(child.get());
          result.first.rows += branch.first.rows;
          for (const auto& [v, d] : branch.first.distinct) {
            result.first.distinct[v] += d;
          }
          for (VarId v : branch.second) {
            if (std::find(result.second.begin(), result.second.end(), v) ==
                result.second.end()) {
              result.second.push_back(v);
            }
          }
        }
        break;
      }
    }
    if (node->id >= 0 &&
        static_cast<std::size_t>(node->id) < cards.size()) {
      cards[static_cast<std::size_t>(node->id)] =
          static_cast<std::uint64_t>(std::llround(result.first.rows));
    }
    return result;
  };
  if (plan.root() != nullptr) walk(plan.root());
  return cards;
}

}  // namespace hsparql::cdp
