// CDP: the cost-based dynamic-programming planner of RDF-3X (§2, §6),
// reimplemented as the paper's comparison baseline.
//
// Exhaustive DP over connected sub-queries, bushy trees, interesting-order
// tracking (a sub-plan is keyed by the variable its output is sorted on),
// merge joins whenever both inputs arrive sorted on the join variable and
// hash joins otherwise, all costed with the published RDF-3X cost model
// over statistics-backed cardinality estimates. Unlike HSP, CDP does NOT
// rewrite FILTERs into patterns (§6.2.1) — filters are applied post-join.
#ifndef HSPARQL_CDP_CDP_PLANNER_H_
#define HSPARQL_CDP_CDP_PLANNER_H_

#include "cdp/cardinality.h"
#include "common/result.h"
#include "hsp/hsp_planner.h"
#include "hsp/plan.h"
#include "sparql/ast.h"

namespace hsparql::cdp {

struct CdpOptions {
  /// Paper-faithful default: CDP keeps FILTERs as post-join predicates.
  bool rewrite_filters = false;
  /// Maximum number of triple patterns the exhaustive DP accepts.
  std::size_t max_patterns = 16;
  /// Price a worst-case-optimal leapfrog triejoin over the whole BGP
  /// against the best binary tree and pick the cheaper (cdp/cost_model.h).
  /// Off by default: the paper's CDP knows only merge and hash joins.
  bool use_leapfrog = false;
};

/// Cost-based dynamic programming planner. Requires dataset statistics.
class CdpPlanner : public plan::Planner {
 public:
  CdpPlanner(const storage::TripleStore* store,
             const storage::Statistics* stats, CdpOptions options = {})
      : estimator_(store, stats), options_(options) {}

  /// Plans `query`; fails for empty queries or > max_patterns patterns.
  Result<hsp::PlannedQuery> Plan(const sparql::Query& query) const;

  Result<hsp::PlannedQuery> Plan(
      const plan::AnalyzedQuery& query) const override {
    return Plan(query.query);
  }
  std::string_view Name() const override { return "cdp"; }
  std::string OptionsFingerprint() const override {
    return std::string(options_.rewrite_filters ? "rw" : "norw") + ";max=" +
           std::to_string(options_.max_patterns) +
           (options_.use_leapfrog ? ";lf" : "");
  }

  const CardinalityEstimator& estimator() const { return estimator_; }

 private:
  CardinalityEstimator estimator_;
  CdpOptions options_;
};

}  // namespace hsparql::cdp

#endif  // HSPARQL_CDP_CDP_PLANNER_H_
