// The RDF-3X cost model as printed in §6.2 of the paper:
//
//   cost_mergejoin(lc, rc) = (lc + rc) / 100,000
//   cost_hashjoin(lc, rc)  = 300,000 + lc/100 + rc/10
//
// where lc and rc are the input cardinalities and, for the hash join, lc is
// the smaller of the two (the build side). Selection cost is excluded: "the
// selection cost is asymptotically the same in both systems" (binary search
// vs B+-tree descent), so plan comparison — and Table 3 — counts joins only.
#ifndef HSPARQL_CDP_COST_MODEL_H_
#define HSPARQL_CDP_COST_MODEL_H_

#include <cstdint>
#include <span>
#include <string>

#include "hsp/plan.h"

namespace hsparql::cdp {

/// Merge-join cost for input cardinalities `lc`, `rc`.
double MergeJoinCost(double lc, double rc);

/// Hash-join cost; the smaller input is treated as the build side.
double HashJoinCost(double lc, double rc);

/// Leapfrog (worst-case-optimal n-ary) join cost in the same currency:
/// one galloping pass over every input relation plus the output rows. The
/// 1.5 factor prices the seek overhead relative to a merge join's linear
/// scan — leapfrog wins when a binary tree's intermediates dwarf its
/// inputs (cyclic/star shapes) and loses on cheap selective chains.
double LeapfrogJoinCost(std::span<const double> input_rows,
                        double output_rows);

/// Aggregate cost of a plan, split the way Table 3 reports it
/// ("merge-join cost + hash-join cost", e.g. "354+953,381").
struct PlanCost {
  double merge = 0.0;
  double hash = 0.0;

  double total() const { return merge + hash; }
  /// "329+302,577" when hash joins exist, "487" otherwise.
  std::string ToString() const;
};

/// Costs every join of `plan` with the paper's formulas, reading each
/// child's output cardinality from `cardinalities` (indexed by node id —
/// either estimates or measured ExecResult::cardinalities).
PlanCost ComputePlanCost(const hsp::LogicalPlan& plan,
                         std::span<const std::uint64_t> cardinalities);

}  // namespace hsparql::cdp

#endif  // HSPARQL_CDP_COST_MODEL_H_
