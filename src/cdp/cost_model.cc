#include "cdp/cost_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace hsparql::cdp {

double MergeJoinCost(double lc, double rc) { return (lc + rc) / 100000.0; }

double HashJoinCost(double lc, double rc) {
  if (lc > rc) std::swap(lc, rc);  // lc is the (smaller) build side
  return 300000.0 + lc / 100.0 + rc / 10.0;
}

double LeapfrogJoinCost(std::span<const double> input_rows,
                        double output_rows) {
  double total = 0.0;
  for (double rows : input_rows) total += rows;
  return (1.5 * total + output_rows) / 100000.0;
}

std::string PlanCost::ToString() const {
  auto fmt = [](double v) {
    std::uint64_t rounded = static_cast<std::uint64_t>(std::llround(v));
    if (v < 10.0 && v != std::floor(v)) {
      std::ostringstream os;
      os.precision(2);
      os << v;
      return os.str();
    }
    return FormatCount(rounded);
  };
  if (hash == 0.0) return fmt(merge);
  return fmt(merge) + "+" + fmt(hash);
}

namespace {

void Walk(const hsp::PlanNode* node,
          std::span<const std::uint64_t> cards, PlanCost* cost) {
  if (node == nullptr) return;
  if (node->kind == hsp::PlanNode::Kind::kJoin) {
    auto card_of = [&](const hsp::PlanNode* n) -> double {
      if (n->id >= 0 && static_cast<std::size_t>(n->id) < cards.size()) {
        return static_cast<double>(cards[static_cast<std::size_t>(n->id)]);
      }
      return 0.0;
    };
    double lc = card_of(node->children[0].get());
    double rc = card_of(node->children[1].get());
    if (node->algo == hsp::JoinAlgo::kMerge) {
      cost->merge += MergeJoinCost(lc, rc);
    } else {
      cost->hash += HashJoinCost(lc, rc);
    }
  }
  for (const auto& child : node->children) Walk(child.get(), cards, cost);
}

}  // namespace

PlanCost ComputePlanCost(const hsp::LogicalPlan& plan,
                         std::span<const std::uint64_t> cardinalities) {
  PlanCost cost;
  Walk(plan.root(), cardinalities, &cost);
  return cost;
}

}  // namespace hsparql::cdp
