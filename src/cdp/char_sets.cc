#include "cdp/char_sets.h"

#include <algorithm>

namespace hsparql::cdp {

using rdf::Position;
using rdf::TermId;
using rdf::Triple;
using storage::Binding;
using storage::Ordering;

CharacteristicSets CharacteristicSets::Compute(
    const storage::TripleStore& store) {
  CharacteristicSets cs;
  cs.store_ = &store;

  // spo order groups triples by subject; collect each subject's predicate
  // multiset, then aggregate identical predicate sets.
  struct Key {
    std::vector<TermId> predicates;
    bool operator<(const Key& other) const {
      return predicates < other.predicates;
    }
  };
  std::map<Key, SetStats> aggregate;

  auto flush = [&](const std::vector<std::pair<TermId, std::uint64_t>>&
                       pred_counts) {
    if (pred_counts.empty()) return;
    Key key;
    for (const auto& [p, n] : pred_counts) key.predicates.push_back(p);
    SetStats& stats = aggregate[key];
    if (stats.predicates.empty()) {
      stats.predicates = key.predicates;
      stats.occurrences.assign(key.predicates.size(), 0);
    }
    ++stats.subject_count;
    for (std::size_t i = 0; i < pred_counts.size(); ++i) {
      stats.occurrences[i] += pred_counts[i].second;
    }
  };

  std::vector<std::pair<TermId, std::uint64_t>> current;  // sorted by pred
  TermId current_subject = rdf::kInvalidTermId;
  for (const Triple& t : store.Scan(Ordering::kSpo)) {
    if (t.s != current_subject) {
      flush(current);
      current.clear();
      current_subject = t.s;
    }
    // spo order also sorts predicates within a subject.
    if (!current.empty() && current.back().first == t.p) {
      ++current.back().second;
    } else {
      current.emplace_back(t.p, 1);
    }
  }
  flush(current);

  cs.sets_.reserve(aggregate.size());
  for (auto& [key, stats] : aggregate) {
    cs.sets_.push_back(std::move(stats));
  }
  return cs;
}

std::uint64_t CharacteristicSets::SubjectsWithAll(
    const std::vector<TermId>& preds) const {
  std::uint64_t total = 0;
  for (const SetStats& s : sets_) {
    bool all = true;
    for (TermId p : preds) {
      if (!std::binary_search(s.predicates.begin(), s.predicates.end(), p)) {
        all = false;
        break;
      }
    }
    if (all) total += s.subject_count;
  }
  return total;
}

std::optional<double> CharacteristicSets::EstimateStar(
    const sparql::Query& query,
    const std::vector<std::size_t>& pattern_indices) const {
  if (pattern_indices.empty()) return std::nullopt;
  const rdf::Dictionary& dict = store_->dictionary();

  // Validate the star shape and resolve predicates/objects.
  sparql::VarId subject = sparql::kInvalidVarId;
  std::vector<TermId> preds;
  std::vector<std::optional<TermId>> objects;  // bound object per pattern
  for (std::size_t idx : pattern_indices) {
    const sparql::TriplePattern& tp = query.patterns[idx];
    if (!tp.s.is_variable() || !tp.p.is_constant()) return std::nullopt;
    if (subject == sparql::kInvalidVarId) {
      subject = tp.s.var;
    } else if (tp.s.var != subject) {
      return std::nullopt;
    }
    if (tp.o.is_variable() && tp.o.var == subject) return std::nullopt;
    auto pid = dict.Find(tp.p.constant);
    if (!pid.has_value()) return 0.0;  // predicate absent: empty star
    preds.push_back(*pid);
    if (tp.o.is_constant()) {
      auto oid = dict.Find(tp.o.constant);
      if (!oid.has_value()) return 0.0;
      objects.push_back(oid);
    } else {
      objects.push_back(std::nullopt);
    }
  }

  // Core formula over supersets.
  double estimate = 0.0;
  for (const SetStats& s : sets_) {
    double contribution = static_cast<double>(s.subject_count);
    bool qualifies = true;
    for (TermId p : preds) {
      auto it = std::lower_bound(s.predicates.begin(), s.predicates.end(), p);
      if (it == s.predicates.end() || *it != p) {
        qualifies = false;
        break;
      }
      std::size_t pos = static_cast<std::size_t>(it - s.predicates.begin());
      contribution *= static_cast<double>(s.occurrences[pos]) /
                      static_cast<double>(s.subject_count);
    }
    if (qualifies) estimate += contribution;
  }

  // Bound objects scale by per-predicate value selectivity.
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (!objects[i].has_value()) continue;
    Binding pb{Position::kPredicate, preds[i]};
    std::uint64_t p_total = store_->CountMatching({&pb, 1});
    if (p_total == 0) return 0.0;
    std::array<Binding, 2> po = {
        Binding{Position::kPredicate, preds[i]},
        Binding{Position::kObject, *objects[i]}};
    std::uint64_t po_total = store_->CountMatching(po);
    estimate *= static_cast<double>(po_total) / static_cast<double>(p_total);
  }
  return estimate;
}

}  // namespace hsparql::cdp
