#include "cdp/hybrid_planner.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <iostream>
#include <limits>
#include <numeric>

#include "cdp/cost_model.h"
#include "hsp/leapfrog.h"
#include "hsp/mwis.h"
#include "hsp/variable_graph.h"
#include "lint/plan_lint.h"
#include "sparql/rewrite.h"

namespace hsparql::cdp {

using hsp::JoinAlgo;
using hsp::PlanNode;
using sparql::Query;
using sparql::TriplePattern;
using sparql::VarId;

namespace {

void CollectVars(const Query& query, const PlanNode* node,
                 std::vector<VarId>* out) {
  if (node->kind == PlanNode::Kind::kScan) {
    for (VarId v : query.patterns[node->pattern_index].Variables()) {
      if (std::find(out->begin(), out->end(), v) == out->end()) {
        out->push_back(v);
      }
    }
  }
  if (node->kind == PlanNode::Kind::kLeapfrog) {
    for (VarId v : node->leapfrog_order) {
      if (std::find(out->begin(), out->end(), v) == out->end()) {
        out->push_back(v);
      }
    }
  }
  for (const auto& child : node->children) {
    CollectVars(query, child.get(), out);
  }
}

}  // namespace

Result<hsp::PlannedQuery> HybridPlanner::Plan(const Query& input) const {
  if (input.patterns.empty()) {
    return Status::InvalidArgument("query has no triple patterns");
  }
  if (input.HasGraphPatternExtensions()) {
    return Status::Unsupported(
        "the hybrid planner covers the paper's conjunctive subset; "
        "OPTIONAL/UNION queries are planned by HspPlanner");
  }
  hsp::PlannedQuery out;
  out.query = input;
  if (options_.rewrite_filters) {
    out.rewrite_report = sparql::RewriteFilters(&out.query);
  }
  const Query& query = out.query;

  // Per-pattern exact cardinalities (aggregated-index lookups).
  std::vector<Estimate> leaf_est(query.patterns.size());
  for (std::size_t i = 0; i < query.patterns.size(); ++i) {
    leaf_est[i] = estimator_.EstimatePattern(query, i);
  }

  // ---- Phase 1: merge-join variables via MWIS; statistics break ties.
  std::vector<std::size_t> remaining(query.patterns.size());
  std::iota(remaining.begin(), remaining.end(), 0);
  std::vector<hsp::CandidateSet> chosen;
  while (!remaining.empty()) {
    hsp::VariableGraph graph = hsp::VariableGraph::Build(query, remaining);
    if (graph.num_nodes() == 0) break;
    hsp::MwisResult mwis = hsp::AllMaximumWeightIndependentSets(graph);

    hsp::CandidateSet best;
    double best_cardinality = std::numeric_limits<double>::max();
    for (const auto& node_set : mwis.sets) {
      hsp::CandidateSet cs;
      for (std::size_t node_idx : node_set) {
        cs.vars.push_back(graph.node(node_idx).var);
      }
      std::sort(cs.vars.begin(), cs.vars.end());
      double total = 0.0;
      for (std::size_t idx : remaining) {
        for (VarId v : cs.vars) {
          if (query.patterns[idx].Mentions(v)) {
            cs.covered.push_back(idx);
            total += leaf_est[idx].rows;
            break;
          }
        }
      }
      // Merge joins absorb the heaviest patterns: maximise covered rows.
      double score = -total;
      if (score < best_cardinality) {
        best_cardinality = score;
        best = std::move(cs);
      }
    }
    std::vector<std::size_t> next;
    for (std::size_t idx : remaining) {
      if (std::find(best.covered.begin(), best.covered.end(), idx) ==
          best.covered.end()) {
        next.push_back(idx);
      }
    }
    remaining = std::move(next);
    for (VarId v : best.vars) out.chosen_variables.push_back(v);
    chosen.push_back(std::move(best));
  }

  // ---- Phase 2: Algorithm 2 access paths; blocks ordered by cardinality.
  struct Assignment {
    storage::Ordering ordering = storage::Ordering::kSpo;
    VarId var = sparql::kInvalidVarId;
    bool assigned = false;
  };
  std::vector<Assignment> mapping(query.patterns.size());
  for (const hsp::CandidateSet& set : chosen) {
    for (VarId c : set.vars) {
      for (std::size_t idx = 0; idx < query.patterns.size(); ++idx) {
        if (mapping[idx].assigned || !query.patterns[idx].Mentions(c)) {
          continue;
        }
        hsp::OrderedRelationChoice choice =
            hsp::AssignOrderedRelation(query.patterns[idx], c);
        mapping[idx] = Assignment{choice.ordering, c, true};
      }
    }
  }
  for (std::size_t idx = 0; idx < query.patterns.size(); ++idx) {
    if (mapping[idx].assigned) continue;
    hsp::OrderedRelationChoice choice =
        hsp::AssignOrderedRelation(query.patterns[idx], sparql::kInvalidVarId);
    mapping[idx] = Assignment{choice.ordering, sparql::kInvalidVarId, true};
    mapping[idx].var = sparql::kInvalidVarId;
  }

  auto make_scan = [&](std::size_t idx) {
    VarId sort_var =
        hsp::AssignOrderedRelation(query.patterns[idx], mapping[idx].var)
            .sort_var;
    return PlanNode::Scan(idx, mapping[idx].ordering, sort_var);
  };

  // Each part carries its estimate so phase 3 can order joins.
  struct Part {
    std::unique_ptr<PlanNode> plan;
    Estimate est;
  };
  std::vector<Part> parts;
  for (const hsp::CandidateSet& set : chosen) {
    for (VarId c : set.vars) {
      std::vector<std::size_t> block;
      for (std::size_t idx = 0; idx < query.patterns.size(); ++idx) {
        if (mapping[idx].var == c) block.push_back(idx);
      }
      if (block.empty()) continue;
      // Cardinality-ascending scan order: the statistics-backed version
      // of the H1 ordering.
      std::sort(block.begin(), block.end(), [&](std::size_t a, std::size_t b) {
        if (leaf_est[a].rows != leaf_est[b].rows) {
          return leaf_est[a].rows < leaf_est[b].rows;
        }
        return a < b;
      });
      Part part{make_scan(block[0]), leaf_est[block[0]]};
      for (std::size_t i = 1; i < block.size(); ++i) {
        std::array<VarId, 1> shared = {c};
        part.est = estimator_.EstimateJoin(part.est, leaf_est[block[i]],
                                           shared);
        part.plan = PlanNode::Join(JoinAlgo::kMerge, c, std::move(part.plan),
                                   make_scan(block[i]));
      }
      parts.push_back(std::move(part));
    }
  }
  for (std::size_t idx = 0; idx < query.patterns.size(); ++idx) {
    if (mapping[idx].var == sparql::kInvalidVarId) {
      parts.push_back(Part{make_scan(idx), leaf_est[idx]});
    }
  }

  // ---- Phase 3: greedy smallest-estimated-result hash joins.
  // Start from the smallest part; repeatedly attach the connected pending
  // part minimising the estimated join output.
  std::size_t start = 0;
  for (std::size_t i = 1; i < parts.size(); ++i) {
    if (parts[i].est.rows < parts[start].est.rows) start = i;
  }
  Part current = std::move(parts[start]);
  parts.erase(parts.begin() + static_cast<std::ptrdiff_t>(start));
  while (!parts.empty()) {
    std::vector<VarId> current_vars;
    CollectVars(query, current.plan.get(), &current_vars);
    std::size_t best_i = SIZE_MAX;
    double best_rows = std::numeric_limits<double>::max();
    Estimate best_est;
    VarId best_var = sparql::kInvalidVarId;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      std::vector<VarId> part_vars;
      CollectVars(query, parts[i].plan.get(), &part_vars);
      std::vector<VarId> shared;
      for (VarId v : part_vars) {
        if (std::find(current_vars.begin(), current_vars.end(), v) !=
            current_vars.end()) {
          shared.push_back(v);
        }
      }
      if (shared.empty()) continue;
      Estimate est = estimator_.EstimateJoin(current.est, parts[i].est,
                                             shared);
      if (est.rows < best_rows) {
        best_rows = est.rows;
        best_i = i;
        best_est = est;
        best_var = shared.front();
      }
    }
    if (best_i == SIZE_MAX) {
      // Disconnected: cartesian with the smallest pending part.
      best_i = 0;
      for (std::size_t i = 1; i < parts.size(); ++i) {
        if (parts[i].est.rows < parts[best_i].est.rows) best_i = i;
      }
      best_est = estimator_.EstimateJoin(current.est, parts[best_i].est, {});
      best_var = sparql::kInvalidVarId;
    }
    current.plan = PlanNode::Join(JoinAlgo::kHash, best_var,
                                  std::move(current.plan),
                                  std::move(parts[best_i].plan));
    current.est = best_est;
    parts.erase(parts.begin() + static_cast<std::ptrdiff_t>(best_i));
  }

  // ---- Leapfrog arbitration: cost the finished binary tree with the
  // RDF-3X model and replace it with one worst-case-optimal n-ary join
  // over the whole BGP when that is cheaper.
  if (options_.use_leapfrog && query.patterns.size() >= 2) {
    std::vector<std::size_t> all(query.patterns.size());
    std::iota(all.begin(), all.end(), 0);
    if (hsp::LeapfrogEligible(query, all) &&
        hsp::LeapfrogFavorable(query, all)) {
      std::function<std::pair<Estimate, double>(const PlanNode*)> cost_of =
          [&](const PlanNode* node) -> std::pair<Estimate, double> {
        if (node->kind == PlanNode::Kind::kScan) {
          return {leaf_est[node->pattern_index], 0.0};
        }
        auto l = cost_of(node->children[0].get());
        auto r = cost_of(node->children[1].get());
        std::vector<VarId> lv;
        std::vector<VarId> rv;
        CollectVars(query, node->children[0].get(), &lv);
        CollectVars(query, node->children[1].get(), &rv);
        std::vector<VarId> shared;
        for (VarId v : rv) {
          if (std::find(lv.begin(), lv.end(), v) != lv.end()) {
            shared.push_back(v);
          }
        }
        double cost = l.second + r.second +
                      (node->algo == JoinAlgo::kMerge
                           ? MergeJoinCost(l.first.rows, r.first.rows)
                           : HashJoinCost(l.first.rows, r.first.rows));
        return {estimator_.EstimateJoin(l.first, r.first, shared), cost};
      };
      const double binary_cost = cost_of(current.plan.get()).second;
      std::vector<double> leaf_rows;
      leaf_rows.reserve(leaf_est.size());
      for (const Estimate& est : leaf_est) leaf_rows.push_back(est.rows);
      if (LeapfrogJoinCost(leaf_rows, current.est.rows) < binary_cost) {
        std::vector<VarId> elim = hsp::LeapfrogEliminationOrder(query, all);
        current.plan = PlanNode::Leapfrog(std::move(elim), std::move(all));
      }
    }
  }

  std::unique_ptr<PlanNode> plan = std::move(current.plan);
  for (const sparql::Filter& f : query.filters) {
    plan = PlanNode::Filter(f, std::move(plan));
  }
  std::vector<VarId> projection;
  if (query.select_all) {
    CollectVars(query, plan.get(), &projection);
  } else {
    projection = query.projection;
  }
  plan = PlanNode::Project(std::move(projection), query.distinct,
                           std::move(plan));
  plan = hsp::AttachSolutionModifiers(query, std::move(plan));
  out.plan = hsp::LogicalPlan(std::move(plan));
#ifndef NDEBUG
  // Debug builds statically verify every emitted plan (src/lint/). The
  // hybrid planner orders merge blocks by cardinality, not H1, so only
  // the planner-agnostic rules apply — not the HSP pack.
  if (lint::LintReport report = lint::LintPlan(out.query, out.plan);
      !report.clean()) {
    std::cerr << "HybridPlanner emitted a plan failing PlanLint:\n"
              << report.ToString();
    assert(false && "HybridPlanner emitted a plan failing PlanLint");
  }
#endif
  return out;
}

}  // namespace hsparql::cdp
