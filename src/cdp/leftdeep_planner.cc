#include "cdp/leftdeep_planner.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <iostream>

#include "cdp/cost_model.h"
#include "lint/plan_lint.h"
#include "sparql/rewrite.h"

namespace hsparql::cdp {

using hsp::JoinAlgo;
using hsp::PlanNode;
using sparql::Query;
using sparql::VarId;

namespace {

double CartesianCost(double lc, double rc) { return 300000.0 + lc * rc; }

struct DpState {
  double cost = 0.0;
  Estimate est;
  VarId order = sparql::kInvalidVarId;  // sort order of the running prefix
  std::vector<std::size_t> sequence;    // pattern indices, join order
  bool valid = false;
};

}  // namespace

Result<hsp::PlannedQuery> LeftDeepPlanner::Plan(const Query& input) const {
  if (input.patterns.empty()) {
    return Status::InvalidArgument("query has no triple patterns");
  }
  if (input.HasGraphPatternExtensions()) {
    return Status::Unsupported(
        "the left-deep baseline covers the paper's conjunctive subset; "
        "OPTIONAL/UNION queries are planned by HspPlanner");
  }
  if (input.patterns.size() > options_.max_patterns) {
    return Status::Unsupported("left-deep DP supports at most " +
                               std::to_string(options_.max_patterns) +
                               " triple patterns");
  }
  hsp::PlannedQuery out;
  out.query = input;
  if (options_.rewrite_filters) {
    out.rewrite_report = sparql::RewriteFilters(&out.query);
  }
  const Query& query = out.query;
  const std::size_t n = query.patterns.size();
  const std::uint32_t full = static_cast<std::uint32_t>((1u << n) - 1);

  // Fixed access path per pattern: constants first, then the variable with
  // the most occurrences in the whole query.
  const std::vector<std::uint32_t> weights = query.VarWeights();
  std::vector<hsp::OrderedRelationChoice> access(n);
  std::vector<Estimate> leaf_est(n);
  for (std::size_t i = 0; i < n; ++i) {
    const sparql::TriplePattern& tp = query.patterns[i];
    VarId best = sparql::kInvalidVarId;
    std::uint32_t best_weight = 0;
    for (VarId v : tp.Variables()) {
      if (weights[v] > best_weight) {
        best_weight = weights[v];
        best = v;
      }
    }
    access[i] = hsp::AssignOrderedRelation(tp, best);
    leaf_est[i] = estimator_.EstimatePattern(query, i);
  }

  // Left-deep DP: dp[mask] = cheapest prefix joining exactly `mask`.
  std::vector<DpState> dp(full + 1);
  for (std::size_t i = 0; i < n; ++i) {
    DpState s;
    s.cost = 0.0;
    s.est = leaf_est[i];
    s.order = access[i].sort_var;
    s.sequence = {i};
    s.valid = true;
    dp[1u << i] = std::move(s);
  }

  // Variables of each pattern, cached.
  std::vector<std::vector<VarId>> pattern_vars(n);
  for (std::size_t i = 0; i < n; ++i) {
    pattern_vars[i] = query.patterns[i].Variables();
  }

  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    if (std::popcount(mask) < 2) continue;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t bit = 1u << i;
      if ((mask & bit) == 0) continue;
      const DpState& prev = dp[mask ^ bit];
      if (!prev.valid) continue;
      // Shared variables between the running prefix and pattern i.
      std::vector<VarId> prefix_vars;
      for (std::size_t j = 0; j < n; ++j) {
        if (((mask ^ bit) & (1u << j)) == 0) continue;
        for (VarId v : pattern_vars[j]) {
          if (std::find(prefix_vars.begin(), prefix_vars.end(), v) ==
              prefix_vars.end()) {
            prefix_vars.push_back(v);
          }
        }
      }
      std::vector<VarId> shared;
      for (VarId v : pattern_vars[i]) {
        if (std::find(prefix_vars.begin(), prefix_vars.end(), v) !=
            prefix_vars.end()) {
          shared.push_back(v);
        }
      }
      Estimate est = estimator_.EstimateJoin(prev.est, leaf_est[i], shared);
      double join_cost;
      VarId order;
      if (shared.empty()) {
        join_cost = CartesianCost(prev.est.rows, leaf_est[i].rows);
        order = prev.order;
      } else if (prev.order != sparql::kInvalidVarId &&
                 access[i].sort_var == prev.order &&
                 std::find(shared.begin(), shared.end(), prev.order) !=
                     shared.end()) {
        join_cost = MergeJoinCost(prev.est.rows, leaf_est[i].rows);
        order = prev.order;
      } else {
        join_cost = HashJoinCost(prev.est.rows, leaf_est[i].rows);
        order = prev.order;
      }
      double total = prev.cost + join_cost;
      if (!dp[mask].valid || total < dp[mask].cost) {
        DpState s;
        s.cost = total;
        s.est = est;
        s.order = order;
        s.sequence = prev.sequence;
        s.sequence.push_back(i);
        s.valid = true;
        dp[mask] = std::move(s);
      }
    }
  }

  const DpState& best = dp[full];
  // Materialise the left-deep tree from the winning sequence.
  auto make_scan = [&](std::size_t i) {
    return PlanNode::Scan(i, access[i].ordering, access[i].sort_var);
  };
  std::unique_ptr<PlanNode> plan = make_scan(best.sequence[0]);
  VarId running_order = access[best.sequence[0]].sort_var;
  std::vector<VarId> seen_vars = pattern_vars[best.sequence[0]];
  for (std::size_t k = 1; k < best.sequence.size(); ++k) {
    std::size_t i = best.sequence[k];
    std::vector<VarId> shared;
    for (VarId v : pattern_vars[i]) {
      if (std::find(seen_vars.begin(), seen_vars.end(), v) !=
          seen_vars.end()) {
        shared.push_back(v);
      }
    }
    JoinAlgo algo;
    VarId join_var;
    if (shared.empty()) {
      algo = JoinAlgo::kHash;
      join_var = sparql::kInvalidVarId;
    } else if (running_order != sparql::kInvalidVarId &&
               access[i].sort_var == running_order &&
               std::find(shared.begin(), shared.end(), running_order) !=
                   shared.end()) {
      algo = JoinAlgo::kMerge;
      join_var = running_order;
    } else {
      algo = JoinAlgo::kHash;
      join_var = shared.empty() ? sparql::kInvalidVarId : shared.front();
    }
    plan = PlanNode::Join(algo, join_var, std::move(plan), make_scan(i));
    if (algo == JoinAlgo::kMerge) running_order = join_var;
    // Hash joins preserve the left order (executor contract).
    for (VarId v : pattern_vars[i]) {
      if (std::find(seen_vars.begin(), seen_vars.end(), v) ==
          seen_vars.end()) {
        seen_vars.push_back(v);
      }
    }
  }

  for (const sparql::Filter& f : query.filters) {
    plan = PlanNode::Filter(f, std::move(plan));
  }
  std::vector<VarId> projection =
      query.select_all ? seen_vars : query.projection;
  plan = PlanNode::Project(std::move(projection), query.distinct,
                           std::move(plan));
  plan = hsp::AttachSolutionModifiers(query, std::move(plan));
  out.plan = hsp::LogicalPlan(std::move(plan));
#ifndef NDEBUG
  // Debug builds statically verify every emitted plan (src/lint/).
  if (lint::LintReport report = lint::LintPlan(out.query, out.plan);
      !report.clean()) {
    std::cerr << "LeftDeepPlanner emitted a plan failing PlanLint:\n"
              << report.ToString();
    assert(false && "LeftDeepPlanner emitted a plan failing PlanLint");
  }
#endif
  return out;
}

}  // namespace hsparql::cdp
