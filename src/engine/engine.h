// engine::Engine — the query-serving facade over the whole stack.
//
// One thread-safe object owns a TripleStore (plus its statistics) and
// exposes the full parse -> analyze -> plan -> lint -> execute pipeline as
// a single call. This is the layer the paper's pitch implies but the
// per-module APIs never provided: HSP makes planning cheap, the engine
// makes *repeated* planning free —
//  * an LRU plan cache keyed on (normalized query text, planner kind,
//    planner options) lets repeated queries skip parsing and planning
//    entirely, with exact hit/miss/eviction counters;
//  * an optional bounded result cache returns byte-identical answers for
//    repeated executions, invalidated by a store generation counter that
//    every mutation bumps;
//  * per-query deadlines and cooperative cancellation (QueryOptions)
//    guarantee one bad query cannot wedge a serving thread.
//
// Concurrency model: Query()/Prepare()/ExecutePrepared() may be called
// from any number of threads concurrently (they take a shared lock on the
// store and short exclusive locks on each cache). AddTriples() and
// ReplaceStore() take the store lock exclusively, draining in-flight
// queries first. See DESIGN.md §4e.
#ifndef HSPARQL_ENGINE_ENGINE_H_
#define HSPARQL_ENGINE_ENGINE_H_

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>

#include "common/cancel.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/result.h"
#include "common/rng.h"
#include "engine/lru_cache.h"
#include "exec/executor.h"
#include "obs/cardinality_memo.h"
#include "obs/registry.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "plan/planner.h"
#include "rdf/term.h"
#include "storage/statistics.h"
#include "storage/triple_store.h"

namespace hsparql::engine {

/// Per-query knobs. Everything that changes the *plan* (planner, seed) is
/// part of the plan-cache key; everything else only shapes execution.
struct QueryOptions {
  /// Which planner builds the plan.
  plan::PlannerKind planner = plan::PlannerKind::kHsp;
  /// Seed for HSP's random tie-break (plan-cache key component).
  std::uint64_t seed = kDefaultSeed;
  /// Allow worst-case-optimal leapfrog plans for cyclic/star BGPs
  /// (plan-cache key component; see plan::PlannerFactoryOptions).
  bool use_leapfrog = false;
  /// Intra-query parallelism; passed through to exec::ExecOptions.
  std::size_t num_threads = 0;
  /// Sideways information passing; passed through to exec::ExecOptions.
  bool sideways_information_passing = false;
  /// Read/write the engine's result cache for this query (no effect when
  /// the engine was built with result_cache_capacity == 0).
  bool use_result_cache = true;
  /// Collect the per-operator EXPLAIN ANALYZE trace
  /// (QueryResponse::trace), annotated with the statistics-based
  /// cardinality estimate for every operator. Passed through to
  /// exec::ExecOptions::collect_trace; off by default (the trace tree is
  /// the only per-query observability artefact that costs allocations).
  bool collect_trace = false;
  /// Wall-clock budget for the whole pipeline; 0 means no deadline. On
  /// expiry the query returns kDeadlineExceeded.
  std::uint64_t timeout_ms = 0;
  /// Optional caller-owned cancellation token, polled alongside the
  /// deadline; must outlive the call.
  const CancelToken* cancel = nullptr;
  /// Request id of the transport-level request issuing this query (the
  /// server threads its X-Request-Id through here). Pure observability:
  /// appears in slow-query-log lines, never in any cache key.
  std::string request_id;

  /// THE conversion onto the executor's option set — the engine, the
  /// server, benches and examples all go through here, so an execution
  /// knob added to both structs can never silently miss a layer. `cancel`
  /// overrides this struct's own token (the engine passes its combined
  /// deadline+caller token); pass nullptr to run uncancellable.
  exec::ExecOptions ToExecOptions(const CancelToken* cancel_token) const {
    exec::ExecOptions out;
    out.sideways_information_passing = sideways_information_passing;
    out.num_threads = num_threads;
    out.collect_trace = collect_trace;
    out.cancel = cancel_token;
    return out;
  }

  /// Identity of the planner this query plans with, as the plan cache
  /// keys it: (kind ⊕ leapfrog-bit, seed). Exactly the plan-*shaping*
  /// fields — execution knobs (threads, SIP, caches, deadlines) are
  /// byte-identical-output by contract and deliberately excluded.
  std::pair<std::uint8_t, std::uint64_t> PlannerCacheId() const {
    return {static_cast<std::uint8_t>(static_cast<std::uint8_t>(planner) |
                                      (use_leapfrog ? 0x80 : 0)),
            seed};
  }

  /// Factory options for plan::MakePlanner, from the same fields as
  /// PlannerCacheId — keep the two in lockstep.
  plan::PlannerFactoryOptions ToFactoryOptions() const {
    plan::PlannerFactoryOptions out;
    out.seed = seed;
    out.use_leapfrog = use_leapfrog;
    return out;
  }
};

/// A cached parse+plan product. Shared (immutably) between the plan
/// cache, PreparedQuery handles and in-flight responses.
struct CachedPlan {
  plan::PlannedQuery planned;
  /// Planner Name() that produced the plan.
  std::string planner_name;
  /// Cold-path costs, kept so hit responses can still report what the
  /// cache saved (Table 6's quantity, measured on the serving path).
  double parse_millis = 0.0;
  double plan_millis = 0.0;
  /// FNV-1a of the normalized query text, computed once when the plan is
  /// built so per-request consumers (request traces, the slow-query log)
  /// never pay the normalization pass again.
  std::uint64_t query_hash = 0;
};

/// Everything one query returns. `planned` and `result` are shared with
/// the caches — treat them as immutable snapshots.
struct QueryResponse {
  std::shared_ptr<const CachedPlan> planned;
  std::shared_ptr<const exec::ExecResult> result;

  /// Stage timings for this call. On a plan-cache hit parse/plan are ~0
  /// (the lookup cost lands in total_millis); on a result-cache hit
  /// exec_millis is 0. total_millis covers the whole pipeline, fixing the
  /// historical gap where ExecResult::total_millis excluded parse+plan.
  double parse_millis = 0.0;
  double plan_millis = 0.0;
  double exec_millis = 0.0;
  double total_millis = 0.0;

  bool plan_cache_hit = false;
  bool result_cache_hit = false;
  /// Planner that produced (or cached) the plan: "hsp", "cdp", ...
  std::string planner;

  /// EXPLAIN ANALYZE trace (QueryOptions::collect_trace): the plan-shaped
  /// per-operator actuals tree, annotated with cardinality estimates when
  /// statistics are available. Null when tracing was off. A result-cache
  /// hit returns the trace captured when the cached entry was computed.
  std::shared_ptr<const obs::QueryTrace> trace;

  std::uint64_t rows() const { return result ? result->table.rows : 0; }
};

/// Engine-wide configuration.
struct EngineOptions {
  /// Plan-cache entries (0 disables plan caching).
  std::size_t plan_cache_capacity = 128;
  /// Result-cache entries (0, the default, disables result caching —
  /// opt in for workloads with repeated identical reads).
  std::size_t result_cache_capacity = 0;
  /// Slow-query threshold: every finished pipeline — including failures
  /// and deadline expiries — whose total latency meets this many
  /// milliseconds is emitted as one JSON line (obs::SlowQueryEvent).
  /// <= 0 (the default) disables the log.
  double slow_query_millis = 0.0;
  /// Where slow-query lines go; null writes to stderr. Called with the
  /// engine's slow-log mutex held — keep sinks quick and reentrancy-free.
  obs::SlowQueryLog::Sink slow_query_sink;
};

/// Cache/observability snapshot.
struct EngineStats {
  CacheCounters plan_cache;
  CacheCounters result_cache;
  std::size_t plan_cache_size = 0;
  std::size_t result_cache_size = 0;
  /// Store generation: bumped by every mutation; result-cache entries
  /// from older generations can never be returned again.
  std::uint64_t generation = 0;
  /// Which storage backend serves the store (in-memory build or mmap'd
  /// snapshot image), with its byte-level mapped-vs-heap residency.
  storage::StoreBackend backend = storage::StoreBackend::kInMemory;
  storage::StorageFootprint footprint;
};

/// A parse+plan handle from Engine::Prepare for parameter-free repeated
/// queries: ExecutePrepared skips parse and plan entirely. Cheap to copy;
/// valid for the lifetime of the engine that produced it.
class PreparedQuery {
 public:
  PreparedQuery() = default;

  bool valid() const { return plan_ != nullptr; }
  /// Requires valid(); asserts otherwise (the reference-returning
  /// counterpart of ExecutePrepared's typed InvalidArgument guard).
  const plan::PlannedQuery& planned() const {
    assert(plan_ != nullptr &&
           "PreparedQuery::planned() on a default-constructed handle");
    return plan_->planned;
  }
  const QueryOptions& options() const { return options_; }

 private:
  friend class Engine;

  std::shared_ptr<const CachedPlan> plan_;
  QueryOptions options_;
  std::string cache_key_;
};

/// Collapses runs of whitespace (outside quoted literals and <...> IRI
/// refs) to single spaces, strips '#' line comments, and trims — the
/// normalization under the plan-cache key, so reformatted copies of one
/// query share a cache entry while comment placement (which changes the
/// token stream the parser sees) keeps queries apart.
std::string NormalizeQueryText(std::string_view text);

/// Read-only snapshot of an engine's store and dictionary. Holds the
/// store lock shared for its lifetime, so AddTriples()/ReplaceStore()
/// block until every live view is destroyed — the concurrency contract is
/// enforced, not advisory. Keep views short-lived (decode a result, scan
/// a few triples) and never cache the references past the view.
///
/// Thread-safety analysis boundary: a movable view cannot be a scoped
/// capability (the analysis does not track holds across moves), so the
/// shared hold is erased here and re-established by construction — the
/// view acquires in its constructor, releases exactly once in the
/// destructor of the last move target, and only exposes const access in
/// between. The TSan CI job covers what the static proof hands off.
class StoreView {
 public:
  StoreView(StoreView&& other) noexcept
      : mu_(std::exchange(other.mu_, nullptr)), store_(other.store_) {}
  StoreView(const StoreView&) = delete;
  StoreView& operator=(const StoreView&) = delete;
  ~StoreView() {
    if (mu_ != nullptr) mu_->UnlockShared();
  }

  const storage::TripleStore& store() const { return *store_; }
  const rdf::Dictionary& dictionary() const { return store_->dictionary(); }

 private:
  friend class Engine;
  StoreView(SharedMutex* mu, const storage::TripleStore* store)
      : mu_(mu), store_(store) {
    mu_->LockShared();
  }

  /// Null only in a moved-from view.
  SharedMutex* mu_;
  const storage::TripleStore* store_;
};

class Engine {
 public:
  /// Takes ownership of `store` and computes its statistics (needed by
  /// the cost-based planners).
  explicit Engine(storage::TripleStore&& store, EngineOptions options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The whole pipeline for one query text. Thread-safe.
  Result<QueryResponse> Query(std::string_view text,
                              const QueryOptions& options = {}) const;

  /// Parses, plans and lints `text` without executing. The plan is also
  /// installed in the plan cache, so a later Query() of the same text hits.
  Result<PreparedQuery> Prepare(std::string_view text,
                                const QueryOptions& options = {}) const;

  /// Executes a prepared query (skipping parse+plan) with the options it
  /// was prepared with. Thread-safe; the handle may be reused and shared.
  Result<QueryResponse> ExecutePrepared(const PreparedQuery& prepared) const;

  /// Adds triples to the dataset incrementally: the sorted delta levels
  /// (and the new statistics) are staged under a shared lock, concurrently
  /// with in-flight queries, and the exclusive lock is held only for the
  /// O(new terms) swap — readers stall for microseconds, not for a
  /// rebuild. Bumps the store generation and drops every cached plan.
  /// Concurrent AddTriples calls are serialised against each other.
  Status AddTriples(std::span<const std::array<rdf::Term, 3>> triples);

  /// Swaps in a different dataset; same invalidation as AddTriples.
  void ReplaceStore(storage::TripleStore&& store);

  /// Drops all cached plans and results (counters keep accumulating).
  void ClearCaches();

  /// Read-only access to the store/dictionary, pinned against concurrent
  /// mutation for the lifetime of the returned view.
  StoreView read_view() const { return StoreView(&store_mu_, &store_); }
  std::size_t store_size() const;

  std::uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

  /// Consistent cache/generation snapshot: taken under a shared store
  /// lock, so the generation and both caches' counters/sizes belong to the
  /// same mutation epoch (a concurrent AddTriples either happened-before
  /// the whole snapshot or happens-after it — never halfway).
  ///
  /// Memory-ordering contract: generation_ itself uses relaxed atomics
  /// everywhere because it is never used to publish other data — all
  /// cross-thread ordering in the engine comes from lock acquire/release
  /// (store_mu_, plan_mu_, result_mu_). A relaxed generation() read may
  /// therefore lag a concurrent mutation; readers that need the
  /// generation *and* the data it describes must hold the store lock
  /// (read_view(), stats(), the query pipeline), which is what makes the
  /// relaxed loads safe.
  EngineStats stats() const;

  /// The engine's metrics registry: stage-latency histograms
  /// (engine.query.{parse,plan,exec,total}_millis), query/row counters,
  /// cache and store gauges, and callback metrics reading the LRU caches
  /// and the shared thread pool. Callers may register their own metrics
  /// alongside (e.g. the loader via rdf::LoadOptions::metrics).
  obs::Registry& metrics() const { return registry_; }

  /// Serialised snapshot of every registered metric.
  enum class MetricsFormat { kJson, kPrometheus };
  std::string ExportMetrics(MetricsFormat format) const;

  /// Trace-fed per-pattern-shape cardinality statistics: every executed
  /// (non-result-cache-hit) query folds each scan's observed output
  /// cardinality — and the planner's estimate, when a trace rode along —
  /// into this memo, keyed by the pattern shape with variables abstracted.
  /// The read side for adaptive planning (ROADMAP item 1); exported over
  /// the server's /debug/stats and summarised in ExportMetrics.
  const obs::CardinalityMemo& cardinality_memo() const {
    return cardinality_memo_;
  }

 private:
  struct CachedResult {
    std::shared_ptr<const exec::ExecResult> result;
  };

  /// A shared planner instance plus its precomputed plan-cache key suffix
  /// (separator + Name() + separator + OptionsFingerprint()). Planners are
  /// stateless and safe to share across threads; caching them keeps the
  /// plan-cache *hit* path down to one text normalization and two map
  /// lookups — no planner construction, no fingerprint formatting.
  struct PlannerEntry {
    std::shared_ptr<const plan::Planner> planner;
    std::string key_suffix;
  };

  /// Returns (building on first use) the planner for `options`. The map is
  /// bounded by the distinct (kind, seed) pairs the caller ever uses, and
  /// std::map nodes are stable, so the pointer stays valid for the
  /// engine's lifetime. Requires the shared store lock: planners are
  /// constructed against store_/stats_ and must not race a mutation.
  Result<const PlannerEntry*> PlannerFor(const QueryOptions& options) const
      REQUIRES_SHARED(store_mu_) EXCLUDES(planner_mu_);

  /// Bumps the generation and drops every cached plan.
  void InvalidateForMutation() REQUIRES(store_mu_) EXCLUDES(plan_mu_);

  /// Cache-or-plan: returns the CachedPlan for (text, options), consulting
  /// and filling the plan cache.
  /// `*key` points into a per-thread buffer — valid only until the next
  /// GetOrBuildPlan call on this thread; copy it to retain.
  Result<std::shared_ptr<const CachedPlan>> GetOrBuildPlan(
      std::string_view text, const QueryOptions& options,
      std::string_view* key, bool* cache_hit) const
      REQUIRES_SHARED(store_mu_) EXCLUDES(plan_mu_);

  /// Execute stage shared by Query and ExecutePrepared. `deadline` may be
  /// null.
  Result<QueryResponse> RunPlan(std::shared_ptr<const CachedPlan> planned,
                                const QueryOptions& options,
                                std::string_view key,
                                const CancelToken* deadline) const
      REQUIRES_SHARED(store_mu_) EXCLUDES(result_mu_);

  /// Query()/ExecutePrepared() minus the observability wrapper (metrics,
  /// slow-query log, total_millis stamping).
  Result<QueryResponse> QueryImpl(std::string_view text,
                                  const QueryOptions& options) const;
  Result<QueryResponse> ExecutePreparedImpl(
      const PreparedQuery& prepared) const;

  /// Registers the engine's metric set with registry_ and fills metrics_.
  void RegisterMetrics();

  /// Shared epilogue of every pipeline: stamps total_millis, records the
  /// stage histograms and counters, and feeds the slow-query log (for
  /// failures too — a deadline expiry is exactly what the log is for).
  /// `text` is the raw query text; it is normalized and hashed only when
  /// a slow-query line actually fires. `options` contributes the request
  /// id (and nothing else) to the emitted line.
  void ObserveQuery(std::string_view text, const QueryOptions& options,
                    double total_millis, Result<QueryResponse>* result) const;

  /// Folds one executed plan's per-scan observed cardinalities (plus the
  /// trace's estimates, when present) into cardinality_memo_.
  void FoldCardinalities(const plan::PlannedQuery& planned,
                         const exec::ExecResult& result,
                         const obs::QueryTrace* trace) const;

  /// Hot-path metric pointers (registered once in the constructor; the
  /// registry owns the metrics and keeps their addresses stable).
  struct Metrics {
    obs::Counter* queries_total = nullptr;
    obs::Counter* queries_errors = nullptr;
    obs::Counter* queries_deadline = nullptr;
    obs::Counter* queries_cancelled = nullptr;
    obs::Counter* queries_slow = nullptr;
    obs::Counter* rows_scanned = nullptr;
    obs::Counter* rows_emitted = nullptr;
    obs::Gauge* active_queries = nullptr;
    obs::Gauge* generation = nullptr;
    obs::Gauge* base_triples = nullptr;
    obs::Gauge* delta_triples = nullptr;
    obs::Histogram* parse_millis = nullptr;
    obs::Histogram* plan_millis = nullptr;
    obs::Histogram* exec_millis = nullptr;
    obs::Histogram* total_millis = nullptr;
  };

  EngineOptions options_;

  /// Serialises writers (AddTriples/ReplaceStore) against each other, so
  /// each can stage its update under a *shared* store lock — PrepareAdd's
  /// provisional TermIds are only valid if no other writer interleaves.
  /// The ACQUIRED_BEFORE edge makes the mutation_mu_ → store_mu_ lock
  /// order a compile-time fact (-Wthread-safety-beta checks it).
  mutable Mutex mutation_mu_ ACQUIRED_BEFORE(store_mu_);

  /// Guards store_ and stats_: queries shared, mutations exclusive.
  mutable SharedMutex store_mu_;
  storage::TripleStore store_ GUARDED_BY(store_mu_);
  std::optional<storage::Statistics> stats_ GUARDED_BY(store_mu_);

  /// Lock-free on purpose (PT_GUARDED_BY-style intent, not a capability):
  /// relaxed atomic, never used to publish other data. All cross-thread
  /// ordering comes from store_mu_/plan_mu_/result_mu_ acquire/release —
  /// see the memory-ordering contract on stats().
  std::atomic<std::uint64_t> generation_{0};

  /// Planner instances by (kind, seed); entries point at store_/stats_,
  /// whose addresses are stable across mutations (rebuild-in-place).
  mutable Mutex planner_mu_;
  mutable std::map<std::pair<std::uint8_t, std::uint64_t>, PlannerEntry>
      planners_ GUARDED_BY(planner_mu_);

  mutable Mutex plan_mu_;
  mutable LruCache<std::string, std::shared_ptr<const CachedPlan>,
                   StringKeyHash, std::equal_to<>>
      plan_cache_ GUARDED_BY(plan_mu_);

  /// Result keys embed the generation, so mutation invalidates every
  /// older entry at once (stale entries age out through LRU eviction).
  mutable Mutex result_mu_;
  mutable LruCache<std::string, CachedResult, StringKeyHash, std::equal_to<>>
      result_cache_ GUARDED_BY(result_mu_);

  /// Metrics registry + the hot-path pointers into it. Mutable: recording
  /// a metric is not a logical mutation of the engine.
  mutable obs::Registry registry_;
  Metrics metrics_;
  mutable obs::SlowQueryLog slow_log_;
  /// Internally synchronised (its own mutex); mutable for the same reason
  /// as the registry — recording an observation is not a logical mutation.
  mutable obs::CardinalityMemo cardinality_memo_;
};

}  // namespace hsparql::engine

#endif  // HSPARQL_ENGINE_ENGINE_H_
