#include "engine/engine.h"

#include <cctype>
#include <chrono>
#include <string>
#include <utility>

#include "common/thread_pool.h"
#include "lint/plan_lint.h"
#include "rdf/graph.h"
#include "storage/ordering.h"

namespace hsparql::engine {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Separator for cache-key components; cannot occur in SPARQL text that
/// survives normalization, planner names or fingerprints.
constexpr char kKeySep = '\x1f';

/// Character classes for NormalizeQueryText's run scanner.
constexpr std::uint8_t kPlain = 0;
constexpr std::uint8_t kSpace = 1;
constexpr std::uint8_t kQuote = 2;
constexpr std::uint8_t kHash = 3;
constexpr std::uint8_t kLess = 4;

constexpr std::array<std::uint8_t, 256> MakeCharClass() {
  std::array<std::uint8_t, 256> table{};
  for (char c : {' ', '\t', '\n', '\r', '\f', '\v'}) {
    table[static_cast<unsigned char>(c)] = kSpace;
  }
  table['"'] = kQuote;
  table['\''] = kQuote;
  table['#'] = kHash;
  table['<'] = kLess;
  return table;
}
constexpr std::array<std::uint8_t, 256> kCharClass = MakeCharClass();

std::uint8_t CharClass(char c) {
  return kCharClass[static_cast<unsigned char>(c)];
}

/// Per-thread plan-cache key buffer: the cache-hit path reuses it so key
/// construction allocates nothing after warm-up. Only valid until the
/// next GetOrBuildPlan call on the same thread.
thread_local std::string tls_plan_key;  // NOLINT(runtime/global)

/// NormalizeQueryText into a caller-provided (reusable) buffer.
void NormalizeQueryTextInto(std::string_view text, std::string* out_ptr) {
  std::string& out = *out_ptr;
  out.clear();
  out.reserve(text.size());
  bool pending_space = false;
  const std::size_t n = text.size();
  std::size_t i = 0;
  while (i < n) {
    const std::uint8_t cls = CharClass(text[i]);
    if (cls == kSpace) {
      pending_space = true;
      ++i;
      continue;
    }
    if (cls == kHash) {
      // '#' starts a line comment (the lexer skips it alongside
      // whitespace, so it also separates tokens): drop it and leave a
      // space. Semantically different comment placements — e.g. a comment
      // swallowing half a pattern — now normalize to different keys.
      while (i < n && text[i] != '\n') ++i;
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    if (cls == kLess) {
      // Mirror the lexer's LexIriOrLess: '<' opens an IRI ref unless the
      // next char reads as a comparison right-hand side. IRI bodies are
      // copied verbatim so a '#' fragment is not mistaken for a comment;
      // the copy stops at whitespace (malformed per the lexer) or '>'.
      const char next = i + 1 < n ? text[i + 1] : '\0';
      const bool comparison =
          next == '=' || next == ' ' || next == '\t' || next == '\n' ||
          next == '?' || next == '"' ||
          std::isdigit(static_cast<unsigned char>(next));
      if (!comparison) {
        std::size_t j = i + 1;
        while (j < n && CharClass(text[j]) != kSpace && text[j] != '>') ++j;
        if (j < n && text[j] == '>') ++j;
        out.append(text.substr(i, j - i));
        i = j;
        continue;
      }
      out.push_back('<');
      ++i;
      continue;
    }
    if (cls == kQuote) {
      // Copy the quoted literal verbatim, honouring backslash escapes —
      // whitespace inside literals is significant.
      const char quote = text[i];
      std::size_t j = i + 1;
      while (j < n) {
        if (text[j] == '\\' && j + 1 < n) {
          j += 2;
        } else if (text[j] == quote) {
          ++j;
          break;
        } else {
          ++j;
        }
      }
      out.append(text.substr(i, j - i));
      i = j;
      continue;
    }
    // Bulk-append the run of ordinary characters starting here (this is
    // the hot path: normalization dominates plan-cache-hit latency).
    std::size_t j = i + 1;
    while (j < n && CharClass(text[j]) == kPlain) ++j;
    out.append(text.substr(i, j - i));
    i = j;
  }
}

}  // namespace

std::string NormalizeQueryText(std::string_view text) {
  std::string out;
  NormalizeQueryTextInto(text, &out);
  return out;
}

Engine::Engine(storage::TripleStore&& store, EngineOptions options)
    : options_(options),
      store_(std::move(store)),
      plan_cache_(options.plan_cache_capacity),
      result_cache_(options.result_cache_capacity) {
  stats_.emplace(storage::Statistics::Compute(store_));
}

Result<const Engine::PlannerEntry*> Engine::PlannerFor(
    const QueryOptions& options) const {
  const std::pair<std::uint8_t, std::uint64_t> id{
      static_cast<std::uint8_t>(options.planner), options.seed};
  {
    std::lock_guard<std::mutex> lock(planner_mu_);
    auto it = planners_.find(id);
    if (it != planners_.end()) return &it->second;
  }
  plan::PlannerFactoryOptions factory_options;
  factory_options.seed = options.seed;
  const storage::Statistics* stats = stats_ ? &*stats_ : nullptr;
  HSPARQL_ASSIGN_OR_RETURN(
      std::unique_ptr<plan::Planner> planner,
      plan::MakePlanner(options.planner, &store_, stats, factory_options));
  PlannerEntry entry;
  entry.key_suffix.push_back(kKeySep);
  entry.key_suffix.append(planner->Name());
  entry.key_suffix.push_back(kKeySep);
  entry.key_suffix.append(planner->OptionsFingerprint());
  entry.planner = std::move(planner);
  // Two threads may build the same entry concurrently; emplace keeps the
  // first and the loser's copy is discarded.
  std::lock_guard<std::mutex> lock(planner_mu_);
  return &planners_.emplace(id, std::move(entry)).first->second;
}

Result<std::shared_ptr<const CachedPlan>> Engine::GetOrBuildPlan(
    std::string_view text, const QueryOptions& options,
    std::string_view* key, bool* cache_hit) const {
  HSPARQL_ASSIGN_OR_RETURN(const PlannerEntry* planner, PlannerFor(options));
  NormalizeQueryTextInto(text, &tls_plan_key);
  tls_plan_key.append(planner->key_suffix);
  *key = tls_plan_key;

  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    if (auto hit = plan_cache_.Get(*key)) {
      *cache_hit = true;
      return std::move(*hit);
    }
  }
  *cache_hit = false;

  Clock::time_point start = Clock::now();
  HSPARQL_ASSIGN_OR_RETURN(plan::AnalyzedQuery analyzed,
                           plan::AnalyzedQuery::FromText(text));
  double parse_millis = MillisSince(start);

  start = Clock::now();
  HSPARQL_ASSIGN_OR_RETURN(plan::PlannedQuery planned,
                           planner->planner->Plan(analyzed));
  double plan_millis = MillisSince(start);

  // Lint on prepare: a malformed plan never reaches the cache or the
  // executor (whose own runtime checks stay active regardless).
  HSPARQL_RETURN_IF_ERROR(
      lint::ReportToStatus(lint::LintPlan(planned.query, planned.plan)));

  auto cached = std::make_shared<CachedPlan>();
  cached->planned = std::move(planned);
  cached->planner_name = std::string(planner->planner->Name());
  cached->parse_millis = parse_millis;
  cached->plan_millis = plan_millis;

  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    // Two threads may plan the same cold query concurrently; the second
    // Put overwrites with an equivalent plan, which is harmless.
    plan_cache_.Put(std::string(*key), cached);
  }
  return std::shared_ptr<const CachedPlan>(std::move(cached));
}

Result<QueryResponse> Engine::RunPlan(std::shared_ptr<const CachedPlan> planned,
                                      const QueryOptions& options,
                                      std::string_view key,
                                      const CancelToken* deadline) const {
  if (deadline != nullptr && deadline->Expired()) {
    return Status::DeadlineExceeded(
        "query cancelled or deadline expired before execution");
  }

  QueryResponse response;
  response.planner = planned->planner_name;
  response.planned = std::move(planned);

  // Result keys embed the store generation: any mutation bumps it, so
  // pre-mutation entries can never match again (they age out through LRU
  // eviction). Execution options are deliberately not part of the key —
  // num_threads and SIP are byte-identical-output knobs.
  const bool use_result_cache =
      options.use_result_cache && result_cache_.capacity() > 0;
  std::string result_key;
  if (use_result_cache) {
    result_key = key;
    result_key.push_back(kKeySep);
    result_key.append(
        std::to_string(generation_.load(std::memory_order_relaxed)));
    std::lock_guard<std::mutex> lock(result_mu_);
    if (auto hit = result_cache_.Get(result_key)) {
      response.result = std::move(hit->result);
      response.result_cache_hit = true;
      return response;
    }
  }

  exec::ExecOptions exec_options;
  exec_options.sideways_information_passing =
      options.sideways_information_passing;
  exec_options.num_threads = options.num_threads;
  exec_options.cancel = deadline;

  exec::Executor executor(&store_, exec_options);
  Clock::time_point start = Clock::now();
  HSPARQL_ASSIGN_OR_RETURN(
      exec::ExecResult exec_result,
      executor.Execute(response.planned->planned.query,
                       response.planned->planned.plan));
  response.exec_millis = MillisSince(start);
  response.result =
      std::make_shared<const exec::ExecResult>(std::move(exec_result));

  if (use_result_cache) {
    std::lock_guard<std::mutex> lock(result_mu_);
    result_cache_.Put(result_key, CachedResult{response.result});
  }
  return response;
}

Result<QueryResponse> Engine::Query(std::string_view text,
                                    const QueryOptions& options) const {
  Clock::time_point pipeline_start = Clock::now();

  CancelToken deadline_token;
  const CancelToken* deadline = options.cancel;
  if (options.timeout_ms > 0) {
    deadline_token.SetTimeout(std::chrono::milliseconds(options.timeout_ms));
    deadline_token.set_parent(options.cancel);
    deadline = &deadline_token;
  }

  std::shared_lock<std::shared_mutex> store_lock(store_mu_);

  std::string_view key;
  bool plan_hit = false;
  HSPARQL_ASSIGN_OR_RETURN(std::shared_ptr<const CachedPlan> planned,
                           GetOrBuildPlan(text, options, &key, &plan_hit));

  HSPARQL_ASSIGN_OR_RETURN(
      QueryResponse response,
      RunPlan(std::move(planned), options, key, deadline));
  response.plan_cache_hit = plan_hit;
  if (!plan_hit) {
    response.parse_millis = response.planned->parse_millis;
    response.plan_millis = response.planned->plan_millis;
  }
  response.total_millis = MillisSince(pipeline_start);
  return response;
}

Result<PreparedQuery> Engine::Prepare(std::string_view text,
                                      const QueryOptions& options) const {
  std::shared_lock<std::shared_mutex> store_lock(store_mu_);
  PreparedQuery prepared;
  std::string_view key;
  bool plan_hit = false;
  HSPARQL_ASSIGN_OR_RETURN(prepared.plan_,
                           GetOrBuildPlan(text, options, &key, &plan_hit));
  prepared.cache_key_ = std::string(key);
  prepared.options_ = options;
  return prepared;
}

Result<QueryResponse> Engine::ExecutePrepared(
    const PreparedQuery& prepared) const {
  if (!prepared.valid()) {
    return Status::InvalidArgument(
        "ExecutePrepared called with a default-constructed PreparedQuery");
  }
  Clock::time_point pipeline_start = Clock::now();

  const QueryOptions& options = prepared.options_;
  CancelToken deadline_token;
  const CancelToken* deadline = options.cancel;
  if (options.timeout_ms > 0) {
    deadline_token.SetTimeout(std::chrono::milliseconds(options.timeout_ms));
    deadline_token.set_parent(options.cancel);
    deadline = &deadline_token;
  }

  std::shared_lock<std::shared_mutex> store_lock(store_mu_);
  HSPARQL_ASSIGN_OR_RETURN(
      QueryResponse response,
      RunPlan(prepared.plan_, options, prepared.cache_key_, deadline));
  response.plan_cache_hit = true;
  response.total_millis = MillisSince(pipeline_start);
  return response;
}

Status Engine::AddTriples(
    std::span<const std::array<rdf::Term, 3>> triples) {
  // Writers serialise on mutation_mu_ so the staging phase can run under a
  // *shared* store lock: queries keep executing while the delta levels and
  // the new statistics are built. The exclusive lock is then held only for
  // Apply's O(new terms) interning plus six vector swaps.
  std::lock_guard<std::mutex> writer_lock(mutation_mu_);

  storage::TripleStore::PendingUpdate update;
  std::optional<storage::Statistics> new_stats;
  {
    std::shared_lock<std::shared_mutex> store_lock(store_mu_);
    const std::size_t threads = ThreadPool::Shared().num_workers() + 1;
    update = store_.PrepareAdd(triples, threads);
    if (!update.no_change()) {
      new_stats.emplace(storage::Statistics::Compute(store_, update));
    }
  }

  std::unique_lock<std::shared_mutex> store_lock(store_mu_);
  if (!update.no_change()) {
    store_.Apply(std::move(update));
    stats_ = std::move(new_stats);
  }
  // The generation bumps even for a pure-duplicate batch (pre-existing
  // semantics: every AddTriples call invalidates), keeping callers'
  // generation arithmetic stable.
  InvalidateForMutation();
  return Status::OK();
}

void Engine::ReplaceStore(storage::TripleStore&& store) {
  std::lock_guard<std::mutex> writer_lock(mutation_mu_);
  std::unique_lock<std::shared_mutex> store_lock(store_mu_);
  store_ = std::move(store);
  stats_.emplace(storage::Statistics::Compute(store_));
  InvalidateForMutation();
}

void Engine::InvalidateForMutation() {
  generation_.fetch_add(1, std::memory_order_relaxed);
  // Cached plans may embed cost decisions from the old statistics; drop
  // them all. Results invalidate lazily via the generation in their keys.
  std::lock_guard<std::mutex> lock(plan_mu_);
  plan_cache_.Clear();
}

void Engine::ClearCaches() {
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    plan_cache_.Clear();
  }
  {
    std::lock_guard<std::mutex> lock(result_mu_);
    result_cache_.Clear();
  }
}

std::size_t Engine::store_size() const {
  std::shared_lock<std::shared_mutex> store_lock(store_mu_);
  return store_.size();
}

EngineStats Engine::stats() const {
  EngineStats out;
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    out.plan_cache = plan_cache_.counters();
    out.plan_cache_size = plan_cache_.size();
  }
  {
    std::lock_guard<std::mutex> lock(result_mu_);
    out.result_cache = result_cache_.counters();
    out.result_cache_size = result_cache_.size();
  }
  out.generation = generation();
  return out;
}

}  // namespace hsparql::engine
