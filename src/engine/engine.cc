#include "engine/engine.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "cdp/cardinality.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "lint/plan_lint.h"
#include "rdf/graph.h"
#include "storage/ordering.h"

namespace hsparql::engine {
namespace {

/// Separator for cache-key components; cannot occur in SPARQL text that
/// survives normalization, planner names or fingerprints.
constexpr char kKeySep = '\x1f';

/// Character classes for NormalizeQueryText's run scanner.
constexpr std::uint8_t kPlain = 0;
constexpr std::uint8_t kSpace = 1;
constexpr std::uint8_t kQuote = 2;
constexpr std::uint8_t kHash = 3;
constexpr std::uint8_t kLess = 4;

constexpr std::array<std::uint8_t, 256> MakeCharClass() {
  std::array<std::uint8_t, 256> table{};
  for (char c : {' ', '\t', '\n', '\r', '\f', '\v'}) {
    table[static_cast<unsigned char>(c)] = kSpace;
  }
  table['"'] = kQuote;
  table['\''] = kQuote;
  table['#'] = kHash;
  table['<'] = kLess;
  return table;
}
constexpr std::array<std::uint8_t, 256> kCharClass = MakeCharClass();

std::uint8_t CharClass(char c) {
  return kCharClass[static_cast<unsigned char>(c)];
}

/// Per-thread plan-cache key buffer: the cache-hit path reuses it so key
/// construction allocates nothing after warm-up. Only valid until the
/// next GetOrBuildPlan call on the same thread.
thread_local std::string tls_plan_key;  // NOLINT(runtime/global)

/// NormalizeQueryText into a caller-provided (reusable) buffer.
void NormalizeQueryTextInto(std::string_view text, std::string* out_ptr) {
  std::string& out = *out_ptr;
  out.clear();
  out.reserve(text.size());
  bool pending_space = false;
  const std::size_t n = text.size();
  std::size_t i = 0;
  while (i < n) {
    const std::uint8_t cls = CharClass(text[i]);
    if (cls == kSpace) {
      pending_space = true;
      ++i;
      continue;
    }
    if (cls == kHash) {
      // '#' starts a line comment (the lexer skips it alongside
      // whitespace, so it also separates tokens): drop it and leave a
      // space. Semantically different comment placements — e.g. a comment
      // swallowing half a pattern — now normalize to different keys.
      while (i < n && text[i] != '\n') ++i;
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    if (cls == kLess) {
      // Mirror the lexer's LexIriOrLess: '<' opens an IRI ref unless the
      // next char reads as a comparison right-hand side. IRI bodies are
      // copied verbatim so a '#' fragment is not mistaken for a comment;
      // the copy stops at whitespace (malformed per the lexer) or '>'.
      const char next = i + 1 < n ? text[i + 1] : '\0';
      const bool comparison =
          next == '=' || next == ' ' || next == '\t' || next == '\n' ||
          next == '?' || next == '"' ||
          std::isdigit(static_cast<unsigned char>(next));
      if (!comparison) {
        std::size_t j = i + 1;
        while (j < n && CharClass(text[j]) != kSpace && text[j] != '>') ++j;
        if (j < n && text[j] == '>') ++j;
        out.append(text.substr(i, j - i));
        i = j;
        continue;
      }
      out.push_back('<');
      ++i;
      continue;
    }
    if (cls == kQuote) {
      // Copy the quoted literal verbatim, honouring backslash escapes —
      // whitespace inside literals is significant.
      const char quote = text[i];
      std::size_t j = i + 1;
      while (j < n) {
        if (text[j] == '\\' && j + 1 < n) {
          j += 2;
        } else if (text[j] == quote) {
          ++j;
          break;
        } else {
          ++j;
        }
      }
      out.append(text.substr(i, j - i));
      i = j;
      continue;
    }
    // Bulk-append the run of ordinary characters starting here (this is
    // the hot path: normalization dominates plan-cache-hit latency).
    std::size_t j = i + 1;
    while (j < n && CharClass(text[j]) == kPlain) ++j;
    out.append(text.substr(i, j - i));
    i = j;
  }
}

}  // namespace

std::string NormalizeQueryText(std::string_view text) {
  std::string out;
  NormalizeQueryTextInto(text, &out);
  return out;
}

Engine::Engine(storage::TripleStore&& store, EngineOptions options)
    : options_(options),
      store_(std::move(store)),
      plan_cache_(options.plan_cache_capacity),
      result_cache_(options.result_cache_capacity),
      slow_log_(options.slow_query_millis, options.slow_query_sink) {
  stats_.emplace(storage::Statistics::Compute(store_));
  RegisterMetrics();
  metrics_.base_triples->Set(static_cast<std::int64_t>(store_.base_size()));
  metrics_.delta_triples->Set(static_cast<std::int64_t>(store_.delta_size()));
}

void Engine::RegisterMetrics() {
  metrics_.queries_total = registry_.GetCounter(
      "engine.queries.total", "Finished query pipelines, ok or failed");
  metrics_.queries_errors = registry_.GetCounter(
      "engine.queries.errors", "Query pipelines that returned a non-OK status");
  metrics_.queries_deadline = registry_.GetCounter(
      "engine.queries.deadline_exceeded",
      "Query pipelines that ran out of time (kDeadlineExceeded)");
  metrics_.queries_cancelled = registry_.GetCounter(
      "engine.queries.cancelled",
      "Query pipelines cancelled by their caller's token (kCancelled)");
  metrics_.queries_slow = registry_.GetCounter(
      "engine.queries.slow", "Queries emitted to the slow-query log");
  metrics_.rows_scanned = registry_.GetCounter(
      "engine.rows.scanned",
      "Index-range rows visited by scan operators (storage traffic)");
  metrics_.rows_emitted = registry_.GetCounter(
      "engine.rows.emitted", "Result rows returned to callers");
  metrics_.active_queries = registry_.GetGauge(
      "engine.queries.active", "Query pipelines currently in flight");
  metrics_.generation = registry_.GetGauge(
      "engine.store.generation", "Store generation (bumped by every mutation)");
  metrics_.base_triples = registry_.GetGauge(
      "engine.store.base_triples", "Triples in the store's base level");
  metrics_.delta_triples = registry_.GetGauge(
      "engine.store.delta_triples", "Triples in the store's delta level");
  metrics_.parse_millis = registry_.GetHistogram(
      "engine.query.parse_millis", "Parse+analyze stage latency");
  metrics_.plan_millis = registry_.GetHistogram(
      "engine.query.plan_millis", "Planning stage latency");
  metrics_.exec_millis = registry_.GetHistogram(
      "engine.query.exec_millis", "Execution stage latency");
  metrics_.total_millis = registry_.GetHistogram(
      "engine.query.total_millis", "End-to-end pipeline latency");

  // Values with a consistency story of their own are exported as callbacks
  // read at Snapshot() time (DESIGN.md §4g): LRU counters under their
  // cache mutex, pool stats from the shared pool's own atomics.
  registry_.AddCallbackCounter(
      "engine.plan_cache.hits", "Plan-cache hits", [this] {
        MutexLock lock(&plan_mu_);
        return plan_cache_.counters().hits;
      });
  registry_.AddCallbackCounter(
      "engine.plan_cache.misses", "Plan-cache misses", [this] {
        MutexLock lock(&plan_mu_);
        return plan_cache_.counters().misses;
      });
  registry_.AddCallbackCounter(
      "engine.plan_cache.evictions", "Plan-cache capacity evictions", [this] {
        MutexLock lock(&plan_mu_);
        return plan_cache_.counters().evictions;
      });
  registry_.AddCallbackGauge(
      "engine.plan_cache.size", "Plans currently cached", [this] {
        MutexLock lock(&plan_mu_);
        return static_cast<std::int64_t>(plan_cache_.size());
      });
  registry_.AddCallbackCounter(
      "engine.result_cache.hits", "Result-cache hits", [this] {
        MutexLock lock(&result_mu_);
        return result_cache_.counters().hits;
      });
  registry_.AddCallbackCounter(
      "engine.result_cache.misses", "Result-cache misses", [this] {
        MutexLock lock(&result_mu_);
        return result_cache_.counters().misses;
      });
  registry_.AddCallbackCounter(
      "engine.result_cache.evictions", "Result-cache capacity evictions",
      [this] {
        MutexLock lock(&result_mu_);
        return result_cache_.counters().evictions;
      });
  registry_.AddCallbackGauge(
      "engine.result_cache.size", "Results currently cached", [this] {
        MutexLock lock(&result_mu_);
        return static_cast<std::int64_t>(result_cache_.size());
      });
  // Store-backend family (DESIGN.md §4k): backend kind and the byte-level
  // mapped-vs-heap residency of the triple data, read under a shared
  // store lock so a concurrent compaction never yields a torn footprint.
  registry_.AddCallbackGauge(
      "engine.store.backend",
      "Storage backend serving the base levels (0 in_memory, 1 "
      "mmap_snapshot)",
      [this] {
        ReaderMutexLock lock(&store_mu_);
        return static_cast<std::int64_t>(store_.backend());
      });
  registry_.AddCallbackGauge(
      "engine.store.snapshot_bytes",
      "Size of the open snapshot image (0 for in-memory stores)", [this] {
        ReaderMutexLock lock(&store_mu_);
        return static_cast<std::int64_t>(store_.footprint().snapshot_bytes);
      });
  registry_.AddCallbackGauge(
      "engine.store.mapped_triple_bytes",
      "Ordering bytes served zero-copy from the mmap'd image", [this] {
        ReaderMutexLock lock(&store_mu_);
        return static_cast<std::int64_t>(
            store_.footprint().mapped_triple_bytes);
      });
  registry_.AddCallbackGauge(
      "engine.store.heap_triple_bytes",
      "Ordering bytes resident in heap vectors (bases + deltas)", [this] {
        ReaderMutexLock lock(&store_mu_);
        return static_cast<std::int64_t>(store_.footprint().heap_triple_bytes);
      });
  registry_.AddCallbackGauge(
      "engine.store.dictionary_terms", "Terms in the dictionary", [this] {
        ReaderMutexLock lock(&store_mu_);
        return static_cast<std::int64_t>(store_.footprint().dictionary_terms);
      });
  registry_.AddCallbackGauge(
      "engine.store.base_dictionary_terms",
      "Terms still indexed through the snapshot's sorted-id permutation",
      [this] {
        ReaderMutexLock lock(&store_mu_);
        return static_cast<std::int64_t>(
            store_.footprint().base_dictionary_terms);
      });
  // Cardinality-memo family: how much trace-fed statistics the adaptive
  // planner has to work with (DESIGN.md §4l).
  registry_.AddCallbackGauge(
      "engine.cardinality_memo.patterns",
      "Distinct pattern shapes with observed cardinalities", [this] {
        return static_cast<std::int64_t>(cardinality_memo_.size());
      });
  registry_.AddCallbackCounter(
      "engine.cardinality_memo.observations",
      "Per-scan cardinality observations folded into the memo",
      [this] { return cardinality_memo_.observed_total(); });
  registry_.AddCallbackCounter(
      "engine.cardinality_memo.dropped",
      "Observations dropped because the memo was at max_patterns",
      [this] { return cardinality_memo_.dropped_total(); });
  registry_.AddCallbackCounter(
      "threadpool.tasks_executed", "Tasks run by the shared pool",
      [] { return ThreadPool::Shared().stats().tasks_executed; });
  registry_.AddCallbackCounter(
      "threadpool.steals", "Work-stealing events in the shared pool",
      [] { return ThreadPool::Shared().stats().steals; });
  registry_.AddCallbackGauge(
      "threadpool.queue_depth", "Tasks queued and not yet started", [] {
        return static_cast<std::int64_t>(
            ThreadPool::Shared().stats().queue_depth);
      });
}

std::string Engine::ExportMetrics(MetricsFormat format) const {
  const obs::MetricsSnapshot snapshot = registry_.Snapshot();
  return format == MetricsFormat::kJson ? snapshot.ToJson()
                                        : snapshot.ToPrometheus();
}

Result<const Engine::PlannerEntry*> Engine::PlannerFor(
    const QueryOptions& options) const {
  // The leapfrog knob rides in the kind byte's high bit: planner kinds are
  // small, and (kind, leapfrog, seed) is exactly what MakePlanner sees.
  const std::pair<std::uint8_t, std::uint64_t> id = options.PlannerCacheId();
  {
    MutexLock lock(&planner_mu_);
    auto it = planners_.find(id);
    if (it != planners_.end()) return &it->second;
  }
  const storage::Statistics* stats = stats_ ? &*stats_ : nullptr;
  HSPARQL_ASSIGN_OR_RETURN(
      std::unique_ptr<plan::Planner> planner,
      plan::MakePlanner(options.planner, &store_, stats,
                        options.ToFactoryOptions()));
  PlannerEntry entry;
  entry.key_suffix.push_back(kKeySep);
  entry.key_suffix.append(planner->Name());
  entry.key_suffix.push_back(kKeySep);
  entry.key_suffix.append(planner->OptionsFingerprint());
  entry.planner = std::move(planner);
  // Two threads may build the same entry concurrently; emplace keeps the
  // first and the loser's copy is discarded.
  MutexLock lock(&planner_mu_);
  return &planners_.emplace(id, std::move(entry)).first->second;
}

Result<std::shared_ptr<const CachedPlan>> Engine::GetOrBuildPlan(
    std::string_view text, const QueryOptions& options,
    std::string_view* key, bool* cache_hit) const {
  HSPARQL_ASSIGN_OR_RETURN(const PlannerEntry* planner, PlannerFor(options));
  NormalizeQueryTextInto(text, &tls_plan_key);
  tls_plan_key.append(planner->key_suffix);
  *key = tls_plan_key;

  {
    MutexLock lock(&plan_mu_);
    if (auto hit = plan_cache_.Get(*key)) {
      *cache_hit = true;
      return std::move(*hit);
    }
  }
  *cache_hit = false;

  Timer timer;
  HSPARQL_ASSIGN_OR_RETURN(plan::AnalyzedQuery analyzed,
                           plan::AnalyzedQuery::FromText(text));
  const double parse_millis = timer.ElapsedMillis();

  timer.Start();
  HSPARQL_ASSIGN_OR_RETURN(plan::PlannedQuery planned,
                           planner->planner->Plan(analyzed));
  const double plan_millis = timer.ElapsedMillis();

  // Lint on prepare: a malformed plan never reaches the cache or the
  // executor (whose own runtime checks stay active regardless).
  HSPARQL_RETURN_IF_ERROR(
      lint::ReportToStatus(lint::LintPlan(planned.query, planned.plan)));

  auto cached = std::make_shared<CachedPlan>();
  cached->planned = std::move(planned);
  cached->planner_name = std::string(planner->planner->Name());
  cached->parse_millis = parse_millis;
  cached->plan_millis = plan_millis;
  // The key's first component *is* the normalized text (kKeySep cannot
  // survive normalization), so the hash costs one scan here and nothing
  // per request.
  cached->query_hash = obs::HashQueryText(key->substr(0, key->find(kKeySep)));

  {
    MutexLock lock(&plan_mu_);
    // Two threads may plan the same cold query concurrently; the second
    // Put overwrites with an equivalent plan, which is harmless.
    plan_cache_.Put(std::string(*key), cached);
  }
  return std::shared_ptr<const CachedPlan>(std::move(cached));
}

Result<QueryResponse> Engine::RunPlan(std::shared_ptr<const CachedPlan> planned,
                                      const QueryOptions& options,
                                      std::string_view key,
                                      const CancelToken* deadline) const {
  if (deadline != nullptr && deadline->Expired()) {
    return deadline->ToStatus(
        deadline->reason() == CancelReason::kDeadline
            ? "query deadline expired before execution"
            : "query cancelled before execution");
  }

  QueryResponse response;
  response.planner = planned->planner_name;
  response.planned = std::move(planned);

  // Result keys embed the store generation: any mutation bumps it, so
  // pre-mutation entries can never match again (they age out through LRU
  // eviction). Execution options are deliberately not part of the key —
  // num_threads and SIP are byte-identical-output knobs. The capacity is
  // read from options_ (immutable) rather than the cache so this check
  // stays outside result_mu_.
  const bool use_result_cache =
      options.use_result_cache && options_.result_cache_capacity > 0;
  std::string result_key;
  if (use_result_cache) {
    result_key = key;
    result_key.push_back(kKeySep);
    result_key.append(
        std::to_string(generation_.load(std::memory_order_relaxed)));
    MutexLock lock(&result_mu_);
    if (auto hit = result_cache_.Get(result_key)) {
      response.result = std::move(hit->result);
      // A trace captured when the cached entry was computed (if any)
      // rides along — the actuals are still those of the real execution.
      response.trace = response.result->trace;
      response.result_cache_hit = true;
      return response;
    }
  }

  exec::Executor executor(&store_, options.ToExecOptions(deadline));
  Timer timer;
  HSPARQL_ASSIGN_OR_RETURN(
      exec::ExecResult exec_result,
      executor.Execute(response.planned->planned.query,
                       response.planned->planned.plan));
  response.exec_millis = timer.ElapsedMillis();
  if (exec_result.trace != nullptr && stats_.has_value()) {
    // EXPLAIN ANALYZE's estimated-vs-actual column: annotate each trace
    // node with the statistics-based estimate for the same plan node —
    // the signal HSP's syntax heuristics replace (paper §4 vs §3).
    const cdp::CardinalityEstimator estimator(&store_, &*stats_);
    const std::vector<std::uint64_t> estimates =
        estimator.EstimatePlanCardinalities(response.planned->planned.query,
                                            response.planned->planned.plan);
    obs::AnnotateEstimates(exec_result.trace.get(), estimates);
  }
  response.trace = exec_result.trace;
  response.result =
      std::make_shared<const exec::ExecResult>(std::move(exec_result));
  // Feed the per-pattern cardinality memo from the always-recorded
  // cardinalities vector (result-cache hits returned above: re-observing
  // a cached execution would double-count without adding information).
  FoldCardinalities(response.planned->planned, *response.result,
                    response.trace.get());

  if (use_result_cache) {
    MutexLock lock(&result_mu_);
    result_cache_.Put(result_key, CachedResult{response.result});
  }
  return response;
}

Result<QueryResponse> Engine::Query(std::string_view text,
                                    const QueryOptions& options) const {
  Timer timer;
  obs::ScopedGauge active(metrics_.active_queries);
  Result<QueryResponse> result = QueryImpl(text, options);
  ObserveQuery(text, options, timer.ElapsedMillis(), &result);
  return result;
}

void Engine::FoldCardinalities(const plan::PlannedQuery& planned,
                               const exec::ExecResult& result,
                               const obs::QueryTrace* trace) const {
  if (planned.plan.empty()) return;
  std::vector<const hsp::PlanNode*> stack = {planned.plan.root()};
  std::string label;
  while (!stack.empty()) {
    const hsp::PlanNode* node = stack.back();
    stack.pop_back();
    for (const auto& child : node->children) stack.push_back(child.get());
    if (node->kind != hsp::PlanNode::Kind::kScan) continue;
    if (node->pattern_index >= planned.query.patterns.size()) continue;
    if (node->id < 0 ||
        static_cast<std::size_t>(node->id) >= result.cardinalities.size()) {
      continue;
    }
    // Shape label: the pattern with variables abstracted to '?', so two
    // queries differing only in variable names share one memo entry. The
    // key is the label's FNV-1a hash — consistent with query_hash, cheap,
    // and reproducible by the adaptive planner from the pattern alone.
    const sparql::TriplePattern& tp = planned.query.patterns[node->pattern_index];
    label.clear();
    for (const sparql::PatternTerm* term : {&tp.s, &tp.p, &tp.o}) {
      if (!label.empty()) label.push_back(' ');
      if (term->is_variable()) {
        label.push_back('?');
      } else {
        label.append(term->constant.ToString());
      }
    }
    double estimated = -1.0;
    if (trace != nullptr) {
      const obs::OperatorTrace* op = trace->Find(node->id);
      if (op != nullptr && op->has_estimate()) estimated = op->estimated_rows;
    }
    cardinality_memo_.Observe(
        obs::HashQueryText(label), label,
        result.cardinalities[static_cast<std::size_t>(node->id)], estimated);
  }
}

Result<QueryResponse> Engine::QueryImpl(std::string_view text,
                                        const QueryOptions& options) const {
  CancelToken deadline_token;
  const CancelToken* deadline = options.cancel;
  if (options.timeout_ms > 0) {
    deadline_token.SetTimeout(std::chrono::milliseconds(options.timeout_ms));
    deadline_token.set_parent(options.cancel);
    deadline = &deadline_token;
  }

  ReaderMutexLock store_lock(&store_mu_);

  std::string_view key;
  bool plan_hit = false;
  HSPARQL_ASSIGN_OR_RETURN(std::shared_ptr<const CachedPlan> planned,
                           GetOrBuildPlan(text, options, &key, &plan_hit));

  HSPARQL_ASSIGN_OR_RETURN(
      QueryResponse response,
      RunPlan(std::move(planned), options, key, deadline));
  response.plan_cache_hit = plan_hit;
  if (!plan_hit) {
    response.parse_millis = response.planned->parse_millis;
    response.plan_millis = response.planned->plan_millis;
  }
  return response;
}

Result<PreparedQuery> Engine::Prepare(std::string_view text,
                                      const QueryOptions& options) const {
  ReaderMutexLock store_lock(&store_mu_);
  PreparedQuery prepared;
  std::string_view key;
  bool plan_hit = false;
  HSPARQL_ASSIGN_OR_RETURN(prepared.plan_,
                           GetOrBuildPlan(text, options, &key, &plan_hit));
  prepared.cache_key_ = std::string(key);
  prepared.options_ = options;
  return prepared;
}

Result<QueryResponse> Engine::ExecutePrepared(
    const PreparedQuery& prepared) const {
  Timer timer;
  obs::ScopedGauge active(metrics_.active_queries);
  Result<QueryResponse> result = ExecutePreparedImpl(prepared);
  // The cache key is normalized-text ⊕ sep ⊕ planner ⊕ sep ⊕ fingerprint,
  // so its first component hashes identically to the Query() path.
  std::string_view text = prepared.cache_key_;
  text = text.substr(0, text.find(kKeySep));
  ObserveQuery(text, prepared.options_, timer.ElapsedMillis(), &result);
  return result;
}

Result<QueryResponse> Engine::ExecutePreparedImpl(
    const PreparedQuery& prepared) const {
  if (!prepared.valid()) {
    return Status::InvalidArgument(
        "ExecutePrepared called with a default-constructed PreparedQuery");
  }
  const QueryOptions& options = prepared.options_;
  CancelToken deadline_token;
  const CancelToken* deadline = options.cancel;
  if (options.timeout_ms > 0) {
    deadline_token.SetTimeout(std::chrono::milliseconds(options.timeout_ms));
    deadline_token.set_parent(options.cancel);
    deadline = &deadline_token;
  }

  ReaderMutexLock store_lock(&store_mu_);
  HSPARQL_ASSIGN_OR_RETURN(
      QueryResponse response,
      RunPlan(prepared.plan_, options, prepared.cache_key_, deadline));
  response.plan_cache_hit = true;
  return response;
}

void Engine::ObserveQuery(std::string_view text, const QueryOptions& options,
                          double total_millis,
                          Result<QueryResponse>* result) const {
  metrics_.queries_total->Add();
  metrics_.total_millis->Observe(total_millis);

  obs::SlowQueryEvent event;
  event.request_id = options.request_id;
  event.total_millis = total_millis;
  event.generation = generation();
  if (result->ok()) {
    QueryResponse& response = **result;
    response.total_millis = total_millis;
    event.planner = response.planner;
    event.parse_millis = response.parse_millis;
    event.plan_millis = response.plan_millis;
    event.exec_millis = response.exec_millis;
    event.plan_cache_hit = response.plan_cache_hit;
    event.result_cache_hit = response.result_cache_hit;
    event.rows = response.rows();
    metrics_.parse_millis->Observe(response.parse_millis);
    metrics_.plan_millis->Observe(response.plan_millis);
    metrics_.exec_millis->Observe(response.exec_millis);
    metrics_.rows_emitted->Add(response.rows());
    if (response.result != nullptr) {
      metrics_.rows_scanned->Add(response.result->total_scanned_rows);
      // Top operators by self time, from the always-recorded stats vector
      // (no trace needed). Ties break on node id for determinism.
      std::vector<const exec::OperatorStat*> ops;
      ops.reserve(response.result->stats.size());
      for (const exec::OperatorStat& s : response.result->stats) {
        ops.push_back(&s);
      }
      const std::size_t top = std::min<std::size_t>(3, ops.size());
      std::partial_sort(ops.begin(), ops.begin() + static_cast<std::ptrdiff_t>(top),
                        ops.end(),
                        [](const exec::OperatorStat* a,
                           const exec::OperatorStat* b) {
                          if (a->millis != b->millis) {
                            return a->millis > b->millis;
                          }
                          return a->node_id < b->node_id;
                        });
      for (std::size_t i = 0; i < top; ++i) {
        event.top_operators.push_back(obs::SlowQueryEvent::Op{
            ops[i]->label, ops[i]->millis, ops[i]->output_rows});
      }
    }
  } else {
    // Classification is by code() alone (never by message text): the code
    // is the stable API, the message is payload.
    const Status status = result->status();
    metrics_.queries_errors->Add();
    switch (status.code()) {
      case StatusCode::kDeadlineExceeded:
        metrics_.queries_deadline->Add();
        break;
      case StatusCode::kCancelled:
        metrics_.queries_cancelled->Add();
        break;
      default:
        break;
    }
    event.status = std::string(StatusCodeName(status.code()));
  }

  if (slow_log_.enabled() && total_millis >= slow_log_.threshold_millis()) {
    // The plan carries the hash (computed once at build); normalize only
    // on the rare emission path where no plan exists (parse errors).
    event.query_hash =
        result->ok() && (*result)->planned != nullptr
            ? (*result)->planned->query_hash
            : obs::HashQueryText(NormalizeQueryText(text));
    if (slow_log_.MaybeLog(event)) metrics_.queries_slow->Add();
  }
}

Status Engine::AddTriples(
    std::span<const std::array<rdf::Term, 3>> triples) {
  // Writers serialise on mutation_mu_ so the staging phase can run under a
  // *shared* store lock: queries keep executing while the delta levels and
  // the new statistics are built. The exclusive lock is then held only for
  // Apply's O(new terms) interning plus six vector swaps.
  MutexLock writer_lock(&mutation_mu_);

  storage::TripleStore::PendingUpdate update;
  std::optional<storage::Statistics> new_stats;
  {
    ReaderMutexLock store_lock(&store_mu_);
    const std::size_t threads = ThreadPool::Shared().num_workers() + 1;
    update = store_.PrepareAdd(triples, threads);
    if (!update.no_change()) {
      new_stats.emplace(storage::Statistics::Compute(store_, update));
    }
  }

  WriterMutexLock store_lock(&store_mu_);
  if (!update.no_change()) {
    store_.Apply(std::move(update));
    stats_ = std::move(new_stats);
  }
  // The generation bumps even for a pure-duplicate batch (pre-existing
  // semantics: every AddTriples call invalidates), keeping callers'
  // generation arithmetic stable.
  InvalidateForMutation();
  return Status::OK();
}

void Engine::ReplaceStore(storage::TripleStore&& store) {
  MutexLock writer_lock(&mutation_mu_);
  WriterMutexLock store_lock(&store_mu_);
  store_ = std::move(store);
  stats_.emplace(storage::Statistics::Compute(store_));
  InvalidateForMutation();
}

void Engine::InvalidateForMutation() {
  generation_.fetch_add(1, std::memory_order_relaxed);
  // Caller holds the store lock exclusively, so the store sizes read here
  // and the generation written above form one mutation epoch.
  metrics_.generation->Set(
      static_cast<std::int64_t>(generation_.load(std::memory_order_relaxed)));
  metrics_.base_triples->Set(static_cast<std::int64_t>(store_.base_size()));
  metrics_.delta_triples->Set(static_cast<std::int64_t>(store_.delta_size()));
  // Cached plans may embed cost decisions from the old statistics; drop
  // them all. Results invalidate lazily via the generation in their keys.
  MutexLock lock(&plan_mu_);
  plan_cache_.Clear();
}

void Engine::ClearCaches() {
  {
    MutexLock lock(&plan_mu_);
    plan_cache_.Clear();
  }
  {
    MutexLock lock(&result_mu_);
    result_cache_.Clear();
  }
}

std::size_t Engine::store_size() const {
  ReaderMutexLock store_lock(&store_mu_);
  return store_.size();
}

EngineStats Engine::stats() const {
  // Shared store lock for the whole read: mutations (which bump the
  // generation and clear the plan cache under the exclusive lock) either
  // happen entirely before this snapshot or entirely after it, so the
  // generation always matches the cache contents it is reported with.
  // See the memory-ordering contract on the declaration (engine.h).
  ReaderMutexLock store_lock(&store_mu_);
  EngineStats out;
  out.generation = generation();
  {
    MutexLock lock(&plan_mu_);
    out.plan_cache = plan_cache_.counters();
    out.plan_cache_size = plan_cache_.size();
  }
  {
    MutexLock lock(&result_mu_);
    out.result_cache = result_cache_.counters();
    out.result_cache_size = result_cache_.size();
  }
  out.backend = store_.backend();
  out.footprint = store_.footprint();
  return out;
}

}  // namespace hsparql::engine
