// Bounded LRU map used by the engine's plan and result caches.
//
// Intrusive-list-over-hash-map textbook shape: a doubly linked list holds
// the entries in recency order (front = most recently used), the map gives
// O(1) key lookup into the list. Not thread-safe by design — the owner
// declares each instance GUARDED_BY its own mutex (see Engine::plan_cache_
// / result_cache_), which makes every unlocked access a compile error
// under -Wthread-safety and keeps the hit/miss/eviction counters exact.
// Capacity is fixed at construction, so owners may cache it outside the
// lock (Engine reads EngineOptions, not the guarded cache, on hot paths).
#ifndef HSPARQL_ENGINE_LRU_CACHE_H_
#define HSPARQL_ENGINE_LRU_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <utility>

namespace hsparql::engine {

/// Transparent string hashing so caches keyed on std::string can be
/// probed with a std::string_view (e.g. a reused key buffer) without
/// materialising a key copy. Pair with std::equal_to<> as KeyEqual.
struct StringKeyHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// Monotonic cache counters (never reset by Clear()).
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;  // capacity evictions only, not Clear()
};

template <typename Key, typename Value, typename Hash = std::hash<Key>,
          typename KeyEqual = std::equal_to<Key>>
class LruCache {
 public:
  /// Capacity 0 disables the cache: Get always misses, Put is a no-op.
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Looks up `key`; a hit moves the entry to the front (most recent).
  /// With a transparent Hash/KeyEqual, `key` may be any probe type the
  /// comparator accepts (e.g. string_view against std::string keys).
  template <typename LookupKey = Key>
  std::optional<Value> Get(const LookupKey& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++counters_.misses;
      return std::nullopt;
    }
    entries_.splice(entries_.begin(), entries_, it->second);
    ++counters_.hits;
    return it->second->second;
  }

  /// Inserts or overwrites `key`, making it the most recent entry and
  /// evicting the least recent one when over capacity.
  void Put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.emplace_front(key, std::move(value));
    index_.emplace(key, entries_.begin());
    ++counters_.insertions;
    if (entries_.size() > capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
      ++counters_.evictions;
    }
  }

  /// Removes `key` if present.
  void Erase(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    entries_.erase(it->second);
    index_.erase(it);
  }

  /// Drops every entry (counters keep accumulating).
  void Clear() {
    entries_.clear();
    index_.clear();
  }

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  const CacheCounters& counters() const { return counters_; }

 private:
  std::size_t capacity_;
  /// (key, value), most recently used first.
  std::list<std::pair<Key, Value>> entries_;
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                     Hash, KeyEqual>
      index_;
  CacheCounters counters_;
};

}  // namespace hsparql::engine

#endif  // HSPARQL_ENGINE_LRU_CACHE_H_
