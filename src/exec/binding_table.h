// Columnar intermediate results.
//
// The engine is operator-at-a-time in MonetDB's style: every operator fully
// materialises its output as a BindingTable (struct-of-arrays of TermIds,
// one column per variable), which is what makes intermediate-result sizes —
// the quantity the paper's heuristics fight to minimise — directly
// observable.
#ifndef HSPARQL_EXEC_BINDING_TABLE_H_
#define HSPARQL_EXEC_BINDING_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "sparql/ast.h"

namespace hsparql::exec {

/// A materialised set of mappings (the SPARQL analogue of relational
/// valuations, §3): `columns[i][r]` is the binding of `vars[i]` in row `r`.
struct BindingTable {
  std::vector<sparql::VarId> vars;
  std::vector<std::vector<rdf::TermId>> columns;
  /// Number of rows; kept explicit so zero-variable tables (fully bound
  /// patterns) can still count matches.
  std::size_t rows = 0;
  /// Sort order of the rows as a variable prefix: rows are ordered by
  /// sorted_by[0], ties by sorted_by[1], ... Empty means unordered.
  std::vector<sparql::VarId> sorted_by;

  /// Index of `var` in `vars`, or npos.
  static constexpr std::size_t npos = SIZE_MAX;
  std::size_t ColumnOf(sparql::VarId var) const {
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (vars[i] == var) return i;
    }
    return npos;
  }

  bool HasVar(sparql::VarId var) const { return ColumnOf(var) != npos; }

  /// True if rows are sorted by `var` as primary key.
  bool SortedBy(sparql::VarId var) const {
    return !sorted_by.empty() && sorted_by[0] == var;
  }

  /// Reserves capacity for `n` rows in every column. Bulk materialisation
  /// loops call this up front instead of growing each column doubling-wise.
  void Reserve(std::size_t n) {
    for (auto& col : columns) col.reserve(n);
  }

  /// Appends every row of `other`, which must have the same column count
  /// (schema checks are the caller's job). The morsel-merge step of the
  /// parallel operators: concatenating per-morsel outputs in morsel order.
  void AppendRows(const BindingTable& other);

  /// Debug/diagnostic check that the data matches `sorted_by`.
  bool CheckSortedness() const;

  /// Renders up to `max_rows` rows with names resolved through `query` and
  /// `dict` (examples and debugging).
  std::string ToString(const sparql::Query& query,
                       const rdf::Dictionary& dict,
                       std::size_t max_rows = 20) const;
};

}  // namespace hsparql::exec

#endif  // HSPARQL_EXEC_BINDING_TABLE_H_
