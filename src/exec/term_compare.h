// FILTER comparison semantics shared by the executor and the reference
// evaluator used in tests.
#ifndef HSPARQL_EXEC_TERM_COMPARE_H_
#define HSPARQL_EXEC_TERM_COMPARE_H_

#include "rdf/term.h"
#include "sparql/ast.h"

namespace hsparql::exec {

/// Total order on terms: numeric when both lexical forms parse fully as
/// numbers, lexicographic on the lexical form otherwise. Returns -1/0/+1.
int CompareTerms(const rdf::Term& a, const rdf::Term& b);

/// Evaluates `a op b` under CompareTerms; equality additionally requires
/// matching term kinds (an IRI never equals a literal).
bool EvalFilterOp(sparql::FilterOp op, const rdf::Term& a, const rdf::Term& b);

}  // namespace hsparql::exec

#endif  // HSPARQL_EXEC_TERM_COMPARE_H_
