#include "exec/binding_table.h"

#include <algorithm>
#include <sstream>

namespace hsparql::exec {

void BindingTable::AppendRows(const BindingTable& other) {
  for (std::size_t c = 0; c < columns.size(); ++c) {
    columns[c].insert(columns[c].end(), other.columns[c].begin(),
                      other.columns[c].end());
  }
  rows += other.rows;
}

bool BindingTable::CheckSortedness() const {
  std::vector<std::size_t> cols;
  for (sparql::VarId v : sorted_by) {
    std::size_t c = ColumnOf(v);
    if (c == npos) return false;
    cols.push_back(c);
  }
  for (std::size_t r = 1; r < rows; ++r) {
    for (std::size_t c : cols) {
      rdf::TermId prev = columns[c][r - 1];
      rdf::TermId cur = columns[c][r];
      if (prev < cur) break;
      if (prev > cur) return false;
    }
  }
  return true;
}

std::string BindingTable::ToString(const sparql::Query& query,
                                   const rdf::Dictionary& dict,
                                   std::size_t max_rows) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (i > 0) os << " | ";
    os << '?' << query.VarName(vars[i]);
  }
  os << '\n';
  std::size_t shown = std::min(rows, max_rows);
  for (std::size_t r = 0; r < shown; ++r) {
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (i > 0) os << " | ";
      rdf::TermId id = columns[i][r];
      if (id == rdf::kInvalidTermId) {
        os << "UNDEF";  // unbound OPTIONAL / UNION cell
      } else {
        os << dict.Get(id).ToString();
      }
    }
    os << '\n';
  }
  if (shown < rows) {
    os << "... (" << rows - shown << " more rows)\n";
  }
  return os.str();
}

}  // namespace hsparql::exec
