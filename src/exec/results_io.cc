#include "exec/results_io.h"

#include <cstdio>

namespace hsparql::exec {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteResultsJson(const BindingTable& table, const sparql::Query& query,
                      const rdf::Dictionary& dict, std::ostream& out) {
  out << "{\"head\":{\"vars\":[";
  for (std::size_t i = 0; i < table.vars.size(); ++i) {
    if (i > 0) out << ',';
    out << '"' << JsonEscape(query.VarName(table.vars[i])) << '"';
  }
  out << "]},\"results\":{\"bindings\":[";
  for (std::size_t r = 0; r < table.rows; ++r) {
    if (r > 0) out << ',';
    out << '{';
    bool first = true;
    for (std::size_t c = 0; c < table.vars.size(); ++c) {
      rdf::TermId id = table.columns[c][r];
      if (id == rdf::kInvalidTermId) continue;  // unbound: omit
      if (!first) out << ',';
      first = false;
      const rdf::Term& term = dict.Get(id);
      out << '"' << JsonEscape(query.VarName(table.vars[c]))
          << "\":{\"type\":\""
          << (term.is_iri() ? "uri" : "literal") << "\",\"value\":\""
          << JsonEscape(term.lexical) << "\"}";
    }
    out << '}';
  }
  out << "]}}\n";
}

void WriteResultsTsv(const BindingTable& table, const sparql::Query& query,
                     const rdf::Dictionary& dict, std::ostream& out) {
  for (std::size_t i = 0; i < table.vars.size(); ++i) {
    if (i > 0) out << '\t';
    out << '?' << query.VarName(table.vars[i]);
  }
  out << '\n';
  for (std::size_t r = 0; r < table.rows; ++r) {
    for (std::size_t c = 0; c < table.vars.size(); ++c) {
      if (c > 0) out << '\t';
      rdf::TermId id = table.columns[c][r];
      if (id == rdf::kInvalidTermId) continue;  // unbound: empty field
      out << dict.Get(id).ToString();
    }
    out << '\n';
  }
}

}  // namespace hsparql::exec
