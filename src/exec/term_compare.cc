#include "exec/term_compare.h"

#include <cstdlib>

namespace hsparql::exec {

int CompareTerms(const rdf::Term& a, const rdf::Term& b) {
  const char* sa = a.lexical.c_str();
  const char* sb = b.lexical.c_str();
  char* end_a = nullptr;
  char* end_b = nullptr;
  double da = std::strtod(sa, &end_a);
  double db = std::strtod(sb, &end_b);
  bool num_a = end_a != sa && *end_a == '\0' && !a.lexical.empty();
  bool num_b = end_b != sb && *end_b == '\0' && !b.lexical.empty();
  if (num_a && num_b) {
    if (da < db) return -1;
    if (da > db) return 1;
    return 0;
  }
  int c = a.lexical.compare(b.lexical);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

bool EvalFilterOp(sparql::FilterOp op, const rdf::Term& a,
                  const rdf::Term& b) {
  int c = CompareTerms(a, b);
  switch (op) {
    case sparql::FilterOp::kEq:
      return c == 0 && a.kind == b.kind;
    case sparql::FilterOp::kNe:
      return c != 0 || a.kind != b.kind;
    case sparql::FilterOp::kLt:
      return c < 0;
    case sparql::FilterOp::kLe:
      return c <= 0;
    case sparql::FilterOp::kGt:
      return c > 0;
    case sparql::FilterOp::kGe:
      return c >= 0;
  }
  return false;
}

}  // namespace hsparql::exec
