// SPARQL query-result serialisation: the W3C "SPARQL 1.1 Query Results
// JSON Format" and the TSV flavour of the CSV/TSV results format. Lets the
// example tools and downstream users consume results without touching
// BindingTable internals.
#ifndef HSPARQL_EXEC_RESULTS_IO_H_
#define HSPARQL_EXEC_RESULTS_IO_H_

#include <ostream>
#include <string>

#include "exec/binding_table.h"
#include "rdf/dictionary.h"
#include "sparql/ast.h"

namespace hsparql::exec {

/// Writes `table` as SPARQL Results JSON:
///   {"head": {"vars": [...]}, "results": {"bindings": [...]}}
/// IRIs become {"type": "uri"}, literals {"type": "literal"}; unbound
/// cells (OPTIONAL/UNION) are omitted from their binding object, per spec.
void WriteResultsJson(const BindingTable& table, const sparql::Query& query,
                      const rdf::Dictionary& dict, std::ostream& out);

/// Writes `table` as SPARQL TSV: a header line of ?var names, then one
/// row per binding with N-Triples-style terms; unbound cells are empty.
void WriteResultsTsv(const BindingTable& table, const sparql::Query& query,
                     const rdf::Dictionary& dict, std::ostream& out);

/// JSON string escaping (exposed for tests).
std::string JsonEscape(std::string_view text);

}  // namespace hsparql::exec

#endif  // HSPARQL_EXEC_RESULTS_IO_H_
