#include "exec/executor.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "exec/term_compare.h"
#include "lint/plan_lint.h"
#include "storage/seek.h"

namespace hsparql::exec {

using hsp::JoinAlgo;
using hsp::PlanNode;
using rdf::Position;
using rdf::TermId;
using rdf::Triple;
using sparql::Query;
using sparql::TriplePattern;
using sparql::VarId;
using storage::Binding;
using storage::Ordering;

namespace {

/// Hash for multi-variable join keys.
struct KeyHash {
  std::size_t operator()(const std::vector<TermId>& key) const {
    std::size_t h = 1469598103934665603ULL;
    for (TermId v : key) {
      h ^= v;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

/// Smallest input for which splitting into another morsel pays for the
/// task-dispatch overhead. Deliberately low: the parallel paths must stay
/// exercised by small test inputs, and outputs are identical either way.
constexpr std::size_t kMinMorselRows = 16;

/// Rows between cancellation polls inside the heavy per-row loops (a poll
/// is an atomic load plus, with a deadline set, one clock read). Power of
/// two so the check compiles to a mask test.
constexpr std::size_t kCancelCheckMask = 4095;

/// True when the HSPARQL_FORCE_TRACE environment variable is set to a
/// non-empty value: every Execute() then collects the EXPLAIN ANALYZE
/// trace regardless of ExecOptions::collect_trace. Read once — the CI
/// trace job sets it for a whole test-suite run, not per query.
bool TraceForced() {
  static const bool forced = [] {
    // Safe despite concurrency-mt-unsafe: read exactly once under the
    // magic-static guard, and nothing in the engine calls setenv.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("HSPARQL_FORCE_TRACE");
    return env != nullptr && env[0] != '\0';
  }();
  return forced;
}

/// Mirrors the plan subtree rooted at `node` into an OperatorTrace tree,
/// filling each node from the recorded per-operator stats (keyed by plan
/// node id — unique after LogicalPlan::AssignIds).
obs::OperatorTrace BuildTraceNode(
    const PlanNode* node,
    const std::unordered_map<int, const OperatorStat*>& stats_by_id) {
  obs::OperatorTrace t;
  t.node_id = node->id;
  auto it = stats_by_id.find(node->id);
  if (it != stats_by_id.end()) {
    const OperatorStat& s = *it->second;
    t.label = s.label;
    t.input_rows = s.input_rows;
    t.output_rows = s.output_rows;
    t.probes = s.probes;
    t.self_millis = s.millis;
    t.threads = s.threads;
  }
  t.children.reserve(node->children.size());
  for (const auto& child : node->children) {
    t.children.push_back(BuildTraceNode(child.get(), stats_by_id));
  }
  return t;
}

class PlanRunner {
 public:
  PlanRunner(const storage::TripleStore* store, const Query* query,
             const ExecOptions* options, ThreadPool* pool,
             ExecResult* result)
      : store_(store),
        query_(query),
        options_(options),
        pool_(pool),
        result_(result) {}

  Result<BindingTable> Run(const PlanNode* node) {
    if (Expired()) return DeadlineStatus();
    switch (node->kind) {
      case PlanNode::Kind::kScan:
        return RunScan(node);
      case PlanNode::Kind::kLeapfrog:
        return RunLeapfrog(node);
      case PlanNode::Kind::kJoin:
        return RunJoin(node);
      case PlanNode::Kind::kFilter:
        return RunFilter(node);
      case PlanNode::Kind::kProject:
        return RunProject(node);
      case PlanNode::Kind::kUnion:
        return RunUnion(node);
      case PlanNode::Kind::kSort:
        return RunSort(node);
      case PlanNode::Kind::kLimit:
        return RunLimit(node);
    }
    return Status::Internal("unknown plan node kind");
  }

 private:
  /// True once the caller's cancel token (if any) is cancelled or past
  /// its deadline. Workers poll this at morsel boundaries and every
  /// kCancelCheckMask + 1 rows; the operator then returns DeadlineStatus()
  /// instead of its (partial) output.
  bool Expired() const {
    return options_->cancel != nullptr && options_->cancel->Expired();
  }

  /// Typed by the token's latched reason: kDeadlineExceeded for timeout
  /// expiry, kCancelled for an explicit Cancel() — the distinction the
  /// HTTP layer maps onto 408 vs 499.
  Status DeadlineStatus() const {
    return options_->cancel->ToStatus(
        options_->cancel->reason() == CancelReason::kDeadline
            ? "query deadline exceeded during execution"
            : "query cancelled during execution");
  }

  void Record(const PlanNode* node, std::string label,
              const BindingTable& out, double millis, bool is_intermediate,
              std::size_t threads = 1, std::uint64_t input_rows = 0,
              std::uint64_t probes = 0) {
    if (node->id >= 0) {
      std::size_t id = static_cast<std::size_t>(node->id);
      if (result_->cardinalities.size() <= id) {
        result_->cardinalities.resize(id + 1, 0);
      }
      result_->cardinalities[id] = out.rows;
    }
    result_->stats.push_back(OperatorStat{node->id, std::move(label),
                                          out.rows, millis,
                                          static_cast<int>(threads),
                                          input_rows, probes});
    if (is_intermediate) result_->total_intermediate_rows += out.rows;
  }

  /// Morsel fan-out for an operator over `rows` input rows: 1 (serial)
  /// unless parallelism is enabled and every morsel gets at least
  /// kMinMorselRows rows. The fan-out bounds *partitioning*, not worker
  /// count — the shared pool schedules the morsels on whatever threads it
  /// has, and output order never depends on either.
  std::size_t FanOut(std::size_t rows) const {
    if (pool_ == nullptr || options_->num_threads < 2 ||
        rows < 2 * kMinMorselRows) {
      return 1;
    }
    return std::min<std::size_t>(options_->num_threads,
                                 rows / kMinMorselRows);
  }

  /// Runs `body(m, lo, hi, &parts[m])` for each of `fanout` equal
  /// contiguous morsels of [0, rows), then concatenates the per-morsel
  /// tables onto `out` in morsel order — which is what keeps every
  /// parallel operator byte-identical to its serial loop.
  template <typename Body>
  void RunMorsels(std::size_t rows, std::size_t fanout,
                  std::size_t num_columns, BindingTable* out,
                  const Body& body) {
    std::vector<BindingTable> parts(fanout);
    pool_->ParallelFor(0, fanout, 1, [&](std::size_t m) {
      std::size_t lo = rows * m / fanout;
      std::size_t hi = rows * (m + 1) / fanout;
      BindingTable& part = parts[m];
      part.columns.resize(num_columns);
      part.Reserve(hi - lo);
      body(lo, hi, &part);
    });
    std::size_t total = 0;
    for (const BindingTable& part : parts) total += part.rows;
    out->Reserve(out->rows + total);
    for (const BindingTable& part : parts) out->AppendRows(part);
  }

  Result<BindingTable> RunScan(const PlanNode* node) {
    Timer timer;
    const TriplePattern& tp = query_->patterns[node->pattern_index];
    const rdf::Dictionary& dict = store_->dictionary();

    // Resolve pattern constants against the dictionary; an unknown
    // constant means an empty (but well-formed) result.
    std::array<std::optional<TermId>, 3> resolved;
    bool impossible = false;
    for (Position pos : rdf::kAllPositions) {
      const sparql::PatternTerm& t = tp.at(pos);
      if (t.is_constant()) {
        auto id = dict.Find(t.constant);
        if (!id.has_value()) {
          impossible = true;
        } else {
          resolved[static_cast<std::size_t>(pos)] = *id;
        }
      }
    }

    const auto positions = storage::OrderingPositions(node->ordering);
    // Bound prefix of the ordering => binary-search range.
    std::vector<Binding> prefix;
    std::size_t k = 0;
    while (k < 3 && tp.at(positions[k]).is_constant()) {
      if (!impossible) {
        prefix.push_back(Binding{
            positions[k],
            *resolved[static_cast<std::size_t>(positions[k])]});
      }
      ++k;
    }
    storage::TripleView range;
    if (!impossible) {
      range = store_->LookupPrefix(node->ordering, prefix);
    }

    // Output schema: the pattern's distinct variables in ordering priority
    // after the bound prefix; that sequence is also the sort order.
    BindingTable out;
    std::vector<Position> source_pos;
    for (std::size_t i = k; i < 3; ++i) {
      const sparql::PatternTerm& t = tp.at(positions[i]);
      if (t.is_variable() && !out.HasVar(t.var)) {
        out.vars.push_back(t.var);
        source_pos.push_back(positions[i]);
      }
    }
    out.sorted_by = out.vars;
    out.columns.resize(out.vars.size());

    // Residual checks: constants beyond the prefix (robustness against
    // non-prefix orderings) and repeated-variable equality.
    std::vector<std::pair<Position, TermId>> residual_consts;
    for (std::size_t i = k; i < 3; ++i) {
      const sparql::PatternTerm& t = tp.at(positions[i]);
      if (t.is_constant() && !impossible) {
        residual_consts.emplace_back(
            positions[i], *resolved[static_cast<std::size_t>(positions[i])]);
      }
    }
    std::vector<std::pair<Position, Position>> var_equalities;
    for (Position a : rdf::kAllPositions) {
      for (Position b : rdf::kAllPositions) {
        if (static_cast<int>(a) < static_cast<int>(b) &&
            tp.at(a).is_variable() && tp.at(b).is_variable() &&
            tp.at(a).var == tp.at(b).var) {
          var_equalities.emplace_back(a, b);
        }
      }
    }

    // Sideways-information-passing domain filters active on this scan's
    // variables (installed by enclosing hash joins). The filter vectors
    // are read-only for the lifetime of this scan — installed before the
    // subtree runs, removed after — so morsel workers share them freely.
    std::vector<std::pair<std::size_t, const std::vector<TermId>*>> sip;
    for (std::size_t c = 0; c < out.vars.size(); ++c) {
      auto it = domain_filters_.find(out.vars[c]);
      if (it != domain_filters_.end()) sip.emplace_back(c, &it->second);
    }

    // The selection core over [lo, hi) of the range, materialising into
    // `dst`; runs serially or once per morsel.
    auto scan_range = [&](std::size_t lo, std::size_t hi,
                          BindingTable* dst) {
      // One O(log n) seek into the merged view, then forward iteration —
      // morsels over a store with a delta level never pay a per-row merge
      // lookup.
      storage::TripleView::iterator it = range.IteratorAt(lo);
      for (std::size_t r = lo; r < hi; ++r, ++it) {
        if ((r & kCancelCheckMask) == 0 && Expired()) return;
        const Triple& t = *it;
        bool keep = true;
        for (const auto& [pos, id] : residual_consts) {
          if (t.at(pos) != id) {
            keep = false;
            break;
          }
        }
        for (const auto& [a, b] : var_equalities) {
          if (t.at(a) != t.at(b)) {
            keep = false;
            break;
          }
        }
        for (const auto& [c, domain] : sip) {
          if (!std::binary_search(domain->begin(), domain->end(),
                                  t.at(source_pos[c]))) {
            keep = false;
            break;
          }
        }
        if (!keep) continue;
        for (std::size_t c = 0; c < source_pos.size(); ++c) {
          dst->columns[c].push_back(t.at(source_pos[c]));
        }
        ++dst->rows;
      }
    };

    std::size_t fanout = FanOut(range.size());
    if (fanout <= 1) {
      out.Reserve(range.size());  // upper bound; exact without residuals
      scan_range(0, range.size(), &out);
    } else {
      RunMorsels(range.size(), fanout, out.vars.size(), &out, scan_range);
    }
    if (Expired()) return DeadlineStatus();

    std::ostringstream label;
    label << (tp.num_constants() > 0 ? "select(" : "scan(")
          << storage::OrderingName(node->ordering) << ") tp"
          << node->pattern_index;
    // Probe accounting: a non-empty bound prefix costs one equal_range
    // (two binary-search descents) in LookupPrefix, and every morsel pays
    // one merged-rank IteratorAt seek.
    const std::uint64_t probes =
        (prefix.empty() ? 0 : 2) + static_cast<std::uint64_t>(fanout);
    result_->total_scanned_rows += range.size();
    Record(node, label.str(), out, timer.ElapsedMillis(),
           /*is_intermediate=*/true, fanout, range.size(), probes);
    return out;
  }

  /// Worst-case-optimal leapfrog triejoin over a whole basic graph
  /// pattern: one variable per level in elimination order, each level an
  /// n-ary sorted intersection of every pattern mentioning the variable.
  /// Rows come out in lexicographic elimination order, so the output is
  /// sorted by leapfrog_order — and since a full binding fixes at most one
  /// triple per pattern, it is duplicate-free, byte-identical to any
  /// binary join plan over the same patterns.
  Result<BindingTable> RunLeapfrog(const PlanNode* node) {
    Timer timer;
    const rdf::Dictionary& dict = store_->dictionary();
    const std::vector<VarId>& order = node->leapfrog_order;
    const std::size_t depth = order.size();
    if (depth == 0) {
      return lint::RuntimeViolation(
          lint::RuleId::kLeapfrogOrderInvalid, node->id,
          "leapfrog join has an empty elimination order");
    }

    BindingTable out;
    out.vars = order;
    out.sorted_by = order;  // lexicographic emission order
    out.columns.resize(depth);

    auto rank_of = [&](VarId v) {
      return static_cast<std::size_t>(
          std::find(order.begin(), order.end(), v) - order.begin());
    };

    // Per-pattern trie access: constants form the bound prefix of one of
    // the six orderings, the variable positions follow in elimination
    // rank order — exactly the sequence the level loop descends.
    struct Spans {
      std::span<const Triple> base;
      std::span<const Triple> delta;
      bool empty() const { return base.empty() && delta.empty(); }
    };
    struct PatternAccess {
      storage::TripleView view;             // constants-narrowed
      std::array<Position, 3> positions{};  // trie access path
      std::size_t num_bound = 0;            // constant-prefix length
      std::vector<std::size_t> levels;      // elimination rank per var slot
    };
    std::vector<PatternAccess> access;
    bool impossible = false;
    for (std::size_t idx : node->leapfrog_patterns) {
      if (idx >= query_->patterns.size()) {
        return lint::RuntimeViolation(
            lint::RuleId::kPatternIndexOutOfRange, node->id,
            "leapfrog join references pattern " + std::to_string(idx) +
                " but the query has " +
                std::to_string(query_->patterns.size()));
      }
      const TriplePattern& tp = query_->patterns[idx];
      std::vector<Position> const_pos;
      std::vector<Position> var_pos;
      for (Position pos : rdf::kAllPositions) {
        (tp.at(pos).is_constant() ? const_pos : var_pos).push_back(pos);
      }
      if (static_cast<int>(tp.Variables().size()) !=
          static_cast<int>(var_pos.size())) {
        return lint::RuntimeViolation(
            lint::RuleId::kLeapfrogNoAccessPath, node->id,
            "pattern tp" + std::to_string(idx) +
                " repeats a variable; no trie access path exists");
      }
      for (Position pos : var_pos) {
        if (rank_of(tp.at(pos).var) == depth) {
          return lint::RuntimeViolation(
              lint::RuleId::kLeapfrogVarNotCovered, node->id,
              "pattern tp" + std::to_string(idx) + " binds ?" +
                  query_->VarName(tp.at(pos).var) +
                  ", which the elimination order does not cover");
        }
      }
      std::sort(var_pos.begin(), var_pos.end(),
                [&](Position a, Position b) {
                  return rank_of(tp.at(a).var) < rank_of(tp.at(b).var);
                });
      std::array<Position, 3> path{};
      for (std::size_t i = 0; i < const_pos.size(); ++i) path[i] = const_pos[i];
      for (std::size_t i = 0; i < var_pos.size(); ++i) {
        path[const_pos.size() + i] = var_pos[i];
      }
      const Ordering ordering =
          storage::OrderingFromPositions(path[0], path[1], path[2]);
      std::vector<Binding> prefix;
      for (Position pos : const_pos) {
        auto id = dict.Find(tp.at(pos).constant);
        if (!id.has_value()) {
          impossible = true;  // unknown constant: empty intersection
          break;
        }
        prefix.push_back(Binding{pos, *id});
      }
      if (impossible) break;
      PatternAccess pa;
      pa.view = store_->LookupPrefix(ordering, prefix);
      pa.positions = path;
      pa.num_bound = const_pos.size();
      for (Position pos : var_pos) pa.levels.push_back(rank_of(tp.at(pos).var));
      if (pa.levels.empty()) {
        // Fully-constant pattern: a pure existence test, no cursor.
        if (pa.view.empty()) impossible = true;
        continue;
      }
      if (pa.view.empty()) impossible = true;
      access.push_back(std::move(pa));
    }

    std::uint64_t total_input = 0;
    for (const PatternAccess& pa : access) total_input += pa.view.size();

    // Level -> (cursor, trie depth) of every pattern binding that level's
    // variable. Each pattern's levels are rank-ascending, so by the time
    // level r runs, exactly d of cursor p's variables are already bound.
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> active(
        depth);
    for (std::size_t p = 0; p < access.size(); ++p) {
      for (std::size_t d = 0; d < access[p].levels.size(); ++d) {
        active[access[p].levels[d]].emplace_back(p, d);
      }
    }
    if (!impossible) {
      for (std::size_t r = 0; r < depth; ++r) {
        if (active[r].empty()) {
          return lint::RuntimeViolation(
              lint::RuleId::kLeapfrogOrderVarUnused, node->id,
              "no pattern constrains elimination variable ?" +
                  query_->VarName(order[r]));
        }
      }
    }
    // Key position of each (cursor, trie depth) pair, per level.
    std::vector<std::vector<Position>> key_pos(depth);
    for (std::size_t r = 0; r < depth; ++r) {
      for (const auto& [p, d] : active[r]) {
        key_pos[r].push_back(
            access[p].positions[access[p].num_bound + d]);
      }
    }

    constexpr TermId kMaxKey = std::numeric_limits<TermId>::max();
    const auto key_at = [](const Spans& s, Position pos) {
      // Both levels are positioned at their first candidate; the cursor's
      // key is the smaller front (the merged view's head).
      TermId k = kMaxKey;
      if (!s.base.empty()) k = s.base.front().at(pos);
      if (!s.delta.empty()) k = std::min(k, s.delta.front().at(pos));
      return k;
    };

    // One worker: enumerate all bindings with order[0] in [lo, hi]
    // (inclusive) into `dst`, counting cursor seeks into `seeks`.
    auto run_range = [&](TermId lo, TermId hi, BindingTable* dst,
                         std::uint64_t* seeks) {
      // stack[p][d]: cursor p's window with d variables bound. Level r
      // publishes the d+1 windows before descending; each level works on
      // local copies so re-entry restarts from the published window.
      std::vector<std::vector<Spans>> stack(access.size());
      for (std::size_t p = 0; p < access.size(); ++p) {
        stack[p].assign(access[p].levels.size() + 1, Spans{});
        stack[p][0] = Spans{access[p].view.base(), access[p].view.delta()};
      }
      // Per-level scratch (recursion is linear: one live frame per level).
      std::vector<std::vector<Spans>> cur(depth);
      for (std::size_t r = 0; r < depth; ++r) cur[r].resize(active[r].size());
      std::vector<TermId> binding(depth);
      std::size_t steps = 0;
      bool aborted = false;

      auto search = [&](auto&& self, std::size_t level) -> void {
        const auto& act = active[level];
        std::vector<Spans>& win = cur[level];
        for (std::size_t i = 0; i < act.size(); ++i) {
          win[i] = stack[act[i].first][act[i].second];
        }
        TermId target = level == 0 ? lo : 0;
        for (;;) {
          if ((++steps & kCancelCheckMask) == 0 && Expired()) {
            aborted = true;
            return;
          }
          // Leapfrog to a common key: seek every cursor to the first key
          // >= target until a full pass leaves target unchanged.
          bool settled = false;
          while (!settled) {
            settled = true;
            for (std::size_t i = 0; i < act.size(); ++i) {
              Spans& s = win[i];
              const Position kp = key_pos[level][i];
              s.base = s.base.subspan(
                  storage::SeekGE(s.base, 0, kp, target));
              s.delta = s.delta.subspan(
                  storage::SeekGE(s.delta, 0, kp, target));
              ++*seeks;
              if (s.empty()) return;  // intersection exhausted
              const TermId k = key_at(s, kp);
              if (k > target) {
                target = k;
                settled = false;
              }
            }
          }
          if (level == 0 && target > hi) return;  // past this worker's slice
          binding[level] = target;
          // The equal-range ends double as the child windows and as this
          // level's advance past the matched key.
          for (std::size_t i = 0; i < act.size(); ++i) {
            Spans& s = win[i];
            const Position kp = key_pos[level][i];
            const std::size_t be = storage::SeekGT(s.base, 0, kp, target);
            const std::size_t de = storage::SeekGT(s.delta, 0, kp, target);
            ++*seeks;
            if (level + 1 < depth) {
              stack[act[i].first][act[i].second + 1] =
                  Spans{s.base.first(be), s.delta.first(de)};
            }
            s.base = s.base.subspan(be);
            s.delta = s.delta.subspan(de);
          }
          if (level + 1 == depth) {
            for (std::size_t c = 0; c < depth; ++c) {
              dst->columns[c].push_back(binding[c]);
            }
            ++dst->rows;
          } else {
            self(self, level + 1);
            if (aborted) return;
          }
          if (level == 0 && target >= hi) return;
          if (target == kMaxKey) return;
          ++target;
        }
      };
      search(search, 0);
    };

    std::uint64_t seeks = 0;
    std::size_t threads_used = 1;
    if (!impossible) {
      // Morsel parallelism: split the level-0 variable's key range at key
      // boundaries of the largest participating view; each chunk's key
      // interval is enumerated independently and concatenated in key
      // order — the serial emission order.
      std::size_t split = active[0][0].first;
      for (const auto& [p, d] : active[0]) {
        if (access[p].view.size() > access[split].view.size()) split = p;
      }
      const Position split_pos =
          access[split].positions[access[split].num_bound];
      std::vector<storage::IndexRange> chunks;
      if (FanOut(access[split].view.size()) > 1) {
        chunks = storage::SplitAtKeyBoundaries(
            access[split].view, split_pos,
            FanOut(access[split].view.size()));
      }
      if (chunks.size() > 1) {
        threads_used = chunks.size();
        std::vector<BindingTable> parts(chunks.size());
        std::vector<std::uint64_t> part_seeks(chunks.size(), 0);
        pool_->ParallelFor(0, chunks.size(), 1, [&](std::size_t m) {
          const storage::IndexRange& chunk = chunks[m];
          BindingTable& part = parts[m];
          part.columns.resize(depth);
          run_range(access[split].view[chunk.begin].at(split_pos),
                    access[split].view[chunk.end - 1].at(split_pos), &part,
                    &part_seeks[m]);
        });
        std::size_t total = 0;
        for (const BindingTable& part : parts) total += part.rows;
        out.Reserve(total);
        for (const BindingTable& part : parts) out.AppendRows(part);
        for (std::uint64_t s : part_seeks) seeks += s;
      } else {
        run_range(0, kMaxKey, &out, &seeks);
      }
    }
    if (Expired()) return DeadlineStatus();

    std::ostringstream label;
    label << "leapfrogjoin [";
    for (std::size_t i = 0; i < order.size(); ++i) {
      label << (i ? " ?" : "?") << query_->VarName(order[i]);
    }
    label << ']';
    result_->total_scanned_rows += total_input;
    Record(node, label.str(), out, timer.ElapsedMillis(),
           /*is_intermediate=*/true, threads_used, total_input, seeks);
    return out;
  }

  Result<BindingTable> RunJoin(const PlanNode* node) {
    HSPARQL_ASSIGN_OR_RETURN(BindingTable left, Run(node->children[0].get()));

    // SIP: push the left side's join-variable domain into the right
    // subtree's scans before evaluating it (hash joins only; safe for
    // left outer joins too — filtered right rows could never match).
    bool sip_installed = false;
    std::vector<TermId> sip_saved;
    bool sip_had_previous = false;
    VarId sip_var = node->join_var;
    if (options_->sideways_information_passing &&
        node->kind == PlanNode::Kind::kJoin &&
        node->algo == JoinAlgo::kHash && sip_var != sparql::kInvalidVarId &&
        left.HasVar(sip_var)) {
      std::vector<TermId> domain =
          left.columns[left.ColumnOf(sip_var)];
      std::sort(domain.begin(), domain.end());
      domain.erase(std::unique(domain.begin(), domain.end()), domain.end());
      auto it = domain_filters_.find(sip_var);
      if (it != domain_filters_.end()) {
        sip_had_previous = true;
        sip_saved = it->second;
        // Intersect with the enclosing filter.
        std::vector<TermId> merged;
        std::set_intersection(domain.begin(), domain.end(),
                              sip_saved.begin(), sip_saved.end(),
                              std::back_inserter(merged));
        it->second = std::move(merged);
      } else {
        domain_filters_[sip_var] = std::move(domain);
      }
      sip_installed = true;
    }

    auto right_result = Run(node->children[1].get());
    if (sip_installed) {
      if (sip_had_previous) {
        domain_filters_[sip_var] = std::move(sip_saved);
      } else {
        domain_filters_.erase(sip_var);
      }
    }
    if (!right_result.ok()) return right_result.status();
    BindingTable right = std::move(right_result).ValueOrDie();
    Timer timer;

    // Shared variables (all of them are equated; join_var is the primary).
    std::vector<VarId> shared;
    for (VarId v : left.vars) {
      if (right.HasVar(v)) shared.push_back(v);
    }

    BindingTable out;
    out.vars = left.vars;
    std::vector<std::size_t> right_extra;  // right columns not in left
    for (std::size_t i = 0; i < right.vars.size(); ++i) {
      if (!left.HasVar(right.vars[i])) {
        out.vars.push_back(right.vars[i]);
        right_extra.push_back(i);
      }
    }
    out.columns.resize(out.vars.size());

    auto emit = [&](BindingTable* dst, std::size_t lr, std::size_t rr) {
      for (std::size_t c = 0; c < left.vars.size(); ++c) {
        dst->columns[c].push_back(left.columns[c][lr]);
      }
      for (std::size_t c = 0; c < right_extra.size(); ++c) {
        dst->columns[left.vars.size() + c].push_back(
            right.columns[right_extra[c]][rr]);
      }
      ++dst->rows;
    };

    // Left outer joins (OPTIONAL): unmatched left rows survive with the
    // right-only columns unbound (kInvalidTermId).
    auto emit_left_unmatched = [&](BindingTable* dst, std::size_t lr) {
      for (std::size_t c = 0; c < left.vars.size(); ++c) {
        dst->columns[c].push_back(left.columns[c][lr]);
      }
      for (std::size_t c = 0; c < right_extra.size(); ++c) {
        dst->columns[left.vars.size() + c].push_back(rdf::kInvalidTermId);
      }
      ++dst->rows;
    };

    std::string label;
    std::size_t threads_used = 1;
    if (node->algo == JoinAlgo::kMerge) {
      if (node->left_outer) {
        return lint::RuntimeViolation(
            lint::RuleId::kLeftOuterMergeJoin, node->id,
            "left outer joins are hash-only; the merge path cannot emit "
            "unmatched left rows");
      }
      const VarId var = node->join_var;
      if (var == sparql::kInvalidVarId) {
        return lint::RuntimeViolation(
            lint::RuleId::kMergeJoinNoVar, node->id,
            "merge join has no join variable");
      }
      std::size_t lc = left.ColumnOf(var);
      std::size_t rc = right.ColumnOf(var);
      if (lc == BindingTable::npos || rc == BindingTable::npos) {
        return lint::RuntimeViolation(
            lint::RuleId::kJoinVarUnboundSide, node->id,
            "join variable ?" + query_->VarName(var) +
                " is not bound by the " +
                (lc == BindingTable::npos ? "left" : "right") + " input");
      }
      if (!left.SortedBy(var) || !right.SortedBy(var)) {
        return lint::RuntimeViolation(
            lint::RuleId::kMergeInputsUnsorted, node->id,
            std::string(left.SortedBy(var) ? "right" : "left") +
                " input of merge join is not sorted on ?" +
                query_->VarName(var));
      }
      std::vector<VarId> check;  // other shared vars
      for (VarId v : shared) {
        if (v != var) check.push_back(v);
      }
      const auto& lv = left.columns[lc];
      const auto& rv = right.columns[rc];
      // The classic sort-merge loop over a sub-rectangle
      // [i, iend) x [j, jend) of the two sorted inputs. Emission order is
      // key order, left-major within a key group — identical for any
      // key-boundary partitioning of either input.
      auto merge_range = [&](std::size_t i, std::size_t iend,
                             std::size_t j, std::size_t jend,
                             BindingTable* dst) {
        std::size_t steps = 0;
        while (i < iend && j < jend) {
          if ((++steps & kCancelCheckMask) == 0 && Expired()) return;
          if (lv[i] < rv[j]) {
            ++i;
          } else if (rv[j] < lv[i]) {
            ++j;
          } else {
            std::size_t i2 = i;
            while (i2 < iend && lv[i2] == lv[i]) ++i2;
            std::size_t j2 = j;
            while (j2 < jend && rv[j2] == rv[j]) ++j2;
            for (std::size_t a = i; a < i2; ++a) {
              for (std::size_t b = j; b < j2; ++b) {
                bool ok = true;
                for (VarId v : check) {
                  if (left.columns[left.ColumnOf(v)][a] !=
                      right.columns[right.ColumnOf(v)][b]) {
                    ok = false;
                    break;
                  }
                }
                if (ok) emit(dst, a, b);
              }
            }
            i = i2;
            j = j2;
          }
        }
      };

      // Parallel: split the larger sorted input at key boundaries and
      // binary-search each chunk's matching range in the smaller input.
      const bool split_left = left.rows >= right.rows;
      const auto& split_keys = split_left ? lv : rv;
      const auto& other_keys = split_left ? rv : lv;
      std::vector<storage::IndexRange> chunks;
      if (FanOut(split_keys.size()) > 1) {
        chunks = storage::SplitAtKeyBoundaries(split_keys,
                                               FanOut(split_keys.size()));
      }
      if (chunks.size() > 1) {
        threads_used = chunks.size();
        std::vector<BindingTable> parts(chunks.size());
        pool_->ParallelFor(0, chunks.size(), 1, [&](std::size_t m) {
          const storage::IndexRange& chunk = chunks[m];
          BindingTable& part = parts[m];
          part.columns.resize(out.vars.size());
          // The chunk's key span is [first, last]; everything matching it
          // in the other input lies in one contiguous range. Galloping
          // seeks: chunk m's range starts near where chunk m-1's ended, so
          // the probe pays for the distance advanced, not log(full size).
          const std::span<const TermId> other_span(other_keys);
          std::size_t olo = storage::SeekGE(other_span, 0,
                                            split_keys[chunk.begin]);
          std::size_t ohi = storage::SeekGT(other_span, olo,
                                            split_keys[chunk.end - 1]);
          if (split_left) {
            merge_range(chunk.begin, chunk.end, olo, ohi, &part);
          } else {
            merge_range(olo, ohi, chunk.begin, chunk.end, &part);
          }
        });
        std::size_t total = 0;
        for (const BindingTable& part : parts) total += part.rows;
        out.Reserve(total);
        for (const BindingTable& part : parts) out.AppendRows(part);
      } else {
        out.Reserve(std::max(left.rows, right.rows));
        merge_range(0, left.rows, 0, right.rows, &out);
      }
      out.sorted_by = {var};
      label = "mergejoin ?" + query_->VarName(var);
    } else {
      // Hash join on all shared variables; cartesian product when none.
      if (shared.empty()) {
        if (right.rows == 0 && node->left_outer) {
          for (std::size_t a = 0; a < left.rows; ++a) {
            emit_left_unmatched(&out, a);
          }
        } else {
          out.Reserve(left.rows * right.rows);
          std::size_t emitted = 0;
          bool aborted = false;
          for (std::size_t a = 0; a < left.rows && !aborted; ++a) {
            for (std::size_t b = 0; b < right.rows; ++b) {
              if ((++emitted & kCancelCheckMask) == 0 && Expired()) {
                aborted = true;
                break;
              }
              emit(&out, a, b);
            }
          }
        }
        label = "hashjoin (cartesian)";
      } else {
        std::vector<std::size_t> lcols;
        std::vector<std::size_t> rcols;
        for (VarId v : shared) {
          lcols.push_back(left.ColumnOf(v));
          rcols.push_back(right.ColumnOf(v));
        }
        using HashTable =
            std::unordered_map<std::vector<TermId>, std::vector<std::size_t>,
                               KeyHash>;

        // Build side, partitioned by hash % P. Every partition scans the
        // shared per-row hash array and keeps its own rows, so per-key row
        // lists stay in right-row order exactly as in the serial build.
        const std::size_t build_parts = FanOut(right.rows);
        const std::size_t probe_parts = FanOut(left.rows);
        threads_used = std::max(build_parts, probe_parts);
        std::vector<HashTable> tables(build_parts);
        auto build_key = [](const BindingTable& side,
                            const std::vector<std::size_t>& cols,
                            std::size_t row, std::vector<TermId>* key) {
          for (std::size_t c = 0; c < cols.size(); ++c) {
            (*key)[c] = side.columns[cols[c]][row];
          }
        };
        if (build_parts <= 1) {
          HashTable& table = tables[0];
          table.reserve(right.rows);
          std::vector<TermId> key(shared.size());
          for (std::size_t b = 0; b < right.rows; ++b) {
            build_key(right, rcols, b, &key);
            table[key].push_back(b);
          }
        } else {
          std::vector<std::size_t> rhash(right.rows);
          pool_->ParallelFor(0, build_parts, 1, [&](std::size_t m) {
            std::size_t lo = right.rows * m / build_parts;
            std::size_t hi = right.rows * (m + 1) / build_parts;
            std::vector<TermId> key(shared.size());
            for (std::size_t b = lo; b < hi; ++b) {
              build_key(right, rcols, b, &key);
              rhash[b] = KeyHash()(key);
            }
          });
          pool_->ParallelFor(0, build_parts, 1, [&](std::size_t p) {
            HashTable& table = tables[p];
            table.reserve(right.rows / build_parts + 1);
            std::vector<TermId> key(shared.size());
            for (std::size_t b = 0; b < right.rows; ++b) {
              if (rhash[b] % build_parts != p) continue;
              build_key(right, rcols, b, &key);
              table[key].push_back(b);
            }
          });
        }

        // Probe side: contiguous left-row morsels, concatenated in morsel
        // order — the serial probe order.
        auto probe_range = [&](std::size_t lo, std::size_t hi,
                               BindingTable* dst) {
          std::vector<TermId> key(shared.size());
          for (std::size_t a = lo; a < hi; ++a) {
            if ((a & kCancelCheckMask) == 0 && Expired()) return;
            build_key(left, lcols, a, &key);
            const HashTable& table =
                tables[build_parts <= 1 ? 0
                                        : KeyHash()(key) % build_parts];
            auto it = table.find(key);
            if (it == table.end()) {
              if (node->left_outer) emit_left_unmatched(dst, a);
              continue;
            }
            for (std::size_t b : it->second) emit(dst, a, b);
          }
        };
        if (probe_parts <= 1) {
          out.Reserve(left.rows);  // at least one row per outer-join probe
          probe_range(0, left.rows, &out);
        } else {
          RunMorsels(left.rows, probe_parts, out.vars.size(), &out,
                     probe_range);
        }
        label = std::string(node->left_outer ? "leftouter" : "") +
                "hashjoin ?" +
                query_->VarName(node->join_var != sparql::kInvalidVarId
                                    ? node->join_var
                                    : shared[0]);
      }
      // Probing in left order preserves the left sort order.
      out.sorted_by = left.sorted_by;
    }
    if (Expired()) return DeadlineStatus();

    Record(node, label, out, timer.ElapsedMillis(), /*is_intermediate=*/true,
           threads_used, left.rows + right.rows);
    return out;
  }

  Result<BindingTable> RunSort(const PlanNode* node) {
    HSPARQL_ASSIGN_OR_RETURN(BindingTable in, Run(node->children[0].get()));
    Timer timer;
    const rdf::Dictionary& dict = store_->dictionary();
    std::vector<std::size_t> cols;
    for (const sparql::Query::OrderKey& key : node->order_keys) {
      std::size_t c = in.ColumnOf(key.var);
      if (c == BindingTable::npos) {
        return lint::RuntimeViolation(
            lint::RuleId::kOrderByVarUnbound, node->id,
            "ORDER BY references ?" + query_->VarName(key.var) +
                ", which the input does not bind");
      }
      cols.push_back(c);
    }
    std::vector<std::size_t> idx(in.rows);
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    // SPARQL ordering: unbound sorts before any bound value; otherwise
    // the FILTER comparison order (numeric when possible, else lexical).
    auto compare_cells = [&](TermId a, TermId b) {
      if (a == b) return 0;
      if (a == rdf::kInvalidTermId) return -1;
      if (b == rdf::kInvalidTermId) return 1;
      return CompareTerms(dict.Get(a), dict.Get(b));
    };
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t a, std::size_t b) {
                       for (std::size_t k = 0; k < cols.size(); ++k) {
                         int c = compare_cells(in.columns[cols[k]][a],
                                               in.columns[cols[k]][b]);
                         if (c != 0) {
                           return node->order_keys[k].descending ? c > 0
                                                                 : c < 0;
                         }
                       }
                       return false;
                     });
    BindingTable out;
    out.vars = in.vars;
    out.columns.resize(out.vars.size());
    out.Reserve(in.rows);
    for (std::size_t i : idx) {
      for (std::size_t c = 0; c < in.vars.size(); ++c) {
        out.columns[c].push_back(in.columns[c][i]);
      }
    }
    out.rows = in.rows;
    // Row order is now the ORDER BY order, not a variable-id order.
    Record(node, "sort", out, timer.ElapsedMillis(),
           /*is_intermediate=*/false, 1, in.rows);
    return out;
  }

  Result<BindingTable> RunLimit(const PlanNode* node) {
    HSPARQL_ASSIGN_OR_RETURN(BindingTable in, Run(node->children[0].get()));
    Timer timer;
    BindingTable out;
    out.vars = in.vars;
    out.columns.resize(out.vars.size());
    std::size_t begin = std::min<std::size_t>(node->limit_offset, in.rows);
    std::size_t end = node->limit_count > in.rows - begin
                          ? in.rows
                          : begin + node->limit_count;
    out.Reserve(end - begin);
    for (std::size_t r = begin; r < end; ++r) {
      for (std::size_t c = 0; c < in.vars.size(); ++c) {
        out.columns[c].push_back(in.columns[c][r]);
      }
    }
    out.rows = end - begin;
    out.sorted_by = in.sorted_by;  // slicing preserves order
    Record(node, "limit", out, timer.ElapsedMillis(),
           /*is_intermediate=*/false, 1, in.rows);
    return out;
  }

  Result<BindingTable> RunUnion(const PlanNode* node) {
    std::vector<BindingTable> inputs;
    for (const auto& child : node->children) {
      HSPARQL_ASSIGN_OR_RETURN(BindingTable t, Run(child.get()));
      inputs.push_back(std::move(t));
    }
    Timer timer;
    // Schema: union of branch schemas, first-occurrence order. Branches
    // lacking a variable contribute unbound (kInvalidTermId) cells.
    BindingTable out;
    for (const BindingTable& in : inputs) {
      for (VarId v : in.vars) {
        if (!out.HasVar(v)) out.vars.push_back(v);
      }
    }
    out.columns.resize(out.vars.size());
    std::size_t total = 0;
    for (const BindingTable& in : inputs) total += in.rows;
    out.Reserve(total);
    for (const BindingTable& in : inputs) {
      std::vector<std::size_t> src(out.vars.size(), BindingTable::npos);
      for (std::size_t c = 0; c < out.vars.size(); ++c) {
        src[c] = in.ColumnOf(out.vars[c]);
      }
      for (std::size_t r = 0; r < in.rows; ++r) {
        for (std::size_t c = 0; c < out.vars.size(); ++c) {
          out.columns[c].push_back(src[c] == BindingTable::npos
                                       ? rdf::kInvalidTermId
                                       : in.columns[src[c]][r]);
        }
        ++out.rows;
      }
    }
    Record(node, "union", out, timer.ElapsedMillis(),
           /*is_intermediate=*/true, 1, total);
    return out;
  }

  Result<BindingTable> RunFilter(const PlanNode* node) {
    HSPARQL_ASSIGN_OR_RETURN(BindingTable in, Run(node->children[0].get()));
    Timer timer;
    const sparql::Filter& f = node->filter;
    const rdf::Dictionary& dict = store_->dictionary();

    std::size_t lhs = in.ColumnOf(f.var);
    if (lhs == BindingTable::npos) {
      return lint::RuntimeViolation(
          lint::RuleId::kFilterVarUnbound, node->id,
          "filter references ?" + query_->VarName(f.var) +
              ", which the input does not bind");
    }
    std::size_t rhs = BindingTable::npos;
    std::optional<TermId> const_id;
    if (f.rhs_var.has_value()) {
      rhs = in.ColumnOf(*f.rhs_var);
      if (rhs == BindingTable::npos) {
        return lint::RuntimeViolation(
            lint::RuleId::kFilterVarUnbound, node->id,
            "filter references ?" + query_->VarName(*f.rhs_var) +
                ", which the input does not bind");
      }
    } else {
      const_id = dict.Find(f.value);
    }

    // Pure predicate over one row: dictionary reads only, safe to share
    // across morsel workers.
    auto passes = [&](std::size_t r) {
      TermId a = in.columns[lhs][r];
      // SPARQL semantics: comparing an unbound value is a type error and
      // the row is filtered out.
      if (a == rdf::kInvalidTermId) return false;
      if (f.rhs_var.has_value() &&
          in.columns[rhs][r] == rdf::kInvalidTermId) {
        return false;
      }
      if (!f.rhs_var.has_value() &&
          (f.op == sparql::FilterOp::kEq || f.op == sparql::FilterOp::kNe)) {
        bool eq = const_id.has_value() && a == *const_id;
        return f.op == sparql::FilterOp::kEq ? eq : !eq;
      }
      const rdf::Term& ta = dict.Get(a);
      const rdf::Term& tb =
          f.rhs_var.has_value() ? dict.Get(in.columns[rhs][r]) : f.value;
      return EvalFilterOp(f.op, ta, tb);
    };

    BindingTable out;
    out.vars = in.vars;
    out.sorted_by = in.sorted_by;  // row order preserved
    out.columns.resize(out.vars.size());

    auto filter_range = [&](std::size_t lo, std::size_t hi,
                            BindingTable* dst) {
      for (std::size_t r = lo; r < hi; ++r) {
        if ((r & kCancelCheckMask) == 0 && Expired()) return;
        if (!passes(r)) continue;
        for (std::size_t c = 0; c < in.vars.size(); ++c) {
          dst->columns[c].push_back(in.columns[c][r]);
        }
        ++dst->rows;
      }
    };

    std::size_t fanout = FanOut(in.rows);
    if (fanout <= 1) {
      out.Reserve(in.rows);  // upper bound
      filter_range(0, in.rows, &out);
    } else {
      RunMorsels(in.rows, fanout, out.vars.size(), &out, filter_range);
    }
    if (Expired()) return DeadlineStatus();
    Record(node, "filter", out, timer.ElapsedMillis(),
           /*is_intermediate=*/false, fanout, in.rows);
    return out;
  }

  Result<BindingTable> RunProject(const PlanNode* node) {
    HSPARQL_ASSIGN_OR_RETURN(BindingTable in, Run(node->children[0].get()));
    Timer timer;

    BindingTable out;
    out.vars = node->projection;
    out.columns.resize(out.vars.size());
    std::vector<std::size_t> src;
    for (VarId v : node->projection) {
      std::size_t c = in.ColumnOf(v);
      if (c == BindingTable::npos) {
        return lint::RuntimeViolation(
            lint::RuleId::kProjectionVarUnbound, node->id,
            "projection references ?" + query_->VarName(v) +
                ", which the input does not bind");
      }
      src.push_back(c);
    }
    for (std::size_t c = 0; c < src.size(); ++c) {
      out.columns[c] = in.columns[src[c]];
    }
    out.rows = in.rows;
    // Sortedness survives as the longest prefix of sorted_by that is
    // projected.
    for (VarId v : in.sorted_by) {
      if (!out.HasVar(v)) break;
      out.sorted_by.push_back(v);
    }

    if (node->distinct) {
      std::vector<std::size_t> idx(out.rows);
      for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
      auto tuple_less = [&](std::size_t a, std::size_t b) {
        for (const auto& col : out.columns) {
          if (col[a] != col[b]) return col[a] < col[b];
        }
        return false;
      };
      auto tuple_eq = [&](std::size_t a, std::size_t b) {
        for (const auto& col : out.columns) {
          if (col[a] != col[b]) return false;
        }
        return true;
      };
      std::sort(idx.begin(), idx.end(), tuple_less);
      idx.erase(std::unique(idx.begin(), idx.end(), tuple_eq), idx.end());
      BindingTable dedup;
      dedup.vars = out.vars;
      dedup.columns.resize(out.columns.size());
      dedup.Reserve(idx.size());
      for (std::size_t i : idx) {
        for (std::size_t c = 0; c < out.columns.size(); ++c) {
          dedup.columns[c].push_back(out.columns[c][i]);
        }
      }
      dedup.rows = idx.size();
      dedup.sorted_by = dedup.vars;  // lexicographically sorted now
      out = std::move(dedup);
    }

    Record(node, "project", out, timer.ElapsedMillis(),
           /*is_intermediate=*/false, 1, in.rows);
    return out;
  }

  const storage::TripleStore* store_;
  const Query* query_;
  const ExecOptions* options_;
  /// Shared work-stealing pool; nullptr runs everything serially.
  ThreadPool* pool_;
  ExecResult* result_;
  /// Active SIP domain filters: variable -> sorted allowed values. Only
  /// mutated between operator runs (install/remove around a hash join's
  /// right subtree); read-only while any operator's morsels are in flight.
  std::unordered_map<VarId, std::vector<TermId>> domain_filters_;
};

}  // namespace

Result<ExecResult> Executor::Execute(const Query& query,
                                     const hsp::LogicalPlan& plan) const {
  if (plan.empty()) return Status::InvalidArgument("empty plan");
  if (options_.lint_plans) {
    // Catch malformed plans before touching any data; the runtime checks
    // below remain as a second line of defence phrased in the same rule
    // vocabulary.
    lint::LintReport report = lint::LintPlan(query, plan);
    if (!report.ok()) return lint::ReportToStatus(report);
  }
  ExecResult result;
  result.cardinalities.assign(static_cast<std::size_t>(plan.num_nodes()), 0);
  Timer timer;
  ThreadPool* pool =
      options_.num_threads >= 2 ? &ThreadPool::Shared() : nullptr;
  PlanRunner runner(store_, &query, &options_, pool, &result);
  HSPARQL_ASSIGN_OR_RETURN(result.table, runner.Run(plan.root()));
  result.total_millis = timer.ElapsedMillis();
  if (options_.collect_trace || TraceForced()) {
    std::unordered_map<int, const OperatorStat*> stats_by_id;
    for (const OperatorStat& s : result.stats) stats_by_id[s.node_id] = &s;
    result.trace = std::make_shared<obs::QueryTrace>();
    result.trace->root = BuildTraceNode(plan.root(), stats_by_id);
    result.trace->total_millis = result.total_millis;
  }
  return result;
}

}  // namespace hsparql::exec
