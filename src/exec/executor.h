// Plan interpreter: walks a LogicalPlan bottom-up, materialising a
// BindingTable per operator (the MonetDB-style physical algebra of the
// paper's §5/§6) and recording per-operator statistics.
#ifndef HSPARQL_EXEC_EXECUTOR_H_
#define HSPARQL_EXEC_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "exec/binding_table.h"
#include "hsp/plan.h"
#include "obs/trace.h"
#include "sparql/ast.h"
#include "storage/triple_store.h"

namespace hsparql::exec {

/// Per-operator execution record.
struct OperatorStat {
  int node_id = -1;
  std::string label;          // "mergejoin ?x", "select(pos) tp2", ...
  std::uint64_t output_rows = 0;
  double millis = 0.0;        // wall time of this operator alone
  /// Morsels/partitions this operator processed concurrently (1 = serial).
  int threads = 1;
  /// Rows consumed: the scanned range size for scans, the sum of both
  /// inputs for joins, the child's rows for unary operators.
  std::uint64_t input_rows = 0;
  /// Index-seek count. Scans: bound-prefix equal_range lookups plus one
  /// merged-rank IteratorAt seek per morsel. Leapfrog joins: galloping
  /// cursor repositionings (SeekGE passes and equal-range SeekGT
  /// narrowings) across every level.
  std::uint64_t probes = 0;
};

/// Result of executing one plan.
struct ExecResult {
  BindingTable table;
  /// Output cardinality per plan-node id (feed to LogicalPlan::ToString to
  /// reproduce the per-operator counts of Figures 2 and 3).
  std::vector<std::uint64_t> cardinalities;
  std::vector<OperatorStat> stats;
  double total_millis = 0.0;
  /// Sum of all intermediate-result rows (scans + joins), the memory-
  /// footprint proxy the heuristics minimise.
  std::uint64_t total_intermediate_rows = 0;
  /// Sum of index-range rows visited by every scan operator (before
  /// residual predicates), i.e. actual storage traffic.
  std::uint64_t total_scanned_rows = 0;
  /// EXPLAIN ANALYZE tree mirroring the plan shape; only populated when
  /// ExecOptions::collect_trace is set (or forced via the
  /// HSPARQL_FORCE_TRACE environment variable). shared_ptr so responses
  /// can hand the trace out without copying the tree.
  std::shared_ptr<obs::QueryTrace> trace;
};

/// Execution options.
struct ExecOptions {
  /// Sideways information passing (§2 cites Neumann & Weikum's RDF-3X
  /// extension [23]): before evaluating a hash join's right subtree, the
  /// set of join-variable values observed on the (already materialised)
  /// left side is pushed down as a domain filter on every scan of that
  /// variable in the right subtree. Pure optimisation — results are
  /// unchanged, intermediate results shrink (see bench_sip).
  bool sideways_information_passing = false;

  /// Degree of intra-query parallelism. 0 (the default) and 1 run every
  /// operator serially, byte-for-byte the engine's historical behaviour.
  /// >= 2 runs scans, filters, hash joins and merge joins morsel-wise on
  /// the shared work-stealing pool (common/thread_pool.h), partitioned so
  /// that the output stays byte-identical to the serial path for every
  /// value of num_threads (see DESIGN.md "Parallel execution").
  std::size_t num_threads = 0;

  /// Run PlanLint (src/lint/) over the plan at Execute() entry and refuse
  /// malformed plans up front with the full diagnostic list, instead of
  /// failing midway through execution. The executor's own runtime checks
  /// stay active either way and phrase their errors in the same
  /// rule-id vocabulary.
  bool lint_plans = false;

  /// Collect the per-operator EXPLAIN ANALYZE trace (ExecResult::trace).
  /// Off by default: the per-operator stats vector is always recorded, but
  /// the plan-shaped trace tree is only assembled on request. Setting the
  /// HSPARQL_FORCE_TRACE environment variable (to anything non-empty)
  /// forces collection regardless of this flag — the CI trace job uses it
  /// to run the whole test suite with tracing on.
  bool collect_trace = false;

  /// Cooperative cancellation (see common/cancel.h). When set, the
  /// executor polls the token at operator entry, at every morsel boundary
  /// and every few thousand rows of the heavy inner loops; once expired,
  /// Execute() stops producing output and returns kDeadlineExceeded. The
  /// token must outlive the Execute() call. Results are unaffected when
  /// the token never expires.
  const CancelToken* cancel = nullptr;
};

/// Executes plans against one store. Stateless across calls.
class Executor {
 public:
  explicit Executor(const storage::TripleStore* store,
                    ExecOptions options = {})
      : store_(store), options_(options) {}

  /// Runs `plan` (produced by any of the planners for `query`) and returns
  /// the result table plus statistics. Fails on malformed plans (e.g. a
  /// merge join over unsorted inputs) — planner bugs, not user errors.
  Result<ExecResult> Execute(const sparql::Query& query,
                             const hsp::LogicalPlan& plan) const;

 private:
  const storage::TripleStore* store_;
  ExecOptions options_;
};

}  // namespace hsparql::exec

#endif  // HSPARQL_EXEC_EXECUTOR_H_
