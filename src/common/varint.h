// LEB128 variable-length integers ("vbyte"): 7 payload bits per byte,
// high bit = continuation. The one varint implementation in the tree —
// storage::CompressedRelation and the snapshot codec (storage/snapshot.h)
// both encode through these helpers, so the on-disk and in-memory delta
// compression schemes can never drift apart.
//
// Thread safety: all functions are pure/stateless and operate only on
// caller-owned buffers — safe from any thread without synchronisation.
#ifndef HSPARQL_COMMON_VARINT_H_
#define HSPARQL_COMMON_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hsparql {

/// Appends the varint encoding of `value` (1..10 bytes) to `out`.
inline void PutVarint(std::uint64_t value, std::vector<std::uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(value));
}

/// Decodes a varint at `*pos`, advancing `*pos` past it. Trusted-input
/// fast path: no bounds checking — the caller guarantees a well-formed
/// stream (in-memory data this process encoded itself).
inline std::uint64_t GetVarint(const std::uint8_t* bytes, std::size_t* pos) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    std::uint8_t b = bytes[(*pos)++];
    value |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return value;
    shift += 7;
  }
}

/// Bounds-checked decode for untrusted input (mmap'd snapshot sections):
/// reads a varint from [*pos, end), advancing *pos. Returns false — with
/// *pos unspecified — on truncation or an over-long (> 10 byte) encoding,
/// so corrupted bytes surface as a typed error instead of a crash.
inline bool GetVarintChecked(const std::uint8_t* bytes, std::size_t end,
                             std::size_t* pos, std::uint64_t* value) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= end) return false;
    const std::uint8_t b = bytes[(*pos)++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *value = v;
      return true;
    }
  }
  return false;  // 10 continuation bytes: not produced by PutVarint
}

}  // namespace hsparql

#endif  // HSPARQL_COMMON_VARINT_H_
