// Capability-annotated mutex wrappers (DESIGN.md §4i).
//
// Thin, zero-overhead wrappers over the standard primitives that carry
// the Clang Thread Safety annotations the raw std:: types cannot: every
// lock in the tree is one of these, so GUARDED_BY/REQUIRES declarations
// on the data and functions they protect are checked at compile time by
// the `static-analysis / thread-safety` CI job. The wrappers add no
// state and no indirection — each method is a single inlined call on the
// wrapped std primitive.
//
// Vocabulary:
//  * Mutex        — exclusive capability over std::mutex.
//  * SharedMutex  — reader/writer capability over std::shared_mutex.
//  * MutexLock    — scoped exclusive hold of a Mutex.
//  * ReaderMutexLock / WriterMutexLock — scoped shared / exclusive hold
//    of a SharedMutex.
//  * CondVar      — std::condition_variable whose Wait() requires (and
//    documents) the Mutex the caller holds.
//
// These are the only types that may touch std::mutex /
// std::shared_mutex / std::condition_variable directly: the CI
// acceptance gate greps for raw declarations outside src/common/.
#ifndef HSPARQL_COMMON_MUTEX_H_
#define HSPARQL_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace hsparql {

/// Exclusive capability. Prefer the scoped MutexLock over manual
/// Lock()/Unlock() pairs — the analysis checks both, but the scoped form
/// cannot leak a hold on an early return.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// No-op capability assertion for boundaries the analysis cannot
  /// follow; each call site must explain why the hold is guaranteed.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer capability: queries hold it shared, mutations exclusive.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

  void AssertHeld() const ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive hold of a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Scoped shared (reader) hold of a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Scoped exclusive (writer) hold of a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable bound to the annotated Mutex. Wait() declares that
/// the caller holds `mu`, which is what the raw std API could never
/// express — waiting without the lock is now a compile error.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning. Spurious wakeups happen: callers must re-check their
  /// predicate in a loop (enforced by clang-tidy's
  /// bugprone-spuriously-wake-up-functions at every call site; this
  /// wrapper is the one audited single-wait).
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    // NOLINTNEXTLINE(bugprone-spuriously-wake-up-functions)
    cv_.wait(lock);
    lock.release();  // the caller's scoped hold still owns the mutex
  }

  /// Timed Wait: returns false if `timeout` elapsed without a notify.
  /// Same contract as Wait() — spurious wakeups happen, callers re-check
  /// their predicate in a loop (the server's drain wait is the audited
  /// use).
  bool WaitFor(Mutex& mu, std::chrono::milliseconds timeout) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    // NOLINTNEXTLINE(bugprone-spuriously-wake-up-functions)
    const std::cv_status st = cv_.wait_for(lock, timeout);
    lock.release();  // the caller's scoped hold still owns the mutex
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hsparql

#endif  // HSPARQL_COMMON_MUTEX_H_
