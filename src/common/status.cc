#include "common/status.h"

namespace hsparql {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace hsparql
