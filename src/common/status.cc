#include "common/status.h"

namespace hsparql {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kInvalidQuery:
      return "Invalid query";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInvalidSnapshot:
      return "Invalid snapshot";
  }
  return "Unknown";
}

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kInvalidQuery:
      return "invalid_query";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kOverloaded:
      return "overloaded";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInvalidSnapshot:
      return "invalid_snapshot";
  }
  return "unknown";
}

int HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kInvalidQuery:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kDeadlineExceeded:
      return 408;
    case StatusCode::kAlreadyExists:
      return 409;
    case StatusCode::kCancelled:
      return 499;
    case StatusCode::kUnsupported:
      return 501;
    case StatusCode::kOverloaded:
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kInternal:
    case StatusCode::kIoError:
    // A bad snapshot is an operator-side deployment fault, never something
    // a protocol client caused — it surfaces (if ever) as a plain 500.
    case StatusCode::kInvalidSnapshot:
      return 500;
  }
  return 500;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace hsparql
