// Cooperative cancellation and deadlines for long-running work.
//
// A CancelToken is a small shared flag + optional deadline that query
// execution polls at safe points (operator entry, morsel boundaries, every
// few thousand rows of the heavy inner loops). Nothing is interrupted
// preemptively: workers notice expiry, stop producing output, and the
// executor surfaces a typed kDeadlineExceeded status — so a wedged query
// releases its serving thread without leaking pool tasks (every scheduled
// morsel still runs, it just returns immediately).
//
// Thread-safety: Cancel()/SetDeadline() may race with Expired() from any
// number of threads; all state is atomic. Expiry is latched: once any
// thread observes Expired() == true the token stays expired, even if
// SetDeadline() later pushes the deadline out — a worker that already
// aborted (leaving partial output) must never be contradicted by a
// subsequent poll reporting success. Tokens can be chained via set_parent
// (engine-internal deadline token on top of a caller-provided cancel
// token); set_parent must happen before the token is shared.
//
// Capability map (DESIGN.md §4i): this class is deliberately lock-free —
// there is no capability to GUARDED_BY. Every field is an atomic (or
// written once before sharing, for parent_); the only non-relaxed pair is
// the release store of the cancelled_ latch against its acquire load,
// which publishes the expiry *reason* alongside the flag. The
// latched-expiry invariant is covered by a dedicated concurrent
// regression test (common_test.cc, run under the TSan CI job).
#ifndef HSPARQL_COMMON_CANCEL_H_
#define HSPARQL_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace hsparql {

/// Why a CancelToken expired — the signal the executor turns into a typed
/// StatusCode (kCancelled vs kDeadlineExceeded, HTTP 499 vs 408).
enum class CancelReason : std::uint8_t {
  kNone = 0,
  /// Cancel() was called: the caller gave up on the work.
  kCancelled,
  /// The deadline passed: the work ran out of time.
  kDeadline,
};

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation; Expired() returns true from now on.
  void Cancel() {
    LatchReason(CancelReason::kCancelled);
    // Release pairs with the acquire load in Expired(): a thread that
    // observes the latch also observes the reason behind it.
    cancelled_.store(true, std::memory_order_release);
  }

  /// Sets an absolute deadline after which Expired() returns true.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Sets the deadline to now + timeout.
  void SetTimeout(std::chrono::milliseconds timeout) {
    SetDeadline(std::chrono::steady_clock::now() + timeout);
  }

  /// Chains this token under `parent`: this token also expires when the
  /// parent does. Call before sharing the token across threads.
  void set_parent(const CancelToken* parent) { parent_ = parent; }

  /// True once cancelled, past the deadline, or the parent expired.
  /// Latched: the first true observation sets the cancelled flag, so the
  /// result can never revert to false afterwards.
  bool Expired() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    bool expired = false;
    if (d != kNoDeadline &&
        std::chrono::steady_clock::now().time_since_epoch().count() >= d) {
      LatchReason(CancelReason::kDeadline);
      expired = true;
    } else if (parent_ != nullptr && parent_->Expired()) {
      LatchReason(parent_->reason());
      expired = true;
    }
    if (expired) cancelled_.store(true, std::memory_order_release);
    return expired;
  }

  /// Why the token expired; kNone while Expired() is still false. Latched
  /// together with the expiry itself: the first cause wins, so a worker
  /// that observed a deadline expiry is never re-labelled as cancelled.
  CancelReason reason() const {
    return reason_.load(std::memory_order_relaxed);
  }

  /// The typed Status for this token's expiry: kDeadlineExceeded when the
  /// deadline fired, kCancelled otherwise. Call only when Expired().
  Status ToStatus(std::string message) const {
    return reason() == CancelReason::kDeadline
               ? Status::DeadlineExceeded(std::move(message))
               : Status::Cancelled(std::move(message));
  }

 private:
  static constexpr std::int64_t kNoDeadline = INT64_MAX;

  /// First-cause-wins CAS: once a reason is latched it never changes.
  void LatchReason(CancelReason r) const {
    if (r == CancelReason::kNone) r = CancelReason::kCancelled;
    CancelReason expected = CancelReason::kNone;
    reason_.compare_exchange_strong(expected, r, std::memory_order_relaxed);
  }

  /// Lock-free: relaxed atomics. cancelled_ is the latch — it only ever
  /// transitions false -> true, so a relaxed read that returns true is
  /// final no matter how deadline_ns_ is racing.
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<CancelReason> reason_{CancelReason::kNone};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
  /// Written once by set_parent before the token is shared (the one
  /// non-atomic field; publication happens-before any concurrent read).
  const CancelToken* parent_ = nullptr;
};

}  // namespace hsparql

#endif  // HSPARQL_COMMON_CANCEL_H_
