#include "common/string_util.h"

#include <cstdint>

namespace hsparql {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view text) {
  const char* kWs = " \t\r\n";
  std::size_t begin = text.find_first_not_of(kWs);
  if (begin == std::string_view::npos) return {};
  std::size_t end = text.find_last_not_of(kWs);
  return text.substr(begin, end - begin + 1);
}

std::string FormatCount(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace hsparql
