// Work-stealing thread pool shared by the parallel executor operators.
//
// Fixed worker count; each worker owns a deque of tasks and pops from its
// back (LIFO, cache-friendly for nested submissions) while idle workers
// steal from the fronts of the other deques (FIFO, oldest work first).
// `ParallelFor` is the only public way to run work: it chops an index
// range into chunks of at least `grain` indices, submits the chunks, and
// has the calling thread execute pool tasks while it waits — so nested
// calls from inside a body never deadlock, and a pool of N workers
// effectively runs loops on N+1 threads.
#ifndef HSPARQL_COMMON_THREAD_POOL_H_
#define HSPARQL_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hsparql {

class ThreadPool {
 public:
  /// Spawns `num_workers` threads (clamped to at least 1).
  explicit ThreadPool(std::size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_workers() const { return workers_.size(); }

  /// Point-in-time pool observability (exported by the engine's metrics
  /// registry). Counters are updated with relaxed atomics on the task
  /// pop path; queue_depth samples every deque under its mutex, so the
  /// value is exact per queue and approximate across queues.
  struct Stats {
    /// Tasks executed to completion by workers or helping callers.
    std::uint64_t tasks_executed = 0;
    /// Tasks popped from another worker's deque (work-stealing events).
    std::uint64_t steals = 0;
    /// Tasks currently queued and not yet started.
    std::size_t queue_depth = 0;
  };
  Stats stats() const;

  /// The process-wide pool used by the executor: hardware_concurrency - 1
  /// workers (at least 1), sized so that a loop's calling thread plus the
  /// workers saturate the machine. Created on first use, never destroyed.
  static ThreadPool& Shared();

  /// Runs body(i) for every i in [begin, end). Chunks of at least `grain`
  /// consecutive indices are distributed across the pool; the calling
  /// thread participates. Returns once every index has been processed.
  /// Ranges with a single chunk run inline on the caller with no
  /// synchronisation at all.
  ///
  /// Exceptions: every chunk always runs to completion (no cancellation);
  /// the first exception thrown by any body is rethrown here after the
  /// loop has finished.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t)>& body);

  /// Fire-and-forget: schedules one task on the pool and returns
  /// immediately. The server's admission scheduler is the intended caller
  /// — it bounds how many tasks are ever outstanding, because the pool's
  /// own queues are unbounded by design. Completion tracking (and any
  /// result/error propagation) is the submitter's job; a task that throws
  /// terminates the process, so tasks must catch their own exceptions.
  /// Tasks submitted here may run ParallelFor internally (nested use is
  /// safe: the task's worker helps run its own chunks).
  void Submit(std::function<void()> task);

 private:
  /// One worker's task deque. Kept behind a unique_ptr so the vector of
  /// queues stays movable during construction.
  struct WorkerQueue {
    Mutex mu;
    std::deque<std::function<void()>> tasks GUARDED_BY(mu);
  };

  void WorkerLoop(std::size_t index);
  /// Pops a task, preferring the given queue's back, then stealing from
  /// the fronts of the others. `preferred` == num_workers() means "no own
  /// queue" (an external caller helping out). Takes each candidate
  /// queue's mutex in turn; never holds two queue locks at once.
  bool PopTask(std::size_t preferred, std::function<void()>* task);
  bool HasQueuedWork();
  void Push(std::function<void()> task);

  /// The queue vector itself is immutable after construction (sized once,
  /// nodes behind stable unique_ptrs); each queue's deque is guarded by
  /// its own mu, so Push and steals on different queues never contend.
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  /// Guards stop_ and pairs with idle_cv_ for the workers' idle wait.
  /// Lock order: idle_mu_ before any WorkerQueue::mu (WorkerLoop probes
  /// the queues under the idle lock before sleeping); queue mutexes are
  /// leaves and never nest inside each other.
  Mutex idle_mu_;
  CondVar idle_cv_;
  bool stop_ GUARDED_BY(idle_mu_) = false;
  /// Round-robin target for Push; relaxed — an imbalanced distribution
  /// only costs a steal.
  std::atomic<std::size_t> next_queue_{0};
  /// Observability counters (see Stats); relaxed, monotonic.
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace hsparql

#endif  // HSPARQL_COMMON_THREAD_POOL_H_
