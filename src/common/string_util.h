// Small string helpers shared across modules.
#ifndef HSPARQL_COMMON_STRING_UTIL_H_
#define HSPARQL_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace hsparql {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` begins with `prefix`.
inline bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

/// True if `text` ends with `suffix`.
inline bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

/// Formats a count with thousands separators ("1234567" -> "1,234,567");
/// matches the figure annotations in the paper.
std::string FormatCount(std::uint64_t n);

}  // namespace hsparql

#endif  // HSPARQL_COMMON_STRING_UTIL_H_
