// Result<T>: value-or-Status, in the style of arrow::Result / absl::StatusOr.
#ifndef HSPARQL_COMMON_RESULT_H_
#define HSPARQL_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace hsparql {

/// Holds either a value of type T or a non-OK Status describing why the
/// value could not be produced. Access the value only after checking ok().
template <typename T>
class Result {
 public:
  /// Implicit from a value (the common success path).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status (the common error path).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be constructed from an OK Status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// OK status if a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Moves the value out; must hold a value.
  T ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace hsparql

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs`.
#define HSPARQL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).ValueOrDie()

#define HSPARQL_ASSIGN_OR_RETURN(lhs, expr)                                  \
  HSPARQL_ASSIGN_OR_RETURN_IMPL(                                             \
      HSPARQL_CONCAT_NAME(_hsparql_result_, __COUNTER__), lhs, expr)

#define HSPARQL_CONCAT_NAME_INNER(a, b) a##b
#define HSPARQL_CONCAT_NAME(a, b) HSPARQL_CONCAT_NAME_INNER(a, b)

#endif  // HSPARQL_COMMON_RESULT_H_
