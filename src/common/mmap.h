// MappedFile — RAII read-only memory mapping of a whole file.
//
// The storage backend of the snapshot store (storage/snapshot.h): opening
// a dataset becomes a page-table operation, reads are served straight from
// the page cache, and many processes can share one physical copy of the
// image. Failures (missing file, empty file, mmap refusal) come back as
// typed Status errors, never exceptions.
//
// Thread safety: a MappedFile is immutable after Open — data()/size() are
// const reads of plain members, safe from any thread without
// synchronisation. Destruction must not race reads, which every owner
// guarantees structurally (the store holds its mapping in a shared_ptr
// that outlives all views).
#ifndef HSPARQL_COMMON_MMAP_H_
#define HSPARQL_COMMON_MMAP_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/status.h"

namespace hsparql {

class MappedFile {
 public:
  /// Maps `path` read-only in its entirety. kNotFound for a missing file,
  /// kIoError for open/stat/mmap failures (including an empty file, which
  /// mmap cannot represent and no valid snapshot ever is).
  static Result<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() { Reset(); }

  bool valid() const { return data_ != nullptr; }
  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::span<const std::uint8_t> bytes() const { return {data_, size_}; }

 private:
  void Reset();

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace hsparql

#endif  // HSPARQL_COMMON_MMAP_H_
