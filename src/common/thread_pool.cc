#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/mutex.h"

namespace hsparql {

namespace {

/// Worker index of the current thread inside its owning pool, so nested
/// ParallelFor calls prefer the worker's own deque. num_workers() (an
/// out-of-range index) for threads the pool does not own.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_worker = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_workers) {
  num_workers = std::max<std::size_t>(1, num_workers);
  queues_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&idle_mu_);
    stop_ = true;
  }
  idle_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    unsigned hw = std::thread::hardware_concurrency();
    return new ThreadPool(hw > 1 ? hw - 1 : 1);
  }();
  return *pool;
}

void ThreadPool::Push(std::function<void()> task) {
  std::size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  WorkerQueue& q = *queues_[target];
  {
    MutexLock lock(&q.mu);
    q.tasks.push_back(std::move(task));
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  Push(std::move(task));
  // Push itself never notifies (ParallelFor batches its wakeup after
  // enqueueing every chunk); a lone task needs one idle worker woken.
  idle_cv_.NotifyOne();
}

bool ThreadPool::PopTask(std::size_t preferred,
                         std::function<void()>* task) {
  const std::size_t n = queues_.size();
  if (preferred < n) {
    WorkerQueue& own = *queues_[preferred];
    MutexLock lock(&own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t victim = (preferred + 1 + k) % n;
    if (victim == preferred) continue;
    WorkerQueue& q = *queues_[victim];
    MutexLock lock(&q.mu);
    if (!q.tasks.empty()) {
      *task = std::move(q.tasks.front());
      q.tasks.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats out;
  out.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  out.steals = steals_.load(std::memory_order_relaxed);
  for (const auto& queue : queues_) {
    WorkerQueue& q = *queue;
    MutexLock lock(&q.mu);
    out.queue_depth += q.tasks.size();
  }
  return out;
}

bool ThreadPool::HasQueuedWork() {
  for (const auto& queue : queues_) {
    WorkerQueue& q = *queue;
    MutexLock lock(&q.mu);
    if (!q.tasks.empty()) return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(std::size_t index) {
  tls_pool = this;
  tls_worker = index;
  while (true) {
    std::function<void()> task;
    if (PopTask(index, &task)) {
      task();
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    MutexLock lock(&idle_mu_);
    // Re-check under the idle lock: a Push between our failed PopTask and
    // here has already fired its notify, which we must not miss.
    if (stop_) return;
    if (HasQueuedWork()) continue;  // lock released by MutexLock dtor
    idle_cv_.Wait(idle_mu_);
    if (stop_) return;
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             std::size_t grain,
                             const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t g = std::max<std::size_t>(1, grain);
  const std::size_t num_chunks = (n + g - 1) / g;
  if (num_chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  // Join state shared between the chunks and the (helping) caller.
  struct ForState {
    Mutex mu;
    CondVar cv;
    std::size_t done GUARDED_BY(mu) = 0;
    std::exception_ptr error GUARDED_BY(mu);
  };
  auto state = std::make_shared<ForState>();

  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t lo = begin + c * g;
    const std::size_t hi = std::min(end, lo + g);
    Push([state, lo, hi, &body] {
      std::exception_ptr error;
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        error = std::current_exception();
      }
      {
        MutexLock lock(&state->mu);
        if (error && !state->error) state->error = std::move(error);
        ++state->done;
      }
      state->cv.NotifyAll();
    });
  }
  idle_cv_.NotifyAll();

  // Help: run pool tasks (ours or anyone's — progress either way) until
  // every chunk of this loop has finished.
  const std::size_t self =
      tls_pool == this ? tls_worker : queues_.size();
  while (true) {
    {
      MutexLock lock(&state->mu);
      if (state->done == num_chunks) break;
    }
    std::function<void()> task;
    if (PopTask(self, &task)) {
      task();
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    MutexLock lock(&state->mu);
    // Sleep until either this loop finished or queued work (re)appeared —
    // re-checked in a loop because wakeups may be spurious.
    while (state->done != num_chunks && !HasQueuedWork()) {
      state->cv.Wait(state->mu);
    }
    if (state->done == num_chunks) break;
  }
  // Every chunk has finished, so no writer can race this read — but take
  // the lock anyway: it is free here and keeps the proof lock-complete.
  std::exception_ptr error;
  {
    MutexLock lock(&state->mu);
    error = std::move(state->error);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace hsparql
