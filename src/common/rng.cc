#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace hsparql {

ZipfSampler::ZipfSampler(std::uint64_t n, double skew, std::uint64_t seed)
    : n_(n == 0 ? 1 : n), skew_(skew), rng_(seed) {
  cdf_.reserve(n_);
  double acc = 0.0;
  for (std::uint64_t i = 1; i <= n_; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), skew_);
    cdf_.push_back(acc);
  }
}

std::uint64_t ZipfSampler::Next() {
  const double u = rng_.NextDouble() * cdf_.back();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

}  // namespace hsparql
