#include "common/mmap.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace hsparql {

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    const int err = errno;
    if (err == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::IoError("open " + path + ": " + std::strerror(err));
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("fstat " + path + ": " + std::strerror(err));
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Status::IoError("cannot map empty file: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  // The mapping pins the file contents; the descriptor is no longer needed.
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IoError("mmap " + path + ": " + std::strerror(errno));
  }
  MappedFile out;
  out.data_ = static_cast<const std::uint8_t*>(addr);
  out.size_ = size;
  return out;
}

void MappedFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace hsparql
