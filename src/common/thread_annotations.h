// Clang Thread Safety Analysis annotation vocabulary (DESIGN.md §4i).
//
// These macros make the locking contract part of the type system: fields
// declare which capability (mutex) guards them, functions declare which
// capabilities they require, acquire or release, and clang proves the
// discipline at compile time with -Wthread-safety -Wthread-safety-beta
// (the `static-analysis / thread-safety` CI check builds the full tree
// and tests with both flags promoted to errors). Under compilers without
// the analysis (GCC) every macro expands to nothing, so annotations are
// zero-cost documentation there and the build is unchanged.
//
// This is the same layering as PlanLint (§4d) applied to concurrency:
// static proof first, sanitizers (the TSan CI job) as the runtime
// backstop for what the type system cannot see — e.g. lock-free atomics,
// which carry no capability and are documented in place instead (see the
// capability map in DESIGN.md §4i).
//
// The names follow the clang documentation's canonical mutex.h so the
// annotations read like the upstream examples: CAPABILITY, GUARDED_BY,
// REQUIRES, ACQUIRE/RELEASE, EXCLUDES, ASSERT_CAPABILITY, ...
#ifndef HSPARQL_COMMON_THREAD_ANNOTATIONS_H_
#define HSPARQL_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define HSPARQL_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define HSPARQL_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Marks a class as a capability (something that can be held). The string
/// names the capability kind in diagnostics: "mutex", "shared_mutex", ...
#define CAPABILITY(x) HSPARQL_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (MutexLock and friends).
#define SCOPED_CAPABILITY HSPARQL_THREAD_ANNOTATION__(scoped_lockable)

/// Declares that a field may only be read/written while holding `x`
/// (shared suffices for reads, exclusive is required for writes).
#define GUARDED_BY(x) HSPARQL_THREAD_ANNOTATION__(guarded_by(x))

/// Declares that the data *pointed to* by a pointer/smart-pointer field
/// is guarded by `x` (the pointer itself is not).
#define PT_GUARDED_BY(x) HSPARQL_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering declarations, checked under -Wthread-safety-beta: this
/// capability must be acquired before/after the listed ones.
#define ACQUIRED_BEFORE(...) \
  HSPARQL_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  HSPARQL_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// The caller must hold the listed capabilities (exclusively / shared)
/// when calling this function; the function does not release them.
#define REQUIRES(...) \
  HSPARQL_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  HSPARQL_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability (exclusively / shared) and holds
/// it on return; the caller must not already hold it.
#define ACQUIRE(...) \
  HSPARQL_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  HSPARQL_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// The function releases a capability the caller holds. RELEASE releases
/// an exclusive hold, RELEASE_SHARED a shared one, RELEASE_GENERIC either
/// (used by scoped-lock destructors that may hold in either mode).
#define RELEASE(...) \
  HSPARQL_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  HSPARQL_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  HSPARQL_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// The function attempts to acquire the capability and returns `b` on
/// success (e.g. TRY_ACQUIRE(true) for a try_lock returning bool).
#define TRY_ACQUIRE(...) \
  HSPARQL_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  HSPARQL_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities (the function
/// acquires them internally; holding them on entry would deadlock).
#define EXCLUDES(...) HSPARQL_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held — tells the analysis to
/// treat it as held from here on (for code the static analysis cannot
/// follow, e.g. across a capability-erasing boundary).
#define ASSERT_CAPABILITY(x) \
  HSPARQL_THREAD_ANNOTATION__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  HSPARQL_THREAD_ANNOTATION__(assert_shared_capability(x))

/// The function returns a reference to the given capability (accessor
/// functions exposing a member mutex).
#define RETURN_CAPABILITY(x) HSPARQL_THREAD_ANNOTATION__(lock_returned(x))

/// Turns the analysis off for one function — the documented escape hatch
/// for deliberate capability-erasing code (each use must say why).
#define NO_THREAD_SAFETY_ANALYSIS \
  HSPARQL_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // HSPARQL_COMMON_THREAD_ANNOTATIONS_H_
