// Status: lightweight error propagation without exceptions, in the style of
// Apache Arrow / RocksDB. Functions that can fail return Status (or
// Result<T>, see result.h) instead of throwing.
#ifndef HSPARQL_COMMON_STATUS_H_
#define HSPARQL_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace hsparql {

/// Machine-readable error category carried by a non-OK Status. This enum is
/// the stable public error vocabulary: every layer classifies failures by
/// code() (never by matching message text), and the HTTP front door maps
/// each code onto a response status via HttpStatusFor().
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnsupported,
  kInternal,
  kIoError,
  kDeadlineExceeded,
  /// The SPARQL query text failed to lex/parse/analyze — a client error
  /// (HTTP 400), distinct from kParseError which covers malformed *data*
  /// inputs (N-Triples files) that never arrive over the protocol.
  kInvalidQuery,
  /// The caller (or the server, during shutdown) explicitly cancelled the
  /// request before it finished — distinct from kDeadlineExceeded, which
  /// is reserved for timeout expiry (HTTP 499 vs 408).
  kCancelled,
  /// Load shed: the admission queue, a per-client limit, or a rate limit
  /// rejected the request without executing any of it (HTTP 503/429).
  kOverloaded,
  /// The service exists but is not taking requests (draining for
  /// shutdown). Retryable against another replica (HTTP 503).
  kUnavailable,
  /// A snapshot image failed validation (bad magic/version/endianness,
  /// truncation, checksum mismatch, or invariant-breaking contents).
  /// Distinct from kIoError: the file was readable, its bytes are not a
  /// snapshot this build can trust (storage/snapshot.h).
  kInvalidSnapshot,
};

/// Returns the human-readable name of a status code ("Parse error"...).
std::string_view StatusCodeToString(StatusCode code);

/// Returns the stable snake_case identifier of a status code
/// ("deadline_exceeded", "invalid_query", ...) — the form used in the
/// slow-query log, metrics labels, and the server's X-Status-Code header.
std::string_view StatusCodeName(StatusCode code);

/// The stable HTTP mapping of the error vocabulary: kOk 200, invalid
/// query/argument 400, kNotFound 404, kDeadlineExceeded 408,
/// kAlreadyExists 409, kCancelled 499 (nginx's client-closed-request),
/// kUnsupported 501, kOverloaded/kUnavailable 503, everything else 500.
int HttpStatusFor(StatusCode code);

/// Result of an operation that can fail. OK carries no payload; errors carry
/// a code and a human-readable message. Cheap to return in the common (OK)
/// case: OK is represented by a null pointer.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(message)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status InvalidQuery(std::string msg) {
    return Status(StatusCode::kInvalidQuery, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status InvalidSnapshot(std::string msg) {
    return Status(StatusCode::kInvalidSnapshot, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnsupported() const { return code() == StatusCode::kUnsupported; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsInvalidQuery() const { return code() == StatusCode::kInvalidQuery; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsOverloaded() const { return code() == StatusCode::kOverloaded; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsInvalidSnapshot() const {
    return code() == StatusCode::kInvalidSnapshot;
  }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;  // null == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace hsparql

/// Propagates a non-OK Status to the caller.
#define HSPARQL_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::hsparql::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (false)

#endif  // HSPARQL_COMMON_STATUS_H_
