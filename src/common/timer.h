// Wall-clock timing helpers used by the benchmark harnesses and ExecStats.
#ifndef HSPARQL_COMMON_TIMER_H_
#define HSPARQL_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace hsparql {

/// Monotonic stopwatch. Start() (or construction) begins timing.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Start() { start_ = Clock::now(); }

  /// Elapsed time since Start() in fractional milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time since Start() in fractional microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hsparql

#endif  // HSPARQL_COMMON_TIMER_H_
