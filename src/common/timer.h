// The one wall-clock stopwatch for the whole codebase.
//
// Every layer that measures time — the executor's per-operator actuals,
// the engine's per-phase millis, the loaders' stage breakdowns, the bench
// harnesses — uses this class, so "a millisecond" means the same
// steady_clock arithmetic everywhere (engine.cc's inline chrono math and
// the bench stopwatch were folded into it; obs/registry.h adds the RAII
// ScopedTimer that feeds a Timer reading into a histogram or accumulator).
#ifndef HSPARQL_COMMON_TIMER_H_
#define HSPARQL_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace hsparql {

/// Monotonic stopwatch. Start() (or construction) begins timing.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Start() { start_ = Clock::now(); }

  /// Elapsed time since Start() in fractional milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time since Start() in fractional microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hsparql

#endif  // HSPARQL_COMMON_TIMER_H_
