// Deterministic pseudo-random number generation.
//
// The paper's Algorithm 1 ends tie-breaking with "RandomChooseOne". For a
// reproducible system (and reproducible experiments) every random choice in
// this codebase flows through a seeded Rng instance; the default seed is
// fixed so repeated runs produce identical plans.
#ifndef HSPARQL_COMMON_RNG_H_
#define HSPARQL_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace hsparql {

/// Default seed used across planners, generators and benchmarks.
inline constexpr std::uint64_t kDefaultSeed = 42;

/// splitmix64: tiny, fast, high-quality 64-bit PRNG; used both directly and
/// to seed larger state machines.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = kDefaultSeed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound); `bound` must be > 0. Modulo reduction:
  /// the bias is negligible for planning/synthetic-data bounds (<< 2^32).
  std::uint64_t NextBounded(std::uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// Draws from an (approximate) Zipf distribution over [0, n) with skew `s`,
/// by inverse-CDF over the harmonic weights. Used by the synthetic data
/// generators to model hub-heavy RDF graphs (paper §4, HEURISTIC 2: "RDF
/// data graphs tend to be sparse ... there are hub nodes").
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double skew, std::uint64_t seed = kDefaultSeed);

  /// Draws a rank in [0, n); rank 0 is the most popular.
  std::uint64_t Next();

  std::uint64_t n() const { return n_; }

 private:
  std::uint64_t n_;
  double skew_;
  std::vector<double> cdf_;  // unnormalised CDF of the harmonic weights
  SplitMix64 rng_;
};

}  // namespace hsparql

#endif  // HSPARQL_COMMON_RNG_H_
