// Hash64 — the checksum function of the snapshot format (DESIGN.md §4k).
//
// A word-at-a-time multiply-xor chain (Murmur3-style finalisation) rather
// than the byte-at-a-time FNV-1a used for query-text hashing: snapshot
// verification hashes every section of a potentially multi-gigabyte image
// at open, so the checksum must run at memory speed, not at one byte per
// dependent multiply. Not cryptographic — it detects corruption and
// truncation, not adversaries.
//
// The function is part of the on-disk format: changing it (or the chunk
// chaining) is a format version bump.
//
// Thread safety: pure functions over caller-owned buffers — safe from any
// thread without synchronisation.
#ifndef HSPARQL_COMMON_HASH_H_
#define HSPARQL_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace hsparql {

/// Bit-mixing finaliser (Murmur3 fmix64): every input bit affects every
/// output bit.
inline std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// 64-bit checksum of `bytes`. The length is mixed in, so a checksum
/// never matches a truncated or padded copy of its input. Writer and
/// reader hash the same section byte ranges through this one function:
/// SaveSnapshot checksums each in-memory section buffer as it lays out
/// the image, and verification re-hashes the identical ranges out of the
/// mapping at open.
inline std::uint64_t Hash64(std::span<const std::uint8_t> bytes,
                            std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
  std::uint64_t h = seed ^ Mix64(bytes.size());
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t w;
    std::memcpy(&w, bytes.data() + i, 8);
    h = Mix64(h ^ w) * 0x2545f4914f6cdd1dULL;
  }
  if (i < bytes.size()) {
    std::uint64_t w = 0;
    std::memcpy(&w, bytes.data() + i, bytes.size() - i);
    h = Mix64(h ^ w) * 0x2545f4914f6cdd1dULL;
  }
  return Mix64(h);
}

}  // namespace hsparql

#endif  // HSPARQL_COMMON_HASH_H_
