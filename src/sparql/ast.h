// Abstract syntax of the SPARQL subset (Definitions 2 and 3 of the paper).
//
// A SPARQL join query is a set of triple patterns over
// (U ∪ V) x (U ∪ V) x (U ∪ L ∪ V) plus a projection list; FILTER
// conditions on variables are carried alongside (equality filters are
// folded into the patterns by RewriteFilters(), the remaining ones are
// applied post-join by the executor).
#ifndef HSPARQL_SPARQL_AST_H_
#define HSPARQL_SPARQL_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rdf/term.h"
#include "rdf/triple.h"

namespace hsparql::sparql {

/// Index of a variable in Query::var_names. Dense per query.
using VarId = std::uint32_t;
inline constexpr VarId kInvalidVarId = UINT32_MAX;

/// One slot of a triple pattern: a variable or an RDF constant.
struct PatternTerm {
  static PatternTerm Var(VarId v) {
    PatternTerm t;
    t.var = v;
    return t;
  }
  static PatternTerm Const(rdf::Term c) {
    PatternTerm t;
    t.constant = std::move(c);
    return t;
  }

  bool is_variable() const { return var != kInvalidVarId; }
  bool is_constant() const { return !is_variable(); }

  VarId var = kInvalidVarId;
  rdf::Term constant;  // meaningful only when is_constant()

  friend bool operator==(const PatternTerm&, const PatternTerm&) = default;
};

/// A SPARQL triple pattern (Definition 2).
struct TriplePattern {
  PatternTerm s;
  PatternTerm p;
  PatternTerm o;

  const PatternTerm& at(rdf::Position pos) const {
    switch (pos) {
      case rdf::Position::kSubject:
        return s;
      case rdf::Position::kPredicate:
        return p;
      default:
        return o;
    }
  }
  PatternTerm& at(rdf::Position pos) {
    return const_cast<PatternTerm&>(
        static_cast<const TriplePattern*>(this)->at(pos));
  }

  /// Number of bound (constant) components, 0..3.
  int num_constants() const;
  /// Number of variable slots, 0..3 (counts repeated variables twice).
  int num_variable_slots() const { return 3 - num_constants(); }

  /// Positions at which `v` occurs (a variable may repeat within a pattern).
  std::vector<rdf::Position> PositionsOf(VarId v) const;
  /// Distinct variables of the pattern, in s, p, o order.
  std::vector<VarId> Variables() const;
  /// True if `v` occurs anywhere in the pattern.
  bool Mentions(VarId v) const;

  friend bool operator==(const TriplePattern&, const TriplePattern&) = default;
};

/// Comparison operator of a FILTER condition.
enum class FilterOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view FilterOpName(FilterOp op);

/// A simple FILTER: `?var op constant` or `?var op ?rhs_var`.
struct Filter {
  VarId var = kInvalidVarId;
  FilterOp op = FilterOp::kEq;
  std::optional<VarId> rhs_var;  // set for variable-variable comparisons
  rdf::Term value;               // used when rhs_var is empty

  friend bool operator==(const Filter&, const Filter&) = default;
};

/// A parsed SPARQL join query (Definition 3) with projection and filters,
/// extended with the paper's §7 future-work features:
///  * OPTIONAL groups — each is a basic graph pattern left-outer-joined to
///    the required part (`patterns`);
///  * UNION — when `union_branches` is non-empty the WHERE clause is the
///    union of `patterns` (branch 0) and each listed branch; filters and
///    projection apply to every branch.
struct Query {
  /// Variable names without the '?' prefix; VarId indexes this vector.
  std::vector<std::string> var_names;
  /// Projection variables ("SELECT ?x ?y"); ignored when select_all.
  std::vector<VarId> projection;
  bool select_all = false;  // SELECT *
  bool distinct = false;
  std::vector<TriplePattern> patterns;
  std::vector<Filter> filters;
  /// OPTIONAL { ... } groups attached to the required patterns.
  std::vector<std::vector<TriplePattern>> optional_groups;
  /// Additional UNION branches ({patterns} UNION {branch 1} UNION ...).
  std::vector<std::vector<TriplePattern>> union_branches;
  /// ASK query: the answer is whether any mapping exists.
  bool ask = false;
  /// Solution modifiers: ORDER BY keys, then LIMIT/OFFSET.
  struct OrderKey {
    VarId var = kInvalidVarId;
    bool descending = false;
    friend bool operator==(const OrderKey&, const OrderKey&) = default;
  };
  std::vector<OrderKey> order_by;
  std::optional<std::uint64_t> limit;
  std::uint64_t offset = 0;

  const std::string& VarName(VarId v) const { return var_names[v]; }
  std::size_t num_vars() const { return var_names.size(); }

  /// VarId for a name, creating it if unseen.
  VarId InternVar(std::string_view name);
  /// VarId for a name if present.
  std::optional<VarId> FindVar(std::string_view name) const;

  /// Number of patterns in which each variable occurs (the weight function
  /// β of Definition 4; a repeated variable within one pattern counts once).
  std::vector<std::uint32_t> VarWeights() const;

  /// True if `v` is a projection variable.
  bool IsProjected(VarId v) const;

  /// True if the query uses OPTIONAL or UNION.
  bool HasGraphPatternExtensions() const {
    return !optional_groups.empty() || !union_branches.empty();
  }

  /// Round-trippable SPARQL text (used by explain output and tests).
  std::string ToString() const;
};

}  // namespace hsparql::sparql

#endif  // HSPARQL_SPARQL_AST_H_
