#include "sparql/ast.h"

#include <algorithm>
#include <sstream>

namespace hsparql::sparql {

using rdf::Position;

int TriplePattern::num_constants() const {
  int n = 0;
  for (Position pos : rdf::kAllPositions) {
    if (at(pos).is_constant()) ++n;
  }
  return n;
}

std::vector<Position> TriplePattern::PositionsOf(VarId v) const {
  std::vector<Position> out;
  for (Position pos : rdf::kAllPositions) {
    const PatternTerm& t = at(pos);
    if (t.is_variable() && t.var == v) out.push_back(pos);
  }
  return out;
}

std::vector<VarId> TriplePattern::Variables() const {
  std::vector<VarId> out;
  for (Position pos : rdf::kAllPositions) {
    const PatternTerm& t = at(pos);
    if (t.is_variable() &&
        std::find(out.begin(), out.end(), t.var) == out.end()) {
      out.push_back(t.var);
    }
  }
  return out;
}

bool TriplePattern::Mentions(VarId v) const {
  for (Position pos : rdf::kAllPositions) {
    const PatternTerm& t = at(pos);
    if (t.is_variable() && t.var == v) return true;
  }
  return false;
}

std::string_view FilterOpName(FilterOp op) {
  switch (op) {
    case FilterOp::kEq:
      return "=";
    case FilterOp::kNe:
      return "!=";
    case FilterOp::kLt:
      return "<";
    case FilterOp::kLe:
      return "<=";
    case FilterOp::kGt:
      return ">";
    case FilterOp::kGe:
      return ">=";
  }
  return "?";
}

VarId Query::InternVar(std::string_view name) {
  for (std::size_t i = 0; i < var_names.size(); ++i) {
    if (var_names[i] == name) return static_cast<VarId>(i);
  }
  var_names.emplace_back(name);
  return static_cast<VarId>(var_names.size() - 1);
}

std::optional<VarId> Query::FindVar(std::string_view name) const {
  for (std::size_t i = 0; i < var_names.size(); ++i) {
    if (var_names[i] == name) return static_cast<VarId>(i);
  }
  return std::nullopt;
}

std::vector<std::uint32_t> Query::VarWeights() const {
  std::vector<std::uint32_t> weights(var_names.size(), 0);
  for (const TriplePattern& tp : patterns) {
    for (VarId v : tp.Variables()) ++weights[v];
  }
  return weights;
}

bool Query::IsProjected(VarId v) const {
  if (select_all) return true;
  return std::find(projection.begin(), projection.end(), v) !=
         projection.end();
}

namespace {

void AppendTerm(const Query& q, const PatternTerm& t, std::ostream& os) {
  if (t.is_variable()) {
    os << '?' << q.VarName(t.var);
  } else {
    os << t.constant.ToString();
  }
}

}  // namespace

std::string Query::ToString() const {
  std::ostringstream os;
  if (ask) {
    os << "ASK";
  } else {
    os << "SELECT ";
    if (distinct) os << "DISTINCT ";
    if (select_all) {
      os << "*";
    } else {
      for (std::size_t i = 0; i < projection.size(); ++i) {
        if (i > 0) os << ' ';
        os << '?' << VarName(projection[i]);
      }
    }
  }
  os << "\nWHERE {\n";
  auto append_patterns = [&](const std::vector<TriplePattern>& tps,
                             const char* indent) {
    for (const TriplePattern& tp : tps) {
      os << indent;
      AppendTerm(*this, tp.s, os);
      os << ' ';
      AppendTerm(*this, tp.p, os);
      os << ' ';
      AppendTerm(*this, tp.o, os);
      os << " .\n";
    }
  };
  if (union_branches.empty()) {
    append_patterns(patterns, "  ");
  } else {
    os << "  {\n";
    append_patterns(patterns, "    ");
    os << "  }";
    for (const auto& branch : union_branches) {
      os << " UNION {\n";
      append_patterns(branch, "    ");
      os << "  }";
    }
    os << "\n";
  }
  for (const auto& group : optional_groups) {
    os << "  OPTIONAL {\n";
    append_patterns(group, "    ");
    os << "  }\n";
  }
  for (const Filter& f : filters) {
    os << "  FILTER (?" << VarName(f.var) << ' ' << FilterOpName(f.op) << ' ';
    if (f.rhs_var.has_value()) {
      os << '?' << VarName(*f.rhs_var);
    } else {
      os << f.value.ToString();
    }
    os << ")\n";
  }
  os << "}";
  if (!order_by.empty()) {
    os << "\nORDER BY";
    for (const OrderKey& key : order_by) {
      if (key.descending) {
        os << " DESC(?" << VarName(key.var) << ")";
      } else {
        os << " ?" << VarName(key.var);
      }
    }
  }
  if (limit.has_value()) os << "\nLIMIT " << *limit;
  if (offset > 0) os << "\nOFFSET " << offset;
  return os.str();
}

}  // namespace hsparql::sparql
