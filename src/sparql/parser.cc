#include "sparql/parser.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <unordered_map>

#include "sparql/lexer.h"

namespace hsparql::sparql {

namespace {

bool IsKeyword(const Token& tok, std::string_view keyword) {
  if (tok.kind != TokenKind::kIdent) return false;
  if (tok.text.size() != keyword.size()) return false;
  for (std::size_t i = 0; i < keyword.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(tok.text[i])) != keyword[i]) {
      return false;
    }
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Run() {
    HSPARQL_RETURN_IF_ERROR(ParsePrologue());
    HSPARQL_RETURN_IF_ERROR(ParseSelect());
    HSPARQL_RETURN_IF_ERROR(ParseWhere());
    HSPARQL_RETURN_IF_ERROR(ParseSolutionModifiers());
    if (Peek().kind != TokenKind::kEof) {
      return Error("trailing content after query");
    }
    // Validate projection variables actually occur in the body.
    for (VarId v : query_.projection) {
      auto mentions = [v](const std::vector<TriplePattern>& tps) {
        return std::any_of(tps.begin(), tps.end(), [v](const TriplePattern& tp) {
          return tp.Mentions(v);
        });
      };
      bool used = mentions(query_.patterns);
      for (const auto& group : query_.optional_groups) {
        used = used || mentions(group);
      }
      for (const auto& branch : query_.union_branches) {
        used = used || mentions(branch);
      }
      if (!used) {
        return Error("projection variable ?" + query_.VarName(v) +
                     " does not occur in WHERE clause");
      }
    }
    return std::move(query_);
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool Match(TokenKind kind) {
    if (Peek().kind != kind) return false;
    Advance();
    return true;
  }

  Status Error(std::string_view what) const {
    const Token& tok = Peek();
    std::ostringstream os;
    os << "parse error at " << tok.line << ":" << tok.column << ": " << what
       << " (got " << TokenKindName(tok.kind)
       << (tok.text.empty() ? "" : " '" + tok.text + "'") << ")";
    return Status::InvalidQuery(os.str());
  }

  Status Expect(TokenKind kind, std::string_view what) {
    if (!Match(kind)) return Error(what);
    return Status::OK();
  }

  Status ParsePrologue() {
    while (IsKeyword(Peek(), "PREFIX")) {
      Advance();
      const Token& name = Peek();
      if (name.kind != TokenKind::kPname || name.text.empty() ||
          name.text.back() != ':') {
        return Error("expected prefix name ending in ':'");
      }
      std::string prefix = name.text.substr(0, name.text.size() - 1);
      Advance();
      const Token& iri = Peek();
      if (iri.kind != TokenKind::kIri) return Error("expected IRI");
      prefixes_[prefix] = iri.text;
      Advance();
    }
    return Status::OK();
  }

  Status ParseSelect() {
    if (IsKeyword(Peek(), "ASK")) {
      Advance();
      query_.ask = true;
      query_.select_all = true;  // plan over every variable, answer is bool
      return Status::OK();
    }
    if (!IsKeyword(Peek(), "SELECT")) return Error("expected SELECT or ASK");
    Advance();
    if (IsKeyword(Peek(), "DISTINCT")) {
      Advance();
      query_.distinct = true;
    }
    if (Match(TokenKind::kStar)) {
      query_.select_all = true;
      return Status::OK();
    }
    while (Peek().kind == TokenKind::kVar || Peek().kind == TokenKind::kComma) {
      if (Peek().kind == TokenKind::kComma) {  // tolerate "?a, ?b" style
        Advance();
        continue;
      }
      VarId v = query_.InternVar(Peek().text);
      if (std::find(query_.projection.begin(), query_.projection.end(), v) ==
          query_.projection.end()) {
        query_.projection.push_back(v);
      }
      Advance();
    }
    if (query_.projection.empty()) {
      return Error("expected '*' or projection variables after SELECT");
    }
    return Status::OK();
  }

  Status ParseWhere() {
    if (IsKeyword(Peek(), "WHERE")) Advance();
    HSPARQL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "expected '{'"));
    while (Peek().kind != TokenKind::kRBrace) {
      if (Peek().kind == TokenKind::kEof) return Error("unterminated '{'");
      if (IsKeyword(Peek(), "FILTER")) {
        HSPARQL_RETURN_IF_ERROR(ParseFilter());
      } else if (IsKeyword(Peek(), "OPTIONAL")) {
        HSPARQL_RETURN_IF_ERROR(ParseOptional());
      } else if (Peek().kind == TokenKind::kLBrace) {
        HSPARQL_RETURN_IF_ERROR(ParseUnion());
      } else {
        if (!query_.union_branches.empty()) {
          return Error(
              "triple patterns cannot follow a UNION group (the supported "
              "subset unions whole basic graph patterns)");
        }
        HSPARQL_RETURN_IF_ERROR(ParseTriples(&query_.patterns));
      }
      Match(TokenKind::kDot);  // '.' separators are optional before '}'
    }
    Advance();  // '}'
    if (query_.patterns.empty()) {
      return Error("WHERE clause contains no triple patterns");
    }
    return Status::OK();
  }

  // (ORDER BY (ASC(?v)|DESC(?v)|?v)+)? (LIMIT n | OFFSET n)*
  Status ParseSolutionModifiers() {
    if (IsKeyword(Peek(), "ORDER")) {
      Advance();
      if (!IsKeyword(Peek(), "BY")) return Error("expected BY after ORDER");
      Advance();
      while (true) {
        Query::OrderKey key;
        if (IsKeyword(Peek(), "ASC") || IsKeyword(Peek(), "DESC")) {
          key.descending = IsKeyword(Peek(), "DESC");
          Advance();
          HSPARQL_RETURN_IF_ERROR(
              Expect(TokenKind::kLParen, "expected '(' after ASC/DESC"));
          if (Peek().kind != TokenKind::kVar) {
            return Error("expected variable in ORDER BY");
          }
          key.var = query_.InternVar(Peek().text);
          Advance();
          HSPARQL_RETURN_IF_ERROR(
              Expect(TokenKind::kRParen, "expected ')'"));
        } else if (Peek().kind == TokenKind::kVar) {
          key.var = query_.InternVar(Peek().text);
          Advance();
        } else {
          break;
        }
        bool known = false;
        for (const TriplePattern& tp : query_.patterns) {
          known = known || tp.Mentions(key.var);
        }
        for (const auto& group : query_.optional_groups) {
          for (const TriplePattern& tp : group) {
            known = known || tp.Mentions(key.var);
          }
        }
        for (const auto& branch : query_.union_branches) {
          for (const TriplePattern& tp : branch) {
            known = known || tp.Mentions(key.var);
          }
        }
        if (!known) {
          return Error("ORDER BY variable ?" + query_.VarName(key.var) +
                       " does not occur in WHERE clause");
        }
        query_.order_by.push_back(key);
      }
      if (query_.order_by.empty()) {
        return Error("expected at least one ORDER BY key");
      }
    }
    while (IsKeyword(Peek(), "LIMIT") || IsKeyword(Peek(), "OFFSET")) {
      bool is_limit = IsKeyword(Peek(), "LIMIT");
      Advance();
      if (Peek().kind != TokenKind::kNumber) {
        return Error("expected a number");
      }
      std::uint64_t value = 0;
      for (char c : Peek().text) {
        if (c < '0' || c > '9') return Error("expected a non-negative integer");
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
      }
      Advance();
      if (is_limit) {
        query_.limit = value;
      } else {
        query_.offset = value;
      }
    }
    return Status::OK();
  }

  // OPTIONAL '{' triples ('.' triples)* '}'
  Status ParseOptional() {
    Advance();  // OPTIONAL
    std::vector<TriplePattern> group;
    HSPARQL_RETURN_IF_ERROR(ParseBracedPatterns(&group));
    if (group.empty()) return Error("empty OPTIONAL group");
    query_.optional_groups.push_back(std::move(group));
    return Status::OK();
  }

  // '{' triples* '}' (UNION '{' triples* '}')+
  Status ParseUnion() {
    if (!query_.patterns.empty() || !query_.union_branches.empty()) {
      return Error(
          "a UNION group must be the first pattern group of the WHERE "
          "clause");
    }
    HSPARQL_RETURN_IF_ERROR(ParseBracedPatterns(&query_.patterns));
    if (query_.patterns.empty()) return Error("empty UNION branch");
    if (!IsKeyword(Peek(), "UNION")) {
      return Error("expected UNION after '{...}' group");
    }
    while (IsKeyword(Peek(), "UNION")) {
      Advance();
      std::vector<TriplePattern> branch;
      HSPARQL_RETURN_IF_ERROR(ParseBracedPatterns(&branch));
      if (branch.empty()) return Error("empty UNION branch");
      query_.union_branches.push_back(std::move(branch));
    }
    return Status::OK();
  }

  Status ParseBracedPatterns(std::vector<TriplePattern>* sink) {
    HSPARQL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "expected '{'"));
    while (Peek().kind != TokenKind::kRBrace) {
      if (Peek().kind == TokenKind::kEof) return Error("unterminated '{'");
      HSPARQL_RETURN_IF_ERROR(ParseTriples(sink));
      Match(TokenKind::kDot);
    }
    Advance();  // '}'
    return Status::OK();
  }

  // term verb objects (';' verb objects)*
  Status ParseTriples(std::vector<TriplePattern>* sink) {
    HSPARQL_ASSIGN_OR_RETURN(PatternTerm subject, ParseTerm());
    while (true) {
      HSPARQL_ASSIGN_OR_RETURN(PatternTerm verb, ParseVerb());
      // objects := term (',' term)*
      while (true) {
        HSPARQL_ASSIGN_OR_RETURN(PatternTerm object, ParseTerm());
        sink->push_back(TriplePattern{subject, verb, object});
        if (!Match(TokenKind::kComma)) break;
      }
      if (!Match(TokenKind::kSemicolon)) break;
    }
    return Status::OK();
  }

  Result<PatternTerm> ParseVerb() {
    if (Peek().kind == TokenKind::kIdent && Peek().text == "a") {
      Advance();
      return PatternTerm::Const(rdf::Term::Iri(std::string(kRdfTypeIri)));
    }
    return ParseTerm();
  }

  Result<PatternTerm> ParseTerm() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kVar: {
        VarId v = query_.InternVar(tok.text);
        Advance();
        return PatternTerm::Var(v);
      }
      case TokenKind::kIri: {
        PatternTerm t = PatternTerm::Const(rdf::Term::Iri(tok.text));
        Advance();
        return t;
      }
      case TokenKind::kPname: {
        HSPARQL_ASSIGN_OR_RETURN(std::string iri, ExpandPname(tok.text));
        Advance();
        return PatternTerm::Const(rdf::Term::Iri(std::move(iri)));
      }
      case TokenKind::kString: {
        PatternTerm t = PatternTerm::Const(rdf::Term::Literal(tok.text));
        Advance();
        return t;
      }
      case TokenKind::kNumber: {
        PatternTerm t = PatternTerm::Const(rdf::Term::Literal(tok.text));
        Advance();
        return t;
      }
      default:
        return Error("expected an IRI, prefixed name, variable or literal");
    }
  }

  Result<std::string> ExpandPname(std::string_view pname) {
    std::size_t colon = pname.find(':');
    std::string prefix(pname.substr(0, colon));
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Error("undeclared prefix '" + prefix + ":'");
    }
    return it->second + std::string(pname.substr(colon + 1));
  }

  // FILTER '(' ?var op (constant | ?var) ')'
  Status ParseFilter() {
    Advance();  // FILTER
    HSPARQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "expected '('"));
    if (Peek().kind != TokenKind::kVar) {
      return Error("expected variable on FILTER left-hand side");
    }
    Filter filter;
    filter.var = query_.InternVar(Peek().text);
    Advance();
    switch (Peek().kind) {
      case TokenKind::kEq:
        filter.op = FilterOp::kEq;
        break;
      case TokenKind::kNe:
        filter.op = FilterOp::kNe;
        break;
      case TokenKind::kLt:
        filter.op = FilterOp::kLt;
        break;
      case TokenKind::kLe:
        filter.op = FilterOp::kLe;
        break;
      case TokenKind::kGt:
        filter.op = FilterOp::kGt;
        break;
      case TokenKind::kGe:
        filter.op = FilterOp::kGe;
        break;
      default:
        return Error("expected comparison operator in FILTER");
    }
    Advance();
    const Token& rhs = Peek();
    switch (rhs.kind) {
      case TokenKind::kVar:
        filter.rhs_var = query_.InternVar(rhs.text);
        Advance();
        break;
      case TokenKind::kString:
      case TokenKind::kNumber:
        filter.value = rdf::Term::Literal(rhs.text);
        Advance();
        break;
      case TokenKind::kIri:
        filter.value = rdf::Term::Iri(rhs.text);
        Advance();
        break;
      case TokenKind::kPname: {
        HSPARQL_ASSIGN_OR_RETURN(std::string iri, ExpandPname(rhs.text));
        filter.value = rdf::Term::Iri(std::move(iri));
        Advance();
        break;
      }
      default:
        return Error("expected constant or variable on FILTER right-hand side");
    }
    HSPARQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "expected ')'"));
    query_.filters.push_back(std::move(filter));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::unordered_map<std::string, std::string> prefixes_;
  Query query_;
};

}  // namespace

Result<Query> Parse(std::string_view text) {
  HSPARQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return Parser(std::move(tokens)).Run();
}

}  // namespace hsparql::sparql
