// Syntactic query census — the quantities reported in Table 2 of the paper.
//
// Join counting follows the paper's scheme (validated against every
// consistent cell of Table 2):
//  * #Joins = #triple patterns − #connected components of the pattern-level
//    join graph (the size of a spanning forest);
//  * join-pattern classes (s⋈s, p⋈p, o⋈o, s⋈p, s⋈o, p⋈o) are attributed by
//    walking each shared variable's occurrences and adding a spanning edge
//    only between patterns not yet connected: same-position chains first
//    (giving x⋈x edges), then links between position groups (giving
//    cross-position edges, e.g. s⋈o);
//  * "maximum star join" = max over variables of (weight − 1), the number
//    of joins the most-shared variable participates in.
#ifndef HSPARQL_SPARQL_ANALYZER_H_
#define HSPARQL_SPARQL_ANALYZER_H_

#include <array>
#include <cstdint>
#include <string>

#include "rdf/triple.h"
#include "sparql/ast.h"

namespace hsparql::sparql {

/// Unordered pair of triple-pattern positions identifying a join class.
/// Canonical order: subject <= predicate <= object position index.
struct JoinClass {
  rdf::Position a;
  rdf::Position b;

  static JoinClass Make(rdf::Position x, rdf::Position y);
  /// "s=s", "s=o", "p=o", ...
  std::string ToString() const;
  friend bool operator==(const JoinClass&, const JoinClass&) = default;
};

/// The six join classes in the order of Table 2's rows.
inline constexpr int kNumJoinClasses = 6;
std::array<JoinClass, kNumJoinClasses> AllJoinClasses();
int JoinClassIndex(JoinClass jc);

/// Everything Table 2 reports for one query.
struct QueryCharacteristics {
  int num_patterns = 0;
  int num_variables = 0;
  int num_projection_variables = 0;
  int num_shared_variables = 0;       // weight >= 2
  std::array<int, 4> patterns_with_constants = {0, 0, 0, 0};  // 0..3 consts
  int num_joins = 0;                  // spanning-forest size
  int max_star_join = 0;              // max_v (weight(v) - 1)
  std::array<int, kNumJoinClasses> join_class_counts = {};

  int JoinCount(JoinClass jc) const {
    return join_class_counts[static_cast<std::size_t>(JoinClassIndex(jc))];
  }
};

/// Computes the census of `query` (filters are ignored; run RewriteFilters
/// first to reproduce the paper's numbers for filtering queries).
QueryCharacteristics Analyze(const Query& query);

}  // namespace hsparql::sparql

#endif  // HSPARQL_SPARQL_ANALYZER_H_
