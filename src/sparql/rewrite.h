// FILTER-to-pattern rewriting.
//
// §6.2.1: "Unlike CDP, HSP systematically rewrites filtering queries into an
// equivalent form involving only triple patterns. CDP does not perform this
// rewriting. Instead, it executes an expensive join followed by the
// evaluation of the filter."
//
// Two rewrites are applied, both semantics-preserving:
//  * `FILTER (?v = <const>)`  -> substitute the constant for ?v in every
//    triple pattern (only when ?v is not projected, so the result schema is
//    unchanged);
//  * `FILTER (?v = ?w)`       -> unify the two variables (keeping a
//    projected one as the survivor).
// All other filters (!=, <, <=, >, >=) remain and are evaluated post-join.
#ifndef HSPARQL_SPARQL_REWRITE_H_
#define HSPARQL_SPARQL_REWRITE_H_

#include "sparql/ast.h"

namespace hsparql::sparql {

/// Statistics about what RewriteFilters changed (inspectable by tests and
/// explain output).
struct RewriteReport {
  int constants_folded = 0;   // FILTER(?v = const) substitutions
  int variables_unified = 0;  // FILTER(?v = ?w) unifications
};

/// Applies the HSP filter rewrites in place; returns what was done.
RewriteReport RewriteFilters(Query* query);

}  // namespace hsparql::sparql

#endif  // HSPARQL_SPARQL_REWRITE_H_
