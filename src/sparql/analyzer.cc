#include "sparql/analyzer.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace hsparql::sparql {

using rdf::Position;

JoinClass JoinClass::Make(Position x, Position y) {
  if (static_cast<int>(x) <= static_cast<int>(y)) return JoinClass{x, y};
  return JoinClass{y, x};
}

std::string JoinClass::ToString() const {
  std::string out;
  out += rdf::PositionLetter(a);
  out += '=';
  out += rdf::PositionLetter(b);
  return out;
}

std::array<JoinClass, kNumJoinClasses> AllJoinClasses() {
  using P = Position;
  return {JoinClass{P::kSubject, P::kSubject},
          JoinClass{P::kPredicate, P::kPredicate},
          JoinClass{P::kObject, P::kObject},
          JoinClass{P::kSubject, P::kPredicate},
          JoinClass{P::kSubject, P::kObject},
          JoinClass{P::kPredicate, P::kObject}};
}

int JoinClassIndex(JoinClass jc) {
  auto all = AllJoinClasses();
  for (int i = 0; i < kNumJoinClasses; ++i) {
    if (all[static_cast<std::size_t>(i)] == jc) return i;
  }
  return -1;
}

namespace {

/// Union-find over triple-pattern indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// Returns true if x and y were in different components (and merges them).
  bool Union(std::size_t x, std::size_t y) {
    std::size_t rx = Find(x);
    std::size_t ry = Find(y);
    if (rx == ry) return false;
    parent_[rx] = ry;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

QueryCharacteristics Analyze(const Query& query) {
  QueryCharacteristics out;
  out.num_patterns = static_cast<int>(query.patterns.size());

  for (const TriplePattern& tp : query.patterns) {
    int c = tp.num_constants();
    ++out.patterns_with_constants[static_cast<std::size_t>(c)];
  }

  // Count only variables that occur in the patterns: rewriting may leave
  // names behind (e.g. a folded FILTER variable) that are no longer part
  // of the join query.
  const std::vector<std::uint32_t> weights = query.VarWeights();
  for (std::uint32_t w : weights) {
    if (w >= 1) ++out.num_variables;
    if (w >= 2) ++out.num_shared_variables;
    if (w >= 1) {
      out.max_star_join = std::max(out.max_star_join, static_cast<int>(w) - 1);
    }
  }
  out.num_projection_variables =
      query.select_all ? out.num_variables
                       : static_cast<int>(query.projection.size());

  // Spanning-forest joins with class attribution. For each shared variable,
  // group its occurrences by position (s, p, o order); chain within each
  // group, then link consecutive non-empty groups. An edge is counted only
  // if the two patterns were not already connected.
  UnionFind uf(query.patterns.size());
  for (VarId v = 0; v < query.num_vars(); ++v) {
    if (weights[v] < 2) continue;
    // Occurrences per position: list of pattern indices.
    std::array<std::vector<std::size_t>, 3> groups;
    for (std::size_t i = 0; i < query.patterns.size(); ++i) {
      for (Position pos : query.patterns[i].PositionsOf(v)) {
        groups[static_cast<std::size_t>(pos)].push_back(i);
      }
    }
    // Same-position chains.
    for (Position pos : rdf::kAllPositions) {
      const auto& g = groups[static_cast<std::size_t>(pos)];
      for (std::size_t i = 1; i < g.size(); ++i) {
        if (uf.Union(g[i - 1], g[i])) {
          ++out.num_joins;
          JoinClass jc = JoinClass::Make(pos, pos);
          ++out.join_class_counts[static_cast<std::size_t>(
              JoinClassIndex(jc))];
        }
      }
    }
    // Cross-position links between consecutive non-empty groups.
    Position prev_pos = Position::kSubject;
    bool have_prev = false;
    for (Position pos : rdf::kAllPositions) {
      const auto& g = groups[static_cast<std::size_t>(pos)];
      if (g.empty()) continue;
      if (have_prev) {
        const auto& pg = groups[static_cast<std::size_t>(prev_pos)];
        if (uf.Union(pg.front(), g.front())) {
          ++out.num_joins;
          JoinClass jc = JoinClass::Make(prev_pos, pos);
          ++out.join_class_counts[static_cast<std::size_t>(
              JoinClassIndex(jc))];
        }
      }
      prev_pos = pos;
      have_prev = true;
    }
  }
  return out;
}

}  // namespace hsparql::sparql
