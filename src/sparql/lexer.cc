#include "sparql/lexer.h"

#include <cctype>
#include <sstream>

namespace hsparql::sparql {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIri:
      return "IRI";
    case TokenKind::kPname:
      return "prefixed name";
    case TokenKind::kVar:
      return "variable";
    case TokenKind::kString:
      return "string";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kEof:
      return "end of input";
  }
  return "?";
}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipSpaceAndComments();
      if (AtEnd()) {
        tokens.push_back(Make(TokenKind::kEof, ""));
        return tokens;
      }
      HSPARQL_ASSIGN_OR_RETURN(Token tok, Next());
      tokens.push_back(std::move(tok));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek(std::size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  Token Make(TokenKind kind, std::string text) const {
    return Token{kind, std::move(text), line_, col_};
  }

  Status Error(std::string_view what) const {
    std::ostringstream os;
    os << "lex error at " << line_ << ":" << col_ << ": " << what;
    return Status::InvalidQuery(os.str());
  }

  void SkipSpaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '#') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        return;
      }
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-';
  }

  Result<Token> Next() {
    char c = Peek();
    switch (c) {
      case '{':
        Advance();
        return Make(TokenKind::kLBrace, "{");
      case '}':
        Advance();
        return Make(TokenKind::kRBrace, "}");
      case '(':
        Advance();
        return Make(TokenKind::kLParen, "(");
      case ')':
        Advance();
        return Make(TokenKind::kRParen, ")");
      case '.':
        Advance();
        return Make(TokenKind::kDot, ".");
      case ';':
        Advance();
        return Make(TokenKind::kSemicolon, ";");
      case ',':
        Advance();
        return Make(TokenKind::kComma, ",");
      case '*':
        Advance();
        return Make(TokenKind::kStar, "*");
      case '=':
        Advance();
        return Make(TokenKind::kEq, "=");
      case '!':
        Advance();
        if (Peek() != '=') return Error("expected '=' after '!'");
        Advance();
        return Make(TokenKind::kNe, "!=");
      case '>':
        Advance();
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kGe, ">=");
        }
        return Make(TokenKind::kGt, ">");
      case '?':
      case '$':
        return LexVar();
      case '"':
        return LexString();
      case '<':
        return LexIriOrLess();
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
      return LexNumber();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
      return LexIdentOrPname();
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<Token> LexVar() {
    Advance();  // '?' or '$'
    std::string name;
    while (!AtEnd() && IsNameChar(Peek())) name += Advance();
    if (name.empty()) return Error("empty variable name");
    return Make(TokenKind::kVar, std::move(name));
  }

  Result<Token> LexString() {
    Advance();  // opening quote
    std::string value;
    while (true) {
      if (AtEnd()) return Error("unterminated string literal");
      char c = Advance();
      if (c == '"') break;
      if (c == '\\') {
        if (AtEnd()) return Error("dangling escape in string");
        char e = Advance();
        switch (e) {
          case 'n':
            value += '\n';
            break;
          case 't':
            value += '\t';
            break;
          case '"':
            value += '"';
            break;
          case '\\':
            value += '\\';
            break;
          default:
            return Error("unsupported string escape");
        }
      } else {
        value += c;
      }
    }
    // Optional @lang / ^^<datatype>, folded away (plain-literal model).
    if (!AtEnd() && Peek() == '@') {
      Advance();
      while (!AtEnd() && IsNameChar(Peek())) Advance();
    } else if (Peek() == '^' && Peek(1) == '^') {
      Advance();
      Advance();
      if (Peek() == '<') {
        while (!AtEnd() && Advance() != '>') {
        }
      }
    }
    return Make(TokenKind::kString, std::move(value));
  }

  // '<' is an IRI opener unless it reads as a comparison: followed by
  // whitespace, '=', '?', '"' or a digit (FILTER contexts only use those
  // right-hand sides in this grammar).
  Result<Token> LexIriOrLess() {
    char next = Peek(1);
    if (next == '=' ) {
      Advance();
      Advance();
      return Make(TokenKind::kLe, "<=");
    }
    if (next == ' ' || next == '\t' || next == '\n' || next == '?' ||
        next == '"' || std::isdigit(static_cast<unsigned char>(next))) {
      Advance();
      return Make(TokenKind::kLt, "<");
    }
    Advance();  // '<'
    std::string body;
    while (true) {
      if (AtEnd()) return Error("unterminated IRI");
      char c = Advance();
      if (c == '>') break;
      if (std::isspace(static_cast<unsigned char>(c))) {
        return Error("whitespace inside IRI");
      }
      body += c;
    }
    return Make(TokenKind::kIri, std::move(body));
  }

  Result<Token> LexNumber() {
    std::string text;
    if (Peek() == '-') text += Advance();
    while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                        Peek() == '.')) {
      // A '.' followed by a non-digit terminates the pattern instead.
      if (Peek() == '.' &&
          !std::isdigit(static_cast<unsigned char>(Peek(1)))) {
        break;
      }
      text += Advance();
    }
    return Make(TokenKind::kNumber, std::move(text));
  }

  Result<Token> LexIdentOrPname() {
    std::string text;
    while (!AtEnd() && (IsNameChar(Peek()) || Peek() == ':')) {
      text += Advance();
    }
    if (text.find(':') != std::string::npos) {
      return Make(TokenKind::kPname, std::move(text));
    }
    return Make(TokenKind::kIdent, std::move(text));
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  return Lexer(input).Run();
}

}  // namespace hsparql::sparql
