#include "sparql/rewrite.h"

#include <algorithm>

namespace hsparql::sparql {

namespace {

template <typename Fn>
void ForEachPattern(Query* query, Fn fn) {
  for (TriplePattern& tp : query->patterns) fn(tp);
  for (auto& group : query->optional_groups) {
    for (TriplePattern& tp : group) fn(tp);
  }
  for (auto& branch : query->union_branches) {
    for (TriplePattern& tp : branch) fn(tp);
  }
}

void SubstituteConstant(Query* query, VarId var, const rdf::Term& value) {
  ForEachPattern(query, [&](TriplePattern& tp) {
    for (rdf::Position pos : rdf::kAllPositions) {
      PatternTerm& t = tp.at(pos);
      if (t.is_variable() && t.var == var) {
        t = PatternTerm::Const(value);
      }
    }
  });
}

void SubstituteVariable(Query* query, VarId from, VarId to) {
  ForEachPattern(query, [&](TriplePattern& tp) {
    for (rdf::Position pos : rdf::kAllPositions) {
      PatternTerm& t = tp.at(pos);
      if (t.is_variable() && t.var == from) t.var = to;
    }
  });
  for (Filter& f : query->filters) {
    if (f.var == from) f.var = to;
    if (f.rhs_var.has_value() && *f.rhs_var == from) f.rhs_var = to;
  }
  for (VarId& v : query->projection) {
    if (v == from) v = to;
  }
}

/// True if `var` occurs in an OPTIONAL group or UNION branch. Folding a
/// FILTER into such a pattern changes semantics (an unbound optional
/// variable fails the filter but would survive the left outer join), so
/// those filters stay as post-join predicates.
bool MentionedInExtensions(const Query& query, VarId var) {
  auto mentions = [&](const std::vector<TriplePattern>& tps) {
    for (const TriplePattern& tp : tps) {
      if (tp.Mentions(var)) return true;
    }
    return false;
  };
  for (const auto& group : query.optional_groups) {
    if (mentions(group)) return true;
  }
  for (const auto& branch : query.union_branches) {
    if (mentions(branch)) return true;
  }
  return false;
}

}  // namespace

RewriteReport RewriteFilters(Query* query) {
  RewriteReport report;
  std::vector<Filter> remaining;
  for (std::size_t i = 0; i < query->filters.size(); ++i) {
    const Filter f = query->filters[i];
    if (f.op != FilterOp::kEq ||
        MentionedInExtensions(*query, f.var) ||
        (f.rhs_var.has_value() &&
         MentionedInExtensions(*query, *f.rhs_var))) {
      remaining.push_back(f);
      continue;
    }
    if (!f.rhs_var.has_value()) {
      // ?v = const: fold unless ?v must appear in the result schema or is
      // referenced by another filter (which would lose its input binding).
      bool referenced_elsewhere = false;
      for (std::size_t j = 0; j < query->filters.size(); ++j) {
        if (j == i) continue;
        const Filter& other = query->filters[j];
        if (other.var == f.var ||
            (other.rhs_var.has_value() && *other.rhs_var == f.var)) {
          referenced_elsewhere = true;
          break;
        }
      }
      if (query->IsProjected(f.var) || referenced_elsewhere) {
        remaining.push_back(f);
        continue;
      }
      SubstituteConstant(query, f.var, f.value);
      ++report.constants_folded;
      continue;
    }
    // ?v = ?w: unify, keeping a projected variable as survivor.
    VarId keep = f.var;
    VarId drop = *f.rhs_var;
    if (keep == drop) continue;  // trivially true
    if (!query->IsProjected(keep) && query->IsProjected(drop)) {
      std::swap(keep, drop);
    }
    if (query->IsProjected(keep) && query->IsProjected(drop)) {
      // Both projected: the schema must keep both names; leave the filter.
      remaining.push_back(f);
      continue;
    }
    SubstituteVariable(query, drop, keep);
    ++report.variables_unified;
  }
  query->filters = std::move(remaining);
  return report;
}

}  // namespace hsparql::sparql
