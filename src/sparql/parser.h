// Recursive-descent parser for the SPARQL join-query subset of the paper.
//
// Grammar (keywords case-insensitive):
//   query       := prologue SELECT DISTINCT? ('*' | Var+) WHERE? '{' body '}'
//   prologue    := (PREFIX pname: <iri>)*
//   body        := (triples | filter) ('.'? (triples | filter))*
//   triples     := term verb objects (';' verb objects)*   // Turtle sugar
//   objects     := term (',' term)*
//   verb        := term | 'a'                              // a = rdf:type
//   filter      := FILTER '(' Var op (constant | Var) ')'
//   term        := <iri> | pname:local | ?var | "string" | number
//
// This covers every query of the paper's workload (conjunctive queries with
// simple filters); OPTIONAL/UNION are future work in the paper itself (§7).
#ifndef HSPARQL_SPARQL_PARSER_H_
#define HSPARQL_SPARQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "sparql/ast.h"

namespace hsparql::sparql {

/// Well-known IRI that HEURISTIC 1 treats specially; the keyword `a`
/// expands to it.
inline constexpr std::string_view kRdfTypeIri =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Parses one SELECT query. Returns ParseError with location on failure.
Result<Query> Parse(std::string_view text);

}  // namespace hsparql::sparql

#endif  // HSPARQL_SPARQL_PARSER_H_
