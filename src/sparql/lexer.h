// Tokenizer for the SPARQL subset grammar (see parser.h).
#ifndef HSPARQL_SPARQL_LEXER_H_
#define HSPARQL_SPARQL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace hsparql::sparql {

enum class TokenKind : std::uint8_t {
  kIri,      // <http://...>         text = IRI body without angle brackets
  kPname,    // prefix:local or :local
  kVar,      // ?name                text = name without '?'
  kString,   // "..."                text = unescaped body
  kNumber,   // 1942 / 3.14          text = lexical form
  kIdent,    // SELECT, WHERE, a, ...
  kLBrace,   // {
  kRBrace,   // }
  kLParen,   // (
  kRParen,   // )
  kDot,      // .
  kSemicolon,// ;
  kComma,    // ,
  kStar,     // *
  kEq,       // =
  kNe,       // !=
  kLt,       // <  (only inside FILTER expressions)
  kLe,       // <=
  kGt,       // >
  kGe,       // >=
  kEof,
};

std::string_view TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t line;
  std::size_t column;
};

/// Tokenizes an entire query. `<` starts an IRI except where a comparison
/// operator is expected, so the lexer tracks FILTER parenthesis context.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace hsparql::sparql

#endif  // HSPARQL_SPARQL_LEXER_H_
