#include "server/admission.h"

#include <algorithm>
#include <utility>

namespace hsparql::server {

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         ThreadPool* pool, Clock clock)
    : options_(options),
      max_concurrent_(options.max_concurrent > 0 ? options.max_concurrent
                                                 : pool->num_workers()),
      pool_(pool),
      clock_(std::move(clock)) {}

std::chrono::steady_clock::time_point AdmissionController::Now() const {
  return clock_ ? clock_() : std::chrono::steady_clock::now();
}

bool AdmissionController::TakeToken(
    const std::string& client_key, std::chrono::steady_clock::time_point now) {
  if (options_.rate_limit_qps <= 0.0) return true;
  const double burst = options_.rate_limit_burst > 0.0
                           ? options_.rate_limit_burst
                           : std::max(1.0, options_.rate_limit_qps);
  auto [it, inserted] = buckets_.try_emplace(client_key);
  Bucket& bucket = it->second;
  if (inserted) {
    bucket.tokens = burst;  // a new client starts with a full bucket
    bucket.last_refill = now;
  } else {
    const double elapsed_seconds =
        std::chrono::duration<double>(now - bucket.last_refill).count();
    if (elapsed_seconds > 0) {
      bucket.tokens = std::min(
          burst, bucket.tokens + elapsed_seconds * options_.rate_limit_qps);
      bucket.last_refill = now;
    }
  }
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

AdmitDecision AdmissionController::Submit(const std::string& client_key,
                                          Job job) {
  QueuedJob queued;
  queued.client_key = client_key;
  bool start_now = false;
  {
    MutexLock lock(&mu_);
    if (draining_) {
      counters_.rejected_shutdown++;
      return AdmitDecision::kShuttingDown;
    }
    // Cheapest checks first; the rate limiter is last so a rejected
    // request (full queue) does not burn the client's tokens.
    if (options_.max_per_client > 0) {
      auto it = in_flight_.find(client_key);
      if (it != in_flight_.end() && it->second >= options_.max_per_client) {
        counters_.rejected_client_limit++;
        return AdmitDecision::kClientLimit;
      }
    }
    if (running_ >= max_concurrent_ && queue_.size() >= options_.queue_capacity) {
      counters_.rejected_queue_full++;
      return AdmitDecision::kQueueFull;
    }
    const auto now = Now();
    if (!TakeToken(client_key, now)) {
      counters_.rejected_rate_limited++;
      return AdmitDecision::kRateLimited;
    }
    counters_.admitted_total++;
    in_flight_[client_key]++;
    queued.job = std::move(job);
    queued.admitted_at = now;
    if (running_ < max_concurrent_) {
      running_++;
      start_now = true;
    } else {
      queue_.push_back(std::move(queued));
    }
  }
  if (start_now) {
    // Dispatch outside the lock: ThreadPool::Submit takes pool-internal
    // locks and the task can even run inline-fast on another core.
    pool_->Submit([this, moved = std::make_shared<QueuedJob>(
                             std::move(queued))]() mutable {
      RunAndContinue(std::move(*moved));
    });
  }
  return AdmitDecision::kAdmitted;
}

void AdmissionController::RunAndContinue(QueuedJob job) {
  const auto wait = Now() - job.admitted_at;
  job.job(std::chrono::duration_cast<std::chrono::nanoseconds>(wait),
          /*cancelled=*/false);
  // This slot frees; pull the next queued job (if any) into it.
  while (true) {
    QueuedJob next;
    {
      MutexLock lock(&mu_);
      FinishClient(job.client_key);
      if (queue_.empty()) {
        running_--;
        if (running_ == 0 && queue_.empty()) idle_cv_.NotifyAll();
        return;
      }
      next = std::move(queue_.front());
      queue_.pop_front();
      // running_ stays: this pool task continues as the next job's slot.
    }
    const auto next_wait = Now() - next.admitted_at;
    next.job(std::chrono::duration_cast<std::chrono::nanoseconds>(next_wait),
             /*cancelled=*/false);
    job.client_key = std::move(next.client_key);
  }
}

void AdmissionController::FinishClient(const std::string& client_key) {
  auto it = in_flight_.find(client_key);
  if (it != in_flight_.end() && --it->second == 0) in_flight_.erase(it);
}

void AdmissionController::BeginDrain() {
  MutexLock lock(&mu_);
  draining_ = true;
}

bool AdmissionController::WaitIdle(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(&mu_);
  while (running_ > 0 || !queue_.empty()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    idle_cv_.WaitFor(mu_, std::chrono::duration_cast<std::chrono::milliseconds>(
                              deadline - now));
  }
  return true;
}

void AdmissionController::CancelPending() {
  std::deque<QueuedJob> dropped;
  {
    MutexLock lock(&mu_);
    dropped.swap(queue_);
    for (const QueuedJob& job : dropped) FinishClient(job.client_key);
    if (running_ == 0) idle_cv_.NotifyAll();
  }
  const auto now = Now();
  for (QueuedJob& job : dropped) {
    const auto wait = now - job.admitted_at;
    job.job(std::chrono::duration_cast<std::chrono::nanoseconds>(wait),
            /*cancelled=*/true);
  }
}

AdmissionStats AdmissionController::stats() const {
  MutexLock lock(&mu_);
  AdmissionStats out = counters_;
  out.queued = queue_.size();
  out.running = running_;
  return out;
}

}  // namespace hsparql::server
