// server::HttpClient — a small blocking HTTP/1.1 client for the server's
// tests and the closed-loop serving benchmark. One connection per client
// object, keep-alive reuse, Content-Length framing only (matching what
// SparqlServer emits). Not a general-purpose client.
#ifndef HSPARQL_SERVER_CLIENT_H_
#define HSPARQL_SERVER_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace hsparql::server {

struct HttpResponse {
  int status = 0;
  /// Lower-cased names.
  std::map<std::string, std::string> headers;
  std::string body;

  std::string_view Header(std::string_view lower_name) const;
};

class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;

  /// (Re)connects; an already-open connection is closed first.
  Status Connect(const std::string& host, std::uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// One round trip. Reconnects once automatically if the server closed
  /// the kept-alive connection between requests.
  Result<HttpResponse> Get(
      const std::string& target,
      const std::vector<std::pair<std::string, std::string>>& headers = {});
  Result<HttpResponse> Post(
      const std::string& target, const std::string& content_type,
      const std::string& body,
      const std::vector<std::pair<std::string, std::string>>& headers = {});

  /// Percent-encodes a query-string value (space as %20).
  static std::string UrlEncode(std::string_view text);

 private:
  Result<HttpResponse> RoundTrip(const std::string& request,
                                 bool allow_reconnect);
  Status SendAll(std::string_view data);
  Result<HttpResponse> ReadResponse();

  int fd_ = -1;
  std::string host_;
  std::uint16_t port_ = 0;
  /// Bytes read past the previous response (keep-alive leftovers).
  std::string leftover_;
};

}  // namespace hsparql::server

#endif  // HSPARQL_SERVER_CLIENT_H_
