#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>

namespace hsparql::server {

namespace {

std::string AsciiLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view TrimOws(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

std::string_view HttpResponse::Header(std::string_view lower_name) const {
  auto it = headers.find(std::string(lower_name));
  return it == headers.end() ? std::string_view() : std::string_view(it->second);
}

HttpClient::~HttpClient() { Close(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : fd_(other.fd_),
      host_(std::move(other.host_)),
      port_(other.port_),
      leftover_(std::move(other.leftover_)) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    host_ = std::move(other.host_);
    port_ = other.port_;
    leftover_ = std::move(other.leftover_);
    other.fd_ = -1;
  }
  return *this;
}

void HttpClient::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  leftover_.clear();
}

Status HttpClient::Connect(const std::string& host, std::uint16_t port) {
  Close();
  host_ = host;
  port_ = port;
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::Unavailable("socket() failed: " +
                               std::string(std::strerror(errno)));
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("unparseable host: " + host);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    Status status = Status::Unavailable("connect to " + host + ":" +
                                        std::to_string(port) +
                                        " failed: " + std::strerror(errno));
    Close();
    return status;
  }
  return Status::OK();
}

std::string HttpClient::UrlEncode(std::string_view text) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    const auto u = static_cast<unsigned char>(c);
    const bool unreserved = (u >= 'A' && u <= 'Z') || (u >= 'a' && u <= 'z') ||
                            (u >= '0' && u <= '9') || u == '-' || u == '_' ||
                            u == '.' || u == '~';
    if (unreserved) {
      out += c;
    } else {
      out += '%';
      out += kHex[u >> 4];
      out += kHex[u & 0xF];
    }
  }
  return out;
}

Result<HttpResponse> HttpClient::Get(
    const std::string& target,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + host_ +
                        "\r\n";
  for (const auto& [name, value] : headers) {
    request += name + ": " + value + "\r\n";
  }
  request += "\r\n";
  return RoundTrip(request, /*allow_reconnect=*/true);
}

Result<HttpResponse> HttpClient::Post(
    const std::string& target, const std::string& content_type,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string request = "POST " + target + " HTTP/1.1\r\nHost: " + host_ +
                        "\r\nContent-Type: " + content_type +
                        "\r\nContent-Length: " + std::to_string(body.size()) +
                        "\r\n";
  for (const auto& [name, value] : headers) {
    request += name + ": " + value + "\r\n";
  }
  request += "\r\n";
  request += body;
  return RoundTrip(request, /*allow_reconnect=*/true);
}

Result<HttpResponse> HttpClient::RoundTrip(const std::string& request,
                                           bool allow_reconnect) {
  if (fd_ < 0) {
    Status status = Connect(host_, port_);
    if (!status.ok()) return status;
  }
  Status sent = SendAll(request);
  if (!sent.ok()) {
    if (!allow_reconnect) return sent;
    // The server may have closed an idle keep-alive connection; one
    // reconnect covers the race.
    Status status = Connect(host_, port_);
    if (!status.ok()) return status;
    return RoundTrip(request, /*allow_reconnect=*/false);
  }
  Result<HttpResponse> response = ReadResponse();
  if (!response.ok() && allow_reconnect && leftover_.empty()) {
    Status status = Connect(host_, port_);
    if (!status.ok()) return status;
    return RoundTrip(request, /*allow_reconnect=*/false);
  }
  return response;
}

Status HttpClient::SendAll(std::string_view data) {
  while (!data.empty()) {
    ssize_t sent = send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("send failed: " + std::string(std::strerror(errno)));
    }
    data.remove_prefix(static_cast<std::size_t>(sent));
  }
  return Status::OK();
}

Result<HttpResponse> HttpClient::ReadResponse() {
  std::string buffer = std::move(leftover_);
  leftover_.clear();
  auto read_more = [&]() -> Status {
    char chunk[16 * 1024];
    while (true) {
      ssize_t got = recv(fd_, chunk, sizeof chunk, 0);
      if (got > 0) {
        buffer.append(chunk, static_cast<std::size_t>(got));
        return Status::OK();
      }
      if (got == 0) return Status::IoError("connection closed by server");
      if (errno == EINTR) continue;
      return Status::IoError("recv failed: " +
                             std::string(std::strerror(errno)));
    }
  };

  // Head.
  std::size_t head_end;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    if (buffer.size() > 1024 * 1024) {
      return Status::IoError("response head too large");
    }
    Status status = read_more();
    if (!status.ok()) return status;
  }

  HttpResponse response;
  std::string_view head(buffer.data(), head_end);
  std::size_t line_end = head.find("\r\n");
  std::string_view status_line =
      head.substr(0, line_end == std::string_view::npos ? head.size() : line_end);
  // "HTTP/1.1 200 OK"
  std::size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos || sp + 4 > status_line.size()) {
    return Status::IoError("malformed status line");
  }
  std::string_view code = status_line.substr(sp + 1, 3);
  auto [ptr, ec] =
      std::from_chars(code.data(), code.data() + code.size(), response.status);
  if (ec != std::errc()) return Status::IoError("malformed status code");

  std::string_view rest = line_end == std::string_view::npos
                              ? std::string_view()
                              : head.substr(line_end + 2);
  while (!rest.empty()) {
    std::size_t eol = rest.find("\r\n");
    std::string_view line =
        rest.substr(0, eol == std::string_view::npos ? rest.size() : eol);
    rest = eol == std::string_view::npos ? std::string_view()
                                         : rest.substr(eol + 2);
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    response.headers[AsciiLower(line.substr(0, colon))] =
        std::string(TrimOws(line.substr(colon + 1)));
  }

  std::size_t body_start = head_end + 4;
  std::size_t content_length = 0;
  std::string_view length = response.Header("content-length");
  if (!length.empty()) {
    auto [lptr, lec] = std::from_chars(
        length.data(), length.data() + length.size(), content_length);
    if (lec != std::errc()) return Status::IoError("bad Content-Length");
  }
  while (buffer.size() - body_start < content_length) {
    Status status = read_more();
    if (!status.ok()) return status;
  }
  response.body = buffer.substr(body_start, content_length);
  // Keep any pipelined/next-response bytes for the next call.
  leftover_ = buffer.substr(body_start + content_length);
  if (AsciiLower(response.Header("connection")).find("close") !=
      std::string::npos) {
    Close();
  }
  return response;
}

}  // namespace hsparql::server
