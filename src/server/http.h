// Minimal HTTP/1.1 message layer for the SPARQL protocol endpoint.
//
// Only what the server needs, implemented defensively: an incremental
// request parser (bytes arrive in arbitrary fragments from a non-blocking
// socket), percent-decoding, application/x-www-form-urlencoded and
// query-string parameter parsing, and response formatting. No external
// dependencies, no allocation on the fast path beyond the request's own
// buffers.
//
// Out of scope by design: TLS (terminate in front), HTTP/2, trailers,
// multipart. Transfer-Encoding: chunked requests are rejected with 501 —
// SPARQL protocol clients send Content-Length bodies.
#ifndef HSPARQL_SERVER_HTTP_H_
#define HSPARQL_SERVER_HTTP_H_

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hsparql::server {

/// One parsed request. Header names are lower-cased at parse time;
/// values keep their bytes (leading/trailing whitespace trimmed).
struct HttpRequest {
  std::string method;         // "GET", "POST", ... (upper-case as sent)
  std::string target;         // raw request-target, e.g. "/sparql?query=..."
  std::string path;           // percent-decoded path, no query string
  std::string query_string;   // raw bytes after '?', no decoding
  std::map<std::string, std::string> headers;  // lower-case names
  std::string body;

  /// HTTP/1.1 defaults to keep-alive; "Connection: close" (or HTTP/1.0
  /// without "keep-alive") turns it off.
  bool keep_alive = true;

  /// Header lookup by lower-case name; empty view when absent.
  std::string_view Header(std::string_view lower_name) const;
};

/// Incremental HTTP/1.1 request parser. Feed() consumes bytes as they
/// arrive; once a full request (head + Content-Length body) is buffered
/// the parser yields kComplete and exposes the request. Reset() reuses
/// the parser for the next request on a keep-alive connection.
struct RequestParserLimits {
  /// Request line + headers.
  std::size_t max_head_bytes = 16 * 1024;
  /// Body (Content-Length is checked before buffering).
  std::size_t max_body_bytes = 1024 * 1024;
};

class RequestParser {
 public:
  using Limits = RequestParserLimits;

  enum class State {
    kNeedMore,   // feed more bytes
    kComplete,   // request() is valid; Reset() before the next request
    kError,      // protocol error; error_status()/error_message() say why
  };

  explicit RequestParser(Limits limits = Limits()) : limits_(limits) {}

  /// Consumes `data` (all of it — the parser buffers internally; bytes
  /// past the end of a complete request are kept for the next Reset()d
  /// round, supporting pipelined clients). Returns the parser state.
  State Feed(std::string_view data);

  State state() const { return state_; }
  const HttpRequest& request() const { return request_; }

  /// On kError: the HTTP status to answer with (400, 413, 501, 505) and
  /// a short human-readable explanation.
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

  /// Discards the completed/errored request and starts parsing the next
  /// one from any already-buffered bytes. Returns the new state (a
  /// pipelined request may complete immediately).
  State Reset();

 private:
  State Fail(int status, std::string message);
  /// Parses buffer_[0, head_end) as request-line + headers.
  State ParseHead(std::size_t head_end);
  State TryParse();

  Limits limits_;
  State state_ = State::kNeedMore;
  std::string buffer_;
  HttpRequest request_;
  /// Body bytes still missing once the head parsed (npos = head pending).
  std::size_t body_expected_ = npos;
  std::size_t head_bytes_ = 0;
  int error_status_ = 400;
  std::string error_message_;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Percent-decodes `text`; when `plus_is_space`, '+' decodes to ' '
/// (form/query-string convention). Invalid %XX sequences yield nullopt.
std::optional<std::string> PercentDecode(std::string_view text,
                                         bool plus_is_space);

/// Parses "a=1&b=%20..." into decoded (name, value) pairs, in order.
/// Pairs with undecodable names/values are dropped (never a hard error:
/// the caller decides whether a required parameter is missing).
std::vector<std::pair<std::string, std::string>> ParseFormUrlEncoded(
    std::string_view text);

/// First value for `name` in ParseFormUrlEncoded(text); nullopt if absent.
std::optional<std::string> FormParam(std::string_view text,
                                     std::string_view name);

/// Standard reason phrase ("Not Found"); "Status" for unknown codes.
std::string_view ReasonPhrase(int status);

/// Serialises a response head + body. Adds Content-Length and
/// Connection: close/keep-alive; `extra_headers` are emitted verbatim
/// (name, value) after the standard ones.
std::string FormatResponse(
    int status, std::string_view content_type, std::string_view body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers = {});

}  // namespace hsparql::server

#endif  // HSPARQL_SERVER_HTTP_H_
