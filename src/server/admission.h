// server::AdmissionController — the bounded scheduler between the HTTP
// front door and common::ThreadPool.
//
// The shared thread pool's queues are unbounded by design (the executor
// fans out morsels it always consumes itself); a network-facing server
// cannot feed it directly or a burst would buffer without limit. The
// controller enforces, at admission time and O(1):
//  * a cap on concurrently *executing* requests (max_concurrent) — beyond
//    it, admitted work waits in a FIFO queue;
//  * a cap on that queue (queue_capacity) — beyond it, kQueueFull
//    (HTTP 503), never blocking the IO thread;
//  * a per-client in-flight cap (max_per_client, keyed by peer address) —
//    one greedy client cannot occupy the whole queue (HTTP 429);
//  * a per-client token-bucket rate limit (rate_limit_qps + burst) —
//    sustained request rates above it are shed early (HTTP 429).
//
// Execution: an admitted job either starts immediately (a pool task is
// submitted) or queues; when a running job finishes, its pool task pops
// and runs the next queued job — so at most max_concurrent pool tasks
// exist at any time and the pool's own queues stay near-empty. Jobs
// receive the time they spent waiting, so queue wait counts against the
// request deadline.
//
// Shutdown: Drain() stops admissions (kShuttingDown), then waits — with a
// timeout — for in-flight work to finish; CancelPending() drops jobs
// still queued (each receives cancelled=true and must answer its client).
//
// Thread-safety: fully annotated; one Mutex guards all scheduler state.
// The injectable clock exists for the rate-limit tests.
#ifndef HSPARQL_SERVER_ADMISSION_H_
#define HSPARQL_SERVER_ADMISSION_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace hsparql::server {

struct AdmissionOptions {
  /// Requests executing at once. 0 = the pool's worker count.
  std::size_t max_concurrent = 0;
  /// Admitted requests waiting behind the concurrency cap.
  std::size_t queue_capacity = 64;
  /// In-flight (queued + executing) requests per client key; 0 = no cap.
  std::size_t max_per_client = 0;
  /// Sustained requests/second per client key; 0 = unlimited.
  double rate_limit_qps = 0.0;
  /// Token-bucket burst size; 0 = max(1, rate_limit_qps).
  double rate_limit_burst = 0.0;
};

enum class AdmitDecision : std::uint8_t {
  kAdmitted,
  kQueueFull,      // global queue at capacity -> 503
  kClientLimit,    // per-client in-flight cap -> 429
  kRateLimited,    // token bucket empty -> 429
  kShuttingDown,   // Drain() started -> 503
};

/// Snapshot for metrics callbacks.
struct AdmissionStats {
  std::size_t queued = 0;
  std::size_t running = 0;
  std::uint64_t admitted_total = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_client_limit = 0;
  std::uint64_t rejected_rate_limited = 0;
  std::uint64_t rejected_shutdown = 0;
};

class AdmissionController {
 public:
  using Clock = std::function<std::chrono::steady_clock::time_point()>;
  /// The job body. `queue_wait` is the time between admission and the
  /// job starting; when `cancelled` the job never ran — it was dropped
  /// by CancelPending() and must still answer its client (503).
  using Job = std::function<void(std::chrono::nanoseconds queue_wait,
                                 bool cancelled)>;

  /// `pool` must outlive the controller. A null `clock` uses
  /// steady_clock (the injectable one is for rate-limit tests).
  AdmissionController(const AdmissionOptions& options, ThreadPool* pool,
                      Clock clock = {});

  /// Admits or rejects. On kAdmitted the job will run exactly once on the
  /// pool (or be handed back cancelled by CancelPending). Never blocks.
  AdmitDecision Submit(const std::string& client_key, Job job);

  /// Stops admitting (every later Submit returns kShuttingDown).
  void BeginDrain();

  /// Waits until no job is queued or running, up to `timeout`; returns
  /// true when fully drained. Call BeginDrain() first or new admissions
  /// can starve the wait.
  bool WaitIdle(std::chrono::milliseconds timeout);

  /// Pops every still-queued job and runs it inline with cancelled=true
  /// (cheap: cancelled jobs only write a 503). Running jobs are not
  /// touched — cancel their work via the server's shutdown CancelToken.
  void CancelPending();

  AdmissionStats stats() const;

 private:
  struct QueuedJob {
    Job job;
    std::string client_key;
    std::chrono::steady_clock::time_point admitted_at;
  };

  struct Bucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last_refill;
  };

  std::chrono::steady_clock::time_point Now() const;
  /// True when `client_key` has a token to spend (refills, then debits).
  bool TakeToken(const std::string& client_key,
                 std::chrono::steady_clock::time_point now) REQUIRES(mu_);
  /// Pool-task body: runs `job`, then keeps pulling queued jobs into the
  /// freed slot until the queue is empty.
  void RunAndContinue(QueuedJob job);
  void FinishClient(const std::string& client_key) REQUIRES(mu_);

  const AdmissionOptions options_;
  const std::size_t max_concurrent_;
  ThreadPool* const pool_;
  const Clock clock_;

  mutable Mutex mu_;
  CondVar idle_cv_;  // notified whenever queued+running may reach zero
  std::deque<QueuedJob> queue_ GUARDED_BY(mu_);
  std::size_t running_ GUARDED_BY(mu_) = 0;
  bool draining_ GUARDED_BY(mu_) = false;
  std::unordered_map<std::string, std::size_t> in_flight_ GUARDED_BY(mu_);
  std::unordered_map<std::string, Bucket> buckets_ GUARDED_BY(mu_);
  AdmissionStats counters_ GUARDED_BY(mu_);
};

}  // namespace hsparql::server

#endif  // HSPARQL_SERVER_ADMISSION_H_
