// server::SparqlServer — the SPARQL Protocol HTTP endpoint over
// engine::Engine (DESIGN.md §4j).
//
// Architecture: one non-blocking IO thread (epoll, level-triggered) owns
// every socket; query execution runs on common::ThreadPool workers behind
// an AdmissionController that bounds queue depth, concurrency and
// per-client usage — the IO thread never blocks on the engine and the
// pool never buffers an unbounded backlog. A worker finishing a query
// hands the serialised response back through a completion queue plus an
// eventfd wake; the IO thread alone writes to sockets.
//
// Endpoints:
//  * GET/POST /sparql — the SPARQL Protocol query operation. GET takes
//    ?query= (plus optional ?format=json|csv|tsv and ?timeout= ms); POST
//    accepts application/x-www-form-urlencoded (query=...) and
//    application/sparql-query bodies. Responses are negotiated via
//    Accept (Writer formats; 406 when none fits).
//  * GET /metrics — Prometheus text exposition of the engine registry,
//    including the server's own request/queue/connection metrics.
//  * GET /healthz — 200 "ok" while serving, 503 "draining" once shutdown
//    began (load balancers stop routing before the listener closes).
//
// Status mapping: engine statuses map through HttpStatusFor — 400
// kInvalidQuery, 408 kDeadlineExceeded, 499 kCancelled (shutdown while
// executing), 503 kOverloaded (queue full / draining), 429 for per-client
// rate and concurrency limits (the one deviation from HttpStatusFor:
// "this client is over budget" is not "the server is overloaded").
// Error bodies are one JSON object: {"error": {"code": <snake_case
// StatusCodeName>, "message": ...}}.
//
// Shutdown (Shutdown(), idempotent): stop admitting; wait up to
// drain_timeout_ms for in-flight queries; then cancel the server-wide
// CancelToken (parent of every request token) so stragglers return 499
// quickly; flush outstanding responses; close. In-flight work is never
// abandoned silently — every admitted request gets an HTTP response.
#ifndef HSPARQL_SERVER_SERVER_H_
#define HSPARQL_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "results/writer.h"
#include "server/admission.h"
#include "server/http.h"

namespace hsparql::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the outcome from port().
  std::uint16_t port = 0;

  AdmissionOptions admission;

  /// Deadline applied when the client sends no ?timeout=; 0 = none.
  std::uint64_t default_timeout_ms = 30'000;
  /// Hard ceiling on client-requested timeouts.
  std::uint64_t max_timeout_ms = 300'000;
  /// How long Shutdown() waits for in-flight queries before cancelling.
  std::uint64_t drain_timeout_ms = 5'000;
  /// After cancelling, how long to wait for responses to flush before
  /// closing sockets regardless.
  std::uint64_t shutdown_flush_timeout_ms = 2'000;

  /// Per-request HTTP limits.
  RequestParser::Limits http_limits;
  /// Accepted sockets beyond this are closed immediately.
  std::size_t max_connections = 1024;

  /// Base query options; per-request parameters (timeout, cancellation)
  /// override the corresponding fields.
  engine::QueryOptions query;

  /// Worker pool; null = ThreadPool::Shared(). Must outlive the server.
  ThreadPool* pool = nullptr;
};

class SparqlServer {
 public:
  /// `engine` must outlive the server.
  SparqlServer(engine::Engine* engine, ServerOptions options);
  ~SparqlServer();

  SparqlServer(const SparqlServer&) = delete;
  SparqlServer& operator=(const SparqlServer&) = delete;

  /// Binds, listens and starts the IO thread. Fails with kUnavailable
  /// when the address is taken or sockets cannot be created.
  Status Start();

  /// The bound port (after Start(); meaningful with options.port == 0).
  std::uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Graceful drain-and-stop; blocks. Safe to call multiple times and
  /// from signal-driven shutdown paths (but not from a signal handler —
  /// write to a pipe and call from the main thread).
  void Shutdown();

 private:
  struct Connection;

  void IoLoop();
  /// Accepts until EAGAIN; closes over-limit sockets.
  void AcceptReady();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void HandleWritable(const std::shared_ptr<Connection>& conn);
  /// Parses buffered bytes, dispatching every complete request.
  void ProcessParsed(const std::shared_ptr<Connection>& conn);
  /// Routes one parsed request; fills conn->outbox or hands the work to
  /// the admission controller.
  void Route(const std::shared_ptr<Connection>& conn, const HttpRequest& req);
  /// The /sparql operation (runs on the IO thread up to admission).
  void HandleQuery(const std::shared_ptr<Connection>& conn,
                   const HttpRequest& req);
  /// Worker-side: executes and serialises, then posts the response.
  void ExecuteQueryJob(const std::shared_ptr<Connection>& conn,
                       const std::string& query_text,
                       engine::QueryOptions query_options,
                       const std::shared_ptr<CancelToken>& token,
                       results::Format format, bool keep_alive,
                       std::chrono::nanoseconds queue_wait, bool cancelled);
  /// Queues `response` on conn and (from workers) wakes the IO thread.
  void PostResponse(const std::shared_ptr<Connection>& conn,
                    std::string response, bool close_after, bool from_worker);
  /// IO-thread-side: moves posted responses into the socket buffers.
  void DrainCompletions();
  void CloseConnection(std::uint64_t id);
  /// Updates epoll interest (EPOLLIN/EPOLLOUT) for conn.
  void UpdateInterest(const std::shared_ptr<Connection>& conn);
  std::string ErrorBody(StatusCode code, std::string_view message) const;
  void RegisterMetrics();

  engine::Engine* const engine_;
  const ServerOptions options_;
  ThreadPool* const pool_;
  /// shared_ptr because the metrics callback gauges registered in the
  /// engine's registry capture it — an ExportMetrics after this server is
  /// destroyed must still read valid (frozen) scheduler stats.
  std::shared_ptr<AdmissionController> admission_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: workers wake the IO thread
  std::uint16_t port_ = 0;
  std::thread io_thread_;

  std::atomic<bool> running_{false};
  /// Set by Shutdown(): healthz flips to 503 and /sparql stops admitting.
  std::atomic<bool> draining_{false};
  /// Set after drain: the IO loop exits once all responses are flushed.
  std::atomic<bool> io_exit_{false};
  /// Parent of every request token; cancelled when the drain times out.
  CancelToken shutdown_token_;

  /// IO-thread-only state (no lock: single owner). Connections are keyed
  /// by id, not fd — a worker finishing after the peer disconnected finds
  /// the id gone instead of aliasing a reused fd.
  std::unordered_map<std::uint64_t, std::shared_ptr<Connection>> connections_;
  /// 0 and 1 are kListenId/kWakeId; connections start above them.
  std::uint64_t next_connection_id_ = 2;

  /// Worker -> IO thread completion queue.
  Mutex done_mu_;
  std::deque<std::uint64_t> done_queue_ GUARDED_BY(done_mu_);

  /// Shutdown() is idempotent and may race with the destructor.
  Mutex shutdown_mu_;
  bool shutdown_done_ GUARDED_BY(shutdown_mu_) = false;

  // Metrics (registered in the engine's registry; raw pointers stay
  // valid for the registry's lifetime).
  obs::Counter* requests_total_ = nullptr;
  obs::Counter* responses_2xx_ = nullptr;
  obs::Counter* responses_4xx_ = nullptr;
  obs::Counter* responses_5xx_ = nullptr;
  obs::Counter* rejected_queue_full_ = nullptr;
  obs::Counter* rejected_rate_limited_ = nullptr;
  obs::Counter* rejected_client_limit_ = nullptr;
  obs::Counter* rejected_draining_ = nullptr;
  obs::Gauge* connections_active_ = nullptr;
  obs::Histogram* queue_wait_millis_ = nullptr;
  obs::Histogram* request_millis_ = nullptr;
};

}  // namespace hsparql::server

#endif  // HSPARQL_SERVER_SERVER_H_
