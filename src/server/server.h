// server::SparqlServer — the SPARQL Protocol HTTP endpoint over
// engine::Engine (DESIGN.md §4j).
//
// Architecture: one non-blocking IO thread (epoll, level-triggered) owns
// every socket; query execution runs on common::ThreadPool workers behind
// an AdmissionController that bounds queue depth, concurrency and
// per-client usage — the IO thread never blocks on the engine and the
// pool never buffers an unbounded backlog. A worker finishing a query
// hands the serialised response back through a completion queue plus an
// eventfd wake; the IO thread alone writes to sockets.
//
// Endpoints:
//  * GET/POST /sparql — the SPARQL Protocol query operation. GET takes
//    ?query= (plus optional ?format=json|csv|tsv and ?timeout= ms); POST
//    accepts application/x-www-form-urlencoded (query=...) and
//    application/sparql-query bodies. Responses are negotiated via
//    Accept (Writer formats; 406 when none fits).
//  * GET /metrics — Prometheus text exposition of the engine registry,
//    including the server's own request/queue/connection metrics.
//  * GET /healthz — 200 "ok" while serving, 503 "draining" once shutdown
//    began (load balancers stop routing before the listener closes).
//
// Status mapping: engine statuses map through HttpStatusFor — 400
// kInvalidQuery, 408 kDeadlineExceeded, 499 kCancelled (shutdown while
// executing), 503 kOverloaded (queue full / draining), 429 for per-client
// rate and concurrency limits (the one deviation from HttpStatusFor:
// "this client is over budget" is not "the server is overloaded").
// Error bodies are one JSON object: {"error": {"code": <snake_case
// StatusCodeName>, "message": ...}}.
//
// Shutdown (Shutdown(), idempotent): stop admitting; wait up to
// drain_timeout_ms for in-flight queries; then cancel the server-wide
// CancelToken (parent of every request token) so stragglers return 499
// quickly; flush outstanding responses; close. In-flight work is never
// abandoned silently — every admitted request gets an HTTP response.
#ifndef HSPARQL_SERVER_SERVER_H_
#define HSPARQL_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "obs/request_trace.h"
#include "results/writer.h"
#include "server/admission.h"
#include "server/http.h"

namespace hsparql::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the outcome from port().
  std::uint16_t port = 0;

  AdmissionOptions admission;

  /// Deadline applied when the client sends no ?timeout=; 0 = none.
  std::uint64_t default_timeout_ms = 30'000;
  /// Hard ceiling on client-requested timeouts.
  std::uint64_t max_timeout_ms = 300'000;
  /// How long Shutdown() waits for in-flight queries before cancelling.
  std::uint64_t drain_timeout_ms = 5'000;
  /// After cancelling, how long to wait for responses to flush before
  /// closing sockets regardless.
  std::uint64_t shutdown_flush_timeout_ms = 2'000;

  /// Per-request HTTP limits.
  RequestParser::Limits http_limits;
  /// Accepted sockets beyond this are closed immediately.
  std::size_t max_connections = 1024;

  /// Base query options; per-request parameters (timeout, cancellation)
  /// override the corresponding fields.
  engine::QueryOptions query;

  /// Worker pool; null = ThreadPool::Shared(). Must outlive the server.
  ThreadPool* pool = nullptr;

  /// End-to-end request tracing (DESIGN.md §4l): every request gets an
  /// X-Request-Id (honouring an incoming W3C traceparent header), a span
  /// timeline in the flight recorder behind /debug/traces, an access-log
  /// entry behind /debug/requests, and — for /sparql — the per-operator
  /// QueryTrace grafted in (collect_trace is forced on). Off disables all
  /// of it; exists for the overhead gate and for byte-shaving deployments.
  bool request_tracing = true;
  /// Flight-recorder ring sizes and the slow-trace threshold.
  obs::FlightRecorder::Options recorder;
  /// Access-log ring size and line sink. The default sink is null; set
  /// one (stderr in examples/serve) to get a JSON line per failed
  /// request — how 408/499 cancellations become visible in server logs.
  obs::AccessLog::Options access_log;
};

class SparqlServer {
 public:
  /// `engine` must outlive the server.
  SparqlServer(engine::Engine* engine, ServerOptions options);
  ~SparqlServer();

  SparqlServer(const SparqlServer&) = delete;
  SparqlServer& operator=(const SparqlServer&) = delete;

  /// Binds, listens and starts the IO thread. Fails with kUnavailable
  /// when the address is taken or sockets cannot be created.
  Status Start();

  /// The bound port (after Start(); meaningful with options.port == 0).
  std::uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Graceful drain-and-stop; blocks. Safe to call multiple times and
  /// from signal-driven shutdown paths (but not from a signal handler —
  /// write to a pipe and call from the main thread).
  void Shutdown();

  /// The flight recorder (completed request traces; /debug/traces).
  /// Valid for the server's lifetime; safe to read concurrently.
  const obs::FlightRecorder& recorder() const { return recorder_; }
  /// The access log (/debug/requests).
  const obs::AccessLog& access_log() const { return access_log_; }

 private:
  struct Connection;

  /// Per-request trace context threaded from Route through admission to
  /// the response commit. `trace` is null when request_tracing is off (or
  /// for parser-error responses that never had a request id).
  struct Traced {
    std::shared_ptr<obs::RequestTrace> trace;
    /// The request's clock zero (first byte, approximated by the read
    /// wake that started the request).
    std::chrono::steady_clock::time_point start{};
    /// Offset of admission Submit on the request clock (queue span start).
    double admit_offset_millis = 0.0;
    /// Offset of PostResponse on the request clock (flush span start).
    double post_offset_millis = 0.0;

    double OffsetMillis() const {
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start)
          .count();
    }
  };

  void IoLoop();
  /// Accepts until EAGAIN; closes over-limit sockets.
  void AcceptReady();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void HandleWritable(const std::shared_ptr<Connection>& conn);
  /// Parses buffered bytes, dispatching every complete request.
  void ProcessParsed(const std::shared_ptr<Connection>& conn);
  /// Routes one parsed request; fills conn->outbox or hands the work to
  /// the admission controller.
  void Route(const std::shared_ptr<Connection>& conn, const HttpRequest& req);
  /// The /sparql operation (runs on the IO thread up to admission).
  void HandleQuery(const std::shared_ptr<Connection>& conn,
                   const HttpRequest& req, Traced traced);
  /// The /debug/* introspection endpoints (flight recorder, access log,
  /// cardinality stats). Runs inline on the IO thread — snapshots only.
  void HandleDebug(const std::shared_ptr<Connection>& conn,
                   const HttpRequest& req, Traced traced);
  /// Worker-side: executes and serialises, then posts the response.
  void ExecuteQueryJob(const std::shared_ptr<Connection>& conn,
                       const std::string& query_text,
                       engine::QueryOptions query_options,
                       const std::shared_ptr<CancelToken>& token,
                       results::Format format, bool keep_alive,
                       std::chrono::nanoseconds queue_wait, bool cancelled,
                       Traced traced);
  /// FormatResponse plus the X-Request-Id header when `traced` carries a
  /// trace (every response from an identified request gets one).
  std::string Respond(
      int status, std::string_view content_type, std::string_view body,
      bool keep_alive, const Traced& traced,
      std::vector<std::pair<std::string, std::string>> extra_headers = {})
      const;
  /// Respond + PostResponse in the right order. The two-call spelling
  /// `PostResponse(conn, Respond(..., traced), ..., std::move(traced))`
  /// is a trap: argument evaluation order is unspecified, so the move may
  /// empty `traced` before Respond reads it.
  void Send(const std::shared_ptr<Connection>& conn, int status,
            std::string_view content_type, std::string_view body,
            bool keep_alive, bool close_after, bool from_worker, Traced traced,
            std::vector<std::pair<std::string, std::string>> extra_headers =
                {});
  /// Queues `response` on conn and (from workers) wakes the IO thread.
  /// Stamps `traced` (status, bytes, flush-span start) and attaches it to
  /// the connection for commit once the bytes reach the kernel.
  void PostResponse(const std::shared_ptr<Connection>& conn,
                    std::string response, bool close_after, bool from_worker,
                    Traced traced);
  void PostResponse(const std::shared_ptr<Connection>& conn,
                    std::string response, bool close_after, bool from_worker);
  /// IO-thread-side: moves posted responses into the socket buffers.
  void DrainCompletions();
  /// Commits every response the kernel has fully accepted: stamps the
  /// flush span and total, then records trace + access-log entry.
  void CommitFlushed(const std::shared_ptr<Connection>& conn);
  /// Finalizes one posted response (flush span ends now).
  void CommitTrace(Traced&& traced);
  void CloseConnection(std::uint64_t id);
  /// Updates epoll interest (EPOLLIN/EPOLLOUT) for conn.
  void UpdateInterest(const std::shared_ptr<Connection>& conn);
  std::string ErrorBody(StatusCode code, std::string_view message) const;
  void RegisterMetrics();

  engine::Engine* const engine_;
  const ServerOptions options_;
  ThreadPool* const pool_;
  /// shared_ptr because the metrics callback gauges registered in the
  /// engine's registry capture it — an ExportMetrics after this server is
  /// destroyed must still read valid (frozen) scheduler stats.
  std::shared_ptr<AdmissionController> admission_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: workers wake the IO thread
  std::uint16_t port_ = 0;
  std::thread io_thread_;

  std::atomic<bool> running_{false};
  /// Set by Shutdown(): healthz flips to 503 and /sparql stops admitting.
  std::atomic<bool> draining_{false};
  /// Set after drain: the IO loop exits once all responses are flushed.
  std::atomic<bool> io_exit_{false};
  /// Parent of every request token; cancelled when the drain times out.
  CancelToken shutdown_token_;

  /// IO-thread-only state (no lock: single owner). Connections are keyed
  /// by id, not fd — a worker finishing after the peer disconnected finds
  /// the id gone instead of aliasing a reused fd.
  std::unordered_map<std::uint64_t, std::shared_ptr<Connection>> connections_;
  /// 0 and 1 are kListenId/kWakeId; connections start above them.
  std::uint64_t next_connection_id_ = 2;

  /// Worker -> IO thread completion queue. Connections (not bare ids) so
  /// a response finishing after the peer vanished can still commit its
  /// trace to the flight recorder.
  Mutex done_mu_;
  std::deque<std::shared_ptr<Connection>> done_queue_ GUARDED_BY(done_mu_);

  /// Shutdown() is idempotent and may race with the destructor.
  Mutex shutdown_mu_;
  bool shutdown_done_ GUARDED_BY(shutdown_mu_) = false;

  // Metrics (registered in the engine's registry; raw pointers stay
  // valid for the registry's lifetime).
  obs::Counter* requests_total_ = nullptr;
  obs::Counter* responses_2xx_ = nullptr;
  obs::Counter* responses_4xx_ = nullptr;
  obs::Counter* responses_5xx_ = nullptr;
  obs::Counter* rejected_queue_full_ = nullptr;
  obs::Counter* rejected_rate_limited_ = nullptr;
  obs::Counter* rejected_client_limit_ = nullptr;
  obs::Counter* rejected_draining_ = nullptr;
  obs::Gauge* connections_active_ = nullptr;
  obs::Histogram* queue_wait_millis_ = nullptr;
  obs::Histogram* request_millis_ = nullptr;
  /// Admission queue depth sampled at every Submit (histogram half of the
  /// depth gauge/histogram pair; count-style buckets).
  obs::Histogram* queue_depth_at_admit_ = nullptr;
  /// Most recent queue wait (gauge half of the wait histogram/gauge pair).
  obs::Gauge* queue_wait_last_millis_ = nullptr;
  // Per-phase latency histograms fed from committed request traces (the
  // engine already exports parse/plan/exec; these cover the server-only
  // phases).
  obs::Histogram* phase_parse_http_millis_ = nullptr;
  obs::Histogram* phase_serialize_millis_ = nullptr;
  obs::Histogram* phase_flush_millis_ = nullptr;

  /// Completed request traces (/debug/traces, SIGUSR1 dump).
  obs::FlightRecorder recorder_;
  /// Recent requests (/debug/requests) + error-line sink.
  obs::AccessLog access_log_;
};

}  // namespace hsparql::server

#endif  // HSPARQL_SERVER_SERVER_H_
