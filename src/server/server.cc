#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "exec/results_io.h"

namespace hsparql::server {

namespace {

/// epoll user-data ids for the two non-connection descriptors.
constexpr std::uint64_t kListenId = 0;
constexpr std::uint64_t kWakeId = 1;
constexpr std::uint64_t kFirstConnectionId = 2;

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

/// Per-connection state. Everything except `inbox`/`inbox_close` is owned
/// by the IO thread (single-owner, no lock); workers only touch the
/// inbox, under `mu`, and never the fd.
struct SparqlServer::Connection {
  std::uint64_t id = 0;
  int fd = -1;
  std::string peer;  // client key for admission (IP without port)
  RequestParser parser;
  /// Bytes pending write (IO thread only).
  std::string outbuf;
  /// True while a /sparql request is executing: request processing is
  /// paused so responses keep request order on the connection.
  bool busy = false;
  bool close_after_write = false;
  /// Cached epoll interest to avoid redundant epoll_ctl calls.
  std::uint32_t interest = 0;

  /// Request-clock zero for the request currently being parsed: stamped
  /// on the first read wake after the previous request completed,
  /// consumed by Route (IO thread only).
  std::chrono::steady_clock::time_point first_byte{};
  bool first_byte_valid = false;
  /// Traces of responses sitting in outbuf, committed to the flight
  /// recorder once the kernel has taken every byte (IO thread only).
  std::vector<Traced> pending_commits;

  explicit Connection(RequestParser::Limits limits) : parser(limits) {}

  /// One worker-completed response: the serialised bytes plus the trace
  /// context to commit when they flush.
  struct Outgoing {
    std::string bytes;
    Traced traced;
  };

  Mutex mu;
  /// Worker-completed responses, in completion order (at most one given
  /// `busy`, but a vector keeps the invariant local).
  std::vector<Outgoing> inbox GUARDED_BY(mu);
  bool inbox_close GUARDED_BY(mu) = false;
};

SparqlServer::SparqlServer(engine::Engine* engine, ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      pool_(options_.pool != nullptr ? options_.pool : &ThreadPool::Shared()),
      admission_(std::make_shared<AdmissionController>(options_.admission,
                                                       pool_)),
      recorder_(options_.recorder),
      access_log_(options_.access_log) {
  RegisterMetrics();
}

SparqlServer::~SparqlServer() { Shutdown(); }

void SparqlServer::RegisterMetrics() {
  obs::Registry& reg = engine_->metrics();
  requests_total_ =
      reg.GetCounter("server.requests.total", "HTTP requests received");
  responses_2xx_ =
      reg.GetCounter("server.responses.2xx", "HTTP responses with 2xx status");
  responses_4xx_ =
      reg.GetCounter("server.responses.4xx", "HTTP responses with 4xx status");
  responses_5xx_ =
      reg.GetCounter("server.responses.5xx", "HTTP responses with 5xx status");
  rejected_queue_full_ = reg.GetCounter(
      "server.rejected.queue_full", "requests shed: admission queue full");
  rejected_rate_limited_ = reg.GetCounter(
      "server.rejected.rate_limited", "requests shed: client over rate limit");
  rejected_client_limit_ = reg.GetCounter(
      "server.rejected.client_limit",
      "requests shed: client over in-flight limit");
  rejected_draining_ = reg.GetCounter("server.rejected.draining",
                                      "requests shed: server shutting down");
  connections_active_ =
      reg.GetGauge("server.connections.active", "open client connections");
  queue_wait_millis_ = reg.GetHistogram(
      "server.queue.wait_millis", "admission queue wait before execution");
  request_millis_ = reg.GetHistogram(
      "server.request_millis", "end-to-end request latency (admit to respond)");
  // The depth gauge/histogram pair: server.queue.depth (below) samples the
  // queue at scrape time, this histogram samples it at every admission —
  // the distribution a 503/429 burst can be correlated against.
  static constexpr double kDepthBuckets[] = {0,  1,  2,   4,   8,   16,
                                             32, 64, 128, 256, 512, 1024};
  queue_depth_at_admit_ = reg.GetHistogram(
      "server.queue.depth_at_admit",
      "admission queue depth sampled when each request was submitted",
      kDepthBuckets);
  queue_wait_last_millis_ = reg.GetGauge(
      "server.queue.wait_last_millis",
      "queue wait of the most recently started request");
  phase_parse_http_millis_ = reg.GetHistogram(
      "server.phase.parse_http_millis",
      "request phase: first byte to complete HTTP parse");
  phase_serialize_millis_ = reg.GetHistogram(
      "server.phase.serialize_millis",
      "request phase: result serialization (rows to response bytes)");
  phase_flush_millis_ = reg.GetHistogram(
      "server.phase.flush_millis",
      "request phase: response posted to last byte handed to the kernel");
  // Callback gauges read the controller live; the shared_ptr capture
  // keeps it valid even if the engine outlives this server.
  std::shared_ptr<AdmissionController> admission = admission_;
  reg.AddCallbackGauge("server.queue.depth", "admitted requests waiting",
                       [admission] {
                         return static_cast<std::int64_t>(
                             admission->stats().queued);
                       });
  reg.AddCallbackGauge("server.requests.running",
                       "requests currently executing", [admission] {
                         return static_cast<std::int64_t>(
                             admission->stats().running);
                       });
}

Status SparqlServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable("socket() failed: " +
                               std::string(std::strerror(errno)));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("unparseable listen host: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      listen(listen_fd_, SOMAXCONN) != 0) {
    Status status = Status::Unavailable(
        "bind/listen on " + options_.host + ":" +
        std::to_string(options_.port) + " failed: " + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof addr;
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (!SetNonBlocking(listen_fd_)) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("cannot set listen socket non-blocking");
  }

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    if (epoll_fd_ >= 0) close(epoll_fd_);
    if (wake_fd_ >= 0) close(wake_fd_);
    close(listen_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return Status::Unavailable("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeId;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::OK();
}

void SparqlServer::IoLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  std::chrono::steady_clock::time_point flush_deadline{};
  bool flush_deadline_set = false;
  while (true) {
    if (io_exit_.load(std::memory_order_acquire)) {
      if (!flush_deadline_set) {
        flush_deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(
                             options_.shutdown_flush_timeout_ms);
        flush_deadline_set = true;
      }
      DrainCompletions();
      bool pending = false;
      {
        MutexLock lock(&done_mu_);
        pending = !done_queue_.empty();
      }
      if (!pending) {
        for (const auto& [id, conn] : connections_) {
          if (!conn->outbuf.empty()) {
            pending = true;
            break;
          }
        }
      }
      if (!pending || std::chrono::steady_clock::now() >= flush_deadline) {
        break;
      }
    }
    int n = epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout_ms=*/100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd broken: nothing recoverable
    }
    for (int i = 0; i < n; ++i) {
      std::uint64_t id = events[i].data.u64;
      std::uint32_t flags = events[i].events;
      if (id == kListenId) {
        AcceptReady();
        continue;
      }
      if (id == kWakeId) {
        std::uint64_t drained = 0;
        while (read(wake_fd_, &drained, sizeof drained) > 0) {
        }
        DrainCompletions();
        continue;
      }
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if ((flags & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(id);
        continue;
      }
      if ((flags & EPOLLIN) != 0) HandleReadable(conn);
      // The read side may have closed the connection.
      if (connections_.count(id) == 0) continue;
      if ((flags & EPOLLOUT) != 0) HandleWritable(conn);
    }
  }
  // Exit: close every socket. Workers still holding Connection
  // shared_ptrs only ever touch the inbox, never the (now closed) fd.
  for (auto& [id, conn] : connections_) {
    CommitFlushed(conn);
    if (conn->fd >= 0) close(conn->fd);
    conn->fd = -1;
    connections_active_->Sub();
  }
  connections_.clear();
}

void SparqlServer::AcceptReady() {
  while (true) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof peer;
    int fd = accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (or transient error): wait for epoll
    if (draining_.load(std::memory_order_acquire) ||
        connections_.size() >= options_.max_connections) {
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<Connection>(options_.http_limits);
    conn->id = next_connection_id_++;
    conn->fd = fd;
    char ip[INET_ADDRSTRLEN] = "unknown";
    inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof ip);
    conn->peer = ip;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close(fd);
      continue;
    }
    conn->interest = EPOLLIN;
    connections_.emplace(conn->id, std::move(conn));
    connections_active_->Add();
  }
}

void SparqlServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char buf[16 * 1024];
  while (true) {
    ssize_t got = read(conn->fd, buf, sizeof buf);
    if (got > 0) {
      if (!conn->first_byte_valid) {
        // Request-clock zero for the next request on this connection.
        conn->first_byte = std::chrono::steady_clock::now();
        conn->first_byte_valid = true;
      }
      conn->parser.Feed(
          std::string_view(buf, static_cast<std::size_t>(got)));
      continue;
    }
    if (got == 0) {
      // Peer closed. If a query is executing its worker still holds the
      // Connection; the id disappearing from the map makes the eventual
      // response a no-op.
      CloseConnection(conn->id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn->id);
    return;
  }
  ProcessParsed(conn);
  if (connections_.count(conn->id) != 0) UpdateInterest(conn);
}

void SparqlServer::ProcessParsed(const std::shared_ptr<Connection>& conn) {
  // fd < 0 means a mid-loop PostResponse hit a dead socket and closed the
  // connection; stop routing the rest of the pipeline.
  while (conn->fd >= 0 && !conn->busy && !conn->close_after_write) {
    RequestParser::State state = conn->parser.state();
    if (state == RequestParser::State::kNeedMore) return;
    if (state == RequestParser::State::kError) {
      requests_total_->Add();
      std::string body = ErrorBody(StatusCode::kInvalidArgument,
                                   conn->parser.error_message());
      PostResponse(conn,
                   FormatResponse(conn->parser.error_status(),
                                  "application/json", body,
                                  /*keep_alive=*/false),
                   /*close_after=*/true, /*from_worker=*/false);
      return;
    }
    // Complete: copy the request out so the parser can start on any
    // pipelined bytes; Route may dispatch asynchronously.
    HttpRequest request = conn->parser.request();
    conn->parser.Reset();
    Route(conn, request);
  }
}

void SparqlServer::Route(const std::shared_ptr<Connection>& conn,
                         const HttpRequest& req) {
  requests_total_->Add();
  const bool keep_alive = req.keep_alive;

  // Request-trace setup: id (generated, or adopted from a W3C traceparent
  // header so the caller's span id threads through every log line), the
  // request clock, and the parse_http span. The trace rides the Traced
  // context through admission and commits when the response flushes.
  Traced traced;
  if (options_.request_tracing) {
    const auto now = std::chrono::steady_clock::now();
    traced.start = conn->first_byte_valid ? conn->first_byte : now;
    traced.trace = std::make_shared<obs::RequestTrace>();
    obs::RequestTrace& trace = *traced.trace;
    trace.spans.reserve(8);  // parse_http..flush: one growth, no reallocs
    std::string parent_id;
    if (obs::ParseTraceparent(req.Header("traceparent"), &trace.trace_id,
                              &parent_id)) {
      trace.id = std::move(parent_id);
    } else {
      trace.id = obs::GenerateRequestId();
    }
    trace.peer = conn->peer;
    trace.method = req.method;
    trace.target = req.target;
    trace.unix_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::system_clock::now().time_since_epoch())
                            .count();
    trace.AddSpan("parse_http", 0.0,
                  std::chrono::duration<double, std::milli>(now - traced.start)
                      .count());
  }
  conn->first_byte_valid = false;  // the next request restamps

  if (req.path == "/healthz") {
    if (req.method != "GET" && req.method != "HEAD") {
      Send(conn, 405, "text/plain", "method not allowed\n", keep_alive,
           !keep_alive, false, std::move(traced), {{"Allow", "GET"}});
      return;
    }
    const bool draining = draining_.load(std::memory_order_acquire);
    // A healthy reply names the storage backend (DESIGN.md §4k), so an
    // operator can confirm a replica actually serves from its snapshot.
    const std::string body =
        draining ? "draining\n"
                 : "ok backend=" +
                       std::string(storage::StoreBackendName(
                           engine_->stats().backend)) +
                       "\n";
    Send(conn, draining ? 503 : 200, "text/plain", body, keep_alive,
         !keep_alive, false, std::move(traced));
    return;
  }
  if (req.path == "/metrics") {
    if (req.method != "GET") {
      Send(conn, 405, "text/plain", "method not allowed\n", keep_alive,
           !keep_alive, false, std::move(traced), {{"Allow", "GET"}});
      return;
    }
    std::string body =
        engine_->ExportMetrics(engine::Engine::MetricsFormat::kPrometheus);
    Send(conn, 200, "text/plain; version=0.0.4; charset=utf-8", body,
         keep_alive, !keep_alive, false, std::move(traced));
    return;
  }
  if (req.path == "/debug/traces" || req.path == "/debug/requests" ||
      req.path == "/debug/stats") {
    HandleDebug(conn, req, std::move(traced));
    return;
  }
  if (req.path == "/sparql" || req.path == "/") {
    if (req.method != "GET" && req.method != "POST") {
      Send(conn, 405, "application/json",
           ErrorBody(StatusCode::kUnsupported, "use GET or POST"), keep_alive,
           !keep_alive, false, std::move(traced), {{"Allow", "GET, POST"}});
      return;
    }
    HandleQuery(conn, req, std::move(traced));
    return;
  }
  Send(conn, 404, "application/json",
       ErrorBody(StatusCode::kNotFound, "no such endpoint: " + req.path),
       keep_alive, !keep_alive, false, std::move(traced));
}

void SparqlServer::HandleDebug(const std::shared_ptr<Connection>& conn,
                               const HttpRequest& req, Traced traced) {
  const bool keep_alive = req.keep_alive;
  if (req.method != "GET") {
    Send(conn, 405, "text/plain", "method not allowed\n", keep_alive,
         !keep_alive, false, std::move(traced), {{"Allow", "GET"}});
    return;
  }
  auto size_param = [&](std::string_view name) -> std::size_t {
    std::optional<std::string> p = FormParam(req.query_string, name);
    if (!p.has_value()) return 0;
    std::size_t v = 0;
    std::from_chars(p->data(), p->data() + p->size(), v);
    return v;
  };
  std::string body;
  if (req.path == "/debug/traces") {
    obs::FlightRecorder::Filter filter;
    if (std::optional<std::string> p = FormParam(req.query_string, "min_ms");
        p.has_value()) {
      filter.min_millis = std::strtod(p->c_str(), nullptr);
    }
    if (std::optional<std::string> p = FormParam(req.query_string, "status");
        p.has_value()) {
      int v = 0;
      std::from_chars(p->data(), p->data() + p->size(), v);
      filter.status = v;
    }
    filter.limit = size_param("limit");
    body = recorder_.ToJson(filter);
  } else if (req.path == "/debug/requests") {
    body = access_log_.ToJson(size_param("limit"));
  } else {
    // /debug/stats: trace-fed planner statistics plus recorder counters.
    body = "{\"cardinality_memo\":";
    body += engine_->cardinality_memo().ToJson();
    body += ",\"flight_recorder\":{\"recorded\":";
    body += std::to_string(recorder_.recorded_total());
    body += ",\"notable\":";
    body += std::to_string(recorder_.notable_total());
    body += ",\"slow_millis\":";
    body += std::to_string(recorder_.slow_millis());
    body += "},\"access_log\":{\"recorded\":";
    body += std::to_string(access_log_.recorded_total());
    body += "}}";
  }
  body += '\n';
  Send(conn, 200, "application/json", body, keep_alive, !keep_alive, false,
       std::move(traced));
}

void SparqlServer::HandleQuery(const std::shared_ptr<Connection>& conn,
                               const HttpRequest& req, Traced traced) {
  const bool keep_alive = req.keep_alive;
  auto fail = [&](int http_status, StatusCode code, std::string_view message) {
    Send(conn, http_status, "application/json", ErrorBody(code, message),
         keep_alive, !keep_alive, false, std::move(traced));
  };

  // 1. The query text (SPARQL Protocol: GET ?query=, POST form body, or
  //    POST with a raw application/sparql-query body).
  std::optional<std::string> query_text = FormParam(req.query_string, "query");
  std::string content_type(req.Header("content-type"));
  std::size_t semi = content_type.find(';');
  std::string media_type = content_type.substr(0, semi);
  if (req.method == "POST" && !query_text.has_value()) {
    if (media_type == "application/x-www-form-urlencoded" ||
        media_type.empty()) {
      query_text = FormParam(req.body, "query");
    } else if (media_type == "application/sparql-query") {
      query_text = req.body;
    } else {
      fail(415, StatusCode::kUnsupported,
           "unsupported Content-Type: " + media_type);
      return;
    }
  }
  if (!query_text.has_value() || query_text->empty()) {
    fail(400, StatusCode::kInvalidQuery, "missing 'query' parameter");
    return;
  }

  // 2. Response format: ?format= overrides Accept.
  std::optional<std::string> format_name =
      FormParam(req.query_string, "format");
  if (!format_name.has_value() && req.method == "POST" &&
      media_type != "application/sparql-query") {
    format_name = FormParam(req.body, "format");
  }
  std::optional<results::Format> format;
  if (format_name.has_value()) {
    format = results::FormatFromName(*format_name);
    if (!format.has_value()) {
      fail(400, StatusCode::kInvalidArgument,
           "unknown format: " + *format_name + " (json|csv|tsv)");
      return;
    }
  } else {
    format = results::Negotiate(req.Header("accept"));
    if (!format.has_value()) {
      fail(406, StatusCode::kUnsupported,
           "Accept matches no supported result format "
           "(application/sparql-results+json, text/csv, "
           "text/tab-separated-values)");
      return;
    }
  }

  // 3. Deadline. The token starts ticking *now*, before queueing, so
  //    time spent waiting for a slot counts against the budget.
  std::uint64_t timeout_ms = options_.default_timeout_ms;
  if (std::optional<std::string> timeout_param =
          FormParam(req.query_string, "timeout");
      timeout_param.has_value()) {
    std::uint64_t parsed = 0;
    const char* begin = timeout_param->data();
    const char* end = begin + timeout_param->size();
    auto [ptr, ec] = std::from_chars(begin, end, parsed);
    if (ec != std::errc() || ptr != end || parsed == 0) {
      fail(400, StatusCode::kInvalidArgument,
           "timeout must be a positive integer (milliseconds)");
      return;
    }
    timeout_ms = std::min(parsed, options_.max_timeout_ms);
  }
  auto token = std::make_shared<CancelToken>();
  token->set_parent(&shutdown_token_);
  if (timeout_ms > 0) {
    token->SetTimeout(std::chrono::milliseconds(timeout_ms));
  }

  engine::QueryOptions query_options = options_.query;
  query_options.cancel = token.get();
  query_options.timeout_ms = 0;  // the token above carries the deadline
  if (traced.trace != nullptr) {
    // Thread the id into engine telemetry (slow-query-log lines) and
    // force the per-operator trace on: the request trace grafts it in as
    // child spans, and its est/actual cardinalities feed the memo. The
    // request-trace-overhead CI gate bounds the cost of this default.
    query_options.request_id = traced.trace->id;
    query_options.collect_trace = true;
  }

  // 4. Admission. The job runs on a pool worker (or is handed back
  //    cancelled during shutdown) — never inline here.
  queue_depth_at_admit_->Observe(
      static_cast<double>(admission_->stats().queued));
  if (traced.trace != nullptr) {
    traced.admit_offset_millis = traced.OffsetMillis();
    // Extracting and decoding the query out of the request (plus the
    // deadline setup) is still parsing the HTTP request: stretch the
    // span to the admission point so the phases tile the wall clock.
    for (obs::RequestSpan& span : traced.trace->spans) {
      if (span.name == "parse_http") {
        span.millis = traced.admit_offset_millis - span.start_millis;
        break;
      }
    }
  }
  AdmitDecision decision = admission_->Submit(
      conn->peer,
      [this, conn, text = std::move(*query_text), query_options, token, format,
       keep_alive, traced](std::chrono::nanoseconds queue_wait,
                           bool cancelled) {
        ExecuteQueryJob(conn, text, query_options, token, *format, keep_alive,
                        queue_wait, cancelled, traced);
      });
  switch (decision) {
    case AdmitDecision::kAdmitted:
      conn->busy = true;  // pause request processing until the response
      return;
    case AdmitDecision::kQueueFull:
      rejected_queue_full_->Add();
      fail(503, StatusCode::kOverloaded, "admission queue full, try later");
      return;
    case AdmitDecision::kClientLimit:
      rejected_client_limit_->Add();
      fail(429, StatusCode::kOverloaded,
           "too many in-flight requests from this client");
      return;
    case AdmitDecision::kRateLimited:
      rejected_rate_limited_->Add();
      fail(429, StatusCode::kOverloaded, "client over request rate limit");
      return;
    case AdmitDecision::kShuttingDown:
      rejected_draining_->Add();
      fail(503, StatusCode::kUnavailable, "server shutting down");
      return;
  }
}

void SparqlServer::ExecuteQueryJob(const std::shared_ptr<Connection>& conn,
                                   const std::string& query_text,
                                   engine::QueryOptions query_options,
                                   const std::shared_ptr<CancelToken>& token,
                                   results::Format format, bool keep_alive,
                                   std::chrono::nanoseconds queue_wait,
                                   bool cancelled, Traced traced) {
  const double wait_millis =
      std::chrono::duration<double, std::milli>(queue_wait).count();
  queue_wait_millis_->Observe(wait_millis);
  queue_wait_last_millis_->Set(static_cast<std::int64_t>(wait_millis));
  obs::ScopedTimer request_timer(request_millis_);
  if (traced.trace != nullptr) {
    // Measured on the request clock (admit -> job start) rather than the
    // queue's enqueue->dequeue stopwatch, so the span also covers the
    // worker wake-up; the queue_wait histogram keeps the precise figure.
    traced.trace->AddSpan(
        "queue", traced.admit_offset_millis,
        std::max(0.0, traced.OffsetMillis() - traced.admit_offset_millis));
  }

  if (cancelled) {
    // Dropped from the queue by shutdown; never executed.
    rejected_draining_->Add();
    if (traced.trace != nullptr) traced.trace->engine_status = "cancelled";
    Send(conn, 503, "application/json",
         ErrorBody(StatusCode::kUnavailable, "server shutting down"),
         /*keep_alive=*/false, /*close_after=*/true, /*from_worker=*/true,
         std::move(traced));
    return;
  }

  int http_status;
  std::string content_type = "application/json";
  std::string body;
  const double engine_offset =
      traced.trace != nullptr ? traced.OffsetMillis() : 0.0;
  auto response = engine_->Query(query_text, query_options);
  if (traced.trace != nullptr) {
    // Graft the engine pipeline in as child spans on the request clock
    // (on a plan-cache hit parse/plan are ~0-length, mirroring the work
    // actually done), plus the query-level annotations the slow-query
    // log carries.
    obs::RequestTrace& trace = *traced.trace;
    if (response.ok()) {
      trace.query_hash = response->planned->query_hash;
      trace.engine_status = "ok";
      trace.planner = response->planner;
      trace.rows = response->rows();
      trace.plan_cache_hit = response->plan_cache_hit;
      trace.result_cache_hit = response->result_cache_hit;
      trace.query_trace = response->trace;
      double offset = engine_offset;
      trace.AddSpan("parse", offset, response->parse_millis);
      offset += response->parse_millis;
      trace.AddSpan("plan", offset, response->plan_millis);
      offset += response->plan_millis;
      // The engine's wall time exceeds the sum of its pipeline timers:
      // normalization and cache lookups run before the pipeline starts,
      // and on a cache hit they are all that runs.  Fold that remainder
      // into exec so the spans tile the request's wall clock.
      const double engine_wall = traced.OffsetMillis() - engine_offset;
      trace.AddSpan("exec", offset,
                    std::max(response->exec_millis,
                             engine_wall - response->parse_millis -
                                 response->plan_millis));
    } else {
      trace.engine_status =
          std::string(StatusCodeName(response.status().code()));
      trace.AddSpan("exec", engine_offset,
                    traced.OffsetMillis() - engine_offset);
    }
  }
  if (response.ok()) {
    http_status = 200;
    content_type = std::string(results::ContentType(format));
    const double serialize_offset =
        traced.trace != nullptr ? traced.OffsetMillis() : 0.0;
    {
      // The view pins the store (shared lock) while the dictionary
      // decodes result ids; queries running concurrently share the lock.
      engine::StoreView view = engine_->read_view();
      body = results::WriteString(format, response->result->table,
                                  response->planned->planned.query,
                                  view.dictionary());
    }
    if (traced.trace != nullptr) {
      traced.trace->AddSpan("serialize", serialize_offset,
                            traced.OffsetMillis() - serialize_offset);
    }
  } else {
    http_status = HttpStatusFor(response.status().code());
    body = ErrorBody(response.status().code(), response.status().message());
  }
  (void)token;  // keeps the deadline alive until the query finished
  Send(conn, http_status, content_type, body, keep_alive,
       /*close_after=*/!keep_alive, /*from_worker=*/true, std::move(traced));
}

std::string SparqlServer::Respond(
    int status, std::string_view content_type, std::string_view body,
    bool keep_alive, const Traced& traced,
    std::vector<std::pair<std::string, std::string>> extra_headers) const {
  if (traced.trace != nullptr) {
    extra_headers.emplace_back("X-Request-Id", traced.trace->id);
  }
  return FormatResponse(status, content_type, body, keep_alive, extra_headers);
}

void SparqlServer::Send(
    const std::shared_ptr<Connection>& conn, int status,
    std::string_view content_type, std::string_view body, bool keep_alive,
    bool close_after, bool from_worker, Traced traced,
    std::vector<std::pair<std::string, std::string>> extra_headers) {
  std::string response = Respond(status, content_type, body, keep_alive,
                                 traced, std::move(extra_headers));
  PostResponse(conn, std::move(response), close_after, from_worker,
               std::move(traced));
}

void SparqlServer::PostResponse(const std::shared_ptr<Connection>& conn,
                                std::string response, bool close_after,
                                bool from_worker) {
  PostResponse(conn, std::move(response), close_after, from_worker, Traced());
}

void SparqlServer::PostResponse(const std::shared_ptr<Connection>& conn,
                                std::string response, bool close_after,
                                bool from_worker, Traced traced) {
  // "HTTP/1.1 NNN ...": the three status digits start at offset 9.
  int status = 0;
  if (response.size() > 11) {
    std::from_chars(response.data() + 9, response.data() + 12, status);
  }
  const int status_class = status / 100;
  if (status_class == 2) {
    responses_2xx_->Add();
  } else if (status_class == 4) {
    responses_4xx_->Add();
  } else if (status_class == 5) {
    responses_5xx_->Add();
  }
  if (traced.trace != nullptr) {
    traced.trace->http_status = status;
    traced.trace->response_bytes = response.size();
    traced.post_offset_millis = traced.OffsetMillis();
  }
  if (!from_worker) {
    // IO thread: append straight to the socket buffer.
    conn->outbuf += response;
    if (close_after) conn->close_after_write = true;
    if (traced.trace != nullptr) {
      conn->pending_commits.push_back(std::move(traced));
    }
    HandleWritable(conn);
    return;
  }
  {
    MutexLock lock(&conn->mu);
    conn->inbox.push_back(
        Connection::Outgoing{std::move(response), std::move(traced)});
    if (close_after) conn->inbox_close = true;
  }
  {
    MutexLock lock(&done_mu_);
    done_queue_.push_back(conn);
  }
  std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still leaves it readable: the wake
  // is already pending, so a short write is fine to ignore.
  (void)!write(wake_fd_, &one, sizeof one);
}

void SparqlServer::DrainCompletions() {
  std::deque<std::shared_ptr<Connection>> done;
  {
    MutexLock lock(&done_mu_);
    done.swap(done_queue_);
  }
  for (const std::shared_ptr<Connection>& conn : done) {
    const std::uint64_t id = conn->id;
    std::vector<Connection::Outgoing> inbox;
    bool inbox_close = false;
    {
      MutexLock lock(&conn->mu);
      inbox.swap(conn->inbox);
      inbox_close = conn->inbox_close;
    }
    if (connections_.count(id) == 0) {
      // Peer left before the response: nothing to write, but the trace
      // still belongs in the flight recorder (this is where a client
      // that gave up on a slow query becomes visible).
      for (Connection::Outgoing& out : inbox) {
        if (out.traced.trace != nullptr) CommitTrace(std::move(out.traced));
      }
      continue;
    }
    for (Connection::Outgoing& out : inbox) {
      conn->outbuf += out.bytes;
      if (out.traced.trace != nullptr) {
        conn->pending_commits.push_back(std::move(out.traced));
      }
    }
    if (inbox_close) conn->close_after_write = true;
    conn->busy = false;
    // The answered request may have pipelined successors already parsed.
    ProcessParsed(conn);
    if (connections_.count(id) != 0) {
      HandleWritable(conn);
      if (connections_.count(id) != 0) UpdateInterest(conn);
    }
  }
}

void SparqlServer::CommitTrace(Traced&& traced) {
  obs::RequestTrace& trace = *traced.trace;
  const double total = traced.OffsetMillis();
  trace.total_millis = total;
  // Flush picks up where the last recorded span left off, so the gap
  // between serialize ending and the worker posting (building the HTTP
  // envelope, the eventfd hop) is attributed rather than lost and the
  // spans' self-times sum to the request's wall time.
  double flush_start = 0.0;
  for (const obs::RequestSpan& span : trace.spans) {
    flush_start = std::max(flush_start, span.start_millis + span.millis);
  }
  flush_start = std::min(flush_start, total);
  trace.AddSpan("flush", flush_start, std::max(0.0, total - flush_start));
  phase_parse_http_millis_->Observe(trace.SpanMillis("parse_http"));
  phase_flush_millis_->Observe(trace.SpanMillis("flush"));
  if (!trace.engine_status.empty()) {
    phase_serialize_millis_->Observe(trace.SpanMillis("serialize"));
  }
  access_log_.Record(traced.trace);
  recorder_.Record(std::move(traced.trace));
}

void SparqlServer::CommitFlushed(const std::shared_ptr<Connection>& conn) {
  if (conn->pending_commits.empty()) return;
  for (Traced& traced : conn->pending_commits) {
    CommitTrace(std::move(traced));
  }
  conn->pending_commits.clear();
}

void SparqlServer::HandleWritable(const std::shared_ptr<Connection>& conn) {
  while (!conn->outbuf.empty()) {
    ssize_t sent = write(conn->fd, conn->outbuf.data(), conn->outbuf.size());
    if (sent > 0) {
      conn->outbuf.erase(0, static_cast<std::size_t>(sent));
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (sent < 0 && errno == EINTR) continue;
    CloseConnection(conn->id);
    return;
  }
  if (conn->outbuf.empty()) {
    // Every queued response has reached the kernel: the flush span ends
    // here for all of them.
    CommitFlushed(conn);
    if (conn->close_after_write && !conn->busy) {
      CloseConnection(conn->id);
      return;
    }
  }
  UpdateInterest(conn);
}

void SparqlServer::UpdateInterest(const std::shared_ptr<Connection>& conn) {
  std::uint32_t want = EPOLLIN;
  if (!conn->outbuf.empty()) want |= EPOLLOUT;
  if (want == conn->interest || conn->fd < 0) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn->id;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->interest = want;
  }
}

void SparqlServer::CloseConnection(std::uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  std::shared_ptr<Connection> conn = it->second;
  // Responses that never fully flushed (write error, peer reset) still
  // commit: the recorded flush span then covers post-to-close.
  CommitFlushed(conn);
  if (conn->fd >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    close(conn->fd);
    conn->fd = -1;
  }
  connections_.erase(it);
  connections_active_->Sub();
}

std::string SparqlServer::ErrorBody(StatusCode code,
                                    std::string_view message) const {
  std::string body = "{\"error\":{\"code\":\"";
  body += StatusCodeName(code);
  body += "\",\"message\":\"";
  body += exec::JsonEscape(message);
  body += "\"}}\n";
  return body;
}

void SparqlServer::Shutdown() {
  {
    MutexLock lock(&shutdown_mu_);
    if (shutdown_done_) return;
    shutdown_done_ = true;
  }
  if (!running_.load(std::memory_order_acquire)) return;

  // 1. Stop admitting: healthz flips to 503, /sparql answers 503, new
  //    sockets are closed at accept. epoll_ctl is thread-safe, so the
  //    listener is deregistered from here.
  draining_.store(true, std::memory_order_release);
  admission_->BeginDrain();
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);

  // 2. Drain: give in-flight queries drain_timeout_ms to finish.
  const bool drained = admission_->WaitIdle(
      std::chrono::milliseconds(options_.drain_timeout_ms));
  if (!drained) {
    // 3. Cancel stragglers (they answer 499) and drop queued jobs (503).
    //    Cancellation is polled at operator boundaries, so this wait
    //    terminates; loop rather than guess a bound.
    shutdown_token_.Cancel();
    admission_->CancelPending();
    while (!admission_->WaitIdle(std::chrono::milliseconds(1000))) {
    }
  }

  // 4. Flush: the IO thread writes out the final responses, then exits.
  io_exit_.store(true, std::memory_order_release);
  std::uint64_t one = 1;
  (void)!write(wake_fd_, &one, sizeof one);
  if (io_thread_.joinable()) io_thread_.join();

  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  listen_fd_ = wake_fd_ = epoll_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

}  // namespace hsparql::server
