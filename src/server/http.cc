#include "server/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace hsparql::server {

namespace {

std::string_view TrimOws(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

std::string AsciiLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view lower_name) const {
  auto it = headers.find(std::string(lower_name));
  return it == headers.end() ? std::string_view() : std::string_view(it->second);
}

std::optional<std::string> PercentDecode(std::string_view text,
                                         bool plus_is_space) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '%') {
      if (i + 2 >= text.size()) return std::nullopt;
      int hi = HexDigit(text[i + 1]);
      int lo = HexDigit(text[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      out += static_cast<char>(hi * 16 + lo);
      i += 2;
    } else if (c == '+' && plus_is_space) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> ParseFormUrlEncoded(
    std::string_view text) {
  std::vector<std::pair<std::string, std::string>> out;
  std::string_view rest = text;
  while (!rest.empty()) {
    std::size_t amp = rest.find('&');
    std::string_view pair = rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view()
                                         : rest.substr(amp + 1);
    if (pair.empty()) continue;
    std::size_t eq = pair.find('=');
    std::string_view raw_name = pair.substr(0, eq);
    std::string_view raw_value =
        eq == std::string_view::npos ? std::string_view() : pair.substr(eq + 1);
    auto name = PercentDecode(raw_name, /*plus_is_space=*/true);
    auto value = PercentDecode(raw_value, /*plus_is_space=*/true);
    if (!name.has_value() || !value.has_value()) continue;
    out.emplace_back(std::move(*name), std::move(*value));
  }
  return out;
}

std::optional<std::string> FormParam(std::string_view text,
                                     std::string_view name) {
  for (auto& [k, v] : ParseFormUrlEncoded(text)) {
    if (k == name) return std::move(v);
  }
  return std::nullopt;
}

RequestParser::State RequestParser::Fail(int status, std::string message) {
  error_status_ = status;
  error_message_ = std::move(message);
  state_ = State::kError;
  return state_;
}

RequestParser::State RequestParser::Feed(std::string_view data) {
  if (state_ != State::kNeedMore) return state_;
  buffer_.append(data);
  return TryParse();
}

RequestParser::State RequestParser::Reset() {
  request_ = HttpRequest();
  body_expected_ = npos;
  head_bytes_ = 0;
  error_status_ = 400;
  error_message_.clear();
  state_ = State::kNeedMore;
  return TryParse();
}

RequestParser::State RequestParser::TryParse() {
  if (body_expected_ == npos) {
    // Still looking for the end of the head: CRLFCRLF (tolerate LFLF).
    std::size_t end = buffer_.find("\r\n\r\n");
    std::size_t sep_len = 4;
    if (end == std::string::npos) {
      end = buffer_.find("\n\n");
      sep_len = 2;
    }
    if (end == std::string::npos) {
      if (buffer_.size() > limits_.max_head_bytes) {
        return Fail(431, "request head too large");
      }
      return state_;
    }
    if (end > limits_.max_head_bytes) {
      return Fail(431, "request head too large");
    }
    State parsed = ParseHead(end);
    if (parsed == State::kError) return parsed;
    head_bytes_ = end + sep_len;
    // Erase the head; what's left is body (+ possibly pipelined bytes).
    buffer_.erase(0, head_bytes_);
  }
  if (buffer_.size() >= body_expected_) {
    request_.body = buffer_.substr(0, body_expected_);
    buffer_.erase(0, body_expected_);
    body_expected_ = 0;
    state_ = State::kComplete;
  }
  return state_;
}

RequestParser::State RequestParser::ParseHead(std::size_t head_end) {
  std::string_view head(buffer_.data(), head_end);
  // Request line: METHOD SP request-target SP HTTP/x.y
  std::size_t line_end = head.find('\n');
  std::string_view request_line =
      head.substr(0, line_end == std::string_view::npos ? head.size() : line_end);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.remove_suffix(1);
  }
  std::size_t sp1 = request_line.find(' ');
  std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Fail(400, "malformed request line");
  }
  request_.method = std::string(request_line.substr(0, sp1));
  request_.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  std::string_view version = request_line.substr(sp2 + 1);
  bool http10 = false;
  if (version == "HTTP/1.1") {
    http10 = false;
  } else if (version == "HTTP/1.0") {
    http10 = true;
  } else {
    return Fail(505, "unsupported HTTP version");
  }
  if (request_.method.empty() || request_.target.empty() ||
      request_.target[0] != '/') {
    return Fail(400, "malformed request target");
  }

  // Split target into path + query string; decode the path only.
  std::size_t qmark = request_.target.find('?');
  std::string_view raw_path(request_.target);
  if (qmark != std::string::npos) {
    request_.query_string = request_.target.substr(qmark + 1);
    raw_path = std::string_view(request_.target).substr(0, qmark);
  }
  auto decoded_path = PercentDecode(raw_path, /*plus_is_space=*/false);
  if (!decoded_path.has_value()) return Fail(400, "malformed path encoding");
  request_.path = std::move(*decoded_path);

  // Header fields.
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view()
                                         : head.substr(line_end + 1);
  while (!rest.empty()) {
    std::size_t eol = rest.find('\n');
    std::string_view line =
        rest.substr(0, eol == std::string_view::npos ? rest.size() : eol);
    rest = eol == std::string_view::npos ? std::string_view()
                                         : rest.substr(eol + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    if (line[0] == ' ' || line[0] == '\t') {
      return Fail(400, "obsolete header folding not supported");
    }
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Fail(400, "malformed header field");
    }
    std::string name = AsciiLower(line.substr(0, colon));
    if (name.find(' ') != std::string::npos ||
        name.find('\t') != std::string::npos) {
      return Fail(400, "whitespace in header name");
    }
    std::string value(TrimOws(line.substr(colon + 1)));
    auto [it, inserted] = request_.headers.emplace(std::move(name), value);
    if (!inserted) {
      // Repeated header: combine per RFC 9110 list semantics.
      it->second += ", ";
      it->second += value;
    }
  }

  // Connection semantics.
  std::string connection = AsciiLower(request_.Header("connection"));
  request_.keep_alive = http10 ? connection.find("keep-alive") != std::string::npos
                               : connection.find("close") == std::string::npos;

  // Body framing.
  if (!request_.Header("transfer-encoding").empty()) {
    return Fail(501, "chunked transfer encoding not supported");
  }
  std::string_view length = request_.Header("content-length");
  if (length.empty()) {
    body_expected_ = 0;
    return state_;
  }
  std::size_t parsed_length = 0;
  auto [ptr, ec] = std::from_chars(length.data(), length.data() + length.size(),
                                   parsed_length);
  if (ec != std::errc() || ptr != length.data() + length.size()) {
    return Fail(400, "malformed Content-Length");
  }
  if (parsed_length > limits_.max_body_bytes) {
    return Fail(413, "request body too large");
  }
  body_expected_ = parsed_length;
  return state_;
}

std::string_view ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 406: return "Not Acceptable";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Status";
  }
}

std::string FormatResponse(
    int status, std::string_view content_type, std::string_view body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += ReasonPhrase(status);
  out += "\r\n";
  if (!content_type.empty()) {
    out += "Content-Type: ";
    out += content_type;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(body.size());
  out += "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : extra_headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

}  // namespace hsparql::server
