#include "plan/planner.h"

#include "cdp/cdp_planner.h"
#include "cdp/hybrid_planner.h"
#include "cdp/leftdeep_planner.h"
#include "hsp/hsp_planner.h"
#include "sparql/parser.h"

namespace hsparql::plan {

AnalyzedQuery AnalyzedQuery::From(sparql::Query query) {
  AnalyzedQuery out;
  out.characteristics = sparql::Analyze(query);
  out.query = std::move(query);
  return out;
}

Result<AnalyzedQuery> AnalyzedQuery::FromText(std::string_view text) {
  HSPARQL_ASSIGN_OR_RETURN(sparql::Query query, sparql::Parse(text));
  return From(std::move(query));
}

std::string_view PlannerKindName(PlannerKind kind) {
  switch (kind) {
    case PlannerKind::kHsp:
      return "hsp";
    case PlannerKind::kCdp:
      return "cdp";
    case PlannerKind::kLeftDeep:
      return "sql";
    case PlannerKind::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

std::optional<PlannerKind> ParsePlannerKind(std::string_view name) {
  if (name == "hsp") return PlannerKind::kHsp;
  if (name == "cdp") return PlannerKind::kCdp;
  if (name == "sql" || name == "leftdeep") return PlannerKind::kLeftDeep;
  if (name == "hybrid") return PlannerKind::kHybrid;
  return std::nullopt;
}

Result<std::unique_ptr<Planner>> MakePlanner(
    PlannerKind kind, const storage::TripleStore* store,
    const storage::Statistics* stats, const PlannerFactoryOptions& options) {
  if (kind == PlannerKind::kHsp) {
    hsp::HspOptions hsp_options;
    hsp_options.seed = options.seed;
    hsp_options.use_leapfrog = options.use_leapfrog;
    return std::unique_ptr<Planner>(
        std::make_unique<hsp::HspPlanner>(hsp_options));
  }
  if (store == nullptr || stats == nullptr) {
    return Status::InvalidArgument(
        std::string("planner '") + std::string(PlannerKindName(kind)) +
        "' is cost-based and needs a store and statistics");
  }
  switch (kind) {
    case PlannerKind::kCdp: {
      cdp::CdpOptions cdp_options;
      cdp_options.use_leapfrog = options.use_leapfrog;
      return std::unique_ptr<Planner>(
          std::make_unique<cdp::CdpPlanner>(store, stats, cdp_options));
    }
    case PlannerKind::kLeftDeep:
      return std::unique_ptr<Planner>(
          std::make_unique<cdp::LeftDeepPlanner>(store, stats));
    case PlannerKind::kHybrid: {
      cdp::HybridOptions hybrid_options;
      hybrid_options.use_leapfrog = options.use_leapfrog;
      return std::unique_ptr<Planner>(
          std::make_unique<cdp::HybridPlanner>(store, stats, hybrid_options));
    }
    case PlannerKind::kHsp:
      break;  // handled above
  }
  return Status::InvalidArgument("unknown planner kind");
}

}  // namespace hsparql::plan
