// The unified planner interface every query planner implements.
//
// The repo grew four planners — statistics-free HSP (Algorithm 1), the
// RDF-3X-style CDP baseline, the left-deep "MonetDB/SQL" baseline and the
// HSP+statistics hybrid — each with its own constructor shape. Everything
// above the planners (the engine::Engine serving facade, the bench
// harnesses, the explain tool) programs against this one abstraction:
// an AnalyzedQuery goes in, a PlannedQuery comes out, and MakePlanner()
// builds any of the four behind a PlannerKind switch.
//
// Layering: this header sits between hsp/plan.h (LogicalPlan) and the
// planner modules. hsp/hsp_planner.h and the cdp/ headers include it to
// derive from Planner; the factory implementation lives in the
// hsparql_plan library, which links against all planner libraries.
#ifndef HSPARQL_PLAN_PLANNER_H_
#define HSPARQL_PLAN_PLANNER_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "hsp/plan.h"
#include "sparql/analyzer.h"
#include "sparql/ast.h"
#include "sparql/rewrite.h"

namespace hsparql::storage {
class TripleStore;
class Statistics;
}  // namespace hsparql::storage

namespace hsparql::plan {

/// A plan plus the planner's working query (the caller must execute the
/// plan against `query`, whose pattern indices the plan references —
/// FILTER rewriting may have changed patterns and dropped filters).
struct PlannedQuery {
  sparql::Query query;
  hsp::LogicalPlan plan;
  sparql::RewriteReport rewrite_report;
  /// Variables chosen for merge joins, in selection (round) order.
  std::vector<sparql::VarId> chosen_variables;
};

/// A parsed query together with its syntactic census (Table 2 quantities).
/// This is the input of the planning stage in the engine's
/// parse -> analyze -> plan -> lint -> execute pipeline; carrying the
/// characteristics alongside lets planners and serving-layer policies
/// (e.g. "route large star joins to the hybrid") inspect the query shape
/// without re-deriving it.
struct AnalyzedQuery {
  sparql::Query query;
  sparql::QueryCharacteristics characteristics;

  /// Runs the syntactic census over an already-parsed query.
  static AnalyzedQuery From(sparql::Query query);
  /// Parses `text` and analyzes the result.
  static Result<AnalyzedQuery> FromText(std::string_view text);
};

/// Abstract planner: one instance plans many queries, concurrently safe
/// (all four implementations are stateless after construction).
class Planner {
 public:
  virtual ~Planner() = default;

  /// Plans `query`. Fails with InvalidArgument for queries the planner
  /// cannot handle (no patterns; too many patterns for the DP planners).
  virtual Result<PlannedQuery> Plan(const AnalyzedQuery& query) const = 0;

  /// Stable short name: "hsp", "cdp", "sql" or "hybrid".
  virtual std::string_view Name() const = 0;

  /// Deterministic digest of every option value that can change the
  /// produced plan. Name() + OptionsFingerprint() + query text identify a
  /// plan, which is exactly what the engine's plan cache keys on.
  virtual std::string OptionsFingerprint() const { return {}; }
};

/// The four planner implementations, in the order the paper discusses them.
enum class PlannerKind : std::uint8_t { kHsp, kCdp, kLeftDeep, kHybrid };

inline constexpr PlannerKind kAllPlannerKinds[] = {
    PlannerKind::kHsp, PlannerKind::kCdp, PlannerKind::kLeftDeep,
    PlannerKind::kHybrid};

/// "hsp", "cdp", "sql", "hybrid" (matching each planner's Name()).
std::string_view PlannerKindName(PlannerKind kind);

/// Inverse of PlannerKindName; also accepts "leftdeep" for kLeftDeep.
std::optional<PlannerKind> ParsePlannerKind(std::string_view name);

/// Options shared by the factory across planner kinds.
struct PlannerFactoryOptions {
  /// Seed for HSP's RandomChooseOne tie-break (ignored by the cost-based
  /// planners, which are deterministic).
  std::uint64_t seed = kDefaultSeed;
  /// Let planners emit worst-case-optimal leapfrog joins for cyclic/star
  /// BGPs (HSP routes by shape, CDP and the hybrid by cost; the left-deep
  /// baseline ignores the flag and stays pure binary). Off by default so
  /// every paper-reproduction plan is unchanged.
  bool use_leapfrog = false;
};

/// Builds a planner of the given kind. The cost-based kinds (kCdp,
/// kLeftDeep, kHybrid) require non-null `store` and `stats`, which must
/// outlive the returned planner; kHsp is statistics-free and accepts
/// nulls. Fails with InvalidArgument when statistics are missing for a
/// cost-based kind.
Result<std::unique_ptr<Planner>> MakePlanner(
    PlannerKind kind, const storage::TripleStore* store = nullptr,
    const storage::Statistics* stats = nullptr,
    const PlannerFactoryOptions& options = {});

}  // namespace hsparql::plan

#endif  // HSPARQL_PLAN_PLANNER_H_
