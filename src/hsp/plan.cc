#include "hsp/plan.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "common/string_util.h"

namespace hsparql::hsp {

using sparql::Query;
using sparql::VarId;

std::unique_ptr<PlanNode> PlanNode::Scan(std::size_t pattern,
                                         storage::Ordering ordering,
                                         VarId sort_var) {
  auto node = std::make_unique<PlanNode>(Kind::kScan);
  node->pattern_index = pattern;
  node->ordering = ordering;
  node->sort_var = sort_var;
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Join(JoinAlgo algo, VarId var,
                                         std::unique_ptr<PlanNode> left,
                                         std::unique_ptr<PlanNode> right) {
  auto node = std::make_unique<PlanNode>(Kind::kJoin);
  node->algo = algo;
  node->join_var = var;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

std::unique_ptr<PlanNode> PlanNode::LeftOuterJoin(
    VarId var, std::unique_ptr<PlanNode> left,
    std::unique_ptr<PlanNode> right) {
  auto node = Join(JoinAlgo::kHash, var, std::move(left), std::move(right));
  node->left_outer = true;
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Union(
    std::vector<std::unique_ptr<PlanNode>> branches) {
  auto node = std::make_unique<PlanNode>(Kind::kUnion);
  node->children = std::move(branches);
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Filter(sparql::Filter filter,
                                           std::unique_ptr<PlanNode> child) {
  auto node = std::make_unique<PlanNode>(Kind::kFilter);
  node->filter = std::move(filter);
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Project(std::vector<VarId> vars,
                                            bool distinct,
                                            std::unique_ptr<PlanNode> child) {
  auto node = std::make_unique<PlanNode>(Kind::kProject);
  node->projection = std::move(vars);
  node->distinct = distinct;
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Sort(
    std::vector<sparql::Query::OrderKey> keys,
    std::unique_ptr<PlanNode> child) {
  auto node = std::make_unique<PlanNode>(Kind::kSort);
  node->order_keys = std::move(keys);
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Leapfrog(
    std::vector<VarId> order, std::vector<std::size_t> patterns) {
  auto node = std::make_unique<PlanNode>(Kind::kLeapfrog);
  node->leapfrog_order = std::move(order);
  node->leapfrog_patterns = std::move(patterns);
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Limit(std::uint64_t count,
                                          std::uint64_t offset,
                                          std::unique_ptr<PlanNode> child) {
  auto node = std::make_unique<PlanNode>(Kind::kLimit);
  node->limit_count = count;
  node->limit_offset = offset;
  node->children.push_back(std::move(child));
  return node;
}

std::string_view PlanShapeName(PlanShape shape) {
  return shape == PlanShape::kLeftDeep ? "LD" : "B";
}

std::unique_ptr<PlanNode> AttachSolutionModifiers(
    const sparql::Query& query, std::unique_ptr<PlanNode> plan) {
  if (!query.order_by.empty()) {
    plan = PlanNode::Sort(query.order_by, std::move(plan));
  }
  if (query.ask) {
    // Existence is enough: one row decides the answer.
    return PlanNode::Limit(1, 0, std::move(plan));
  }
  if (query.limit.has_value() || query.offset > 0) {
    plan = PlanNode::Limit(query.limit.value_or(UINT64_MAX), query.offset,
                           std::move(plan));
  }
  return plan;
}

namespace {

void Visit(const PlanNode* node,
           const std::function<void(const PlanNode*)>& fn) {
  if (node == nullptr) return;
  fn(node);
  for (const auto& child : node->children) Visit(child.get(), fn);
}

bool ContainsJoin(const PlanNode* node) {
  bool found = false;
  Visit(node, [&](const PlanNode* n) {
    if (n->kind == PlanNode::Kind::kJoin) found = true;
  });
  return found;
}

}  // namespace

LogicalPlan::LogicalPlan(std::unique_ptr<PlanNode> root)
    : root_(std::move(root)) {
  int next_id = 0;
  Visit(root_.get(), [&](const PlanNode* n) {
    const_cast<PlanNode*>(n)->id = next_id++;
  });
  num_nodes_ = next_id;
}

int LogicalPlan::CountJoins(JoinAlgo algo) const {
  int count = 0;
  Visit(root_.get(), [&](const PlanNode* n) {
    if (n->kind == PlanNode::Kind::kJoin && n->algo == algo) ++count;
  });
  return count;
}

int LogicalPlan::CountScans() const {
  int count = 0;
  Visit(root_.get(), [&](const PlanNode* n) {
    if (n->kind == PlanNode::Kind::kScan) ++count;
  });
  return count;
}

int LogicalPlan::CountLeapfrogJoins() const {
  int count = 0;
  Visit(root_.get(), [&](const PlanNode* n) {
    if (n->kind == PlanNode::Kind::kLeapfrog) ++count;
  });
  return count;
}

PlanShape LogicalPlan::shape() const {
  bool bushy = false;
  Visit(root_.get(), [&](const PlanNode* n) {
    if (n->kind == PlanNode::Kind::kJoin &&
        ContainsJoin(n->children[1].get())) {
      bushy = true;
    }
  });
  return bushy ? PlanShape::kBushy : PlanShape::kLeftDeep;
}

std::vector<VarId> LogicalPlan::MergeJoinVariables() const {
  std::vector<VarId> vars;
  Visit(root_.get(), [&](const PlanNode* n) {
    if (n->kind == PlanNode::Kind::kJoin && n->algo == JoinAlgo::kMerge &&
        n->join_var != sparql::kInvalidVarId) {
      vars.push_back(n->join_var);
    }
    if (n->kind == PlanNode::Kind::kLeapfrog) {
      vars.insert(vars.end(), n->leapfrog_order.begin(),
                  n->leapfrog_order.end());
    }
  });
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

namespace {

void Render(const PlanNode* node, const Query& query,
            const std::vector<std::uint64_t>* cards, int depth,
            std::ostream& os) {
  for (int i = 0; i < depth; ++i) os << "  ";
  switch (node->kind) {
    case PlanNode::Kind::kScan: {
      const sparql::TriplePattern& tp = query.patterns[node->pattern_index];
      os << (tp.num_constants() > 0 ? "select" : "scan") << '('
         << storage::OrderingName(node->ordering) << ") tp"
         << node->pattern_index;
      bool any = false;
      for (rdf::Position pos : rdf::kAllPositions) {
        const sparql::PatternTerm& t = tp.at(pos);
        if (t.is_constant()) {
          os << (any ? ", " : " [") << rdf::PositionLetter(pos) << '='
             << t.constant.ToString();
          any = true;
        }
      }
      if (any) os << ']';
      if (node->sort_var != sparql::kInvalidVarId) {
        os << " sorted-by ?" << query.VarName(node->sort_var);
      }
      break;
    }
    case PlanNode::Kind::kUnion:
      os << "union";
      break;
    case PlanNode::Kind::kSort:
      os << "sort [";
      for (std::size_t i = 0; i < node->order_keys.size(); ++i) {
        if (i > 0) os << ' ';
        if (node->order_keys[i].descending) os << '-';
        os << '?' << query.VarName(node->order_keys[i].var);
      }
      os << ']';
      break;
    case PlanNode::Kind::kLimit:
      os << "limit " << node->limit_count;
      if (node->limit_offset > 0) os << " offset " << node->limit_offset;
      break;
    case PlanNode::Kind::kJoin:
      if (node->left_outer) os << "leftouter";
      os << (node->algo == JoinAlgo::kMerge ? "mergejoin" : "hashjoin");
      if (node->join_var != sparql::kInvalidVarId) {
        os << " ?" << query.VarName(node->join_var);
      } else {
        os << " (cartesian)";
      }
      break;
    case PlanNode::Kind::kFilter:
      os << "filter ?" << query.VarName(node->filter.var) << ' '
         << sparql::FilterOpName(node->filter.op) << ' ';
      if (node->filter.rhs_var.has_value()) {
        os << '?' << query.VarName(*node->filter.rhs_var);
      } else {
        os << node->filter.value.ToString();
      }
      break;
    case PlanNode::Kind::kLeapfrog: {
      os << "leapfrogjoin [";
      for (std::size_t i = 0; i < node->leapfrog_order.size(); ++i) {
        if (i > 0) os << ' ';
        os << '?' << query.VarName(node->leapfrog_order[i]);
      }
      os << "] tps{";
      for (std::size_t i = 0; i < node->leapfrog_patterns.size(); ++i) {
        if (i > 0) os << ',';
        os << node->leapfrog_patterns[i];
      }
      os << '}';
      break;
    }
    case PlanNode::Kind::kProject: {
      os << "project";
      if (node->distinct) os << " distinct";
      os << " [";
      for (std::size_t i = 0; i < node->projection.size(); ++i) {
        if (i > 0) os << ' ';
        os << '?' << query.VarName(node->projection[i]);
      }
      os << ']';
      break;
    }
  }
  if (cards != nullptr && node->id >= 0 &&
      static_cast<std::size_t>(node->id) < cards->size()) {
    os << "  (" << FormatCount((*cards)[static_cast<std::size_t>(node->id)])
       << ")";
  }
  os << '\n';
  for (const auto& child : node->children) {
    Render(child.get(), query, cards, depth + 1, os);
  }
}

}  // namespace

std::string LogicalPlan::ToString(
    const Query& query, const std::vector<std::uint64_t>* cardinalities) const {
  if (root_ == nullptr) return "(empty plan)\n";
  std::ostringstream os;
  Render(root_.get(), query, cardinalities, 0, os);
  return os.str();
}

}  // namespace hsparql::hsp
