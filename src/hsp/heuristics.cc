#include "hsp/heuristics.h"

#include <algorithm>
#include <limits>

#include "sparql/parser.h"

namespace hsparql::hsp {

using rdf::Position;
using sparql::JoinClass;
using sparql::PatternTerm;
using sparql::Query;
using sparql::TriplePattern;
using sparql::VarId;

bool HasRdfTypePredicate(const TriplePattern& tp) {
  return tp.p.is_constant() && tp.p.constant.is_iri() &&
         tp.p.constant.lexical == sparql::kRdfTypeIri;
}

int H1Rank(const TriplePattern& tp, bool type_exception) {
  bool s = tp.s.is_constant();
  bool p = tp.p.is_constant();
  bool o = tp.o.is_constant();
  if (type_exception && HasRdfTypePredicate(tp)) {
    p = false;  // rdf:type binds almost nothing
  }
  // (s,p,o) ≺ (s,?,o) ≺ (?,p,o) ≺ (s,p,?) ≺ (?,?,o) ≺ (s,?,?) ≺ (?,p,?)
  // ≺ (?,?,?)
  if (s && p && o) return 0;
  if (s && !p && o) return 1;
  if (!s && p && o) return 2;
  if (s && p && !o) return 3;
  if (!s && !p && o) return 4;
  if (s && !p && !o) return 5;
  if (!s && p && !o) return 6;
  return 7;
}

int H2Rank(JoinClass jc) {
  using P = Position;
  // p⋈o ≺ s⋈p ≺ s⋈o ≺ o⋈o ≺ s⋈s ≺ p⋈p
  if (jc == JoinClass::Make(P::kPredicate, P::kObject)) return 0;
  if (jc == JoinClass::Make(P::kSubject, P::kPredicate)) return 1;
  if (jc == JoinClass::Make(P::kSubject, P::kObject)) return 2;
  if (jc == JoinClass::Make(P::kObject, P::kObject)) return 3;
  if (jc == JoinClass::Make(P::kSubject, P::kSubject)) return 4;
  return 5;  // p⋈p
}

int H3BoundCount(const TriplePattern& tp) { return tp.num_constants(); }

bool H4HasLiteralObject(const TriplePattern& tp) {
  return tp.o.is_constant() && tp.o.constant.is_literal();
}

bool ScanOrderLess::operator()(std::size_t a, std::size_t b) const {
  const TriplePattern& ta = query->patterns[a];
  const TriplePattern& tb = query->patterns[b];
  int ra = H1Rank(ta, type_exception);
  int rb = H1Rank(tb, type_exception);
  if (ra != rb) return ra < rb;
  int ca = H3BoundCount(ta);
  int cb = H3BoundCount(tb);
  if (ca != cb) return ca > cb;  // more constants first
  bool la = H4HasLiteralObject(ta);
  bool lb = H4HasLiteralObject(tb);
  if (la != lb) return la;  // literal object first
  return a < b;
}

std::vector<JoinClass> JoinClassesOfVar(
    const Query& query, VarId var, const std::vector<std::size_t>& patterns) {
  // Occurrence positions grouped by position, as in sparql::Analyze.
  std::array<int, 3> group_size = {0, 0, 0};
  for (std::size_t idx : patterns) {
    for (Position pos : query.patterns[idx].PositionsOf(var)) {
      ++group_size[static_cast<std::size_t>(pos)];
    }
  }
  std::vector<JoinClass> classes;
  for (Position pos : rdf::kAllPositions) {
    int n = group_size[static_cast<std::size_t>(pos)];
    for (int i = 1; i < n; ++i) classes.push_back(JoinClass::Make(pos, pos));
  }
  Position prev = Position::kSubject;
  bool have_prev = false;
  for (Position pos : rdf::kAllPositions) {
    if (group_size[static_cast<std::size_t>(pos)] == 0) continue;
    if (have_prev) classes.push_back(JoinClass::Make(prev, pos));
    prev = pos;
    have_prev = true;
  }
  return classes;
}

namespace {

/// Keeps the candidates minimising (or maximising) `score`.
template <typename ScoreFn>
std::vector<CandidateSet> KeepBest(std::vector<CandidateSet> sets,
                                   bool keep_max, ScoreFn score) {
  if (sets.size() <= 1) return sets;
  long best = keep_max ? std::numeric_limits<long>::min()
                       : std::numeric_limits<long>::max();
  std::vector<long> scores;
  scores.reserve(sets.size());
  for (const CandidateSet& s : sets) {
    long v = score(s);
    scores.push_back(v);
    if (keep_max ? v > best : v < best) best = v;
  }
  std::vector<CandidateSet> out;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    if (scores[i] == best) out.push_back(std::move(sets[i]));
  }
  return out;
}

}  // namespace

std::vector<CandidateSet> ApplyH3(const Query& query,
                                  std::vector<CandidateSet> sets,
                                  const TieBreakConfig& config) {
  // Total bound components over covered patterns. Bulky direction keeps
  // the minimum (merge joins take the weakly-bound patterns).
  return KeepBest(std::move(sets), /*keep_max=*/!config.merge_prefers_bulky,
                  [&](const CandidateSet& s) {
                    long total = 0;
                    for (std::size_t idx : s.covered) {
                      total += H3BoundCount(query.patterns[idx]);
                    }
                    return total;
                  });
}

std::vector<CandidateSet> ApplyH4(const Query& query,
                                  std::vector<CandidateSet> sets,
                                  const TieBreakConfig& config) {
  // Number of covered patterns with a literal object.
  return KeepBest(std::move(sets), /*keep_max=*/!config.merge_prefers_bulky,
                  [&](const CandidateSet& s) {
                    long total = 0;
                    for (std::size_t idx : s.covered) {
                      if (H4HasLiteralObject(query.patterns[idx])) ++total;
                    }
                    return total;
                  });
}

std::vector<CandidateSet> ApplyH2(const Query& query,
                                  std::vector<CandidateSet> sets,
                                  const TieBreakConfig& config) {
  // The set's most-selective join class (minimum H2 rank across its
  // variables' induced classes). Bulky direction keeps the maximum: the
  // least selective join patterns become merge joins.
  return KeepBest(std::move(sets), /*keep_max=*/config.merge_prefers_bulky,
                  [&](const CandidateSet& s) {
                    long best_rank = 6;
                    for (VarId v : s.vars) {
                      for (JoinClass jc :
                           JoinClassesOfVar(query, v, s.covered)) {
                        best_rank = std::min(best_rank,
                                             static_cast<long>(H2Rank(jc)));
                      }
                    }
                    return best_rank;
                  });
}

std::vector<CandidateSet> ApplyH5(const Query& query,
                                  std::vector<CandidateSet> sets,
                                  const TieBreakConfig& /*config*/) {
  // Patterns containing projection variables should be considered as late
  // as possible: prefer sets covering fewer projection variables...
  sets = KeepBest(std::move(sets), /*keep_max=*/false,
                  [&](const CandidateSet& s) {
                    long total = 0;
                    for (std::size_t idx : s.covered) {
                      for (VarId v : query.patterns[idx].Variables()) {
                        if (query.IsProjected(v)) ++total;
                      }
                    }
                    return total;
                  });
  // ...then, among equals, the maximum number of unused variables (weight-1
  // variables that are not projected).
  const std::vector<std::uint32_t> weights = query.VarWeights();
  return KeepBest(std::move(sets), /*keep_max=*/true,
                  [&](const CandidateSet& s) {
                    long total = 0;
                    for (std::size_t idx : s.covered) {
                      for (VarId v : query.patterns[idx].Variables()) {
                        if (weights[v] == 1 && !query.IsProjected(v)) ++total;
                      }
                    }
                    return total;
                  });
}

}  // namespace hsparql::hsp
