// The five optimisation heuristics of §4.
//
// The heuristics play two roles in Algorithm 1:
//
//  (a) *Per-pattern* (H1, H3, H4): rank triple patterns by expected
//      selectivity to order scans and joins — most selective first, so
//      intermediate results shrink early. H1's precedence is
//        (s,p,o) ≺ (s,?,o) ≺ (?,p,o) ≺ (s,p,?) ≺ (?,?,o) ≺ (s,?,?) ≺
//        (?,p,?) ≺ (?,?,?)
//      with the rdf:type exception: a bound rdf:type predicate is so common
//      that it is treated as unbound for ranking purposes.
//
//  (b) *Set-level* (H3, H4, H2, H5 in that order): break ties between
//      maximum-weight independent sets, i.e. decide WHICH variables get the
//      merge joins. Here the preference runs toward covering the *bulky*
//      patterns: merge joins are nearly free ((lc+rc)/100000 in the CDP
//      cost model) while hash joins carry a large constant, so the heavy,
//      weakly-bound patterns should be absorbed by merge-join blocks and
//      the small, highly selective remainders attached by hash joins. This
//      direction reproduces the paper's reported plans (e.g. Y2's left-deep
//      merge chain on ?a); the opposite direction is available through
//      TieBreakConfig for the ablation benchmark.
#ifndef HSPARQL_HSP_HEURISTICS_H_
#define HSPARQL_HSP_HEURISTICS_H_

#include <cstdint>
#include <vector>

#include "sparql/analyzer.h"
#include "sparql/ast.h"

namespace hsparql::hsp {

/// HEURISTIC 1: selectivity rank of a triple pattern, 0 (most selective)
/// to 7 (least). `type_exception` applies the rdf:type demotion.
int H1Rank(const sparql::TriplePattern& tp, bool type_exception = true);

/// True if the pattern's predicate is the constant rdf:type.
bool HasRdfTypePredicate(const sparql::TriplePattern& tp);

/// HEURISTIC 2: precedence rank of a join class, 0 (most selective, p⋈o)
/// to 5 (least selective, p⋈p): p⋈o ≺ s⋈p ≺ s⋈o ≺ o⋈o ≺ s⋈s ≺ p⋈p.
int H2Rank(sparql::JoinClass jc);

/// HEURISTIC 3: number of bound components (literals + URIs), 0..3.
int H3BoundCount(const sparql::TriplePattern& tp);

/// HEURISTIC 4: true if the object component is a bound literal.
bool H4HasLiteralObject(const sparql::TriplePattern& tp);

/// Per-pattern scan comparator used inside merge-join blocks and for
/// ordering selections: H1 rank ascending, then H3 descending, then H4
/// (literal object first), then pattern index (stability).
struct ScanOrderLess {
  const sparql::Query* query;
  bool type_exception = true;

  bool operator()(std::size_t a, std::size_t b) const;
};

/// A candidate independent set under consideration by Algorithm 1:
/// variables plus the patterns they cover within the current pattern set T.
struct CandidateSet {
  std::vector<sparql::VarId> vars;       // sorted
  std::vector<std::size_t> covered;      // pattern indices, sorted
};

/// Direction switches for the set-level tie-breaks (ablation support).
struct TieBreakConfig {
  /// true  -> merge-join blocks absorb bulky patterns (paper's plans);
  /// false -> merge-join blocks take the most selective patterns.
  bool merge_prefers_bulky = true;
};

/// Set-level filters. Each keeps exactly the argmax/argmin candidates for
/// its criterion and leaves the input order otherwise intact. Applied by
/// Algorithm 1 in the order H3, H4, H2, H5, each only while |I| > 1.
std::vector<CandidateSet> ApplyH3(const sparql::Query& query,
                                  std::vector<CandidateSet> sets,
                                  const TieBreakConfig& config);
std::vector<CandidateSet> ApplyH4(const sparql::Query& query,
                                  std::vector<CandidateSet> sets,
                                  const TieBreakConfig& config);
std::vector<CandidateSet> ApplyH2(const sparql::Query& query,
                                  std::vector<CandidateSet> sets,
                                  const TieBreakConfig& config);
std::vector<CandidateSet> ApplyH5(const sparql::Query& query,
                                  std::vector<CandidateSet> sets,
                                  const TieBreakConfig& config);

/// The join classes a variable induces over a set of patterns (spanning
/// scheme of sparql::Analyze restricted to one variable).
std::vector<sparql::JoinClass> JoinClassesOfVar(
    const sparql::Query& query, sparql::VarId var,
    const std::vector<std::size_t>& patterns);

}  // namespace hsparql::hsp

#endif  // HSPARQL_HSP_HEURISTICS_H_
