// Exact all-maximum-weight-independent-sets solver.
//
// §5 reduces merge-join maximisation to the NP-hard maximum weight
// independent set problem and argues that variable graphs are small enough
// for exact search ("an independent set can be easily found in a few
// milliseconds"; "HSP can process a variable graph of up to 50 nodes in
// less than 6ms"). The solver is a branch-and-bound in the spirit of
// Östergård's cliquer (the paper's [26]): vertices in descending weight
// order, include/exclude branching, remaining-weight bound. Because
// Algorithm 1 needs the *full* tie set I, search prunes only branches that
// cannot reach the current best weight (strictly-less bound) and collects
// every set attaining it.
#ifndef HSPARQL_HSP_MWIS_H_
#define HSPARQL_HSP_MWIS_H_

#include <cstdint>
#include <vector>

#include "hsp/variable_graph.h"

namespace hsparql::hsp {

struct MwisOptions {
  /// Safety valve: stop collecting ties beyond this many sets (the
  /// heuristics pick one anyway; real variable graphs have a handful).
  std::size_t max_sets = 256;
};

struct MwisResult {
  /// Every maximum-weight independent set, as sorted node-index vectors;
  /// deterministic order (lexicographic in the weight-sorted search order).
  std::vector<std::vector<std::size_t>> sets;
  std::uint64_t best_weight = 0;
  bool truncated = false;  // hit max_sets
};

/// Finds all maximum-weight independent sets of `graph`. An empty graph
/// yields one empty set of weight 0.
MwisResult AllMaximumWeightIndependentSets(const VariableGraph& graph,
                                           const MwisOptions& options = {});

}  // namespace hsparql::hsp

#endif  // HSPARQL_HSP_MWIS_H_
