// Logical query plans shared by all planners (HSP, CDP, left-deep SQL,
// hybrid).
//
// A plan is a tree of scans, joins (merge or hash, optionally left outer),
// filters, unions, sorts, limits and a final projection. Scans name the
// triple pattern, the ordered relation used as access path, and the
// variable the scan output is sorted on — exactly the mapping
// M : TP -> (ordered relation, variable) produced by Algorithm 2.
#ifndef HSPARQL_HSP_PLAN_H_
#define HSPARQL_HSP_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "sparql/ast.h"
#include "storage/ordering.h"

namespace hsparql::hsp {

enum class JoinAlgo : std::uint8_t { kMerge, kHash };

/// One plan operator. Which fields are meaningful depends on `kind`.
struct PlanNode {
  enum class Kind : std::uint8_t {
    kScan,
    kJoin,
    kFilter,
    kProject,
    kUnion,
    kSort,
    kLimit,
    kLeapfrog,
  };

  explicit PlanNode(Kind k) : kind(k) {}

  Kind kind;
  /// Stable identifier within a plan, assigned by LogicalPlan::AssignIds();
  /// execution statistics are keyed on it.
  int id = -1;

  // kScan -----------------------------------------------------------------
  std::size_t pattern_index = SIZE_MAX;
  storage::Ordering ordering = storage::Ordering::kSpo;
  /// First variable in the scan's sort order after the bound prefix
  /// (kInvalidVarId for fully bound patterns).
  sparql::VarId sort_var = sparql::kInvalidVarId;

  // kJoin ------------------------------------------------------------------
  JoinAlgo algo = JoinAlgo::kHash;
  /// Primary join variable; kInvalidVarId marks a cartesian product. The
  /// executor additionally equates every other shared variable.
  sparql::VarId join_var = sparql::kInvalidVarId;
  /// Left outer join (OPTIONAL support): unmatched left rows survive with
  /// the right-only variables unbound. Hash joins only.
  bool left_outer = false;

  // kFilter ----------------------------------------------------------------
  sparql::Filter filter;

  // kProject ---------------------------------------------------------------
  std::vector<sparql::VarId> projection;
  bool distinct = false;

  // kSort -------------------------------------------------------------------
  std::vector<sparql::Query::OrderKey> order_keys;

  // kLimit ------------------------------------------------------------------
  std::uint64_t limit_count = UINT64_MAX;
  std::uint64_t limit_offset = 0;

  // kLeapfrog ---------------------------------------------------------------
  /// Variable-elimination order of the n-ary leapfrog triejoin: every
  /// distinct variable of the participating patterns, in the order they are
  /// bound. Doubles as the operator's output schema and sort order.
  std::vector<sparql::VarId> leapfrog_order;
  /// Indices into query.patterns of the patterns intersected by this node.
  std::vector<std::size_t> leapfrog_patterns;

  /// 0 children for scans, 2 for joins, 1 for filter/project.
  std::vector<std::unique_ptr<PlanNode>> children;

  static std::unique_ptr<PlanNode> Scan(std::size_t pattern,
                                        storage::Ordering ordering,
                                        sparql::VarId sort_var);
  static std::unique_ptr<PlanNode> Join(JoinAlgo algo, sparql::VarId var,
                                        std::unique_ptr<PlanNode> left,
                                        std::unique_ptr<PlanNode> right);
  /// Left-outer hash join attaching an OPTIONAL group.
  static std::unique_ptr<PlanNode> LeftOuterJoin(
      sparql::VarId var, std::unique_ptr<PlanNode> left,
      std::unique_ptr<PlanNode> right);
  /// N-ary bag union of branch sub-plans.
  static std::unique_ptr<PlanNode> Union(
      std::vector<std::unique_ptr<PlanNode>> branches);
  /// ORDER BY over the child's rows.
  static std::unique_ptr<PlanNode> Sort(
      std::vector<sparql::Query::OrderKey> keys,
      std::unique_ptr<PlanNode> child);
  /// LIMIT/OFFSET slice of the child's rows.
  static std::unique_ptr<PlanNode> Limit(std::uint64_t count,
                                         std::uint64_t offset,
                                         std::unique_ptr<PlanNode> child);
  static std::unique_ptr<PlanNode> Filter(sparql::Filter filter,
                                          std::unique_ptr<PlanNode> child);
  /// Worst-case-optimal n-ary leapfrog triejoin over `patterns`, binding
  /// variables in `order` (a leaf: the operator scans the store directly).
  static std::unique_ptr<PlanNode> Leapfrog(
      std::vector<sparql::VarId> order, std::vector<std::size_t> patterns);
  static std::unique_ptr<PlanNode> Project(std::vector<sparql::VarId> vars,
                                           bool distinct,
                                           std::unique_ptr<PlanNode> child);
};

/// Tree shape classification of Table 4: LD (left-deep) when no join has
/// another join anywhere in its right subtree, B (bushy) otherwise.
enum class PlanShape : std::uint8_t { kLeftDeep, kBushy };

std::string_view PlanShapeName(PlanShape shape);  // "LD" / "B"

/// Wraps `plan` with the query's solution modifiers (ORDER BY, then
/// LIMIT/OFFSET; ASK queries get LIMIT 1). Shared by every planner.
std::unique_ptr<PlanNode> AttachSolutionModifiers(
    const sparql::Query& query, std::unique_ptr<PlanNode> plan);

/// A complete plan for a query.
class LogicalPlan {
 public:
  LogicalPlan() = default;
  explicit LogicalPlan(std::unique_ptr<PlanNode> root);

  const PlanNode* root() const { return root_.get(); }
  PlanNode* mutable_root() { return root_.get(); }
  bool empty() const { return root_ == nullptr; }

  /// Number of join nodes using the given algorithm.
  int CountJoins(JoinAlgo algo) const;
  /// Number of scan nodes.
  int CountScans() const;
  /// Number of leapfrog (worst-case-optimal n-ary join) nodes.
  int CountLeapfrogJoins() const;
  /// Total number of nodes (== number of ids assigned).
  int num_nodes() const { return num_nodes_; }

  PlanShape shape() const;

  /// All variables on which sort-order-exploiting joins are performed —
  /// merge-join variables plus every leapfrog elimination variable — sorted
  /// and deduped (the "sorted variables" the paper compares between HSP and
  /// CDP plans).
  std::vector<sparql::VarId> MergeJoinVariables() const;

  /// Pretty tree rendering. `cardinalities`, when given, must be indexed by
  /// node id and annotates each operator with its output size (the figures'
  /// per-operator counts).
  std::string ToString(const sparql::Query& query,
                       const std::vector<std::uint64_t>* cardinalities =
                           nullptr) const;

 private:
  std::unique_ptr<PlanNode> root_;
  int num_nodes_ = 0;
};

}  // namespace hsparql::hsp

#endif  // HSPARQL_HSP_PLAN_H_
