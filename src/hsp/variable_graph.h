// The SPARQL variable graph (Definition 4 of the paper).
//
// Nodes are query variables, two nodes are connected iff they co-occur in a
// triple pattern, and a node's weight is the number of triple patterns its
// variable appears in. For planning, the graph is trimmed to nodes of
// weight >= 2 ("only the nodes that have weight greater [or equal] than 2
// will be considered, since only those are part of [at least] one join");
// the untrimmed variant is available for display (Figure 1).
#ifndef HSPARQL_HSP_VARIABLE_GRAPH_H_
#define HSPARQL_HSP_VARIABLE_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sparql/ast.h"

namespace hsparql::hsp {

/// Weighted undirected graph over (a subset of) a query's variables.
class VariableGraph {
 public:
  struct Node {
    sparql::VarId var;
    std::uint32_t weight;  // β(v): number of patterns containing var
  };

  /// Builds the variable graph of the patterns `pattern_indices` of `query`
  /// (Algorithm 1 re-builds the graph on the shrinking pattern set T).
  /// Only variables of weight >= `min_weight` become nodes.
  static VariableGraph Build(const sparql::Query& query,
                             std::span<const std::size_t> pattern_indices,
                             std::uint32_t min_weight = 2);

  /// Convenience: graph over all patterns of the query.
  static VariableGraph Build(const sparql::Query& query,
                             std::uint32_t min_weight = 2);

  std::size_t num_nodes() const { return nodes_.size(); }
  const Node& node(std::size_t i) const { return nodes_[i]; }
  const std::vector<Node>& nodes() const { return nodes_; }

  bool HasEdge(std::size_t i, std::size_t j) const {
    return adj_[i * nodes_.size() + j];
  }

  /// Total weight of a set of node indices.
  std::uint64_t Weight(std::span<const std::size_t> node_set) const;

  /// True if no two nodes of the set share an edge.
  bool IsIndependent(std::span<const std::size_t> node_set) const;

  /// GraphViz DOT rendering (Figure 1).
  std::string ToDot(const sparql::Query& query) const;
  /// Compact one-line rendering: "?x(3) -- ?y(1); ?x(3) -- ?z(1)".
  std::string ToString(const sparql::Query& query) const;

  /// Construction from explicit parts (tests, synthetic MWIS benches).
  VariableGraph(std::vector<Node> nodes,
                std::vector<std::pair<std::size_t, std::size_t>> edges);

 private:
  VariableGraph() = default;

  std::vector<Node> nodes_;
  std::vector<char> adj_;  // row-major adjacency matrix
};

}  // namespace hsparql::hsp

#endif  // HSPARQL_HSP_VARIABLE_GRAPH_H_
