// The Heuristic SPARQL Planner — Algorithm 1 (HSP) and Algorithm 2
// (AssignOrderedRelation) of the paper.
//
// HSP is statistics-free: it sees only the query text. It
//  1. rewrites equality FILTERs into triple-pattern constants (§6.2.1),
//  2. repeatedly extracts maximum-weight independent sets from the
//     variable graph of the remaining patterns, breaking ties with
//     heuristics H3, H4, H2, H5 and finally a seeded random choice,
//  3. maps every triple pattern to one of the six ordered relations so
//     that each chosen variable is sorted right after the bound constants
//     (Algorithm 2), and
//  4. emits a bushy plan: per chosen variable a left-deep chain of merge
//     joins over its patterns (scan order by HEURISTIC 1), blocks and
//     leftover selections connected by hash joins.
#ifndef HSPARQL_HSP_HSP_PLANNER_H_
#define HSPARQL_HSP_HSP_PLANNER_H_

#include <cstdint>
#include <string_view>

#include "common/result.h"
#include "common/rng.h"
#include "hsp/heuristics.h"
#include "hsp/plan.h"
#include "plan/planner.h"
#include "sparql/ast.h"
#include "sparql/rewrite.h"

namespace hsparql::hsp {

/// Planner output (shared by all planners); see plan/planner.h.
using PlannedQuery = plan::PlannedQuery;

/// Planner knobs. Defaults reproduce the paper's configuration; the
/// switches exist for the heuristics ablation benchmark.
struct HspOptions {
  std::uint64_t seed = kDefaultSeed;  // drives RandomChooseOne
  bool rewrite_filters = true;        // HSP's systematic FILTER rewriting
  bool h1_type_exception = true;      // rdf:type demotion in HEURISTIC 1
  TieBreakConfig tie_break;
  // Individual set-level tie-break heuristics (Algorithm 1 order).
  bool use_h3 = true;
  bool use_h4 = true;
  bool use_h2 = true;
  bool use_h5 = true;
  /// Route cyclic/star basic graph patterns to one worst-case-optimal
  /// leapfrog triejoin instead of a binary join tree (see hsp/leapfrog.h).
  /// Off by default: the paper's plans are pure merge/hash trees.
  bool use_leapfrog = false;
};

/// Stateless facade over Algorithm 1; one instance can plan many queries.
class HspPlanner : public plan::Planner {
 public:
  explicit HspPlanner(HspOptions options = {}) : options_(options) {}

  /// Plans `query`. Fails with InvalidArgument for queries without
  /// patterns; never fails on well-formed join queries.
  Result<PlannedQuery> Plan(const sparql::Query& query) const;

  Result<PlannedQuery> Plan(const plan::AnalyzedQuery& query) const override {
    return Plan(query.query);
  }
  std::string_view Name() const override { return "hsp"; }
  std::string OptionsFingerprint() const override;

  const HspOptions& options() const { return options_; }

 private:
  HspOptions options_;
};

/// Algorithm 2: the ordered relation for `tp` given the joining variable
/// `join_var` (kInvalidVarId == nil). Constants occupy the sort-priority
/// prefix (most-selective position first: o, s, p — as in the paper's
/// plan figures), then the joining variable, then the remaining variables
/// in syntactic order. Returns the ordering and the variable the resulting
/// scan is sorted on (the first variable in the sort priority).
struct OrderedRelationChoice {
  storage::Ordering ordering;
  sparql::VarId sort_var;
};
OrderedRelationChoice AssignOrderedRelation(const sparql::TriplePattern& tp,
                                            sparql::VarId join_var);

}  // namespace hsparql::hsp

#endif  // HSPARQL_HSP_HSP_PLANNER_H_
