#include "hsp/variable_graph.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace hsparql::hsp {

using sparql::Query;
using sparql::TriplePattern;
using sparql::VarId;

VariableGraph VariableGraph::Build(const Query& query,
                                   std::span<const std::size_t> pattern_indices,
                                   std::uint32_t min_weight) {
  VariableGraph g;
  // Weights restricted to the given pattern subset.
  std::vector<std::uint32_t> weights(query.num_vars(), 0);
  for (std::size_t idx : pattern_indices) {
    for (VarId v : query.patterns[idx].Variables()) ++weights[v];
  }
  std::vector<std::size_t> node_of(query.num_vars(), SIZE_MAX);
  for (VarId v = 0; v < query.num_vars(); ++v) {
    if (weights[v] >= min_weight) {
      node_of[v] = g.nodes_.size();
      g.nodes_.push_back(Node{v, weights[v]});
    }
  }
  g.adj_.assign(g.nodes_.size() * g.nodes_.size(), 0);
  for (std::size_t idx : pattern_indices) {
    std::vector<VarId> vars = query.patterns[idx].Variables();
    for (std::size_t i = 0; i < vars.size(); ++i) {
      for (std::size_t j = i + 1; j < vars.size(); ++j) {
        std::size_t a = node_of[vars[i]];
        std::size_t b = node_of[vars[j]];
        if (a == SIZE_MAX || b == SIZE_MAX) continue;
        g.adj_[a * g.nodes_.size() + b] = 1;
        g.adj_[b * g.nodes_.size() + a] = 1;
      }
    }
  }
  return g;
}

VariableGraph VariableGraph::Build(const Query& query,
                                   std::uint32_t min_weight) {
  std::vector<std::size_t> all(query.patterns.size());
  std::iota(all.begin(), all.end(), 0);
  return Build(query, all, min_weight);
}

VariableGraph::VariableGraph(
    std::vector<Node> nodes,
    std::vector<std::pair<std::size_t, std::size_t>> edges)
    : nodes_(std::move(nodes)) {
  adj_.assign(nodes_.size() * nodes_.size(), 0);
  for (auto [a, b] : edges) {
    adj_[a * nodes_.size() + b] = 1;
    adj_[b * nodes_.size() + a] = 1;
  }
}

std::uint64_t VariableGraph::Weight(
    std::span<const std::size_t> node_set) const {
  std::uint64_t total = 0;
  for (std::size_t i : node_set) total += nodes_[i].weight;
  return total;
}

bool VariableGraph::IsIndependent(
    std::span<const std::size_t> node_set) const {
  for (std::size_t i = 0; i < node_set.size(); ++i) {
    for (std::size_t j = i + 1; j < node_set.size(); ++j) {
      if (HasEdge(node_set[i], node_set[j])) return false;
    }
  }
  return true;
}

std::string VariableGraph::ToDot(const Query& query) const {
  std::ostringstream os;
  os << "graph variable_graph {\n";
  for (const Node& n : nodes_) {
    os << "  \"?" << query.VarName(n.var) << "\" [label=\"?"
       << query.VarName(n.var) << " (" << n.weight << ")\"];\n";
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes_.size(); ++j) {
      if (HasEdge(i, j)) {
        os << "  \"?" << query.VarName(nodes_[i].var) << "\" -- \"?"
           << query.VarName(nodes_[j].var) << "\";\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

std::string VariableGraph::ToString(const Query& query) const {
  std::ostringstream os;
  bool first = true;
  std::vector<char> printed(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes_.size(); ++j) {
      if (!HasEdge(i, j)) continue;
      if (!first) os << "; ";
      first = false;
      printed[i] = printed[j] = 1;
      os << '?' << query.VarName(nodes_[i].var) << '(' << nodes_[i].weight
         << ") -- ?" << query.VarName(nodes_[j].var) << '('
         << nodes_[j].weight << ')';
    }
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (printed[i]) continue;
    if (!first) os << "; ";
    first = false;
    os << '?' << query.VarName(nodes_[i].var) << '(' << nodes_[i].weight
       << ')';
  }
  return os.str();
}

}  // namespace hsparql::hsp
