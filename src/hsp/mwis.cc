#include "hsp/mwis.h"

#include <algorithm>
#include <bit>
#include <numeric>

namespace hsparql::hsp {

namespace {

/// Branch-and-bound over <= 64 vertices using bitmask adjacency.
class Solver {
 public:
  Solver(const VariableGraph& graph, const MwisOptions& options)
      : graph_(graph), options_(options) {
    const std::size_t n = graph.num_nodes();
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), 0);
    // Descending weight: heavy vertices branch early, tightening the bound.
    std::stable_sort(order_.begin(), order_.end(),
                     [&](std::size_t a, std::size_t b) {
                       return graph.node(a).weight > graph.node(b).weight;
                     });
    weights_.resize(n);
    conflict_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      weights_[i] = graph.node(order_[i]).weight;
      for (std::size_t j = 0; j < n; ++j) {
        if (graph.HasEdge(order_[i], order_[j])) {
          conflict_[i] |= (1ULL << j);
        }
      }
    }
  }

  MwisResult Run() {
    const std::size_t n = order_.size();
    std::uint64_t all = n == 64 ? ~0ULL : ((1ULL << n) - 1);
    std::vector<std::size_t> current;
    Recurse(all, 0, &current);
    // Translate search-order indices back to graph node indices.
    for (auto& set : result_.sets) {
      for (std::size_t& idx : set) idx = order_[idx];
      std::sort(set.begin(), set.end());
    }
    std::sort(result_.sets.begin(), result_.sets.end());
    result_.best_weight = best_;
    return std::move(result_);
  }

 private:
  std::uint64_t RemainingWeight(std::uint64_t mask) const {
    std::uint64_t total = 0;
    while (mask != 0) {
      std::size_t i = static_cast<std::size_t>(std::countr_zero(mask));
      total += weights_[i];
      mask &= mask - 1;
    }
    return total;
  }

  void Recurse(std::uint64_t candidates, std::uint64_t cur_weight,
               std::vector<std::size_t>* current) {
    if (cur_weight + RemainingWeight(candidates) < best_) return;  // bound
    if (candidates == 0) {
      Report(cur_weight, *current);
      return;
    }
    std::size_t j = static_cast<std::size_t>(std::countr_zero(candidates));
    // Include j.
    current->push_back(j);
    Recurse(candidates & ~(1ULL << j) & ~conflict_[j],
            cur_weight + weights_[j], current);
    current->pop_back();
    // Exclude j.
    Recurse(candidates & ~(1ULL << j), cur_weight, current);
  }

  void Report(std::uint64_t weight, const std::vector<std::size_t>& set) {
    if (weight < best_) return;
    if (weight > best_) {
      best_ = weight;
      result_.sets.clear();
      result_.truncated = false;
    }
    if (result_.sets.size() >= options_.max_sets) {
      result_.truncated = true;
      return;
    }
    result_.sets.push_back(set);
  }

  const VariableGraph& graph_;
  const MwisOptions& options_;
  std::vector<std::size_t> order_;       // search index -> node index
  std::vector<std::uint64_t> weights_;   // in search order
  std::vector<std::uint64_t> conflict_;  // adjacency bitmasks, search order
  std::uint64_t best_ = 0;
  MwisResult result_;
};

/// Greedy fallback for graphs beyond the exact solver's 64-vertex limit
/// (never reached by real queries; synthetic stress only).
MwisResult GreedyFallback(const VariableGraph& graph) {
  std::vector<std::size_t> order(graph.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return graph.node(a).weight > graph.node(b).weight;
                   });
  std::vector<std::size_t> set;
  for (std::size_t cand : order) {
    bool ok = true;
    for (std::size_t chosen : set) {
      if (graph.HasEdge(cand, chosen)) {
        ok = false;
        break;
      }
    }
    if (ok) set.push_back(cand);
  }
  std::sort(set.begin(), set.end());
  MwisResult result;
  result.best_weight = graph.Weight(set);
  result.sets.push_back(std::move(set));
  result.truncated = true;  // signals non-exhaustive enumeration
  return result;
}

}  // namespace

MwisResult AllMaximumWeightIndependentSets(const VariableGraph& graph,
                                           const MwisOptions& options) {
  if (graph.num_nodes() == 0) {
    MwisResult result;
    result.sets.push_back({});
    return result;
  }
  if (graph.num_nodes() > 64) return GreedyFallback(graph);
  return Solver(graph, options).Run();
}

}  // namespace hsparql::hsp
