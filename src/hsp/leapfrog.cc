#include "hsp/leapfrog.h"

#include <algorithm>
#include <cstdint>
#include <map>

#include "hsp/variable_graph.h"

namespace hsparql::hsp {

using sparql::Query;
using sparql::TriplePattern;
using sparql::VarId;

bool LeapfrogEligible(const Query& query,
                      std::span<const std::size_t> patterns) {
  if (patterns.size() < 2) return false;
  for (std::size_t idx : patterns) {
    if (idx >= query.patterns.size()) return false;
    const TriplePattern& tp = query.patterns[idx];
    const std::vector<VarId> vars = tp.Variables();
    if (vars.empty()) return false;
    if (static_cast<int>(vars.size()) < tp.num_variable_slots()) {
      return false;  // repeated variable: no trie access path
    }
  }
  return true;
}

bool LeapfrogFavorable(const Query& query,
                       std::span<const std::size_t> patterns) {
  VariableGraph graph = VariableGraph::Build(query, patterns);
  const std::size_t n = graph.num_nodes();
  // Star hub: one variable shared by three or more patterns.
  for (std::size_t i = 0; i < n; ++i) {
    if (graph.node(i).weight >= 3) return true;
  }
  // Cycle: some connected component has at least as many edges as nodes.
  std::vector<std::size_t> component(n);
  for (std::size_t i = 0; i < n; ++i) component[i] = i;
  const auto find = [&component](std::size_t i) {
    while (component[i] != i) {
      component[i] = component[component[i]];
      i = component[i];
    }
    return i;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (graph.HasEdge(i, j)) component[find(i)] = find(j);
    }
  }
  std::map<std::size_t, std::pair<std::size_t, std::size_t>> census;
  for (std::size_t i = 0; i < n; ++i) ++census[find(i)].first;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (graph.HasEdge(i, j)) ++census[find(i)].second;
    }
  }
  for (const auto& [root, counts] : census) {
    if (counts.second >= counts.first) return true;
  }
  return false;
}

std::vector<VarId> LeapfrogEliminationOrder(
    const Query& query, std::span<const std::size_t> patterns) {
  // Weights and adjacency over *all* distinct variables of the patterns
  // (the plain variable graph trims weight-1 nodes, which must still be
  // bound and emitted).
  std::map<VarId, std::uint32_t> weight;
  for (std::size_t idx : patterns) {
    for (VarId v : query.patterns[idx].Variables()) ++weight[v];
  }
  const auto adjacent = [&](VarId a, VarId b) {
    for (std::size_t idx : patterns) {
      const TriplePattern& tp = query.patterns[idx];
      if (tp.Mentions(a) && tp.Mentions(b)) return true;
    }
    return false;
  };

  std::vector<VarId> order;
  order.reserve(weight.size());
  std::map<VarId, std::uint32_t> remaining = weight;
  while (!remaining.empty()) {
    VarId best = sparql::kInvalidVarId;
    std::uint32_t best_weight = 0;
    bool best_connected = false;
    for (const auto& [v, w] : remaining) {
      bool connected = false;
      for (VarId chosen : order) {
        if (adjacent(v, chosen)) {
          connected = true;
          break;
        }
      }
      if (order.empty()) connected = true;  // seeding round
      // Prefer connected candidates; among equals, higher weight, then the
      // lower VarId (std::map iteration order makes this the first hit).
      if (best == sparql::kInvalidVarId ||
          (connected && !best_connected) ||
          (connected == best_connected && w > best_weight)) {
        best = v;
        best_weight = w;
        best_connected = connected;
      }
    }
    order.push_back(best);
    remaining.erase(best);
  }
  return order;
}

}  // namespace hsparql::hsp
