#include "hsp/hsp_planner.h"

#include <algorithm>
#include <cassert>
#include <iostream>
#include <numeric>

#include "hsp/leapfrog.h"
#include "hsp/mwis.h"
#include "hsp/variable_graph.h"
#include "lint/plan_lint.h"

namespace hsparql::hsp {

using rdf::Position;
using sparql::Query;
using sparql::TriplePattern;
using sparql::VarId;

namespace {

/// Sort-priority order of positions for bound constants: object is the
/// most selective component, then subject, then predicate (HEURISTIC 1's
/// two-variable rule, and the access paths of the paper's Figures 2/3).
constexpr std::array<Position, 3> kConstantPriority = {
    Position::kObject, Position::kSubject, Position::kPredicate};

}  // namespace

OrderedRelationChoice AssignOrderedRelation(const TriplePattern& tp,
                                            VarId join_var) {
  std::vector<Position> order;
  order.reserve(3);
  // 1. Constants, most selective position first.
  for (Position pos : kConstantPriority) {
    if (tp.at(pos).is_constant()) order.push_back(pos);
  }
  // 2. The joining variable (first occurrence), immediately after the
  //    constants, so merge joins see their input sorted on it.
  if (join_var != sparql::kInvalidVarId) {
    for (Position pos : rdf::kAllPositions) {
      const sparql::PatternTerm& t = tp.at(pos);
      if (t.is_variable() && t.var == join_var) {
        order.push_back(pos);
        break;
      }
    }
  }
  // 3. Remaining variable positions in syntactic order.
  for (Position pos : rdf::kAllPositions) {
    if (std::find(order.begin(), order.end(), pos) == order.end()) {
      order.push_back(pos);
    }
  }
  storage::Ordering ordering =
      storage::OrderingFromPositions(order[0], order[1], order[2]);
  // The scan is sorted on the first variable position of the priority.
  VarId sort_var = sparql::kInvalidVarId;
  std::size_t num_constants = static_cast<std::size_t>(tp.num_constants());
  if (num_constants < 3) {
    const sparql::PatternTerm& t = tp.at(order[num_constants]);
    sort_var = t.var;
  }
  return OrderedRelationChoice{ordering, sort_var};
}

namespace {

/// Variables present anywhere in a plan subtree's output.
void CollectVars(const Query& query, const PlanNode* node,
                 std::vector<VarId>* out) {
  if (node->kind == PlanNode::Kind::kScan) {
    for (VarId v : query.patterns[node->pattern_index].Variables()) {
      if (std::find(out->begin(), out->end(), v) == out->end()) {
        out->push_back(v);
      }
    }
  }
  if (node->kind == PlanNode::Kind::kLeapfrog) {
    for (VarId v : node->leapfrog_order) {
      if (std::find(out->begin(), out->end(), v) == out->end()) {
        out->push_back(v);
      }
    }
  }
  for (const auto& child : node->children) {
    CollectVars(query, child.get(), out);
  }
}

/// Runs Algorithm 1 + Algorithm 2 over one basic graph pattern (a subset
/// of the working query's pattern table) and builds the join tree:
/// per-variable merge-join blocks connected by hash joins.
class SubsetPlanner {
 public:
  SubsetPlanner(const Query& query, const HspOptions& options,
                SplitMix64* rng)
      : query_(query), options_(options), rng_(rng) {}

  /// Chosen merge-join variables are appended to `chosen_out` in round
  /// order (for PlannedQuery::chosen_variables).
  std::unique_ptr<PlanNode> Build(std::vector<std::size_t> subset,
                                  std::vector<VarId>* chosen_out) {
    // ---- Algorithm 1, phase 1: choose merge-join variables. ----
    std::vector<std::size_t> remaining = subset;
    std::vector<CandidateSet> chosen;  // C, in selection order

    while (!remaining.empty()) {
      VariableGraph graph = VariableGraph::Build(query_, remaining);
      if (graph.num_nodes() == 0) break;  // leftovers: hash/cartesian

      MwisResult mwis = AllMaximumWeightIndependentSets(graph);
      std::vector<CandidateSet> candidates;
      candidates.reserve(mwis.sets.size());
      for (const auto& node_set : mwis.sets) {
        CandidateSet cs;
        for (std::size_t node_idx : node_set) {
          cs.vars.push_back(graph.node(node_idx).var);
        }
        std::sort(cs.vars.begin(), cs.vars.end());
        for (std::size_t idx : remaining) {
          for (VarId v : cs.vars) {
            if (query_.patterns[idx].Mentions(v)) {
              cs.covered.push_back(idx);
              break;
            }
          }
        }
        candidates.push_back(std::move(cs));
      }

      if (candidates.size() > 1 && options_.use_h3) {
        candidates =
            ApplyH3(query_, std::move(candidates), options_.tie_break);
      }
      if (candidates.size() > 1 && options_.use_h4) {
        candidates =
            ApplyH4(query_, std::move(candidates), options_.tie_break);
      }
      if (candidates.size() > 1 && options_.use_h2) {
        candidates =
            ApplyH2(query_, std::move(candidates), options_.tie_break);
      }
      if (candidates.size() > 1 && options_.use_h5) {
        candidates =
            ApplyH5(query_, std::move(candidates), options_.tie_break);
      }
      std::size_t pick =
          candidates.size() == 1
              ? 0
              : static_cast<std::size_t>(rng_->NextBounded(candidates.size()));
      CandidateSet selected = std::move(candidates[pick]);

      std::vector<std::size_t> next;
      for (std::size_t idx : remaining) {
        if (std::find(selected.covered.begin(), selected.covered.end(),
                      idx) == selected.covered.end()) {
          next.push_back(idx);
        }
      }
      remaining = std::move(next);
      for (VarId v : selected.vars) chosen_out->push_back(v);
      chosen.push_back(std::move(selected));
    }

    // ---- Algorithm 1, phase 2: assign ordered relations (Algorithm 2).
    struct Assignment {
      storage::Ordering ordering = storage::Ordering::kSpo;
      VarId var = sparql::kInvalidVarId;
      bool assigned = false;
    };
    std::vector<Assignment> mapping(query_.patterns.size());
    for (const CandidateSet& set : chosen) {
      for (VarId c : set.vars) {
        for (std::size_t idx : subset) {
          if (mapping[idx].assigned) continue;
          if (!query_.patterns[idx].Mentions(c)) continue;
          OrderedRelationChoice choice =
              AssignOrderedRelation(query_.patterns[idx], c);
          mapping[idx] = Assignment{choice.ordering, c, true};
        }
      }
    }
    for (std::size_t idx : subset) {
      if (mapping[idx].assigned) continue;
      OrderedRelationChoice choice =
          AssignOrderedRelation(query_.patterns[idx], sparql::kInvalidVarId);
      mapping[idx] = Assignment{choice.ordering, sparql::kInvalidVarId, true};
      mapping[idx].var = sparql::kInvalidVarId;
    }

    // ---- Plan construction: merge blocks connected by hash joins. ----
    ScanOrderLess scan_less{&query_, options_.h1_type_exception};
    auto make_scan = [&](std::size_t idx) {
      VarId sort_var =
          AssignOrderedRelation(query_.patterns[idx], mapping[idx].var)
              .sort_var;
      return PlanNode::Scan(idx, mapping[idx].ordering, sort_var);
    };

    std::vector<std::unique_ptr<PlanNode>> parts;
    for (const CandidateSet& set : chosen) {
      for (VarId c : set.vars) {
        std::vector<std::size_t> block;
        for (std::size_t idx : subset) {
          if (mapping[idx].var == c) block.push_back(idx);
        }
        if (block.empty()) continue;
        std::sort(block.begin(), block.end(), scan_less);
        std::unique_ptr<PlanNode> chain = make_scan(block[0]);
        for (std::size_t i = 1; i < block.size(); ++i) {
          chain = PlanNode::Join(JoinAlgo::kMerge, c, std::move(chain),
                                 make_scan(block[i]));
        }
        parts.push_back(std::move(chain));
      }
    }
    std::vector<std::size_t> leftovers;
    for (std::size_t idx : subset) {
      if (mapping[idx].var == sparql::kInvalidVarId) leftovers.push_back(idx);
    }
    std::sort(leftovers.begin(), leftovers.end(), scan_less);
    for (std::size_t idx : leftovers) parts.push_back(make_scan(idx));

    // Connect parts with hash joins, preferring connected joins; a
    // cartesian product only when the graph pattern is disconnected.
    std::unique_ptr<PlanNode> plan = std::move(parts.front());
    std::vector<std::unique_ptr<PlanNode>> pending;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      pending.push_back(std::move(parts[i]));
    }
    while (!pending.empty()) {
      std::vector<VarId> plan_vars;
      CollectVars(query_, plan.get(), &plan_vars);
      bool attached = false;
      for (std::size_t i = 0; i < pending.size(); ++i) {
        std::vector<VarId> part_vars;
        CollectVars(query_, pending[i].get(), &part_vars);
        VarId shared = sparql::kInvalidVarId;
        for (VarId v : part_vars) {
          if (std::find(plan_vars.begin(), plan_vars.end(), v) !=
              plan_vars.end()) {
            shared = v;
            break;
          }
        }
        if (shared == sparql::kInvalidVarId) continue;
        plan = PlanNode::Join(JoinAlgo::kHash, shared, std::move(plan),
                              std::move(pending[i]));
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
        attached = true;
        break;
      }
      if (!attached) {
        plan = PlanNode::Join(JoinAlgo::kHash, sparql::kInvalidVarId,
                              std::move(plan), std::move(pending.front()));
        pending.erase(pending.begin());
      }
    }
    return plan;
  }

 private:
  const Query& query_;
  const HspOptions& options_;
  SplitMix64* rng_;
};

}  // namespace

std::string HspPlanner::OptionsFingerprint() const {
  std::string out = "seed=" + std::to_string(options_.seed);
  out += options_.rewrite_filters ? ";rw" : ";norw";
  out += options_.h1_type_exception ? ";h1t" : ";noh1t";
  out += options_.tie_break.merge_prefers_bulky ? ";bulky" : ";sel";
  out += options_.use_h3 ? ";h3" : "";
  out += options_.use_h4 ? ";h4" : "";
  out += options_.use_h2 ? ";h2" : "";
  out += options_.use_h5 ? ";h5" : "";
  out += options_.use_leapfrog ? ";lf" : "";
  return out;
}

Result<PlannedQuery> HspPlanner::Plan(const Query& input) const {
  if (input.patterns.empty()) {
    return Status::InvalidArgument("query has no triple patterns");
  }
  PlannedQuery out;
  out.query = input;
  if (options_.rewrite_filters) {
    out.rewrite_report = sparql::RewriteFilters(&out.query);
  }
  Query& query = out.query;
  SplitMix64 rng(options_.seed);

  // Flatten OPTIONAL groups and UNION branches into the working pattern
  // table: scan nodes index this flat vector, keeping the executor
  // oblivious to the graph-pattern extensions.
  std::vector<std::size_t> required(query.patterns.size());
  std::iota(required.begin(), required.end(), 0);
  std::vector<std::vector<std::size_t>> union_subsets;
  for (auto& branch : query.union_branches) {
    std::vector<std::size_t> subset;
    for (TriplePattern& tp : branch) {
      subset.push_back(query.patterns.size());
      query.patterns.push_back(std::move(tp));
    }
    union_subsets.push_back(std::move(subset));
  }
  query.union_branches.clear();
  std::vector<std::vector<std::size_t>> optional_subsets;
  for (auto& group : query.optional_groups) {
    std::vector<std::size_t> subset;
    for (TriplePattern& tp : group) {
      subset.push_back(query.patterns.size());
      query.patterns.push_back(std::move(tp));
    }
    optional_subsets.push_back(std::move(subset));
  }
  query.optional_groups.clear();

  SubsetPlanner subset_planner(query, options_, &rng);
  std::unique_ptr<PlanNode> plan;
  // Leapfrog routing: a single conjunctive BGP whose variable graph is
  // cyclic or star-shaped is evaluated as one worst-case-optimal n-ary
  // intersection; chains and graph-pattern extensions keep Algorithm 1's
  // binary plans. Merge-join variable selection never runs, so
  // chosen_variables stays empty for such plans.
  if (options_.use_leapfrog && union_subsets.empty() &&
      optional_subsets.empty() && LeapfrogEligible(query, required) &&
      LeapfrogFavorable(query, required)) {
    plan = PlanNode::Leapfrog(LeapfrogEliminationOrder(query, required),
                              required);
  } else if (union_subsets.empty()) {
    plan = subset_planner.Build(required, &out.chosen_variables);
  } else {
    // Each branch is planned independently; results are bag-unioned.
    std::vector<std::unique_ptr<PlanNode>> branches;
    branches.push_back(
        subset_planner.Build(required, &out.chosen_variables));
    for (const auto& subset : union_subsets) {
      branches.push_back(subset_planner.Build(subset, &out.chosen_variables));
    }
    plan = PlanNode::Union(std::move(branches));
  }

  // OPTIONAL groups: plan each group as its own basic graph pattern and
  // attach it with a left outer hash join on a shared variable.
  for (const auto& subset : optional_subsets) {
    std::unique_ptr<PlanNode> group_plan =
        subset_planner.Build(subset, &out.chosen_variables);
    std::vector<VarId> plan_vars;
    CollectVars(query, plan.get(), &plan_vars);
    std::vector<VarId> group_vars;
    CollectVars(query, group_plan.get(), &group_vars);
    VarId shared = sparql::kInvalidVarId;
    for (VarId v : group_vars) {
      if (std::find(plan_vars.begin(), plan_vars.end(), v) !=
          plan_vars.end()) {
        shared = v;
        break;
      }
    }
    plan = PlanNode::LeftOuterJoin(shared, std::move(plan),
                                   std::move(group_plan));
  }

  // ---- Residual filters and projection. ----
  for (const sparql::Filter& f : query.filters) {
    plan = PlanNode::Filter(f, std::move(plan));
  }
  std::vector<VarId> projection;
  if (query.select_all) {
    CollectVars(query, plan.get(), &projection);
  } else {
    projection = query.projection;
  }
  plan = PlanNode::Project(std::move(projection), query.distinct,
                           std::move(plan));
  plan = AttachSolutionModifiers(query, std::move(plan));

  out.plan = LogicalPlan(std::move(plan));
#ifndef NDEBUG
  // Debug builds statically verify every emitted plan against the full
  // HSP rule pack; release builds rely on the PlanOrLint test helper and
  // ExecOptions::lint_plans (see src/lint/plan_lint.h).
  if (lint::LintReport report =
          lint::LintHspPlan(out, options_.h1_type_exception);
      !report.clean()) {
    std::cerr << "HspPlanner emitted a plan failing PlanLint:\n"
              << report.ToString();
    assert(false && "HspPlanner emitted a plan failing PlanLint");
  }
#endif
  return out;
}

}  // namespace hsparql::hsp
