// Leapfrog triejoin routing: when a basic graph pattern should bypass the
// binary merge/hash join machinery for one worst-case-optimal n-ary
// intersection, and in which variable-elimination order.
//
// Binary join trees materialise intermediate results; on cyclic variable
// graphs (triangles, k-cliques) and dense stars those intermediates can be
// asymptotically larger than the final answer. The variable graph
// (Definition 4) already exposes exactly the structure needed to spot
// those shapes, so routing stays statistics-free, in HSP's spirit.
#ifndef HSPARQL_HSP_LEAPFROG_H_
#define HSPARQL_HSP_LEAPFROG_H_

#include <span>
#include <vector>

#include "sparql/ast.h"

namespace hsparql::hsp {

/// True when the patterns can be evaluated by one leapfrog triejoin: at
/// least two patterns, each with at least one variable and no variable
/// repeated within a pattern (a repeated variable has no trie access path
/// among the six orderings; see lint rule PL503).
bool LeapfrogEligible(const sparql::Query& query,
                      std::span<const std::size_t> patterns);

/// True when the shape favours a worst-case-optimal join: the weight>=2
/// variable graph of the patterns contains a cycle, or some variable joins
/// three or more patterns (a star hub). Chains and single joins stay with
/// the paper's binary plans.
bool LeapfrogFavorable(const sparql::Query& query,
                       std::span<const std::size_t> patterns);

/// The variable-elimination order: every distinct variable of the
/// patterns, greedily ordered by descending join weight with a
/// connectivity constraint — start at the heaviest variable (ties: lowest
/// VarId), repeatedly append the heaviest variable co-occurring with one
/// already chosen, and fall back to the heaviest remaining variable when
/// the graph is disconnected. Deterministic for a given query.
std::vector<sparql::VarId> LeapfrogEliminationOrder(
    const sparql::Query& query, std::span<const std::size_t> patterns);

}  // namespace hsparql::hsp

#endif  // HSPARQL_HSP_LEAPFROG_H_
