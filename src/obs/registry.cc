#include "obs/registry.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hsparql::obs {

namespace {

/// Formats a double the way both expositions want it: integral values
/// without a trailing ".0" ("5" not "5.000000"), everything else with
/// enough digits to round-trip the bucket bounds in use.
std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os << v;  // default precision (6 significant digits) round-trips the
            // 1-2.5-5 ladder and keeps sums readable
  return os.str();
}

/// JSON string escaping for metric names/help (conservative: control
/// characters, quote and backslash).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prometheus metric-name sanitation: the exposition grammar allows
/// [a-zA-Z_:][a-zA-Z0-9_:]*, so the registry's dotted names map '.' (and
/// any other illegal byte) to '_'.
std::string PrometheusName(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(new std::atomic<std::uint64_t>[bounds.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

Registry::Entry* Registry::FindLocked(std::string_view name) {
  for (const auto& e : entries_) {
    if (e->name == name) return e.get();
  }
  return nullptr;
}

Counter* Registry::GetCounter(std::string_view name, std::string_view help) {
  MutexLock lock(&mu_);
  if (Entry* e = FindLocked(name)) {
    return e->type == MetricValue::Type::kCounter ? e->counter.get()
                                                  : nullptr;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->type = MetricValue::Type::kCounter;
  entry->counter = std::make_unique<Counter>();
  Counter* out = entry->counter.get();
  entries_.push_back(std::move(entry));
  return out;
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view help) {
  MutexLock lock(&mu_);
  if (Entry* e = FindLocked(name)) {
    return e->type == MetricValue::Type::kGauge ? e->gauge.get() : nullptr;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->type = MetricValue::Type::kGauge;
  entry->gauge = std::make_unique<Gauge>();
  Gauge* out = entry->gauge.get();
  entries_.push_back(std::move(entry));
  return out;
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  std::string_view help,
                                  std::span<const double> bounds) {
  MutexLock lock(&mu_);
  if (Entry* e = FindLocked(name)) {
    return e->type == MetricValue::Type::kHistogram ? e->histogram.get()
                                                    : nullptr;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->type = MetricValue::Type::kHistogram;
  entry->histogram = std::make_unique<Histogram>(bounds);
  Histogram* out = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return out;
}

void Registry::AddCallbackCounter(std::string_view name,
                                  std::string_view help,
                                  std::function<std::uint64_t()> fn) {
  MutexLock lock(&mu_);
  if (FindLocked(name) != nullptr) return;  // first registration wins
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->type = MetricValue::Type::kCounter;
  entry->counter_fn = std::move(fn);
  entries_.push_back(std::move(entry));
}

void Registry::AddCallbackGauge(std::string_view name, std::string_view help,
                                std::function<std::int64_t()> fn) {
  MutexLock lock(&mu_);
  if (FindLocked(name) != nullptr) return;
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->type = MetricValue::Type::kGauge;
  entry->gauge_fn = std::move(fn);
  entries_.push_back(std::move(entry));
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(&mu_);
  snap.metrics.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricValue v;
    v.name = e->name;
    v.help = e->help;
    v.type = e->type;
    switch (e->type) {
      case MetricValue::Type::kCounter:
        v.counter = e->counter_fn ? e->counter_fn() : e->counter->value();
        break;
      case MetricValue::Type::kGauge:
        v.gauge = e->gauge_fn ? e->gauge_fn() : e->gauge->value();
        break;
      case MetricValue::Type::kHistogram:
        v.histogram = e->histogram->Snap();
        break;
    }
    snap.metrics.push_back(std::move(v));
  }
  return snap;
}

const MetricValue* MetricsSnapshot::Find(std::string_view name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::CounterValue(std::string_view name,
                                            std::uint64_t def) const {
  const MetricValue* m = Find(name);
  return m != nullptr && m->type == MetricValue::Type::kCounter ? m->counter
                                                                : def;
}

std::int64_t MetricsSnapshot::GaugeValue(std::string_view name,
                                         std::int64_t def) const {
  const MetricValue* m = Find(name);
  return m != nullptr && m->type == MetricValue::Type::kGauge ? m->gauge
                                                              : def;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const MetricValue& m : metrics) {
    if (m.type != MetricValue::Type::kCounter) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << JsonEscape(m.name) << "\":" << m.counter;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const MetricValue& m : metrics) {
    if (m.type != MetricValue::Type::kGauge) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << JsonEscape(m.name) << "\":" << m.gauge;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const MetricValue& m : metrics) {
    if (m.type != MetricValue::Type::kHistogram) continue;
    if (!first) os << ',';
    first = false;
    const Histogram::Snapshot& h = m.histogram;
    os << '"' << JsonEscape(m.name) << "\":{\"count\":" << h.count
       << ",\"sum\":" << FormatDouble(h.sum) << ",\"buckets\":[";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      if (i > 0) os << ',';
      os << "[\""
         << (i < h.bounds.size() ? FormatDouble(h.bounds[i]) : "+Inf")
         << "\"," << cumulative << ']';
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

namespace {

/// Escapes HELP text per the exposition format: backslash and line feed
/// only (double quotes are escaped only inside label values).
std::string PrometheusHelp(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheus() const {
  std::ostringstream os;
  for (const MetricValue& m : metrics) {
    const std::string name = PrometheusName(m.name);
    if (!m.help.empty()) {
      os << "# HELP " << name << ' ' << PrometheusHelp(m.help) << '\n';
    }
    switch (m.type) {
      case MetricValue::Type::kCounter:
        os << "# TYPE " << name << " counter\n"
           << name << ' ' << m.counter << '\n';
        break;
      case MetricValue::Type::kGauge:
        os << "# TYPE " << name << " gauge\n"
           << name << ' ' << m.gauge << '\n';
        break;
      case MetricValue::Type::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        const Histogram::Snapshot& h = m.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
          cumulative += h.counts[i];
          os << name << "_bucket{le=\""
             << (i < h.bounds.size() ? FormatDouble(h.bounds[i]) : "+Inf")
             << "\"} " << cumulative << '\n';
        }
        os << name << "_sum " << FormatDouble(h.sum) << '\n'
           << name << "_count " << h.count << '\n';
        break;
      }
    }
  }
  return os.str();
}

}  // namespace hsparql::obs
