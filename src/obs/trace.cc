#include "obs/trace.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/string_util.h"

namespace hsparql::obs {

namespace {

const OperatorTrace* FindIn(const OperatorTrace& node, int node_id) {
  if (node.node_id == node_id) return &node;
  for (const OperatorTrace& child : node.children) {
    if (const OperatorTrace* hit = FindIn(child, node_id)) return hit;
  }
  return nullptr;
}

void Collect(const OperatorTrace& node,
             std::vector<const OperatorTrace*>* out) {
  out->push_back(&node);
  for (const OperatorTrace& child : node.children) Collect(child, out);
}

void Render(const OperatorTrace& node, int depth, std::ostream& os) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << node.label << "  rows=" << FormatCount(node.output_rows);
  if (node.has_estimate()) {
    os << " est=" << FormatCount(static_cast<std::uint64_t>(
              node.estimated_rows + 0.5));
    // Ratio convention: estimate / actual, so >1 means the statistics
    // over-estimated this operator. An actual of 0 prints "inf"-free as
    // just the estimate.
    if (node.output_rows > 0) {
      os << " (" << std::fixed << std::setprecision(2)
         << node.estimated_rows / static_cast<double>(node.output_rows)
         << "x)" << std::defaultfloat;
    }
  }
  os << " in=" << FormatCount(node.input_rows) << " self=" << std::fixed
     << std::setprecision(3) << node.self_millis << "ms"
     << std::defaultfloat;
  if (node.threads > 1) os << " threads=" << node.threads;
  if (node.probes > 0) os << " probes=" << node.probes;
  os << '\n';
  for (const OperatorTrace& child : node.children) {
    Render(child, depth + 1, os);
  }
}

}  // namespace

const OperatorTrace* QueryTrace::Find(int node_id) const {
  return FindIn(root, node_id);
}

std::vector<const OperatorTrace*> QueryTrace::TopBySelfTime(
    std::size_t n) const {
  std::vector<const OperatorTrace*> all;
  Collect(root, &all);
  std::sort(all.begin(), all.end(),
            [](const OperatorTrace* a, const OperatorTrace* b) {
              if (a->self_millis != b->self_millis) {
                return a->self_millis > b->self_millis;
              }
              return a->node_id < b->node_id;
            });
  if (all.size() > n) all.resize(n);
  return all;
}

std::string QueryTrace::ToString() const {
  std::ostringstream os;
  Render(root, 0, os);
  return os.str();
}

namespace {

void Annotate(OperatorTrace* node, std::span<const std::uint64_t> estimates) {
  if (node->node_id >= 0 &&
      static_cast<std::size_t>(node->node_id) < estimates.size()) {
    node->estimated_rows = static_cast<double>(
        estimates[static_cast<std::size_t>(node->node_id)]);
  }
  for (OperatorTrace& child : node->children) Annotate(&child, estimates);
}

}  // namespace

void AnnotateEstimates(QueryTrace* trace,
                       std::span<const std::uint64_t> estimates) {
  if (trace == nullptr) return;
  Annotate(&trace->root, estimates);
}

}  // namespace hsparql::obs
