// obs::QueryTrace — per-operator runtime actuals for one query execution,
// as a tree mirroring the plan shape (EXPLAIN ANALYZE's data model).
//
// The executor fills one OperatorTrace per plan node when
// exec::ExecOptions::collect_trace is set: wall time of the operator
// alone, input/output row counts, morsel fan-out, and — for scans — the
// number of binary-search descents performed (prefix equal_range lookups
// plus per-morsel IteratorAt seeks). The engine then annotates each node
// with the statistics-based cardinality *estimate* for the same node, so
// the rendering can print estimated-vs-actual ratios next to every
// operator — exactly the feedback signal the HSP heuristics (H1–H5)
// replace with syntax, and the starting point of runtime-feedback systems
// like ROSIE (see PAPERS.md).
#ifndef HSPARQL_OBS_TRACE_H_
#define HSPARQL_OBS_TRACE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hsparql::obs {

/// Actuals for one plan operator. `children` mirrors the plan node's
/// children in order.
struct OperatorTrace {
  /// Plan-node id (LogicalPlan::AssignIds); -1 for unidentified nodes.
  int node_id = -1;
  /// The executor's operator label, e.g. "mergejoin ?x", "select(pos) tp2".
  std::string label;
  /// Rows the operator consumed: the scanned range size for scans, the
  /// sum of both input tables for joins, the child's rows otherwise.
  std::uint64_t input_rows = 0;
  /// Rows the operator emitted (equals the executor's actual table size).
  std::uint64_t output_rows = 0;
  /// Index-seek count: equal_range lookups and merged-rank seeks for
  /// scans, galloping cursor repositionings for leapfrog joins.
  std::uint64_t probes = 0;
  /// Wall time of this operator alone, excluding its children.
  double self_millis = 0.0;
  /// Morsels/partitions processed concurrently (1 = serial).
  int threads = 1;
  /// Statistics-based estimate for this operator's output cardinality;
  /// negative when no estimate was attached (e.g. no Statistics around).
  double estimated_rows = -1.0;

  std::vector<OperatorTrace> children;

  bool has_estimate() const { return estimated_rows >= 0.0; }
};

/// The whole execution: one OperatorTrace tree plus totals.
struct QueryTrace {
  OperatorTrace root;
  /// End-to-end executor wall time (ExecResult::total_millis).
  double total_millis = 0.0;

  /// Depth-first lookup by plan-node id; null when absent.
  const OperatorTrace* Find(int node_id) const;

  /// The n operators with the largest self time, descending (ties broken
  /// by node id for determinism) — the slow-query log's "top operators".
  std::vector<const OperatorTrace*> TopBySelfTime(std::size_t n) const;

  /// Annotated plan tree: every operator with its actual rows, input
  /// rows, self time, fan-out, probes and (when attached) the
  /// estimated-vs-actual ratio. The layout matches
  /// LogicalPlan::ToString's indentation so the two renderings diff
  /// cleanly.
  std::string ToString() const;
};

/// Attaches estimated cardinalities to a trace: `estimates` is indexed by
/// plan-node id (cdp::CardinalityEstimator::EstimatePlanCardinalities's
/// output shape). Nodes whose id is out of range keep no estimate.
void AnnotateEstimates(QueryTrace* trace,
                       std::span<const std::uint64_t> estimates);

}  // namespace hsparql::obs

#endif  // HSPARQL_OBS_TRACE_H_
