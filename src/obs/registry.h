// obs::Registry — engine-wide metrics: lock-cheap counters, gauges and
// fixed-bucket latency histograms, snapshot-able to JSON and to the
// Prometheus text exposition format.
//
// Design constraints (DESIGN.md §4g):
//  * The write path is wait-free: Counter::Add and Gauge::Set are one
//    relaxed atomic op, Histogram::Observe is a branchless bucket index
//    plus two relaxed atomic adds. No metric update ever takes a lock, so
//    instrumentation can sit inside the executor's hot loops.
//  * Metrics register once (get-or-create by name under a mutex) and the
//    returned pointers stay valid for the registry's lifetime, so steady-
//    state code holds raw pointers and never touches the name table.
//  * Values owned elsewhere (LRU-cache counters guarded by their own
//    mutex, thread-pool queue depths) are exported through callback
//    metrics evaluated at Snapshot() time — the registry never duplicates
//    a counter that already has a consistency story of its own.
//
// Snapshot() copies every value in one pass under the registration mutex;
// the copy is what serialises to JSON / Prometheus, so an export is always
// internally consistent with itself (per metric; concurrent writers may
// land between two metric reads, as in every metrics system of this shape).
#ifndef HSPARQL_OBS_REGISTRY_H_
#define HSPARQL_OBS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/timer.h"

namespace hsparql::obs {

/// Monotonically increasing event count. Add() is one relaxed fetch_add.
class Counter {
 public:
  void Add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed level (active queries, queue depth, generation).
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Sub(std::int64_t delta = 1) {
    value_.fetch_sub(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Increments a gauge for the current scope (e.g. active query count).
class ScopedGauge {
 public:
  explicit ScopedGauge(Gauge* gauge) : gauge_(gauge) {
    if (gauge_ != nullptr) gauge_->Add();
  }
  ~ScopedGauge() {
    if (gauge_ != nullptr) gauge_->Sub();
  }
  ScopedGauge(const ScopedGauge&) = delete;
  ScopedGauge& operator=(const ScopedGauge&) = delete;

 private:
  Gauge* gauge_;
};

/// Default latency bucket upper bounds in milliseconds: 50µs to 10s, a
/// 1-2.5-5 decade ladder (everything above the last bound lands in the
/// implicit +Inf bucket).
inline constexpr double kLatencyBucketsMillis[] = {
    0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
    1000, 2500, 5000, 10000};

/// Fixed-bucket histogram. Observe() performs a linear scan over the
/// (small, cache-resident) bound array plus two relaxed atomic adds; the
/// per-bucket counts are plain (non-cumulative) and only converted to
/// Prometheus's cumulative convention at snapshot time.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void Observe(double value);

  struct Snapshot {
    /// Finite upper bounds; counts has one extra trailing +Inf bucket.
    std::vector<double> bounds;
    /// Non-cumulative per-bucket counts, size bounds.size() + 1.
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot Snap() const;

 private:
  std::vector<double> bounds_;
  /// bounds_.size() + 1 buckets; the last is +Inf.
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One exported value in a snapshot.
struct MetricValue {
  enum class Type : std::uint8_t { kCounter, kGauge, kHistogram };
  std::string name;
  std::string help;
  Type type = Type::kCounter;
  std::uint64_t counter = 0;
  std::int64_t gauge = 0;
  Histogram::Snapshot histogram;
};

/// A consistent copy of every registered metric, in registration order.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  /// Lookup helpers for tests and gates; null when absent.
  const MetricValue* Find(std::string_view name) const;
  /// Counter/gauge value by name; `def` when absent or of another type.
  std::uint64_t CounterValue(std::string_view name,
                             std::uint64_t def = 0) const;
  std::int64_t GaugeValue(std::string_view name, std::int64_t def = 0) const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}} — histogram
  /// buckets are emitted cumulatively as [upper_bound, count] pairs with
  /// the +Inf bucket last, mirroring the Prometheus exposition.
  std::string ToJson() const;

  /// Prometheus text exposition format v0.0.4: HELP/TYPE headers,
  /// cumulative _bucket{le=...} series plus _sum and _count. Metric names
  /// have '.' rewritten to '_' to fit the Prometheus grammar.
  std::string ToPrometheus() const;
};

/// The registry. Thread-safe; see the file comment for the model.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create by name. Help text is taken from the first
  /// registration; re-registering an existing name with a different
  /// metric type returns nullptr (a programming error surfaced softly so
  /// optional instrumentation can never crash a serving path).
  Counter* GetCounter(std::string_view name, std::string_view help = {});
  Gauge* GetGauge(std::string_view name, std::string_view help = {});
  Histogram* GetHistogram(
      std::string_view name, std::string_view help = {},
      std::span<const double> bounds = kLatencyBucketsMillis);

  /// Callback metrics: the function is evaluated once per Snapshot() call.
  /// For counters the callback must be monotonic (e.g. LRU-cache hit
  /// counts read under the cache's own mutex).
  void AddCallbackCounter(std::string_view name, std::string_view help,
                          std::function<std::uint64_t()> fn);
  void AddCallbackGauge(std::string_view name, std::string_view help,
                        std::function<std::int64_t()> fn);

  MetricsSnapshot Snapshot() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricValue::Type type = MetricValue::Type::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<std::uint64_t()> counter_fn;
    std::function<std::int64_t()> gauge_fn;
  };

  Entry* FindLocked(std::string_view name) REQUIRES(mu_);

  /// Guards the name table only. Metric *values* are lock-free atomics
  /// inside Counter/Gauge/Histogram (the wait-free write path): they are
  /// deliberately not GUARDED_BY anything — their consistency story is
  /// relaxed monotonic updates, checked by TSan rather than the static
  /// analysis (DESIGN.md §4i capability map).
  mutable Mutex mu_;
  /// unique_ptr entries so metric addresses survive vector growth.
  std::vector<std::unique_ptr<Entry>> entries_ GUARDED_BY(mu_);
};

/// RAII stage timer: observes the elapsed milliseconds of its scope into
/// a histogram and/or accumulates them into a double. Either target may
/// be null. This is the one ScopedTimer the codebase uses (DESIGN.md §4g);
/// it reads the same common::Timer clock as every hand-held measurement.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram, double* accumulate_millis = nullptr)
      : histogram_(histogram), accumulate_(accumulate_millis) {}
  ~ScopedTimer() {
    const double ms = timer_.ElapsedMillis();
    if (histogram_ != nullptr) histogram_->Observe(ms);
    if (accumulate_ != nullptr) *accumulate_ += ms;
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedMillis() const { return timer_.ElapsedMillis(); }

 private:
  Timer timer_;
  Histogram* histogram_;
  double* accumulate_;
};

}  // namespace hsparql::obs

#endif  // HSPARQL_OBS_REGISTRY_H_
