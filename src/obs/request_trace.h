// obs::RequestTrace — end-to-end request telemetry for the serving path
// (DESIGN.md §4l).
//
// Three pieces, deliberately transport-agnostic (the server owns the HTTP
// specifics; benches and tests drive these directly):
//
//  * RequestTrace — one request's span timeline from the first socket byte
//    to the last byte handed to the kernel: named phase spans
//    (parse_http, queue, parse, plan, exec, serialize, flush) each with a
//    start offset and duration, plus the query-level annotations the
//    slow-query log already carries (planner, cache hits, rows, status)
//    and — when execution collected one — the plan-shaped
//    obs::QueryTrace operator tree grafted in as child spans. Keyed by a
//    request id generated at accept, or adopted from an incoming W3C
//    `traceparent` header so distributed traces correlate.
//
//  * FlightRecorder — retains completed traces in two fixed-size rings:
//    `recent` receives every trace (high traffic overwrites it quickly),
//    `notable` receives only slow (>= slow_millis) or errored (HTTP >=
//    400) traces, so the interesting ones survive long after the steady
//    stream has wrapped — the slow/error-biased sampling policy. Ring
//    slots are claimed by a lock-free ticket counter; publication into the
//    claimed slot is a per-slot exclusive move (no global lock is ever
//    taken on the record path, and two writers only touch the same slot
//    after a full ring wrap).
//
//  * AccessLog — a ring of compact per-request entries (every request,
//    every endpoint) behind GET /debug/requests, plus an optional sink:
//    with `log_errors_only` (the default) the sink receives one JSON line
//    per failed request — which is exactly how 408 deadline expiries and
//    499 client-cancellations become visible in server logs, keyed by the
//    same request id as the slow-query log.
#ifndef HSPARQL_OBS_REQUEST_TRACE_H_
#define HSPARQL_OBS_REQUEST_TRACE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/trace.h"

namespace hsparql::obs {

/// Generates a fresh 16-hex-digit request id. Thread-safe; ids are unique
/// within a process and seeded per-process so two servers never collide on
/// id streams.
std::string GenerateRequestId();

/// Parses a W3C trace-context `traceparent` header
/// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>"). On success
/// fills `trace_id` (32 hex) and `parent_id` (16 hex) and returns true;
/// malformed or all-zero ids return false (the caller falls back to
/// GenerateRequestId, per the spec's restart rule).
bool ParseTraceparent(std::string_view header, std::string* trace_id,
                      std::string* parent_id);

/// One named phase of a request, on the request's own clock (offsets are
/// milliseconds since the first byte of the request arrived).
struct RequestSpan {
  std::string name;
  double start_millis = 0.0;
  double millis = 0.0;
};

/// The whole request, completed. Immutable once handed to the recorder.
struct RequestTrace {
  /// 16 hex chars: generated at accept, or the parent-id of an incoming
  /// traceparent header (so the caller's span id threads through logs).
  std::string id;
  /// 32-hex W3C trace-id when the request carried a traceparent header;
  /// empty otherwise.
  std::string trace_id;
  std::string peer;
  std::string method;
  std::string target;
  int http_status = 0;
  std::uint64_t response_bytes = 0;
  /// Wall-clock microseconds since the Unix epoch at request start (the
  /// one non-monotonic stamp, for correlating with external logs).
  std::int64_t unix_micros = 0;
  /// First request byte -> response fully handed to the kernel.
  double total_millis = 0.0;

  std::vector<RequestSpan> spans;

  // Query-level annotations (empty/zero for non-query endpoints).
  std::uint64_t query_hash = 0;
  std::string planner;
  /// "ok" or the snake_case StatusCodeName of the pipeline failure.
  std::string engine_status;
  std::uint64_t rows = 0;
  bool plan_cache_hit = false;
  bool result_cache_hit = false;
  /// Plan-shaped per-operator actuals (null when execution did not
  /// collect a trace, e.g. result-cache hits reuse the cached one).
  std::shared_ptr<const QueryTrace> query_trace;

  void AddSpan(std::string name, double start_millis, double millis);
  /// Duration of the first span with `name`; 0 when absent.
  double SpanMillis(std::string_view name) const;
  /// Sum of all span durations (the self-time total the acceptance
  /// criterion compares against total_millis).
  double SpanTotalMillis() const;

  /// One JSON object (no trailing newline): ids, timings, spans array,
  /// and — when present — the operator tree as nested {op,rows,est,ms}
  /// objects.
  std::string ToJson() const;
};

/// Compact per-request record, materialized from a RequestTrace for
/// /debug/requests snapshots and sink lines.
struct AccessLogEntry {
  std::string id;
  std::string peer;
  std::string method;
  std::string target;
  int status = 0;
  std::uint64_t bytes = 0;
  double total_millis = 0.0;
  std::int64_t unix_micros = 0;

  static AccessLogEntry FromTrace(const RequestTrace& trace);

  std::string ToJsonLine() const;
};

/// Ring of recent requests plus an optional line sink. The ring holds
/// the (immutable, already-built) RequestTrace pointers — recording a
/// request is one shared_ptr store, not a string-field copy — and
/// AccessLogEntry views are materialized only when a snapshot or sink
/// line actually needs one.
class AccessLog {
 public:
  using Sink = std::function<void(std::string_view)>;

  struct Options {
    std::size_t capacity = 256;
    /// Receives one JSON line per recorded request (no newline). Null
    /// disables line output; the ring records regardless.
    Sink sink;
    /// With a sink set: only emit lines for status >= 400 (the 408/499
    /// cancellation visibility satellite) instead of every request.
    bool log_errors_only = true;
  };

  AccessLog();
  explicit AccessLog(Options options);

  void Record(std::shared_ptr<const RequestTrace> trace);

  /// Most recent entries, newest first, at most `limit` (0 = all).
  std::vector<AccessLogEntry> Snapshot(std::size_t limit = 0) const;
  /// {"requests":[...]} — newest first.
  std::string ToJson(std::size_t limit = 0) const;

  std::uint64_t recorded_total() const {
    return recorded_.load(std::memory_order_relaxed);
  }

 private:
  const Options options_;
  std::atomic<std::uint64_t> recorded_{0};
  mutable Mutex mu_;
  /// Circular buffer: request i of the logical sequence lives at i % cap.
  std::vector<std::shared_ptr<const RequestTrace>> ring_ GUARDED_BY(mu_);
  std::uint64_t next_ GUARDED_BY(mu_) = 0;
};

/// The flight recorder: see the file comment for the two-ring policy.
class FlightRecorder {
 public:
  struct Options {
    /// Every completed trace lands here (overwritten oldest-first).
    std::size_t recent_capacity = 256;
    /// Slow/error traces additionally land here and therefore survive
    /// recent-ring wraps.
    std::size_t notable_capacity = 64;
    /// A trace at least this slow is notable even with a 2xx status.
    double slow_millis = 100.0;
  };

  FlightRecorder();
  explicit FlightRecorder(Options options);

  /// Records a completed trace. Wait-free slot claim; never blocks
  /// another writer except after a full ring wrap lands two writers on
  /// one slot.
  void Record(std::shared_ptr<const RequestTrace> trace);

  struct Filter {
    /// Keep traces with total_millis >= min_millis.
    double min_millis = 0.0;
    /// 0 keeps all; 4 keeps 4xx, 5 keeps 5xx, a full code (e.g. 408)
    /// keeps exactly that status.
    int status = 0;
    /// Maximum traces returned (0 = all retained).
    std::size_t limit = 0;
  };

  /// Matching traces, newest first, de-duplicated across the two rings.
  std::vector<std::shared_ptr<const RequestTrace>> Snapshot(
      Filter filter) const;
  std::vector<std::shared_ptr<const RequestTrace>> Snapshot() const;

  /// {"traces":[...],"recorded":N,"notable":M} under `filter`.
  std::string ToJson(Filter filter) const;
  std::string ToJson() const;

  std::uint64_t recorded_total() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  std::uint64_t notable_total() const {
    return notable_recorded_.load(std::memory_order_relaxed);
  }
  double slow_millis() const { return options_.slow_millis; }

 private:
  /// One ring slot. The per-slot mutex serialises the (rare) writer
  /// collision after a wrap and lets readers copy the shared_ptr safely;
  /// slot claim itself is a lock-free ticket fetch_add.
  struct Slot {
    mutable Mutex mu;
    std::shared_ptr<const RequestTrace> trace GUARDED_BY(mu);
    /// Global sequence number of the occupant (for newest-first merge).
    std::uint64_t seq GUARDED_BY(mu) = 0;
  };

  struct Ring {
    explicit Ring(std::size_t capacity) : slots(capacity) {}
    std::vector<Slot> slots;
    std::atomic<std::uint64_t> next{0};

    void Put(std::shared_ptr<const RequestTrace> trace);
    void Collect(
        std::vector<std::pair<std::uint64_t,
                              std::shared_ptr<const RequestTrace>>>* out)
        const;
  };

  const Options options_;
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> notable_recorded_{0};
  Ring recent_;
  Ring notable_;
};

}  // namespace hsparql::obs

#endif  // HSPARQL_OBS_REQUEST_TRACE_H_
