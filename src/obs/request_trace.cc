#include "obs/request_trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <sstream>
#include <utility>

namespace hsparql::obs {

namespace {

/// JSON string escaping shared by the trace/access renderers (same
/// conservative set as the slow-query log).
std::string JsonString(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void AppendMillis(std::ostringstream& os, double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  os << buf;
}

std::string HexU64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

bool IsHex(std::string_view s) {
  for (char c : s) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
                    (c >= 'A' && c <= 'F');
    if (!ok) return false;
  }
  return !s.empty();
}

bool AllZero(std::string_view s) {
  return s.find_first_not_of('0') == std::string_view::npos;
}

/// Process-global id source: a random per-process base (so two servers'
/// id streams never collide) advanced by a relaxed counter, whitened
/// through splitmix64's finalizer so consecutive ids share no prefix.
std::uint64_t NextIdBits() {
  static const std::uint64_t base = [] {
    std::random_device rd;
    std::uint64_t seed = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    seed ^= static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    return seed;
  }();
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL *
                               counter.fetch_add(1, std::memory_order_relaxed);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void RenderOperator(std::ostringstream& os, const OperatorTrace& op) {
  os << "{\"op\":" << JsonString(op.label) << ",\"rows\":" << op.output_rows
     << ",\"in\":" << op.input_rows << ",\"self_ms\":";
  AppendMillis(os, op.self_millis);
  if (op.has_estimate()) {
    os << ",\"est\":";
    AppendMillis(os, op.estimated_rows);
  }
  if (op.threads > 1) os << ",\"threads\":" << op.threads;
  if (!op.children.empty()) {
    os << ",\"children\":[";
    for (std::size_t i = 0; i < op.children.size(); ++i) {
      if (i > 0) os << ',';
      RenderOperator(os, op.children[i]);
    }
    os << ']';
  }
  os << '}';
}

}  // namespace

std::string GenerateRequestId() {
  // The all-zero id is invalid in trace-context; the whitened counter can
  // only produce it once per 2^64 ids, but guard anyway.
  std::uint64_t bits = NextIdBits();
  if (bits == 0) bits = 1;
  return HexU64(bits);
}

bool ParseTraceparent(std::string_view header, std::string* trace_id,
                      std::string* parent_id) {
  // version "00": 2-2-32-16-2 hex fields, dash-separated, 55 chars. Later
  // versions may append fields after the flags; accept a dash there.
  if (header.size() < 55) return false;
  if (header.size() > 55 && header[55] != '-') return false;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') {
    return false;
  }
  const std::string_view version = header.substr(0, 2);
  const std::string_view trace = header.substr(3, 32);
  const std::string_view parent = header.substr(36, 16);
  const std::string_view flags = header.substr(53, 2);
  if (!IsHex(version) || !IsHex(trace) || !IsHex(parent) || !IsHex(flags)) {
    return false;
  }
  if (version == "ff") return false;  // forbidden by the spec
  if (AllZero(trace) || AllZero(parent)) return false;
  trace_id->assign(trace);
  parent_id->assign(parent);
  for (std::string* s : {trace_id, parent_id}) {
    std::transform(s->begin(), s->end(), s->begin(), [](unsigned char c) {
      return static_cast<char>(std::tolower(c));
    });
  }
  return true;
}

void RequestTrace::AddSpan(std::string name, double start_millis,
                           double millis) {
  spans.push_back(RequestSpan{std::move(name), start_millis, millis});
}

double RequestTrace::SpanMillis(std::string_view name) const {
  for (const RequestSpan& span : spans) {
    if (span.name == name) return span.millis;
  }
  return 0.0;
}

double RequestTrace::SpanTotalMillis() const {
  double total = 0.0;
  for (const RequestSpan& span : spans) total += span.millis;
  return total;
}

std::string RequestTrace::ToJson() const {
  std::ostringstream os;
  os << "{\"id\":" << JsonString(id);
  if (!trace_id.empty()) os << ",\"trace_id\":" << JsonString(trace_id);
  os << ",\"peer\":" << JsonString(peer)
     << ",\"method\":" << JsonString(method)
     << ",\"target\":" << JsonString(target) << ",\"status\":" << http_status
     << ",\"bytes\":" << response_bytes
     << ",\"unix_micros\":" << unix_micros << ",\"total_ms\":";
  AppendMillis(os, total_millis);
  os << ",\"spans\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"name\":" << JsonString(spans[i].name) << ",\"start_ms\":";
    AppendMillis(os, spans[i].start_millis);
    os << ",\"ms\":";
    AppendMillis(os, spans[i].millis);
    os << '}';
  }
  os << ']';
  if (!engine_status.empty()) {
    os << ",\"engine_status\":" << JsonString(engine_status)
       << ",\"query_hash\":\"" << HexU64(query_hash) << '"'
       << ",\"planner\":" << JsonString(planner) << ",\"rows\":" << rows
       << ",\"plan_cache_hit\":" << (plan_cache_hit ? "true" : "false")
       << ",\"result_cache_hit\":" << (result_cache_hit ? "true" : "false");
  }
  if (query_trace != nullptr) {
    os << ",\"operators\":";
    RenderOperator(os, query_trace->root);
  }
  os << '}';
  return os.str();
}

AccessLogEntry AccessLogEntry::FromTrace(const RequestTrace& trace) {
  AccessLogEntry entry;
  entry.id = trace.id;
  entry.peer = trace.peer;
  entry.method = trace.method;
  entry.target = trace.target;
  entry.status = trace.http_status;
  entry.bytes = trace.response_bytes;
  entry.total_millis = trace.total_millis;
  entry.unix_micros = trace.unix_micros;
  return entry;
}

std::string AccessLogEntry::ToJsonLine() const {
  std::ostringstream os;
  os << "{\"id\":" << JsonString(id) << ",\"peer\":" << JsonString(peer)
     << ",\"method\":" << JsonString(method)
     << ",\"target\":" << JsonString(target) << ",\"status\":" << status
     << ",\"bytes\":" << bytes << ",\"total_ms\":";
  AppendMillis(os, total_millis);
  os << ",\"unix_micros\":" << unix_micros << '}';
  return os.str();
}

AccessLog::AccessLog() : AccessLog(Options()) {}

AccessLog::AccessLog(Options options) : options_(std::move(options)) {
  MutexLock lock(&mu_);
  ring_.resize(std::max<std::size_t>(1, options_.capacity));
}

void AccessLog::Record(std::shared_ptr<const RequestTrace> trace) {
  if (trace == nullptr) return;
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (options_.sink &&
      (!options_.log_errors_only || trace->http_status >= 400)) {
    options_.sink(AccessLogEntry::FromTrace(*trace).ToJsonLine());
  }
  MutexLock lock(&mu_);
  ring_[next_ % ring_.size()] = std::move(trace);
  ++next_;
}

std::vector<AccessLogEntry> AccessLog::Snapshot(std::size_t limit) const {
  MutexLock lock(&mu_);
  const std::uint64_t have = std::min<std::uint64_t>(next_, ring_.size());
  std::uint64_t want = limit == 0 ? have : std::min<std::uint64_t>(limit, have);
  std::vector<AccessLogEntry> out;
  out.reserve(want);
  for (std::uint64_t i = 0; i < want; ++i) {
    out.push_back(AccessLogEntry::FromTrace(
        *ring_[(next_ - 1 - i) % ring_.size()]));
  }
  return out;
}

std::string AccessLog::ToJson(std::size_t limit) const {
  const std::vector<AccessLogEntry> entries = Snapshot(limit);
  std::string out = "{\"requests\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ',';
    out += entries[i].ToJsonLine();
  }
  out += "],\"recorded\":";
  out += std::to_string(recorded_total());
  out += '}';
  return out;
}

FlightRecorder::FlightRecorder() : FlightRecorder(Options()) {}

FlightRecorder::FlightRecorder(Options options)
    : options_(options),
      recent_(std::max<std::size_t>(1, options.recent_capacity)),
      notable_(std::max<std::size_t>(1, options.notable_capacity)) {}

void FlightRecorder::Ring::Put(std::shared_ptr<const RequestTrace> trace) {
  // Ticket claim is one fetch_add: writers proceed independently unless a
  // full wrap lands two on the same slot, where the slot mutex decides.
  const std::uint64_t ticket = next.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots[ticket % slots.size()];
  MutexLock lock(&slot.mu);
  // A wrapped-around younger writer may have published a later trace into
  // this slot while we waited; never replace newer with older.
  if (slot.trace != nullptr && slot.seq > ticket + 1) return;
  slot.trace = std::move(trace);
  slot.seq = ticket + 1;  // 0 marks an empty slot
}

void FlightRecorder::Ring::Collect(
    std::vector<std::pair<std::uint64_t,
                          std::shared_ptr<const RequestTrace>>>* out) const {
  for (const Slot& slot : slots) {
    MutexLock lock(&slot.mu);
    if (slot.trace != nullptr) out->emplace_back(slot.seq, slot.trace);
  }
}

void FlightRecorder::Record(std::shared_ptr<const RequestTrace> trace) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  const bool notable = trace->http_status >= 400 ||
                       trace->total_millis >= options_.slow_millis;
  if (notable) {
    notable_recorded_.fetch_add(1, std::memory_order_relaxed);
    notable_.Put(trace);
  }
  recent_.Put(std::move(trace));
}

std::vector<std::shared_ptr<const RequestTrace>> FlightRecorder::Snapshot(
    Filter filter) const {
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const RequestTrace>>>
      collected;
  recent_.Collect(&collected);
  notable_.Collect(&collected);
  // Newest first; the two rings use independent tickets, so order across
  // them by wall-clock start (ticket order only within a ring).
  std::sort(collected.begin(), collected.end(),
            [](const auto& a, const auto& b) {
              if (a.second->unix_micros != b.second->unix_micros) {
                return a.second->unix_micros > b.second->unix_micros;
              }
              return a.first > b.first;
            });
  std::vector<std::shared_ptr<const RequestTrace>> out;
  out.reserve(collected.size());
  for (auto& [seq, trace] : collected) {
    if (trace->total_millis < filter.min_millis) continue;
    if (filter.status != 0) {
      if (filter.status < 10) {
        if (trace->http_status / 100 != filter.status) continue;
      } else if (trace->http_status != filter.status) {
        continue;
      }
    }
    // De-dup notable traces that still live in the recent ring.
    bool seen = false;
    for (const auto& kept : out) {
      if (kept.get() == trace.get() ||
          (kept->id == trace->id && kept->unix_micros == trace->unix_micros)) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    out.push_back(std::move(trace));
    if (filter.limit != 0 && out.size() >= filter.limit) break;
  }
  return out;
}

std::vector<std::shared_ptr<const RequestTrace>> FlightRecorder::Snapshot()
    const {
  return Snapshot(Filter());
}

std::string FlightRecorder::ToJson() const { return ToJson(Filter()); }

std::string FlightRecorder::ToJson(Filter filter) const {
  const auto traces = Snapshot(filter);
  std::string out = "{\"traces\":[";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (i > 0) out += ',';
    out += traces[i]->ToJson();
  }
  out += "],\"recorded\":";
  out += std::to_string(recorded_total());
  out += ",\"notable\":";
  out += std::to_string(notable_total());
  out += '}';
  return out;
}

}  // namespace hsparql::obs
