#include "obs/cardinality_memo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace hsparql::obs {

namespace {

std::string JsonString(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void AppendDouble(std::ostringstream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  os << buf;
}

}  // namespace

CardinalityMemo::CardinalityMemo() : CardinalityMemo(Options()) {}

CardinalityMemo::CardinalityMemo(Options options) : options_(options) {}

void CardinalityMemo::Observe(std::uint64_t key, std::string_view label,
                              std::uint64_t actual, double estimated) {
  observed_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (entries_.size() >= options_.max_patterns) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    it = entries_.emplace(key, Entry{}).first;
    it->second.label.assign(label);
  }
  Entry& entry = it->second;
  ++entry.observations;
  const std::size_t ring_size = std::max<std::size_t>(1, options_.ring_size);
  if (entry.ring.size() < ring_size) {
    entry.ring.push_back(Observation{actual, estimated});
  } else {
    entry.ring[entry.next % ring_size] = Observation{actual, estimated};
  }
  ++entry.next;
}

CardinalityMemo::Stats CardinalityMemo::Aggregate(std::uint64_t key,
                                                  const Entry& entry) const {
  Stats stats;
  stats.key = key;
  stats.label = entry.label;
  stats.observations = entry.observations;
  if (!entry.ring.empty()) {
    const std::size_t last =
        (entry.next - 1) % std::max<std::size_t>(1, options_.ring_size);
    stats.last_actual = entry.ring[std::min(last, entry.ring.size() - 1)].actual;
    double sum = 0.0;
    double log_q = 0.0;
    std::size_t with_estimate = 0;
    for (const Observation& obs : entry.ring) {
      sum += static_cast<double>(obs.actual);
      if (obs.estimated >= 0.0) {
        const double a = std::max(1.0, static_cast<double>(obs.actual));
        const double e = std::max(1.0, obs.estimated);
        log_q += std::log(a / e);
        ++with_estimate;
      }
    }
    stats.mean_actual = sum / static_cast<double>(entry.ring.size());
    if (with_estimate > 0) {
      stats.q_error = std::exp(log_q / static_cast<double>(with_estimate));
    }
  }
  return stats;
}

std::optional<CardinalityMemo::Stats> CardinalityMemo::Lookup(
    std::uint64_t key) const {
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return Aggregate(key, it->second);
}

std::vector<CardinalityMemo::Stats> CardinalityMemo::Snapshot() const {
  std::vector<Stats> out;
  {
    MutexLock lock(&mu_);
    out.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      out.push_back(Aggregate(key, entry));
    }
  }
  std::sort(out.begin(), out.end(), [](const Stats& a, const Stats& b) {
    if (a.observations != b.observations) {
      return a.observations > b.observations;
    }
    return a.key < b.key;
  });
  return out;
}

std::string CardinalityMemo::ToJson() const {
  const std::vector<Stats> stats = Snapshot();
  std::ostringstream os;
  os << "{\"patterns\":[";
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const Stats& s = stats[i];
    if (i > 0) os << ',';
    char keybuf[24];
    std::snprintf(keybuf, sizeof keybuf, "%016llx",
                  static_cast<unsigned long long>(s.key));
    os << "{\"key\":\"" << keybuf << "\",\"pattern\":" << JsonString(s.label)
       << ",\"observations\":" << s.observations
       << ",\"last_actual\":" << s.last_actual << ",\"mean_actual\":";
    AppendDouble(os, s.mean_actual);
    if (s.q_error >= 0.0) {
      os << ",\"q_error\":";
      AppendDouble(os, s.q_error);
    }
    os << '}';
  }
  os << "],\"observed\":" << observed_total()
     << ",\"dropped\":" << dropped_total() << '}';
  return os.str();
}

std::size_t CardinalityMemo::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

}  // namespace hsparql::obs
