#include "obs/slow_query_log.h"

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace hsparql::obs {

namespace {

std::string JsonString(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void AppendMillis(std::ostringstream& os, std::string_view key, double ms) {
  os << ',' << JsonString(key) << ':' << std::fixed << std::setprecision(3)
     << ms << std::defaultfloat;
}

}  // namespace

std::uint64_t HashQueryText(std::string_view normalized_text) {
  std::uint64_t h = 14695981039346656037ULL;
  for (char c : normalized_text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string ToJsonLine(const SlowQueryEvent& event) {
  std::ostringstream os;
  os << '{';
  if (!event.request_id.empty()) {
    os << "\"request_id\":" << JsonString(event.request_id) << ',';
  }
  // query_hash as fixed-width hex: log pipelines treat it as an opaque id.
  os << "\"query_hash\":\"" << std::hex << std::setw(16)
     << std::setfill('0') << event.query_hash << std::dec
     << std::setfill(' ') << '"'
     << ",\"planner\":" << JsonString(event.planner)
     << ",\"status\":" << JsonString(event.status);
  AppendMillis(os, "parse_millis", event.parse_millis);
  AppendMillis(os, "plan_millis", event.plan_millis);
  AppendMillis(os, "exec_millis", event.exec_millis);
  AppendMillis(os, "total_millis", event.total_millis);
  os << ",\"plan_cache_hit\":" << (event.plan_cache_hit ? "true" : "false")
     << ",\"result_cache_hit\":"
     << (event.result_cache_hit ? "true" : "false")
     << ",\"rows\":" << event.rows
     << ",\"generation\":" << event.generation << ",\"top_operators\":[";
  for (std::size_t i = 0; i < event.top_operators.size(); ++i) {
    const SlowQueryEvent::Op& op = event.top_operators[i];
    if (i > 0) os << ',';
    os << "{\"op\":" << JsonString(op.label);
    AppendMillis(os, "self_millis", op.self_millis);
    os << ",\"rows\":" << op.rows << '}';
  }
  os << "]}";
  return os.str();
}

SlowQueryLog::SlowQueryLog(double threshold_millis, Sink sink)
    : threshold_millis_(threshold_millis), sink_(std::move(sink)) {}

bool SlowQueryLog::MaybeLog(const SlowQueryEvent& event) {
  if (!enabled() || event.total_millis < threshold_millis_) return false;
  const std::string line = ToJsonLine(event);
  MutexLock lock(&mu_);
  if (sink_) {
    sink_(line);
  } else {
    std::cerr << "slow-query: " << line << "\n";
  }
  return true;
}

}  // namespace hsparql::obs
