// obs::SlowQueryLog — structured (one JSON object per line) log of
// queries whose end-to-end latency crossed a threshold.
//
// The engine builds a SlowQueryEvent for every finished pipeline —
// including ones that failed with a deadline — and hands it to
// MaybeLog(), which serialises and emits it only when total_millis meets
// the threshold. The sink is pluggable: servers point it at their logging
// stack, tests capture lines in a vector; the default writes to stderr.
// Emission is serialised so concurrent queries never interleave bytes of
// two lines.
#ifndef HSPARQL_OBS_SLOW_QUERY_LOG_H_
#define HSPARQL_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hsparql::obs {

/// Everything one slow-query line carries. Field names match the JSON.
struct SlowQueryEvent {
  /// Request id of the HTTP request that issued the query (empty for
  /// embedded callers). Correlates a slow-log line with the access log,
  /// /debug/traces, and the X-Request-Id the client saw — without it two
  /// clients issuing the same text are indistinguishable.
  std::string request_id;
  /// FNV-1a 64 of the *normalized* query text (whitespace/comment
  /// insensitive, literal-preserving) — stable across reformattings of
  /// the same query, and deliberately not the text itself so logs never
  /// leak literals.
  std::uint64_t query_hash = 0;
  /// Planner that produced (or cached) the plan: "hsp", "cdp", ...
  std::string planner;
  /// Terminal status of the pipeline: "ok", or the snake_case
  /// StatusCodeName ("deadline_exceeded", "cancelled", ...) of the
  /// failure.
  std::string status = "ok";
  double parse_millis = 0.0;
  double plan_millis = 0.0;
  double exec_millis = 0.0;
  double total_millis = 0.0;
  bool plan_cache_hit = false;
  bool result_cache_hit = false;
  std::uint64_t rows = 0;
  /// Store generation the query ran against.
  std::uint64_t generation = 0;

  /// Top operators by self time (the engine fills at most 3, from the
  /// executor's per-operator stats — present even when tracing is off).
  struct Op {
    std::string label;
    double self_millis = 0.0;
    std::uint64_t rows = 0;
  };
  std::vector<Op> top_operators;
};

/// One event as a single-line JSON object (no trailing newline).
std::string ToJsonLine(const SlowQueryEvent& event);

class SlowQueryLog {
 public:
  /// Receives one complete JSON line per slow query (no newline).
  using Sink = std::function<void(std::string_view)>;

  /// threshold_millis <= 0 disables the log entirely (MaybeLog becomes a
  /// single comparison). A null sink writes "slow-query: <line>\n" to
  /// stderr.
  explicit SlowQueryLog(double threshold_millis, Sink sink = {});

  bool enabled() const { return threshold_millis_ > 0; }
  double threshold_millis() const { return threshold_millis_; }

  /// Serialises and emits `event` iff enabled and
  /// event.total_millis >= threshold. Returns true when a line was
  /// emitted. Thread-safe.
  bool MaybeLog(const SlowQueryEvent& event);

 private:
  /// Immutable after construction (read lock-free by enabled()).
  double threshold_millis_;
  /// The sink is set once in the constructor; mu_ serialises emission so
  /// concurrent slow queries never interleave bytes of two lines, and the
  /// guard makes "sink runs with the log mutex held" (see
  /// EngineOptions::slow_query_sink) machine-checked, not just a comment.
  Mutex mu_;
  Sink sink_ GUARDED_BY(mu_);
};

/// FNV-1a 64-bit — the query_hash function (shared with tests).
std::uint64_t HashQueryText(std::string_view normalized_text);

}  // namespace hsparql::obs

#endif  // HSPARQL_OBS_SLOW_QUERY_LOG_H_
