// obs::CardinalityMemo — trace-fed per-pattern-shape cardinality
// statistics (DESIGN.md §4l).
//
// Every completed query folds each scan operator's *observed* output
// cardinality (and, when a trace was collected, the planner's estimate)
// into a small ring keyed by an opaque pattern-shape key the engine
// computes from the triple pattern (constants hashed, variables
// abstracted — so `?x <type> <Article>` from two different queries share
// one entry). The memo is the write side of ROADMAP item 1: planners
// consult recent observed cardinalities instead of static heuristics,
// and the statistics improve under real traffic.
//
// Deliberately engine-agnostic: keys and labels are produced by the
// caller, so obs/ keeps zero dependencies on the AST or plan layers.
#ifndef HSPARQL_OBS_CARDINALITY_MEMO_H_
#define HSPARQL_OBS_CARDINALITY_MEMO_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hsparql::obs {

/// Thread-safe bounded map: pattern-shape key -> ring of recent
/// observations. All methods may be called concurrently.
class CardinalityMemo {
 public:
  struct Options {
    /// Maximum distinct pattern shapes retained; once full, unseen keys
    /// are counted (`dropped_total`) but not stored, so a scan-heavy
    /// adversarial workload cannot grow the memo without bound.
    std::size_t max_patterns = 1024;
    /// Observations kept per shape (newest overwrite oldest).
    std::size_t ring_size = 8;
  };

  struct Observation {
    std::uint64_t actual = 0;
    /// Planner estimate captured when a trace rode along; negative when
    /// the query ran without estimate annotation.
    double estimated = -1.0;
  };

  /// Aggregated view of one pattern shape.
  struct Stats {
    std::uint64_t key = 0;
    std::string label;
    std::uint64_t observations = 0;  ///< lifetime count (ring may hold fewer)
    std::uint64_t last_actual = 0;
    double mean_actual = 0.0;  ///< over the retained ring
    /// Geometric mean of actual/estimated over ring entries that carry an
    /// estimate (clamped at >=1 row each side); 1.0 = perfectly estimated,
    /// >1 = underestimated. Negative when no estimates were recorded.
    double q_error = -1.0;
  };

  CardinalityMemo();
  explicit CardinalityMemo(Options options);

  /// Records one observation for `key`. `label` is a human-readable
  /// rendering of the pattern shape, stored on first sight of the key.
  void Observe(std::uint64_t key, std::string_view label,
               std::uint64_t actual, double estimated = -1.0);

  /// Aggregated stats for `key`, if the shape has been seen.
  std::optional<Stats> Lookup(std::uint64_t key) const;

  /// All retained shapes, most-observed first.
  std::vector<Stats> Snapshot() const;

  /// {"patterns":[...],"observed":N,"dropped":M}.
  std::string ToJson() const;

  std::uint64_t observed_total() const {
    return observed_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped_total() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Number of distinct shapes currently retained.
  std::size_t size() const;

 private:
  struct Entry {
    std::string label;
    std::uint64_t observations = 0;
    std::vector<Observation> ring;  // size <= ring_size, position next % size
    std::uint64_t next = 0;
  };

  Stats Aggregate(std::uint64_t key, const Entry& entry) const;

  const Options options_;
  std::atomic<std::uint64_t> observed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  mutable Mutex mu_;
  std::unordered_map<std::uint64_t, Entry> entries_ GUARDED_BY(mu_);
};

}  // namespace hsparql::obs

#endif  // HSPARQL_OBS_CARDINALITY_MEMO_H_
