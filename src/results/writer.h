// results::Writer — the one serialisation surface for SPARQL query
// results, shared by the HTTP server, the example tools and tests.
//
// Three wire formats, each behind the same interface:
//  * kJson — W3C "SPARQL 1.1 Query Results JSON Format"
//    (application/sparql-results+json);
//  * kTsv  — the TSV flavour of the W3C CSV/TSV results format: header of
//    ?var names, N-Triples-style terms, LF line endings;
//  * kCsv  — the CSV flavour: header of bare variable names, *raw lexical
//    values* (no N-Triples quoting — the spec trades type fidelity for
//    spreadsheet friendliness), RFC 4180 quoting and CRLF line endings.
//
// The server picks a Format with Negotiate() (Accept header) or
// FormatFromName() (?format= override); examples use FormatFromName().
// JSON and TSV delegate to the low-level exec::WriteResults* functions so
// there is exactly one implementation of each format in the tree.
#ifndef HSPARQL_RESULTS_WRITER_H_
#define HSPARQL_RESULTS_WRITER_H_

#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#include "exec/binding_table.h"
#include "rdf/dictionary.h"
#include "sparql/ast.h"

namespace hsparql::results {

enum class Format {
  kJson,
  kCsv,
  kTsv,
};

/// The Content-Type the HTTP server sends for each format.
std::string_view ContentType(Format format);

/// Short stable name: "json", "csv", "tsv" (the ?format= values).
std::string_view FormatName(Format format);

/// Parses a short name ("json", "csv", "tsv"), case-insensitive.
std::optional<Format> FormatFromName(std::string_view name);

/// HTTP content negotiation over an Accept header value: picks the
/// supported format with the highest q-value (ties break toward JSON,
/// the protocol's default). An empty/absent header negotiates kJson;
/// a header that accepts none of the formats returns nullopt (406).
/// Recognised media types: application/sparql-results+json,
/// application/json, text/csv, text/tab-separated-values, and the
/// ranges */*, application/*, text/*.
std::optional<Format> Negotiate(std::string_view accept_header);

/// Serialises one solution sequence. Implementations are stateless and
/// shared (WriterFor returns long-lived singletons) — safe to call from
/// any number of threads.
class Writer {
 public:
  virtual ~Writer() = default;

  virtual Format format() const = 0;

  /// Writes the whole result set to `out`. `query` resolves variable
  /// names, `dict` decodes term ids; the caller keeps both alive for the
  /// duration (the server holds an engine::StoreView across the call).
  virtual void Write(const exec::BindingTable& table,
                     const sparql::Query& query, const rdf::Dictionary& dict,
                     std::ostream& out) const = 0;
};

/// The shared stateless writer for `format`; never null.
const Writer& WriterFor(Format format);

/// Convenience: serialise straight to a string (what the server buffers
/// into a response body).
std::string WriteString(Format format, const exec::BindingTable& table,
                        const sparql::Query& query,
                        const rdf::Dictionary& dict);

/// RFC 4180 field escaping: wraps the field in double quotes iff it
/// contains a comma, quote, CR or LF, doubling embedded quotes. Exposed
/// for the round-trip tests.
std::string CsvEscape(std::string_view field);

}  // namespace hsparql::results

#endif  // HSPARQL_RESULTS_WRITER_H_
