#include "results/writer.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

#include "exec/results_io.h"

namespace hsparql::results {

namespace {

std::string AsciiLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

class JsonWriter final : public Writer {
 public:
  Format format() const override { return Format::kJson; }
  void Write(const exec::BindingTable& table, const sparql::Query& query,
             const rdf::Dictionary& dict, std::ostream& out) const override {
    exec::WriteResultsJson(table, query, dict, out);
  }
};

class TsvWriter final : public Writer {
 public:
  Format format() const override { return Format::kTsv; }
  void Write(const exec::BindingTable& table, const sparql::Query& query,
             const rdf::Dictionary& dict, std::ostream& out) const override {
    exec::WriteResultsTsv(table, query, dict, out);
  }
};

class CsvWriter final : public Writer {
 public:
  Format format() const override { return Format::kCsv; }
  void Write(const exec::BindingTable& table, const sparql::Query& query,
             const rdf::Dictionary& dict, std::ostream& out) const override {
    // W3C SPARQL 1.1 CSV: bare variable names in the header, raw lexical
    // forms in the cells (IRIs unbracketed, literals unquoted — lossy by
    // design), RFC 4180 quoting, CRLF row terminators.
    for (std::size_t i = 0; i < table.vars.size(); ++i) {
      if (i > 0) out << ',';
      out << CsvEscape(query.VarName(table.vars[i]));
    }
    out << "\r\n";
    for (std::size_t r = 0; r < table.rows; ++r) {
      for (std::size_t c = 0; c < table.vars.size(); ++c) {
        if (c > 0) out << ',';
        rdf::TermId id = table.columns[c][r];
        if (id == rdf::kInvalidTermId) continue;  // unbound: empty field
        out << CsvEscape(dict.Get(id).lexical);
      }
      out << "\r\n";
    }
  }
};

}  // namespace

std::string_view ContentType(Format format) {
  switch (format) {
    case Format::kJson:
      return "application/sparql-results+json";
    case Format::kCsv:
      return "text/csv; charset=utf-8";
    case Format::kTsv:
      return "text/tab-separated-values; charset=utf-8";
  }
  return "application/octet-stream";
}

std::string_view FormatName(Format format) {
  switch (format) {
    case Format::kJson:
      return "json";
    case Format::kCsv:
      return "csv";
    case Format::kTsv:
      return "tsv";
  }
  return "unknown";
}

std::optional<Format> FormatFromName(std::string_view name) {
  std::string lower = AsciiLower(Trim(name));
  if (lower == "json") return Format::kJson;
  if (lower == "csv") return Format::kCsv;
  if (lower == "tsv") return Format::kTsv;
  return std::nullopt;
}

namespace {

/// The format a single media type (no parameters) offers, if any.
std::optional<Format> FormatForMediaType(std::string_view media_type) {
  if (media_type == "application/sparql-results+json" ||
      media_type == "application/json" || media_type == "*/*" ||
      media_type == "application/*") {
    return Format::kJson;
  }
  if (media_type == "text/csv" || media_type == "text/*") {
    return Format::kCsv;
  }
  if (media_type == "text/tab-separated-values") return Format::kTsv;
  return std::nullopt;
}

/// Ranking for q-value ties: JSON (the protocol default) > CSV > TSV.
int TieRank(Format format) {
  switch (format) {
    case Format::kJson:
      return 2;
    case Format::kCsv:
      return 1;
    case Format::kTsv:
      return 0;
  }
  return -1;
}

}  // namespace

std::optional<Format> Negotiate(std::string_view accept_header) {
  if (Trim(accept_header).empty()) return Format::kJson;
  std::optional<Format> best;
  double best_q = -1.0;
  std::string_view rest = accept_header;
  while (!rest.empty()) {
    std::size_t comma = rest.find(',');
    std::string_view entry = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    // entry: media-type *( ";" parameter ); q is the only parameter we
    // honour (charset etc. are ignored, not rejected).
    std::size_t semi = entry.find(';');
    std::string media_type = AsciiLower(Trim(entry.substr(0, semi)));
    double q = 1.0;
    std::string_view params =
        semi == std::string_view::npos ? std::string_view() : entry.substr(semi + 1);
    while (!params.empty()) {
      std::size_t next = params.find(';');
      std::string_view param = Trim(params.substr(0, next));
      params = next == std::string_view::npos ? std::string_view()
                                              : params.substr(next + 1);
      if (param.size() > 2 && (param[0] == 'q' || param[0] == 'Q') &&
          param[1] == '=') {
        // strtod never throws; a malformed q ("q=abc") parses as 0, which
        // correctly drops the entry from contention.
        q = std::strtod(std::string(param.substr(2)).c_str(), nullptr);
        q = std::clamp(q, 0.0, 1.0);
      }
    }
    std::optional<Format> offered = FormatForMediaType(media_type);
    if (!offered.has_value() || q <= 0.0) continue;
    if (q > best_q ||
        (q == best_q && best.has_value() && TieRank(*offered) > TieRank(*best))) {
      best = offered;
      best_q = q;
    }
  }
  return best;
}

const Writer& WriterFor(Format format) {
  static const JsonWriter json;
  static const CsvWriter csv;
  static const TsvWriter tsv;
  switch (format) {
    case Format::kCsv:
      return csv;
    case Format::kTsv:
      return tsv;
    case Format::kJson:
      break;
  }
  return json;
}

std::string WriteString(Format format, const exec::BindingTable& table,
                        const sparql::Query& query,
                        const rdf::Dictionary& dict) {
  std::ostringstream out;
  WriterFor(format).Write(table, query, dict, out);
  return out.str();
}

std::string CsvEscape(std::string_view field) {
  bool needs_quotes = field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace hsparql::results
