#include "storage/triple_store.h"

#include <algorithm>
#include <cassert>

namespace hsparql::storage {

using rdf::Position;
using rdf::Triple;

TripleStore TripleStore::Build(rdf::Graph&& graph) {
  TripleStore store;
  // Deduplicate once on the spo order, then derive the other five.
  std::vector<Triple> base = graph.triples();
  std::sort(base.begin(), base.end());
  base.erase(std::unique(base.begin(), base.end()), base.end());

  for (Ordering ordering : kAllOrderings) {
    auto& rel = store.relations_[static_cast<std::size_t>(ordering)];
    rel = base;
    if (ordering != Ordering::kSpo) {
      std::sort(rel.begin(), rel.end(), OrderingLess(ordering));
    }
  }
  store.dict_ = std::move(graph.dictionary());
  return store;
}

std::span<const Triple> TripleStore::LookupPrefix(
    Ordering ordering, std::span<const Binding> bindings) const {
  std::span<const Triple> rel = Scan(ordering);
  if (bindings.empty()) return rel;
  assert(bindings.size() <= 3);

  const auto positions = OrderingPositions(ordering);
  // The bound positions must cover a prefix of the sort priority; build the
  // probe values in priority order.
  std::array<rdf::TermId, 3> probe{};
  for (std::size_t i = 0; i < bindings.size(); ++i) {
    bool found = false;
    for (const Binding& b : bindings) {
      if (b.position == positions[i]) {
        probe[i] = b.value;
        found = true;
        break;
      }
    }
    assert(found && "bindings must form a prefix of the ordering");
    if (!found) return {};
  }

  const std::size_t k = bindings.size();
  auto less = [&](const Triple& t, const std::array<rdf::TermId, 3>& key) {
    for (std::size_t i = 0; i < k; ++i) {
      rdf::TermId x = t.at(positions[i]);
      if (x != key[i]) return x < key[i];
    }
    return false;
  };
  auto greater = [&](const std::array<rdf::TermId, 3>& key, const Triple& t) {
    for (std::size_t i = 0; i < k; ++i) {
      rdf::TermId x = t.at(positions[i]);
      if (x != key[i]) return key[i] < x;
    }
    return false;
  };
  auto lo = std::lower_bound(rel.begin(), rel.end(), probe, less);
  auto hi = std::upper_bound(lo, rel.end(), probe, greater);
  return rel.subspan(static_cast<std::size_t>(lo - rel.begin()),
                     static_cast<std::size_t>(hi - lo));
}

std::size_t TripleStore::CountMatching(
    std::span<const Binding> bindings) const {
  if (bindings.empty()) return size();
  std::vector<Position> bound;
  bound.reserve(bindings.size());
  for (const Binding& b : bindings) bound.push_back(b.position);
  Ordering ordering = OrderingWithBoundPrefix(bound);
  return LookupPrefix(ordering, bindings).size();
}

bool TripleStore::Contains(const Triple& triple) const {
  const auto& rel = relations_[static_cast<std::size_t>(Ordering::kSpo)];
  return std::binary_search(rel.begin(), rel.end(), triple);
}

Ordering OrderingWithBoundPrefix(std::span<const Position> bound) {
  assert(bound.size() <= 3);
  for (Ordering ordering : kAllOrderings) {
    const auto positions = OrderingPositions(ordering);
    bool ok = true;
    for (std::size_t i = 0; i < bound.size(); ++i) {
      if (std::find(bound.begin(), bound.end(), positions[i]) == bound.end()) {
        ok = false;
        break;
      }
    }
    if (ok) return ordering;
  }
  return Ordering::kSpo;  // unreachable: every subset has a prefix ordering
}

}  // namespace hsparql::storage
