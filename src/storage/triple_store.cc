#include "storage/triple_store.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/thread_pool.h"
#include "storage/snapshot.h"

namespace hsparql::storage {

using rdf::Position;
using rdf::Triple;

namespace {

/// Minimum elements per parallel sort/merge chunk: below this the
/// scheduling overhead beats the win and everything runs serially inline.
constexpr std::size_t kParallelSortGrain = 1024;

/// Merges sorted `a` and `b` into `out` (sized |a|+|b|), splitting the
/// output into `parts` equal rank ranges via MergeSelect so every range is
/// an independent task. Serial fallback when the input is small or no pool
/// is given. Stable (a before b on ties), so the result is byte-identical
/// to std::merge.
void ParallelMergeInto(std::span<const Triple> a, std::span<const Triple> b,
                       Triple* out, const OrderingLess& less, ThreadPool* pool,
                       std::size_t parts) {
  const std::size_t total = a.size() + b.size();
  if (pool == nullptr || parts <= 1 || total < 2 * kParallelSortGrain) {
    std::merge(a.begin(), a.end(), b.begin(), b.end(), out, less);
    return;
  }
  parts = std::min(parts, total / kParallelSortGrain);
  pool->ParallelFor(0, parts, 1, [&](std::size_t s) {
    const std::size_t k0 = total * s / parts;
    const std::size_t k1 = total * (s + 1) / parts;
    const std::size_t i0 = MergeSelect(a, b, k0, less);
    const std::size_t i1 = MergeSelect(a, b, k1, less);
    std::merge(a.begin() + static_cast<std::ptrdiff_t>(i0),
               a.begin() + static_cast<std::ptrdiff_t>(i1),
               b.begin() + static_cast<std::ptrdiff_t>(k0 - i0),
               b.begin() + static_cast<std::ptrdiff_t>(k1 - i1),
               out + static_cast<std::ptrdiff_t>(k0), less);
  });
}

/// Sorts `v` under `less`: serial std::sort, or — with a pool — a chunk
/// sort followed by rounds of pairwise parallel merges. Byte-identical to
/// the serial sort (equal Triples are bitwise identical, so every sorted
/// permutation of the multiset is the same byte sequence).
void SortLevel(std::vector<Triple>* v, const OrderingLess& less,
               ThreadPool* pool, std::size_t parts) {
  const std::size_t n = v->size();
  if (pool != nullptr && parts > 1) {
    parts = std::min(parts, n / kParallelSortGrain);
  }
  if (pool == nullptr || parts <= 1) {
    std::sort(v->begin(), v->end(), less);
    return;
  }

  // Run boundaries: bounds[r] .. bounds[r+1] is run r.
  std::vector<std::size_t> bounds(parts + 1);
  for (std::size_t s = 0; s <= parts; ++s) bounds[s] = n * s / parts;
  pool->ParallelFor(0, parts, 1, [&](std::size_t s) {
    std::sort(v->begin() + static_cast<std::ptrdiff_t>(bounds[s]),
              v->begin() + static_cast<std::ptrdiff_t>(bounds[s + 1]), less);
  });

  std::vector<Triple> scratch(n);
  std::vector<Triple>* src = v;
  std::vector<Triple>* dst = &scratch;
  while (bounds.size() > 2) {
    std::vector<std::size_t> next;
    next.reserve(bounds.size() / 2 + 2);
    next.push_back(0);
    std::size_t r = 0;
    for (; r + 2 < bounds.size(); r += 2) {
      std::span<const Triple> a(src->data() + bounds[r],
                                bounds[r + 1] - bounds[r]);
      std::span<const Triple> b(src->data() + bounds[r + 1],
                                bounds[r + 2] - bounds[r + 1]);
      ParallelMergeInto(a, b, dst->data() + bounds[r], less, pool, parts);
      next.push_back(bounds[r + 2]);
    }
    if (r + 1 < bounds.size()) {
      // Odd run count: the last run passes through unmerged.
      std::copy(src->begin() + static_cast<std::ptrdiff_t>(bounds[r]),
                src->end(),
                dst->begin() + static_cast<std::ptrdiff_t>(bounds[r]));
      next.push_back(n);
    }
    bounds = std::move(next);
    std::swap(src, dst);
  }
  if (src != v) *v = std::move(*src);
}

/// The five orderings derived from the sorted spo base.
constexpr std::array<Ordering, 5> kDerivedOrderings = {
    Ordering::kSop, Ordering::kPso, Ordering::kPos, Ordering::kOsp,
    Ordering::kOps};

}  // namespace

TripleStore TripleStore::Build(rdf::Graph&& graph, std::size_t num_threads) {
  TripleStore store;
  ThreadPool* pool = num_threads >= 2 ? &ThreadPool::Shared() : nullptr;
  const std::size_t parts = pool != nullptr ? num_threads : 1;

  // Deduplicate once on the spo order, then derive the other five from the
  // already-sorted copy (moved, not copied, into its slot).
  std::vector<Triple> base = graph.TakeTriples();
  SortLevel(&base, OrderingLess(Ordering::kSpo), pool, parts);
  base.erase(std::unique(base.begin(), base.end()), base.end());
  store.relations_[static_cast<std::size_t>(Ordering::kSpo)] =
      std::move(base);
  const std::vector<Triple>& spo =
      store.relations_[static_cast<std::size_t>(Ordering::kSpo)];

  auto build_one = [&](std::size_t i) {
    const Ordering ordering = kDerivedOrderings[i];
    auto& rel = store.relations_[static_cast<std::size_t>(ordering)];
    rel.reserve(spo.size());
    rel.assign(spo.begin(), spo.end());
    SortLevel(&rel, OrderingLess(ordering), pool, parts);
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, kDerivedOrderings.size(), 1, build_one);
  } else {
    for (std::size_t i = 0; i < kDerivedOrderings.size(); ++i) build_one(i);
  }
  store.dict_ = std::move(graph.dictionary());
  return store;
}

std::span<const Triple> TripleStore::PrefixRange(
    std::span<const Triple> rel, Ordering ordering,
    const std::array<rdf::TermId, 3>& probe, std::size_t k) {
  const auto positions = OrderingPositions(ordering);
  auto less = [&](const Triple& t, const std::array<rdf::TermId, 3>& key) {
    for (std::size_t i = 0; i < k; ++i) {
      rdf::TermId x = t.at(positions[i]);
      if (x != key[i]) return x < key[i];
    }
    return false;
  };
  auto greater = [&](const std::array<rdf::TermId, 3>& key, const Triple& t) {
    for (std::size_t i = 0; i < k; ++i) {
      rdf::TermId x = t.at(positions[i]);
      if (x != key[i]) return key[i] < x;
    }
    return false;
  };
  auto lo = std::lower_bound(rel.begin(), rel.end(), probe, less);
  auto hi = std::upper_bound(lo, rel.end(), probe, greater);
  return rel.subspan(static_cast<std::size_t>(lo - rel.begin()),
                     static_cast<std::size_t>(hi - lo));
}

TripleView TripleStore::LookupPrefix(Ordering ordering,
                                     std::span<const Binding> bindings) const {
  if (bindings.empty()) return Scan(ordering);
  assert(bindings.size() <= 3);

  const auto positions = OrderingPositions(ordering);
  // The bound positions must cover a prefix of the sort priority; build the
  // probe values in priority order.
  std::array<rdf::TermId, 3> probe{};
  for (std::size_t i = 0; i < bindings.size(); ++i) {
    bool found = false;
    for (const Binding& b : bindings) {
      if (b.position == positions[i]) {
        probe[i] = b.value;
        found = true;
        break;
      }
    }
    assert(found && "bindings must form a prefix of the ordering");
    if (!found) return TripleView();
  }

  const std::size_t idx = static_cast<std::size_t>(ordering);
  const std::size_t k = bindings.size();
  return TripleView(PrefixRange(base_level(idx), ordering, probe, k),
                    PrefixRange(deltas_[idx], ordering, probe, k), ordering);
}

std::size_t TripleStore::CountMatching(
    std::span<const Binding> bindings) const {
  if (bindings.empty()) return size();
  std::vector<Position> bound;
  bound.reserve(bindings.size());
  for (const Binding& b : bindings) bound.push_back(b.position);
  Ordering ordering = OrderingWithBoundPrefix(bound);
  return LookupPrefix(ordering, bindings).size();
}

bool TripleStore::Contains(const Triple& triple) const {
  const auto idx = static_cast<std::size_t>(Ordering::kSpo);
  const std::span<const Triple> base = base_level(idx);
  return std::binary_search(base.begin(), base.end(), triple) ||
         std::binary_search(deltas_[idx].begin(), deltas_[idx].end(), triple);
}

TripleStore::PendingUpdate TripleStore::PrepareAdd(
    std::span<const std::array<rdf::Term, 3>> triples,
    std::size_t num_threads) const {
  PendingUpdate update;
  ThreadPool* pool = num_threads >= 2 ? &ThreadPool::Shared() : nullptr;
  const std::size_t parts = pool != nullptr ? num_threads : 1;

  // 1. Resolve term ids. Unknown terms get provisional ids continuing the
  // current dictionary; Apply interns them in the same order, so the
  // provisional ids become real — this is why writers must be serialised.
  rdf::Dictionary staged;
  auto resolve = [&](const rdf::Term& term) {
    if (auto id = dict_.Find(term)) return *id;
    assert(dict_.size() + staged.size() < rdf::kInvalidTermId);
    return static_cast<rdf::TermId>(dict_.size() + staged.Intern(term));
  };
  std::vector<Triple> batch;
  batch.reserve(triples.size());
  for (const std::array<rdf::Term, 3>& t : triples) {
    batch.push_back(Triple{resolve(t[0]), resolve(t[1]), resolve(t[2])});
  }

  // 2. Deduplicate within the batch and against the store. A triple with a
  // provisional id can never be present, so every staged term survives.
  std::sort(batch.begin(), batch.end());
  batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
  std::erase_if(batch, [&](const Triple& t) { return Contains(t); });
  update.new_terms = staged.TakeTerms();
  update.added = batch.size();
  if (batch.empty()) {
    assert(update.new_terms.empty());
    return update;
  }

  // 3. Would the grown delta cross the compaction threshold? Then stage
  // fully-merged base relations instead (one linear merge per ordering) —
  // this also covers the empty-base bootstrap, keeping deltas empty after
  // the first Apply on a fresh store. For an mmap-backed base the merge
  // reads straight from the mapping and the staged levels are heap
  // vectors: the compaction is also the migration off the snapshot image.
  const std::size_t grown = deltas_[0].size() + batch.size();
  update.compacted = grown * kCompactionRatio >= base_size();

  // 4. Stage the six levels: sort the batch per ordering (spo is already
  // sorted), fold in the existing delta, and — when compacting — merge
  // with the base. Each ordering is an independent pool task.
  auto stage_one = [&](std::size_t i) {
    const Ordering ordering = kAllOrderings[i];
    const OrderingLess less(ordering);
    std::vector<Triple> sorted_batch(batch.begin(), batch.end());
    if (ordering != Ordering::kSpo) {
      SortLevel(&sorted_batch, less, pool, parts);
    }
    const auto& delta = deltas_[i];
    std::vector<Triple> combined(delta.size() + sorted_batch.size());
    std::merge(delta.begin(), delta.end(), sorted_batch.begin(),
               sorted_batch.end(), combined.begin(), less);
    if (!update.compacted) {
      update.levels[i] = std::move(combined);
      return;
    }
    const std::span<const Triple> rel = base_level(i);
    std::vector<Triple> merged(rel.size() + combined.size());
    ParallelMergeInto(rel, combined, merged.data(), less, pool, parts);
    update.levels[i] = std::move(merged);
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, kNumOrderings, 1, stage_one);
  } else {
    for (std::size_t i = 0; i < kNumOrderings; ++i) stage_one(i);
  }
  return update;
}

void TripleStore::Apply(PendingUpdate&& update) {
  for (rdf::Term& term : update.new_terms) {
    const rdf::TermId id = dict_.Intern(std::move(term));
    (void)id;
    assert(id + 1 == dict_.size() &&
           "PrepareAdd's provisional ids must match interning order");
  }
  update.new_terms.clear();
  if (update.added == 0) return;
  if (update.compacted) {
    relations_ = std::move(update.levels);
    // The compacted levels are heap vectors; stop serving from the
    // mapping (the image stays open — it still backs the dictionary's
    // base-segment index).
    mmap_bases_ = {};
    for (auto& delta : deltas_) delta.clear();
  } else {
    deltas_ = std::move(update.levels);
  }
}

TripleView TripleStore::Preview(const PendingUpdate& update,
                                Ordering ordering) const {
  const auto i = static_cast<std::size_t>(ordering);
  if (update.added == 0) return Scan(ordering);
  if (update.compacted) return TripleView(update.levels[i], ordering);
  return TripleView(base_level(i), update.levels[i], ordering);
}

std::string_view StoreBackendName(StoreBackend backend) {
  return backend == StoreBackend::kMmapSnapshot ? "mmap_snapshot"
                                                : "in_memory";
}

StorageFootprint TripleStore::footprint() const {
  StorageFootprint out;
  out.backend = backend();
  if (snapshot_ != nullptr) out.snapshot_bytes = snapshot_->file_size();
  for (std::size_t i = 0; i < kNumOrderings; ++i) {
    const std::size_t mapped = mmap_bases_[i].size_bytes();
    out.mapped_triple_bytes += mapped;
    out.heap_triple_bytes +=
        relations_[i].size() * sizeof(Triple) + deltas_[i].size() * sizeof(Triple);
  }
  out.dictionary_terms = dict_.size();
  out.base_dictionary_terms = dict_.base_count();
  return out;
}

std::vector<IndexRange> SplitAtKeyBoundaries(
    std::span<const rdf::TermId> sorted_keys, std::size_t parts) {
  std::vector<IndexRange> chunks;
  const std::size_t n = sorted_keys.size();
  if (n == 0 || parts == 0) return chunks;
  chunks.reserve(std::min(parts, n));
  std::size_t begin = 0;
  for (std::size_t p = 0; p < parts && begin < n; ++p) {
    // Ideal cut after this chunk, then extended right so every occurrence
    // of the key at the cut stays in the chunk.
    std::size_t target = n * (p + 1) / parts;
    if (target <= begin) continue;
    std::size_t end = n;
    if (target < n) {
      end = static_cast<std::size_t>(
          std::upper_bound(sorted_keys.begin() +
                               static_cast<std::ptrdiff_t>(target),
                           sorted_keys.end(), sorted_keys[target - 1]) -
          sorted_keys.begin());
    }
    chunks.push_back(IndexRange{begin, end});
    begin = end;
  }
  return chunks;
}

std::vector<std::span<const Triple>> SplitAtKeyBoundaries(
    std::span<const Triple> sorted_relation, Position key_position,
    std::size_t parts) {
  std::vector<rdf::TermId> keys;
  keys.reserve(sorted_relation.size());
  for (const Triple& t : sorted_relation) keys.push_back(t.at(key_position));
  std::vector<std::span<const Triple>> chunks;
  for (const IndexRange& r : SplitAtKeyBoundaries(keys, parts)) {
    chunks.push_back(sorted_relation.subspan(r.begin, r.size()));
  }
  return chunks;
}

std::vector<IndexRange> SplitAtKeyBoundaries(const TripleView& view,
                                             rdf::Position key_position,
                                             std::size_t parts) {
  std::vector<IndexRange> chunks;
  const std::size_t n = view.size();
  if (n == 0 || parts == 0) return chunks;
  chunks.reserve(std::min(parts, n));
  // Merged upper_bound of a key = the sum of the per-level upper_bounds;
  // valid because key_position is the major sort key of both levels.
  auto upper = [key_position](std::span<const Triple> level,
                              rdf::TermId key) {
    return static_cast<std::size_t>(
        std::upper_bound(level.begin(), level.end(), key,
                         [key_position](rdf::TermId k, const Triple& t) {
                           return k < t.at(key_position);
                         }) -
        level.begin());
  };
  std::size_t begin = 0;
  for (std::size_t p = 0; p < parts && begin < n; ++p) {
    std::size_t target = n * (p + 1) / parts;
    if (target <= begin) continue;
    std::size_t end = n;
    if (target < n) {
      const rdf::TermId key = view[target - 1].at(key_position);
      end = upper(view.base(), key) + upper(view.delta(), key);
    }
    chunks.push_back(IndexRange{begin, end});
    begin = end;
  }
  return chunks;
}

Ordering OrderingWithBoundPrefix(std::span<const Position> bound) {
  assert(bound.size() <= 3);
  for (Ordering ordering : kAllOrderings) {
    const auto positions = OrderingPositions(ordering);
    bool ok = true;
    for (std::size_t i = 0; i < bound.size(); ++i) {
      if (std::find(bound.begin(), bound.end(), positions[i]) == bound.end()) {
        ok = false;
        break;
      }
    }
    if (ok) return ordering;
  }
  return Ordering::kSpo;  // unreachable: every subset has a prefix ordering
}

}  // namespace hsparql::storage
