#include "storage/triple_store.h"

#include <algorithm>
#include <cassert>

namespace hsparql::storage {

using rdf::Position;
using rdf::Triple;

TripleStore TripleStore::Build(rdf::Graph&& graph) {
  TripleStore store;
  // Deduplicate once on the spo order, then derive the other five.
  std::vector<Triple> base = graph.triples();
  std::sort(base.begin(), base.end());
  base.erase(std::unique(base.begin(), base.end()), base.end());

  for (Ordering ordering : kAllOrderings) {
    auto& rel = store.relations_[static_cast<std::size_t>(ordering)];
    rel = base;
    if (ordering != Ordering::kSpo) {
      std::sort(rel.begin(), rel.end(), OrderingLess(ordering));
    }
  }
  store.dict_ = std::move(graph.dictionary());
  return store;
}

std::span<const Triple> TripleStore::LookupPrefix(
    Ordering ordering, std::span<const Binding> bindings) const {
  std::span<const Triple> rel = Scan(ordering);
  if (bindings.empty()) return rel;
  assert(bindings.size() <= 3);

  const auto positions = OrderingPositions(ordering);
  // The bound positions must cover a prefix of the sort priority; build the
  // probe values in priority order.
  std::array<rdf::TermId, 3> probe{};
  for (std::size_t i = 0; i < bindings.size(); ++i) {
    bool found = false;
    for (const Binding& b : bindings) {
      if (b.position == positions[i]) {
        probe[i] = b.value;
        found = true;
        break;
      }
    }
    assert(found && "bindings must form a prefix of the ordering");
    if (!found) return {};
  }

  const std::size_t k = bindings.size();
  auto less = [&](const Triple& t, const std::array<rdf::TermId, 3>& key) {
    for (std::size_t i = 0; i < k; ++i) {
      rdf::TermId x = t.at(positions[i]);
      if (x != key[i]) return x < key[i];
    }
    return false;
  };
  auto greater = [&](const std::array<rdf::TermId, 3>& key, const Triple& t) {
    for (std::size_t i = 0; i < k; ++i) {
      rdf::TermId x = t.at(positions[i]);
      if (x != key[i]) return key[i] < x;
    }
    return false;
  };
  auto lo = std::lower_bound(rel.begin(), rel.end(), probe, less);
  auto hi = std::upper_bound(lo, rel.end(), probe, greater);
  return rel.subspan(static_cast<std::size_t>(lo - rel.begin()),
                     static_cast<std::size_t>(hi - lo));
}

std::size_t TripleStore::CountMatching(
    std::span<const Binding> bindings) const {
  if (bindings.empty()) return size();
  std::vector<Position> bound;
  bound.reserve(bindings.size());
  for (const Binding& b : bindings) bound.push_back(b.position);
  Ordering ordering = OrderingWithBoundPrefix(bound);
  return LookupPrefix(ordering, bindings).size();
}

bool TripleStore::Contains(const Triple& triple) const {
  const auto& rel = relations_[static_cast<std::size_t>(Ordering::kSpo)];
  return std::binary_search(rel.begin(), rel.end(), triple);
}

std::vector<IndexRange> SplitAtKeyBoundaries(
    std::span<const rdf::TermId> sorted_keys, std::size_t parts) {
  std::vector<IndexRange> chunks;
  const std::size_t n = sorted_keys.size();
  if (n == 0 || parts == 0) return chunks;
  chunks.reserve(std::min(parts, n));
  std::size_t begin = 0;
  for (std::size_t p = 0; p < parts && begin < n; ++p) {
    // Ideal cut after this chunk, then extended right so every occurrence
    // of the key at the cut stays in the chunk.
    std::size_t target = n * (p + 1) / parts;
    if (target <= begin) continue;
    std::size_t end = n;
    if (target < n) {
      end = static_cast<std::size_t>(
          std::upper_bound(sorted_keys.begin() +
                               static_cast<std::ptrdiff_t>(target),
                           sorted_keys.end(), sorted_keys[target - 1]) -
          sorted_keys.begin());
    }
    chunks.push_back(IndexRange{begin, end});
    begin = end;
  }
  return chunks;
}

std::vector<std::span<const Triple>> SplitAtKeyBoundaries(
    std::span<const Triple> sorted_relation, Position key_position,
    std::size_t parts) {
  std::vector<rdf::TermId> keys;
  keys.reserve(sorted_relation.size());
  for (const Triple& t : sorted_relation) keys.push_back(t.at(key_position));
  std::vector<std::span<const Triple>> chunks;
  for (const IndexRange& r : SplitAtKeyBoundaries(keys, parts)) {
    chunks.push_back(sorted_relation.subspan(r.begin, r.size()));
  }
  return chunks;
}

Ordering OrderingWithBoundPrefix(std::span<const Position> bound) {
  assert(bound.size() <= 3);
  for (Ordering ordering : kAllOrderings) {
    const auto positions = OrderingPositions(ordering);
    bool ok = true;
    for (std::size_t i = 0; i < bound.size(); ++i) {
      if (std::find(bound.begin(), bound.end(), positions[i]) == bound.end()) {
        ok = false;
        break;
      }
    }
    if (ok) return ordering;
  }
  return Ordering::kSpo;  // unreachable: every subset has a prefix ordering
}

}  // namespace hsparql::storage
