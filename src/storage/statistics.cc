#include "storage/statistics.h"

#include <algorithm>

namespace hsparql::storage {

using rdf::Position;
using rdf::TermId;
using rdf::Triple;

Statistics Statistics::Compute(const TripleStore& store) {
  return ComputeFromViews(&store, store.Scan(Ordering::kSpo),
                          store.Scan(Ordering::kPso),
                          store.Scan(Ordering::kPos),
                          store.Scan(Ordering::kOps));
}

Statistics Statistics::Compute(const TripleStore& store,
                               const TripleStore::PendingUpdate& update) {
  return ComputeFromViews(&store, store.Preview(update, Ordering::kSpo),
                          store.Preview(update, Ordering::kPso),
                          store.Preview(update, Ordering::kPos),
                          store.Preview(update, Ordering::kOps));
}

Statistics Statistics::ComputeFromViews(const TripleStore* store,
                                        const TripleView& spo,
                                        const TripleView& pso,
                                        const TripleView& pos_rel,
                                        const TripleView& ops) {
  Statistics stats(store);
  stats.total_triples_ = spo.size();

  // Distinct subjects from spo, predicates from pso, objects from ops: the
  // position is the major sort key, so distinct values are run boundaries.
  auto count_runs = [](const TripleView& rel, Position pos) {
    std::uint64_t runs = 0;
    TermId prev = rdf::kInvalidTermId;
    for (const Triple& t : rel) {
      TermId v = t.at(pos);
      if (v != prev) {
        ++runs;
        prev = v;
      }
    }
    return runs;
  };
  stats.distinct_[static_cast<std::size_t>(Position::kSubject)] =
      count_runs(spo, Position::kSubject);
  stats.distinct_[static_cast<std::size_t>(Position::kPredicate)] =
      count_runs(pso, Position::kPredicate);
  stats.distinct_[static_cast<std::size_t>(Position::kObject)] =
      count_runs(ops, Position::kObject);

  // Per-predicate stats from pso (distinct subjects per predicate run) and
  // pos (distinct objects per predicate run).
  auto per_predicate = [&stats](const TripleView& rel, Position minor,
                                bool record_count) {
    TermId current_p = rdf::kInvalidTermId;
    TermId prev_v = rdf::kInvalidTermId;
    PredicateStats* entry = nullptr;
    for (const Triple& t : rel) {
      if (t.p != current_p) {
        current_p = t.p;
        prev_v = rdf::kInvalidTermId;
        entry = &stats.predicate_stats_[current_p];
      }
      if (record_count) ++entry->count;
      TermId v = t.at(minor);
      if (v != prev_v) {
        prev_v = v;
        if (minor == Position::kSubject) {
          ++entry->distinct_subjects;
        } else {
          ++entry->distinct_objects;
        }
      }
    }
  };
  per_predicate(pso, Position::kSubject, /*record_count=*/true);
  per_predicate(pos_rel, Position::kObject, /*record_count=*/false);
  return stats;
}

PredicateStats Statistics::ForPredicate(TermId predicate) const {
  auto it = predicate_stats_.find(predicate);
  if (it == predicate_stats_.end()) return PredicateStats{};
  return it->second;
}

std::uint64_t Statistics::EstimateDistinct(std::span<const Binding> bindings,
                                           Position var_pos) const {
  const std::uint64_t card = ExactCount(bindings);
  if (card == 0) return 0;

  if (bindings.size() == 1 &&
      bindings[0].position == Position::kPredicate &&
      (var_pos == Position::kSubject || var_pos == Position::kObject)) {
    PredicateStats ps = ForPredicate(bindings[0].value);
    return var_pos == Position::kSubject ? ps.distinct_subjects
                                         : ps.distinct_objects;
  }
  return std::min<std::uint64_t>(card, DistinctAt(var_pos));
}

}  // namespace hsparql::storage
