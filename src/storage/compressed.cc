#include "storage/compressed.h"

#include <algorithm>
#include <cassert>

#include "common/varint.h"

namespace hsparql::storage {

using rdf::Position;
using rdf::TermId;
using rdf::Triple;

namespace {

/// Triple components permuted into sort-priority order.
std::array<TermId, 3> Prioritise(const Triple& t,
                                 const std::array<Position, 3>& positions) {
  return {t.at(positions[0]), t.at(positions[1]), t.at(positions[2])};
}

}  // namespace

CompressedRelation CompressedRelation::Build(const TripleView& triples,
                                             Ordering ordering) {
  CompressedRelation rel;
  rel.ordering_ = ordering;
  rel.count_ = triples.size();
  const auto positions = OrderingPositions(ordering);

  std::array<TermId, 3> prev = {0, 0, 0};
  TripleView::iterator it = triples.begin();
  for (std::size_t i = 0; i < triples.size(); ++i, ++it) {
    const Triple& triple = *it;
    if (i % kBlockSize == 0) {
      rel.block_offsets_.push_back(rel.bytes_.size());
      rel.block_heads_.push_back(triple);
      // Blocks are self-contained: the head is stored absolute.
      std::array<TermId, 3> c = Prioritise(triple, positions);
      rel.bytes_.push_back(0);
      PutVarint(c[0], &rel.bytes_);
      PutVarint(c[1], &rel.bytes_);
      PutVarint(c[2], &rel.bytes_);
      prev = c;
      continue;
    }
    std::array<TermId, 3> c = Prioritise(triple, positions);
    std::uint8_t first_change = 0;
    while (first_change < 3 && c[first_change] == prev[first_change]) {
      ++first_change;
    }
    assert(first_change < 3 && "input must be sorted and deduplicated");
    rel.bytes_.push_back(first_change);
    // Gap of the changed component (>= 1 by sortedness), then absolute
    // lower-priority components.
    PutVarint(c[first_change] - prev[first_change] - 1, &rel.bytes_);
    for (std::size_t k = first_change + 1; k < 3; ++k) {
      PutVarint(c[k], &rel.bytes_);
    }
    prev = c;
  }
  return rel;
}

void CompressedRelation::DecompressBlock(std::size_t b,
                                         std::vector<Triple>* out) const {
  const auto positions = OrderingPositions(ordering_);
  std::size_t pos = block_offsets_[b];
  std::size_t end =
      b + 1 < block_offsets_.size() ? block_offsets_[b + 1] : bytes_.size();
  std::size_t remaining =
      b + 1 < block_offsets_.size() ? kBlockSize : count_ - b * kBlockSize;
  std::array<TermId, 3> current = {0, 0, 0};
  bool first = true;
  while (pos < end && remaining > 0) {
    std::uint8_t first_change = bytes_[pos++];
    if (first) {
      current[0] = static_cast<TermId>(GetVarint(bytes_.data(), &pos));
      current[1] = static_cast<TermId>(GetVarint(bytes_.data(), &pos));
      current[2] = static_cast<TermId>(GetVarint(bytes_.data(), &pos));
      first = false;
    } else {
      current[first_change] += static_cast<TermId>(
          GetVarint(bytes_.data(), &pos) + 1);
      for (std::size_t k = first_change + 1; k < 3; ++k) {
        current[k] = static_cast<TermId>(GetVarint(bytes_.data(), &pos));
      }
    }
    Triple t;
    t.set(positions[0], current[0]);
    t.set(positions[1], current[1]);
    t.set(positions[2], current[2]);
    out->push_back(t);
    --remaining;
  }
}

std::vector<Triple> CompressedRelation::Decompress() const {
  std::vector<Triple> out;
  out.reserve(count_);
  for (std::size_t b = 0; b < block_offsets_.size(); ++b) {
    DecompressBlock(b, &out);
  }
  return out;
}

std::vector<Triple> CompressedRelation::LookupPrefix(
    std::span<const Binding> bindings) const {
  std::vector<Triple> out;
  if (count_ == 0) return out;
  const auto positions = OrderingPositions(ordering_);

  // Probe values in priority order; bindings must form a prefix.
  std::array<TermId, 3> probe{};
  std::size_t k = 0;
  for (; k < bindings.size(); ++k) {
    bool found = false;
    for (const Binding& b : bindings) {
      if (b.position == positions[k]) {
        probe[k] = b.value;
        found = true;
        break;
      }
    }
    assert(found && "bindings must form a prefix of the ordering");
    if (!found) return out;
  }
  if (k == 0) return Decompress();

  auto cmp_prefix = [&](const Triple& t) {
    for (std::size_t i = 0; i < k; ++i) {
      TermId v = t.at(positions[i]);
      if (v != probe[i]) return v < probe[i] ? -1 : 1;
    }
    return 0;
  };

  // First candidate block: one before the first block whose head reaches
  // the probe prefix (the matching range may start inside the previous
  // block and span several block heads equal to the prefix).
  std::size_t lo = 0;
  std::size_t hi = block_heads_.size();
  while (lo < hi) {
    std::size_t mid = (lo + hi) / 2;
    if (cmp_prefix(block_heads_[mid]) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  std::size_t b = lo == 0 ? 0 : lo - 1;
  // Scan forward from that block until past the prefix.
  std::vector<Triple> buffer;
  for (; b < block_offsets_.size(); ++b) {
    buffer.clear();
    DecompressBlock(b, &buffer);
    bool past = false;
    for (const Triple& t : buffer) {
      int c = cmp_prefix(t);
      if (c == 0) {
        out.push_back(t);
      } else if (c > 0) {
        past = true;
        break;
      }
    }
    if (past) break;
  }
  return out;
}

}  // namespace hsparql::storage
