#include "storage/ordering.h"

#include <cassert>

namespace hsparql::storage {

using rdf::Position;

std::array<Position, 3> OrderingPositions(Ordering ordering) {
  switch (ordering) {
    case Ordering::kSpo:
      return {Position::kSubject, Position::kPredicate, Position::kObject};
    case Ordering::kSop:
      return {Position::kSubject, Position::kObject, Position::kPredicate};
    case Ordering::kPso:
      return {Position::kPredicate, Position::kSubject, Position::kObject};
    case Ordering::kPos:
      return {Position::kPredicate, Position::kObject, Position::kSubject};
    case Ordering::kOsp:
      return {Position::kObject, Position::kSubject, Position::kPredicate};
    case Ordering::kOps:
      return {Position::kObject, Position::kPredicate, Position::kSubject};
  }
  assert(false && "invalid ordering");
  return {Position::kSubject, Position::kPredicate, Position::kObject};
}

Ordering OrderingFromPositions(Position major, Position middle,
                               Position minor) {
  for (Ordering ordering : kAllOrderings) {
    auto positions = OrderingPositions(ordering);
    if (positions[0] == major && positions[1] == middle &&
        positions[2] == minor) {
      return ordering;
    }
  }
  assert(false && "positions must be a permutation of {s, p, o}");
  return Ordering::kSpo;
}

std::string_view OrderingName(Ordering ordering) {
  switch (ordering) {
    case Ordering::kSpo:
      return "spo";
    case Ordering::kSop:
      return "sop";
    case Ordering::kPso:
      return "pso";
    case Ordering::kPos:
      return "pos";
    case Ordering::kOsp:
      return "osp";
    case Ordering::kOps:
      return "ops";
  }
  return "???";
}

std::optional<Ordering> OrderingFromName(std::string_view name) {
  for (Ordering ordering : kAllOrderings) {
    if (OrderingName(ordering) == name) return ordering;
  }
  return std::nullopt;
}

}  // namespace hsparql::storage
