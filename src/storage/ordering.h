// The six collation orders of a triple table.
//
// §5: "we assume that the RDF data are stored in a triple table, and that
// all possible ordering combinations are also present ... We refer to these
// six orderings as spo, sop, ops, osp, pos, pso." Each ordering is the
// sort-priority permutation of the three triple positions.
#ifndef HSPARQL_STORAGE_ORDERING_H_
#define HSPARQL_STORAGE_ORDERING_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "rdf/triple.h"

namespace hsparql::storage {

/// One of the six sorted triple relations.
enum class Ordering : std::uint8_t {
  kSpo = 0,
  kSop = 1,
  kPso = 2,
  kPos = 3,
  kOsp = 4,
  kOps = 5,
};

inline constexpr std::array<Ordering, 6> kAllOrderings = {
    Ordering::kSpo, Ordering::kSop, Ordering::kPso,
    Ordering::kPos, Ordering::kOsp, Ordering::kOps};

inline constexpr std::size_t kNumOrderings = 6;

/// Sort-priority permutation of an ordering: positions from major to minor.
/// e.g. kPos -> {Predicate, Object, Subject}.
std::array<rdf::Position, 3> OrderingPositions(Ordering ordering);

/// Inverse of OrderingPositions: the ordering whose major/middle/minor sort
/// keys are `major`, `middle`, `minor` (must be a permutation of s, p, o).
Ordering OrderingFromPositions(rdf::Position major, rdf::Position middle,
                               rdf::Position minor);

/// Lowercase name: "spo", "pos", ...
std::string_view OrderingName(Ordering ordering);

/// Parses "spo"... (case-sensitive); nullopt if not one of the six names.
std::optional<Ordering> OrderingFromName(std::string_view name);

/// Strict-weak comparator of triples under an ordering.
struct OrderingLess {
  explicit OrderingLess(Ordering ordering)
      : positions(OrderingPositions(ordering)) {}

  bool operator()(const rdf::Triple& a, const rdf::Triple& b) const {
    for (rdf::Position pos : positions) {
      rdf::TermId x = a.at(pos);
      rdf::TermId y = b.at(pos);
      if (x != y) return x < y;
    }
    return false;
  }

  std::array<rdf::Position, 3> positions;
};

}  // namespace hsparql::storage

#endif  // HSPARQL_STORAGE_ORDERING_H_
