// RDF-3X-style aggregated indexes (§2 of the paper):
//
//   "Furthermore, RDF-3X uses aggregated indexes for each of the three
//    possible pairs of triple components and in each collation order (sp,
//    so, ps etc.). Each index stores the two columns of a triple on which
//    it is defined and an aggregated count that denotes the number of
//    occurrences of the pair in the set of triples. Aggregated indexes
//    ... are much smaller than the full-triple indexes. ... In addition,
//    RDF-3X builds all three one-value indexes that hold for every RDF
//    constant the number of its occurrences in the dataset."
//
// Six pair indexes (sp, ps, so, os, po, op) and three one-value indexes
// (s, p, o), each a sorted array of (key, count) entries answering
// count-lookups in O(log n) without touching the full relations. They are
// the exact information CDP's cardinality estimation consumes; this module
// materialises them explicitly (Statistics/TripleStore answer the same
// questions by binary search over full relations) and quantifies the size
// claim in bench_compression's companion checks.
#ifndef HSPARQL_STORAGE_AGGREGATED_INDEX_H_
#define HSPARQL_STORAGE_AGGREGATED_INDEX_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "rdf/triple.h"
#include "storage/triple_store.h"

namespace hsparql::storage {

/// The six component pairs, named by (major, minor) position.
enum class PairKind : std::uint8_t {
  kSp = 0,  // (subject, predicate)
  kPs = 1,
  kSo = 2,
  kOs = 3,
  kPo = 4,
  kOp = 5,
};

inline constexpr std::array<PairKind, 6> kAllPairKinds = {
    PairKind::kSp, PairKind::kPs, PairKind::kSo,
    PairKind::kOs, PairKind::kPo, PairKind::kOp};

/// (major, minor) positions of a pair kind.
std::pair<rdf::Position, rdf::Position> PairPositions(PairKind kind);
std::string_view PairKindName(PairKind kind);

/// All nine aggregated indexes of a dataset.
class AggregatedIndexes {
 public:
  struct PairEntry {
    rdf::TermId major;
    rdf::TermId minor;
    std::uint32_t count;
  };
  struct ValueEntry {
    rdf::TermId value;
    std::uint32_t count;
  };

  /// One pass per collation order.
  static AggregatedIndexes Build(const TripleStore& store);

  /// Number of triples carrying the pair (0 if absent). O(log n).
  std::uint64_t PairCount(PairKind kind, rdf::TermId major,
                          rdf::TermId minor) const;

  /// Number of triples with `value` at `pos`. O(log n).
  std::uint64_t ValueCount(rdf::Position pos, rdf::TermId value) const;

  /// Distinct pairs in an index / distinct values at a position.
  std::size_t PairEntries(PairKind kind) const {
    return pairs_[static_cast<std::size_t>(kind)].size();
  }
  std::size_t ValueEntries(rdf::Position pos) const {
    return values_[static_cast<std::size_t>(pos)].size();
  }

  /// All (minor, count) entries of a pair index with the given major value
  /// — the "smaller input relations" CDP gets from aggregated indexes.
  std::span<const PairEntry> PairsWithMajor(PairKind kind,
                                            rdf::TermId major) const;

  /// Total bytes of all nine indexes (the §2 size claim).
  std::size_t MemoryBytes() const;

 private:
  AggregatedIndexes() = default;

  std::array<std::vector<PairEntry>, 6> pairs_;
  std::array<std::vector<ValueEntry>, 3> values_;
};

}  // namespace hsparql::storage

#endif  // HSPARQL_STORAGE_AGGREGATED_INDEX_H_
