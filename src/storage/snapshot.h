// Persistent snapshot images: the on-disk form of a TripleStore.
//
// DESIGN.md §4k. A snapshot is a single versioned, checksummed file laid
// out so that opening it is a page-table operation rather than a parse:
//
//   [64-byte header]
//     magic "HSPSNAP1" | endian sentinel | version | file size
//     triple count | term count | section count | flags
//     section-table checksum | header checksum
//   [section table: 32-byte entries (kind, aux, offset, bytes, checksum)]
//   [sections, each 8-byte aligned]
//     kDictTerms    front-coded term blocks (kTermBlockSize terms/block,
//                   sorted by Dictionary::TermOrderLess; per term: varint
//                   flags (bit0 = literal), varint shared-prefix length,
//                   varint suffix length, suffix bytes)
//     kDictOffsets  u64 byte offset of every term block (random access)
//     kDictSorted   u32 permutation: id of the r-th term in sorted order.
//                   Doubles as the base-segment term -> id index of the
//                   restored Dictionary — no hash table is rebuilt at open.
//     kOrderingRaw | kOrderingVbyte, aux = ordering (one per collation
//                   order). Raw sections are the sorted rdf::Triple array
//                   verbatim and are served zero-copy as spans into the
//                   mapping; vbyte sections (SnapshotWriteOptions::
//                   compress_orderings) store the RDF-3X-style delta codec
//                   of storage/compressed.h in self-contained
//                   kTripleBlockSize-triple blocks with a block-offset
//                   directory, and are decoded into heap vectors at open.
//
// All integers are little-endian; the endian sentinel makes a
// wrong-endian image a typed kInvalidSnapshot error instead of a silent
// misread. Checksums are common/hash.h Hash64. Validation is tiered:
// header and section-table checksums, section bounds/alignment, and every
// check needed for memory safety (varint/offset bounds in the dictionary
// and vbyte decoders, a TermId bounds pass over decoded orderings) run
// unconditionally whenever the bytes they guard are read — no input can
// make a query crash or read outside the mapping. The default open reads
// NO payload page at all (that is the zero-copy cold start): raw
// orderings are served as unread spans, and the dictionary decode is
// deferred into Dictionary::FromSnapshotLazy's loader, first-use under a
// call_once. Payload corruption an unverified open cannot see is defused
// at use instead: a failing lazy dictionary load degrades to an empty
// base segment, and out-of-range TermIds in ordering payloads resolve to
// Dictionary::Get's empty-term fallback. Per-section payload checksums
// and the deeper structural invariants (id bounds over raw orderings,
// sortedness, permutation bijectivity, dictionary order) run only under
// SnapshotOpenOptions::verify — which also decodes the dictionary
// eagerly, so every payload byte is read and typed-checked at open. The
// same trust model as any mmap'd database file: corruption of a trusted
// image is caught by the always-on checks or surfaces as wrong data,
// never as undefined behaviour.
//
// Thread safety: a Snapshot is immutable after Open; all accessors are
// const reads. TripleStore pins its snapshot in a shared_ptr that
// outlives every span handed out.
#ifndef HSPARQL_STORAGE_SNAPSHOT_H_
#define HSPARQL_STORAGE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/mmap.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/ordering.h"

namespace hsparql::storage {

/// Knobs for TripleStore::SaveSnapshot.
struct SnapshotWriteOptions {
  /// Store the six orderings with the RDF-3X delta+vbyte codec instead of
  /// raw triple arrays. Roughly 3-4x smaller on SP2Bench, but the open
  /// path must decode into heap vectors — it trades the zero-copy cold
  /// start for a smaller image.
  bool compress_orderings = false;
};

/// Knobs for TripleStore::OpenSnapshot / Snapshot::Open.
struct SnapshotOpenOptions {
  /// Deep verification: per-section payload checksums plus structural
  /// invariants (orderings sorted and deduplicated, the sorted-id
  /// permutation a bijection, dictionary terms in TermOrderLess order),
  /// with the dictionary decoded eagerly at open. Any corrupted payload
  /// byte then becomes a typed kInvalidSnapshot.
  ///
  /// Off (the default — the zero-copy cold-start path) validates the
  /// header, section table and section layout, then reads no payload
  /// page at all: the raw orderings are served as unread spans and the
  /// dictionary decode is deferred to first use (every bounds check
  /// still runs when it does). A corrupted or hostile image can then at
  /// worst answer queries wrongly — like any mmap'd database file — but
  /// can never crash the process or read outside the mapping.
  bool verify = false;
  /// Threads for the per-ordering verify/decode passes (0 = serial).
  std::size_t num_threads = 0;
};

inline constexpr std::size_t kSnapshotMagicBytes = 8;
inline constexpr char kSnapshotMagic[kSnapshotMagicBytes + 1] = "HSPSNAP1";
/// Written as u32 0x01020304; reads back permuted on a wrong-endian host.
inline constexpr std::uint32_t kSnapshotEndianSentinel = 0x01020304;
inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::size_t kSnapshotHeaderBytes = 64;
inline constexpr std::size_t kSnapshotSectionEntryBytes = 32;
/// Terms per front-coded dictionary block.
inline constexpr std::size_t kTermBlockSize = 16;
/// Triples per self-contained vbyte block (matches
/// CompressedRelation::kBlockSize; both are frozen by the format).
inline constexpr std::size_t kTripleBlockSize = 1024;

enum class SectionKind : std::uint32_t {
  kDictTerms = 1,
  kDictOffsets = 2,
  kDictSorted = 3,
  kOrderingRaw = 4,
  kOrderingVbyte = 5,
};

/// One row of the section table. `aux` is the Ordering for ordering
/// sections, 0 otherwise.
struct SectionEntry {
  std::uint32_t kind = 0;
  std::uint32_t aux = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;
};

/// An open, validated snapshot image. Owns the mapping; hands out spans
/// into it. Produced by Open, consumed by TripleStore::OpenSnapshot
/// (which keeps it alive in a shared_ptr for the store's lifetime).
class Snapshot {
 public:
  /// Maps and validates `path`. kNotFound if the file is missing,
  /// kIoError if it cannot be mapped, kInvalidSnapshot for every byte-
  /// level problem: short file, bad magic, wrong endianness, unsupported
  /// version, size mismatch, malformed section table, out-of-bounds
  /// sections, checksum mismatches.
  static Result<std::shared_ptr<const Snapshot>> Open(
      const std::string& path, const SnapshotOpenOptions& options);

  std::size_t file_size() const { return map_.size(); }
  std::size_t triple_count() const { return triple_count_; }
  std::size_t term_count() const { return term_count_; }
  /// True if the orderings are stored vbyte-compressed (open decodes to
  /// heap; nothing is served zero-copy except the dictionary index).
  bool compressed_orderings() const { return compressed_; }

  /// First section of `kind` with matching aux, or nullptr.
  const SectionEntry* FindSection(SectionKind kind,
                                  std::uint32_t aux = 0) const;
  /// The payload bytes of a table entry (already bounds-validated).
  std::span<const std::uint8_t> SectionBytes(const SectionEntry& e) const {
    return map_.bytes().subspan(e.offset, e.bytes);
  }

 private:
  Snapshot() = default;

  MappedFile map_;
  std::vector<SectionEntry> sections_;
  std::size_t triple_count_ = 0;
  std::size_t term_count_ = 0;
  bool compressed_ = false;
};

}  // namespace hsparql::storage

#endif  // HSPARQL_STORAGE_SNAPSHOT_H_
