// TripleView: a merged read view over a base relation and its sorted
// delta level, presented as one sorted sequence without materialising the
// merge. This is what TripleStore::Scan / LookupPrefix hand out once the
// store supports incremental maintenance: readers see base ∪ delta in
// collation order; only compaction ever rewrites the base.
//
// The two levels are disjoint (PrepareAdd dedupes incoming triples against
// the merged view), so the iterator never has to break ties; the
// comparator still prefers the base element on equality, which makes the
// view a *stable* merge (base first) and lets MergeSelect double as the
// work-splitting primitive for the parallel sort's merge phase, where the
// inputs are not disjoint.
#ifndef HSPARQL_STORAGE_TRIPLE_VIEW_H_
#define HSPARQL_STORAGE_TRIPLE_VIEW_H_

#include <cassert>
#include <cstddef>
#include <iterator>
#include <span>

#include "rdf/triple.h"
#include "storage/ordering.h"

namespace hsparql::storage {

/// Given two sorted ranges `a` and `b` and a rank 0 <= k <= |a|+|b|,
/// returns the unique i such that the first k elements of the *stable*
/// merge of a and b (a-elements before equal b-elements) are exactly
/// a[0, i) ∪ b[0, k-i). O(log min(|a|, |b|, k)).
///
/// This is the split primitive behind TripleView::IteratorAt and the
/// parallel merge: cutting both inputs at ranks k0 < k1 yields an
/// independent merge task producing output [k0, k1).
template <typename T, typename Less>
std::size_t MergeSelect(std::span<const T> a, std::span<const T> b,
                        std::size_t k, const Less& less) {
  assert(k <= a.size() + b.size());
  std::size_t lo = k > b.size() ? k - b.size() : 0;
  std::size_t hi = k < a.size() ? k : a.size();
  while (lo < hi) {
    const std::size_t i = lo + (hi - lo) / 2;
    const std::size_t j = k - i;
    // b[j-1] >= a[i] would place a[i] before b[j-1] in the stable merge,
    // so the a-prefix must be longer.
    if (j > 0 && i < a.size() && !less(b[j - 1], a[i])) {
      lo = i + 1;
    } else {
      hi = i;
    }
  }
  return lo;
}

/// Read-only merged view of one collation order: a base level plus a
/// (possibly empty) delta level, both sorted under the same ordering and
/// mutually disjoint. Cheap to copy (two spans and a comparator).
class TripleView {
 public:
  /// Forward iterator over the merged sequence. Dereferencing returns a
  /// reference into whichever level holds the current element.
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = rdf::Triple;
    using difference_type = std::ptrdiff_t;
    using pointer = const rdf::Triple*;
    using reference = const rdf::Triple&;

    iterator() = default;

    reference operator*() const {
      if (delta_ == delta_end_) return *base_;
      if (base_ == base_end_) return *delta_;
      return less_(*delta_, *base_) ? *delta_ : *base_;
    }
    pointer operator->() const { return &**this; }

    iterator& operator++() {
      if (delta_ == delta_end_) {
        ++base_;
      } else if (base_ == base_end_) {
        ++delta_;
      } else if (less_(*delta_, *base_)) {
        ++delta_;
      } else {
        ++base_;
      }
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++*this;
      return copy;
    }

    friend bool operator==(const iterator& a, const iterator& b) {
      return a.base_ == b.base_ && a.delta_ == b.delta_;
    }

   private:
    friend class TripleView;
    iterator(const rdf::Triple* base, const rdf::Triple* base_end,
             const rdf::Triple* delta, const rdf::Triple* delta_end,
             OrderingLess less)
        : base_(base),
          base_end_(base_end),
          delta_(delta),
          delta_end_(delta_end),
          less_(less) {}

    const rdf::Triple* base_ = nullptr;
    const rdf::Triple* base_end_ = nullptr;
    const rdf::Triple* delta_ = nullptr;
    const rdf::Triple* delta_end_ = nullptr;
    OrderingLess less_{Ordering::kSpo};
  };
  using const_iterator = iterator;
  using value_type = rdf::Triple;

  /// Empty view.
  TripleView() : less_(Ordering::kSpo) {}

  /// Contiguous view (no delta); the ordering only matters for IteratorAt
  /// consistency and may be defaulted by callers holding pre-sorted data.
  explicit TripleView(std::span<const rdf::Triple> base,
                      Ordering ordering = Ordering::kSpo)
      : base_(base), less_(ordering) {}

  /// Merged view. Both levels must be sorted under `ordering` and share no
  /// triple.
  TripleView(std::span<const rdf::Triple> base,
             std::span<const rdf::Triple> delta, Ordering ordering)
      : base_(base), delta_(delta), less_(ordering) {}

  std::size_t size() const { return base_.size() + delta_.size(); }
  bool empty() const { return base_.empty() && delta_.empty(); }

  /// True when the view is a single contiguous span (empty delta) — the
  /// common case after a bulk load or a compaction; callers with
  /// span-specialised fast paths key off this.
  bool contiguous() const { return delta_.empty(); }

  std::span<const rdf::Triple> base() const { return base_; }
  std::span<const rdf::Triple> delta() const { return delta_; }

  iterator begin() const {
    return iterator(base_.data(), base_.data() + base_.size(), delta_.data(),
                    delta_.data() + delta_.size(), less_);
  }
  iterator end() const {
    return iterator(base_.data() + base_.size(), base_.data() + base_.size(),
                    delta_.data() + delta_.size(),
                    delta_.data() + delta_.size(), less_);
  }

  /// Iterator positioned at merged rank `k` (0 <= k <= size()) in
  /// O(log size()) — the random-access entry point morsel-parallel scans
  /// use to start mid-view without advancing from begin().
  iterator IteratorAt(std::size_t k) const {
    const std::size_t i = MergeSelect(base_, delta_, k, less_);
    return iterator(base_.data() + i, base_.data() + base_.size(),
                    delta_.data() + (k - i), delta_.data() + delta_.size(),
                    less_);
  }

  /// Element at merged rank `i`: O(1) when contiguous, O(log n) otherwise.
  const rdf::Triple& operator[](std::size_t i) const {
    if (delta_.empty()) return base_[i];
    if (base_.empty()) return delta_[i];
    return *IteratorAt(i);
  }

  const rdf::Triple& front() const { return (*this)[0]; }
  const rdf::Triple& back() const {
    if (delta_.empty()) return base_.back();
    if (base_.empty()) return delta_.back();
    return less_(delta_.back(), base_.back()) ? base_.back() : delta_.back();
  }

 private:
  std::span<const rdf::Triple> base_;
  std::span<const rdf::Triple> delta_;
  OrderingLess less_;
};

}  // namespace hsparql::storage

#endif  // HSPARQL_STORAGE_TRIPLE_VIEW_H_
