// Vertically partitioned RDF storage (SW-Store / Abadi et al., the paper's
// [2,3]; critically examined by Sidirourgos et al. [31], two authors of
// this paper). §7 lists "different relational storage schemas, instead of
// only the traditional approach of a triple table" as future work.
//
// One two-column table per predicate, materialised in both sort orders
// (by subject and by object) — the vertical analogue of the triple table's
// six orderings. Bound-predicate patterns become binary searches over one
// small table; *unbound*-predicate patterns (e.g. query Y3's `?p ?ss ?c1`)
// must visit every table, which is exactly the weakness [31] documents.
// bench_storage_schemes quantifies both effects against the TripleStore.
#ifndef HSPARQL_STORAGE_VERTICAL_STORE_H_
#define HSPARQL_STORAGE_VERTICAL_STORE_H_

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "rdf/triple.h"
#include "storage/triple_store.h"

namespace hsparql::storage {

/// A (subject, object) pair within one predicate's table.
struct SoPair {
  rdf::TermId s;
  rdf::TermId o;
  friend auto operator<=>(const SoPair&, const SoPair&) = default;
};

/// Immutable vertically partitioned store. Built from (and sharing term
/// ids with) a TripleStore's dataset.
class VerticalStore {
 public:
  /// Partitions the triples of `store` by predicate.
  static VerticalStore Build(const TripleStore& store);

  VerticalStore(const VerticalStore&) = delete;
  VerticalStore& operator=(const VerticalStore&) = delete;
  VerticalStore(VerticalStore&&) = default;
  VerticalStore& operator=(VerticalStore&&) = default;

  std::size_t num_predicates() const { return tables_.size(); }
  std::size_t size() const { return total_pairs_; }

  /// All pairs of a predicate, sorted by (s, o); empty for unknown ids.
  std::span<const SoPair> BySubject(rdf::TermId predicate) const;
  /// All pairs of a predicate, sorted by (o, s).
  std::span<const SoPair> ByObject(rdf::TermId predicate) const;

  /// Pairs of `predicate` with the given subject (sorted by object).
  std::span<const SoPair> LookupSubject(rdf::TermId predicate,
                                        rdf::TermId subject) const;
  /// Pairs of `predicate` with the given object (sorted by subject; note
  /// the span stems from the (o, s) table, so .s is the varying column).
  std::span<const SoPair> LookupObject(rdf::TermId predicate,
                                       rdf::TermId object) const;

  /// The predicates present, ascending.
  const std::vector<rdf::TermId>& predicates() const { return predicates_; }

  /// Full-pattern matching with any combination of bound positions; an
  /// unbound predicate walks every table (the VP penalty). Results are
  /// materialised triples in (p, s, o) order.
  std::vector<rdf::Triple> Match(std::optional<rdf::TermId> s,
                                 std::optional<rdf::TermId> p,
                                 std::optional<rdf::TermId> o) const;

  /// Approximate resident bytes of the pair tables (both orders).
  std::size_t MemoryBytes() const;

 private:
  struct PredicateTable {
    std::vector<SoPair> by_subject;  // sorted (s, o)
    std::vector<SoPair> by_object;   // sorted (o, s)
  };

  VerticalStore() = default;

  const PredicateTable* Find(rdf::TermId predicate) const;

  std::unordered_map<rdf::TermId, PredicateTable> tables_;
  std::vector<rdf::TermId> predicates_;
  std::size_t total_pairs_ = 0;
};

}  // namespace hsparql::storage

#endif  // HSPARQL_STORAGE_VERTICAL_STORE_H_
