// Dataset statistics for the cost-based (CDP) baseline.
//
// RDF-3X (§2) keeps aggregated indexes (exact counts for every bound pair),
// one-value indexes (exact counts for every single constant) and per-path
// statistics. Our TripleStore already answers exact counts for any bound
// subset via binary search; this class adds the distinct-value statistics
// needed for join-selectivity estimation. The HSP planner never touches
// this module — it is statistics-free by construction.
#ifndef HSPARQL_STORAGE_STATISTICS_H_
#define HSPARQL_STORAGE_STATISTICS_H_

#include <cstdint>
#include <span>
#include <unordered_map>

#include "rdf/triple.h"
#include "storage/triple_store.h"

namespace hsparql::storage {

/// Per-predicate aggregate: how many triples carry the predicate, and how
/// many distinct subjects / objects appear among them. This mirrors the
/// "characteristic" statistics an RDF engine derives from its ps/po
/// aggregated indexes.
struct PredicateStats {
  std::uint64_t count = 0;
  std::uint64_t distinct_subjects = 0;
  std::uint64_t distinct_objects = 0;
};

/// Immutable statistics snapshot computed from a TripleStore.
class Statistics {
 public:
  /// One pass over three of the sorted relations.
  static Statistics Compute(const TripleStore& store);

  /// Statistics for the state `store` will be in once `update` is applied
  /// (TripleStore::Preview views). Computable under a shared lock while
  /// readers still see the old state; ExactCount keeps delegating to the
  /// live store, so install the result only after Apply.
  static Statistics Compute(const TripleStore& store,
                            const TripleStore::PendingUpdate& update);

  std::uint64_t total_triples() const { return total_triples_; }

  /// Global distinct values at a position (|S|, |P| or |O|).
  std::uint64_t DistinctAt(rdf::Position pos) const {
    return distinct_[static_cast<std::size_t>(pos)];
  }

  /// Per-predicate aggregates; zeroes for unknown predicates.
  PredicateStats ForPredicate(rdf::TermId predicate) const;

  /// Exact cardinality of a pattern with the given constant bindings
  /// (delegates to the store's aggregated-index equivalent).
  std::uint64_t ExactCount(std::span<const Binding> bindings) const {
    return store_->CountMatching(bindings);
  }

  /// Estimated number of distinct values the position `var_pos` takes among
  /// triples matching `bindings`. Exact when only the predicate is bound;
  /// otherwise bounded by the pattern cardinality and the global distinct
  /// count (the standard independence fallback).
  std::uint64_t EstimateDistinct(std::span<const Binding> bindings,
                                 rdf::Position var_pos) const;

 private:
  explicit Statistics(const TripleStore* store) : store_(store) {}

  /// Shared core: distinct counts and per-predicate aggregates from merged
  /// views of the spo/pso/pos/ops orderings.
  static Statistics ComputeFromViews(const TripleStore* store,
                                     const TripleView& spo,
                                     const TripleView& pso,
                                     const TripleView& pos,
                                     const TripleView& ops);

  const TripleStore* store_;
  std::uint64_t total_triples_ = 0;
  std::array<std::uint64_t, 3> distinct_ = {0, 0, 0};
  std::unordered_map<rdf::TermId, PredicateStats> predicate_stats_;
};

}  // namespace hsparql::storage

#endif  // HSPARQL_STORAGE_STATISTICS_H_
