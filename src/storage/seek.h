// Galloping (exponential) search over sorted random-access data.
//
// Leapfrog triejoin spends its life seeking a handful of sorted cursors
// past each other; the paper's merge joins and the parallel merge join's
// chunk-probe path do the same over key columns. Both want the classic
// exponential/galloping probe: O(log d) in the *distance* d advanced, so a
// cursor that moves a little pays a little, instead of the full O(log n)
// of a fresh binary search per seek.
#ifndef HSPARQL_STORAGE_SEEK_H_
#define HSPARQL_STORAGE_SEEK_H_

#include <cstddef>
#include <span>

#include "rdf/triple.h"

namespace hsparql::storage {

/// First index i in [from, data.size()) with proj(data[i]) >= target;
/// data.size() when no such element exists. `proj` maps an element to its
/// sort key; the projected keys must be non-decreasing over the span.
template <typename T, typename Key, typename Proj>
std::size_t SeekGE(std::span<const T> data, std::size_t from, Key target,
                   Proj proj) {
  const std::size_t n = data.size();
  if (from >= n) return n;
  if (!(proj(data[from]) < target)) return from;
  // Gallop: double the step until the probe lands at or past the target,
  // giving a window (lo, hi] with proj(data[lo]) < target <= proj(data[hi]).
  std::size_t step = 1;
  std::size_t lo = from;
  std::size_t hi = from + step;
  while (hi < n && proj(data[hi]) < target) {
    lo = hi;
    step <<= 1;
    hi = from + step;
  }
  if (hi > n) hi = n;
  std::size_t left = lo + 1;
  while (left < hi) {
    const std::size_t mid = left + (hi - left) / 2;
    if (proj(data[mid]) < target) {
      left = mid + 1;
    } else {
      hi = mid;
    }
  }
  return left;
}

/// First index i in [from, data.size()) with proj(data[i]) > target.
template <typename T, typename Key, typename Proj>
std::size_t SeekGT(std::span<const T> data, std::size_t from, Key target,
                   Proj proj) {
  const std::size_t n = data.size();
  if (from >= n) return n;
  if (proj(data[from]) > target) return from;
  std::size_t step = 1;
  std::size_t lo = from;
  std::size_t hi = from + step;
  while (hi < n && !(proj(data[hi]) > target)) {
    lo = hi;
    step <<= 1;
    hi = from + step;
  }
  if (hi > n) hi = n;
  std::size_t left = lo + 1;
  while (left < hi) {
    const std::size_t mid = left + (hi - left) / 2;
    if (!(proj(data[mid]) > target)) {
      left = mid + 1;
    } else {
      hi = mid;
    }
  }
  return left;
}

/// Plain sorted key-column overloads.
inline std::size_t SeekGE(std::span<const rdf::TermId> keys, std::size_t from,
                          rdf::TermId target) {
  return SeekGE(keys, from, target, [](rdf::TermId k) { return k; });
}

inline std::size_t SeekGT(std::span<const rdf::TermId> keys, std::size_t from,
                          rdf::TermId target) {
  return SeekGT(keys, from, target, [](rdf::TermId k) { return k; });
}

/// Sorted-triple overloads keyed on one component (the span must be sorted
/// by that component, e.g. a prefix-narrowed level of an ordering).
inline std::size_t SeekGE(std::span<const rdf::Triple> triples,
                          std::size_t from, rdf::Position pos,
                          rdf::TermId target) {
  return SeekGE(triples, from, target,
                [pos](const rdf::Triple& t) { return t.at(pos); });
}

inline std::size_t SeekGT(std::span<const rdf::Triple> triples,
                          std::size_t from, rdf::Position pos,
                          rdf::TermId target) {
  return SeekGT(triples, from, target,
                [pos](const rdf::Triple& t) { return t.at(pos); });
}

}  // namespace hsparql::storage

#endif  // HSPARQL_STORAGE_SEEK_H_
