#include "storage/vertical_store.h"

#include <algorithm>

namespace hsparql::storage {

using rdf::TermId;
using rdf::Triple;

VerticalStore VerticalStore::Build(const TripleStore& store) {
  VerticalStore vs;
  // pso order delivers predicate-grouped, (s, o)-sorted pairs directly.
  TermId current = rdf::kInvalidTermId;
  PredicateTable* table = nullptr;
  for (const Triple& t : store.Scan(Ordering::kPso)) {
    if (t.p != current) {
      current = t.p;
      table = &vs.tables_[current];
      vs.predicates_.push_back(current);
    }
    table->by_subject.push_back(SoPair{t.s, t.o});
    ++vs.total_pairs_;
  }
  // pos order delivers the (o, s)-sorted twins.
  current = rdf::kInvalidTermId;
  table = nullptr;
  for (const Triple& t : store.Scan(Ordering::kPos)) {
    if (t.p != current) {
      current = t.p;
      table = &vs.tables_[current];
    }
    table->by_object.push_back(SoPair{t.s, t.o});
  }
  std::sort(vs.predicates_.begin(), vs.predicates_.end());
  return vs;
}

const VerticalStore::PredicateTable* VerticalStore::Find(
    TermId predicate) const {
  auto it = tables_.find(predicate);
  return it == tables_.end() ? nullptr : &it->second;
}

std::span<const SoPair> VerticalStore::BySubject(TermId predicate) const {
  const PredicateTable* t = Find(predicate);
  return t == nullptr ? std::span<const SoPair>() : t->by_subject;
}

std::span<const SoPair> VerticalStore::ByObject(TermId predicate) const {
  const PredicateTable* t = Find(predicate);
  return t == nullptr ? std::span<const SoPair>() : t->by_object;
}

std::span<const SoPair> VerticalStore::LookupSubject(TermId predicate,
                                                     TermId subject) const {
  std::span<const SoPair> rel = BySubject(predicate);
  auto lo = std::lower_bound(
      rel.begin(), rel.end(), subject,
      [](const SoPair& pair, TermId value) { return pair.s < value; });
  auto hi = std::upper_bound(
      lo, rel.end(), subject,
      [](TermId value, const SoPair& pair) { return value < pair.s; });
  return rel.subspan(static_cast<std::size_t>(lo - rel.begin()),
                     static_cast<std::size_t>(hi - lo));
}

std::span<const SoPair> VerticalStore::LookupObject(TermId predicate,
                                                    TermId object) const {
  std::span<const SoPair> rel = ByObject(predicate);
  auto lo = std::lower_bound(
      rel.begin(), rel.end(), object,
      [](const SoPair& pair, TermId value) { return pair.o < value; });
  auto hi = std::upper_bound(
      lo, rel.end(), object,
      [](TermId value, const SoPair& pair) { return value < pair.o; });
  return rel.subspan(static_cast<std::size_t>(lo - rel.begin()),
                     static_cast<std::size_t>(hi - lo));
}

std::vector<Triple> VerticalStore::Match(std::optional<TermId> s,
                                         std::optional<TermId> p,
                                         std::optional<TermId> o) const {
  std::vector<Triple> out;
  auto scan_one = [&](TermId predicate) {
    if (s.has_value()) {
      for (const SoPair& pair : LookupSubject(predicate, *s)) {
        if (!o.has_value() || pair.o == *o) {
          out.push_back(Triple{pair.s, predicate, pair.o});
        }
      }
      return;
    }
    if (o.has_value()) {
      for (const SoPair& pair : LookupObject(predicate, *o)) {
        out.push_back(Triple{pair.s, predicate, pair.o});
      }
      return;
    }
    for (const SoPair& pair : BySubject(predicate)) {
      out.push_back(Triple{pair.s, predicate, pair.o});
    }
  };
  if (p.has_value()) {
    scan_one(*p);
  } else {
    // The vertical-partitioning penalty: every predicate table is visited.
    for (TermId predicate : predicates_) scan_one(predicate);
  }
  return out;
}

std::size_t VerticalStore::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& [p, table] : tables_) {
    bytes += table.by_subject.capacity() * sizeof(SoPair);
    bytes += table.by_object.capacity() * sizeof(SoPair);
  }
  return bytes;
}

}  // namespace hsparql::storage
