#include "storage/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <numeric>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "common/varint.h"
#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "storage/triple_store.h"
#include "storage/triple_view.h"

namespace hsparql::storage {

using rdf::Term;
using rdf::TermId;
using rdf::TermKind;
using rdf::Triple;

// Raw ordering sections are the in-memory triple array verbatim; both
// sides of that equation are frozen by the format.
static_assert(sizeof(Triple) == 12, "snapshot format assumes packed triples");
static_assert(std::is_trivially_copyable_v<Triple>);
static_assert(alignof(Triple) <= 8, "sections are 8-aligned");

namespace {

constexpr std::size_t kMaxSections = 64;

template <typename T>
T LoadLE(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void StoreLE(std::uint8_t* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

template <typename T>
void AppendLE(std::vector<std::uint8_t>* out, T v) {
  const std::size_t at = out->size();
  out->resize(at + sizeof(T));
  StoreLE(out->data() + at, v);
}

Status Invalid(std::string msg) {
  return Status::InvalidSnapshot(std::move(msg));
}

/// Triple components permuted into an ordering's sort-priority order.
std::array<TermId, 3> Prioritise(const Triple& t,
                                 const std::array<rdf::Position, 3>& pos) {
  return {t.at(pos[0]), t.at(pos[1]), t.at(pos[2])};
}

/// Encodes a merged relation with the RDF-3X delta codec of
/// storage/compressed.h into a kOrderingVbyte section:
///   u64 block count | u64 payload offset per block | blocks.
void EncodeVbyteOrdering(const TripleView& view, Ordering ordering,
                         std::vector<std::uint8_t>* out) {
  const auto positions = OrderingPositions(ordering);
  std::vector<std::uint8_t> payload;
  std::vector<std::uint64_t> offsets;
  std::array<TermId, 3> prev = {0, 0, 0};
  TripleView::iterator it = view.begin();
  for (std::size_t i = 0; i < view.size(); ++i, ++it) {
    const std::array<TermId, 3> c = Prioritise(*it, positions);
    if (i % kTripleBlockSize == 0) {
      offsets.push_back(payload.size());
      // Blocks are self-contained: the head is stored absolute.
      payload.push_back(0);
      PutVarint(c[0], &payload);
      PutVarint(c[1], &payload);
      PutVarint(c[2], &payload);
      prev = c;
      continue;
    }
    std::uint8_t first_change = 0;
    while (first_change < 3 && c[first_change] == prev[first_change]) {
      ++first_change;
    }
    assert(first_change < 3 && "store views are sorted and deduplicated");
    payload.push_back(first_change);
    PutVarint(c[first_change] - prev[first_change] - 1, &payload);
    for (std::size_t k = first_change + 1; k < 3; ++k) {
      PutVarint(c[k], &payload);
    }
    prev = c;
  }
  AppendLE<std::uint64_t>(out, offsets.size());
  for (std::uint64_t off : offsets) AppendLE<std::uint64_t>(out, off);
  out->insert(out->end(), payload.begin(), payload.end());
}

/// Decodes a kOrderingVbyte section. Every read is bounds-checked: a
/// mutated section yields kInvalidSnapshot, never an out-of-range read.
/// Decoded triples are strictly increasing by construction of the codec
/// (the changed component always grows), so no separate sortedness pass
/// is needed.
Status DecodeVbyteOrdering(std::span<const std::uint8_t> sec,
                           Ordering ordering, std::size_t count,
                           std::vector<Triple>* out) {
  const auto positions = OrderingPositions(ordering);
  const std::string name(OrderingName(ordering));
  if (sec.size() < 8) return Invalid("truncated " + name + " section");
  // Every encoded triple occupies at least one section byte (non-head
  // triples are >= 2 payload bytes, heads >= 4, plus 8 directory bytes
  // per block), so a count beyond the section size cannot be real. Checked
  // before any count-derived arithmetic or allocation: a crafted count
  // near 2^64 would wrap the expected-blocks sum below (e.g. 2^64 - 512
  // yields expected == 0, matching a directory-only file), and reserve()
  // must never be driven past what the section can back.
  if (count > sec.size()) {
    return Invalid("triple count exceeds " + name + " section size");
  }
  const std::uint64_t num_blocks = LoadLE<std::uint64_t>(sec.data());
  const std::uint64_t expected =
      count / kTripleBlockSize + (count % kTripleBlockSize != 0 ? 1 : 0);
  if (num_blocks != expected) {
    return Invalid("block count mismatch in " + name + " section");
  }
  if (sec.size() < 8 + num_blocks * 8) {
    return Invalid("truncated block directory in " + name + " section");
  }
  const std::uint8_t* dir = sec.data() + 8;
  const std::span<const std::uint8_t> payload = sec.subspan(8 + num_blocks * 8);
  out->clear();
  out->reserve(count);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::uint64_t start = LoadLE<std::uint64_t>(dir + 8 * b);
    const std::uint64_t end = b + 1 < num_blocks
                                  ? LoadLE<std::uint64_t>(dir + 8 * (b + 1))
                                  : payload.size();
    if (start > end || end > payload.size()) {
      return Invalid("block offsets out of bounds in " + name + " section");
    }
    std::size_t pos = start;
    std::size_t remaining =
        b + 1 < num_blocks ? kTripleBlockSize : count - b * kTripleBlockSize;
    std::array<std::uint64_t, 3> current = {0, 0, 0};
    bool first = true;
    while (remaining > 0) {
      if (pos >= end) return Invalid("truncated block in " + name + " section");
      const std::uint8_t first_change = payload[pos++];
      if (first) {
        if (first_change != 0) {
          return Invalid("malformed block head in " + name + " section");
        }
        for (std::size_t k = 0; k < 3; ++k) {
          if (!GetVarintChecked(payload.data(), end, &pos, &current[k]) ||
              current[k] > UINT32_MAX) {
            return Invalid("malformed block head in " + name + " section");
          }
        }
        first = false;
      } else {
        if (first_change >= 3) {
          return Invalid("malformed delta header in " + name + " section");
        }
        std::uint64_t gap = 0;
        if (!GetVarintChecked(payload.data(), end, &pos, &gap)) {
          return Invalid("truncated delta in " + name + " section");
        }
        current[first_change] += gap + 1;
        if (current[first_change] > UINT32_MAX) {
          return Invalid("component overflow in " + name + " section");
        }
        for (std::size_t k = first_change + 1; k < 3; ++k) {
          if (!GetVarintChecked(payload.data(), end, &pos, &current[k]) ||
              current[k] > UINT32_MAX) {
            return Invalid("malformed delta in " + name + " section");
          }
        }
      }
      Triple t;
      t.set(positions[0], static_cast<TermId>(current[0]));
      t.set(positions[1], static_cast<TermId>(current[1]));
      t.set(positions[2], static_cast<TermId>(current[2]));
      out->push_back(t);
      --remaining;
    }
    if (pos != end) {
      return Invalid("trailing bytes in " + name + " block");
    }
  }
  return Status::OK();
}

/// TermId bounds pass over one relation: every component a valid
/// dictionary id. A single max-reduction over the component words (Triple
/// is three packed u32s), which the compiler vectorises. Unconditional on
/// the vbyte path (the decode touches every triple anyway); on the raw
/// path only under verify — the default open must not fault in the
/// mapped payload, and Dictionary::Get's empty-term fallback keeps
/// out-of-range ids harmless.
Status BoundsCheckOrdering(std::span<const Triple> rel, Ordering ordering,
                           std::size_t term_count) {
  const auto* words = reinterpret_cast<const std::uint32_t*>(rel.data());
  std::uint32_t max_id = 0;
  for (std::size_t i = 0, n = rel.size() * 3; i < n; ++i) {
    max_id = std::max(max_id, words[i]);
  }
  if (!rel.empty() && max_id >= term_count) {
    return Invalid("triple component out of dictionary range in " +
                   std::string(OrderingName(ordering)) + " section");
  }
  return Status::OK();
}

/// Deep verification of one relation (SnapshotOpenOptions::verify):
/// BoundsCheckOrdering plus strictly increasing (sorted and deduplicated)
/// under the ordering's comparator.
Status VerifyOrdering(std::span<const Triple> rel, Ordering ordering,
                      std::size_t term_count) {
  if (Status s = BoundsCheckOrdering(rel, ordering, term_count); !s.ok()) {
    return s;
  }
  const OrderingLess less(ordering);
  for (std::size_t i = 1; i < rel.size(); ++i) {
    if (!less(rel[i - 1], rel[i])) {
      return Invalid(std::string(OrderingName(ordering)) +
                     " section is not sorted and deduplicated");
    }
  }
  return Status::OK();
}

/// Structural checks over the three dictionary sections that read only
/// the section table — presence and exact sizes — so the zero-copy open
/// can type-check the layout without faulting in a payload page.
/// `out_sorted` is the sorted-id permutation as a span into the mapping —
/// it becomes the base-segment index of the restored Dictionary.
Status ValidateDictionarySections(
    const Snapshot& snap, std::span<const std::uint32_t>* out_sorted) {
  const std::size_t n = snap.term_count();
  const SectionEntry* terms_e = snap.FindSection(SectionKind::kDictTerms);
  const SectionEntry* offs_e = snap.FindSection(SectionKind::kDictOffsets);
  const SectionEntry* sorted_e = snap.FindSection(SectionKind::kDictSorted);
  if (terms_e == nullptr || offs_e == nullptr || sorted_e == nullptr) {
    return Invalid("missing dictionary section");
  }
  const auto sorted_bytes = snap.SectionBytes(*sorted_e);
  if (sorted_bytes.size() != n * sizeof(std::uint32_t)) {
    return Invalid("sorted-id section size mismatch");
  }
  const std::size_t blocks = (n + kTermBlockSize - 1) / kTermBlockSize;
  if (snap.SectionBytes(*offs_e).size() != blocks * sizeof(std::uint64_t)) {
    return Invalid("dictionary offset section size mismatch");
  }
  *out_sorted = std::span<const std::uint32_t>(
      reinterpret_cast<const std::uint32_t*>(sorted_bytes.data()), n);
  return Status::OK();
}

/// Decodes the three dictionary sections into an id-ordered term vector.
/// Runs eagerly at open under deep verification; otherwise deferred into
/// Dictionary::FromSnapshotLazy's loader, so the open itself reads none
/// of these pages. All bounds checks here are unconditional either way.
Status DecodeDictionary(const Snapshot& snap, bool verify,
                        std::vector<Term>* out_terms,
                        std::span<const std::uint32_t>* out_sorted) {
  static const std::string kEmpty;
  const std::size_t n = snap.term_count();
  if (Status s = ValidateDictionarySections(snap, out_sorted); !s.ok()) {
    return s;
  }
  const std::uint32_t* sorted = out_sorted->data();
  const auto offs_bytes =
      snap.SectionBytes(*snap.FindSection(SectionKind::kDictOffsets));
  const std::size_t blocks = (n + kTermBlockSize - 1) / kTermBlockSize;
  const auto data =
      snap.SectionBytes(*snap.FindSection(SectionKind::kDictTerms));

  std::vector<Term> terms(n);
  std::vector<std::uint8_t> seen;
  if (verify) seen.assign(n, 0);
  const Term* prev_term = nullptr;  // sortedness check, across blocks
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::uint64_t start = LoadLE<std::uint64_t>(offs_bytes.data() + 8 * b);
    const std::uint64_t end =
        b + 1 < blocks ? LoadLE<std::uint64_t>(offs_bytes.data() + 8 * (b + 1))
                       : data.size();
    if (start > end || end > data.size()) {
      return Invalid("dictionary block offsets out of bounds");
    }
    std::size_t pos = start;
    const std::string* fc_prev = &kEmpty;  // front-coding resets per block
    const std::size_t r_end = std::min(n, (b + 1) * kTermBlockSize);
    for (std::size_t r = b * kTermBlockSize; r < r_end; ++r) {
      std::uint64_t flags = 0;
      std::uint64_t prefix_len = 0;
      std::uint64_t suffix_len = 0;
      if (!GetVarintChecked(data.data(), end, &pos, &flags) ||
          !GetVarintChecked(data.data(), end, &pos, &prefix_len) ||
          !GetVarintChecked(data.data(), end, &pos, &suffix_len)) {
        return Invalid("truncated term encoding");
      }
      if (flags > 1) return Invalid("unknown term flags");
      if (prefix_len > fc_prev->size()) {
        return Invalid("term prefix length out of range");
      }
      if (suffix_len > end - pos) return Invalid("term suffix out of range");
      const TermKind kind = (flags & 1) != 0 ? TermKind::kLiteral
                                             : TermKind::kIri;
      std::string lexical;
      lexical.reserve(prefix_len + suffix_len);
      lexical.assign(*fc_prev, 0, prefix_len);
      lexical.append(reinterpret_cast<const char*>(data.data() + pos),
                     suffix_len);
      pos += suffix_len;
      const std::uint32_t id = sorted[r];
      if (id >= n) return Invalid("sorted-id out of range");
      if (verify) {
        if (seen[id] != 0) {
          return Invalid("duplicate id in sorted permutation");
        }
        seen[id] = 1;
        if (prev_term != nullptr &&
            !(prev_term->kind < kind ||
              (prev_term->kind == kind && prev_term->lexical < lexical))) {
          return Invalid("dictionary terms not sorted");
        }
      }
      terms[id] = Term{kind, std::move(lexical)};
      fc_prev = &terms[id].lexical;
      prev_term = &terms[id];
    }
    if (verify && pos != end) {
      return Invalid("trailing bytes in dictionary block");
    }
  }
  *out_terms = std::move(terms);
  *out_sorted = std::span<const std::uint32_t>(sorted, n);
  return Status::OK();
}

/// Runs body(i) for i in [0, n) — on the shared pool when the caller
/// asked for parallelism, serially otherwise.
void ForEach(std::size_t n, std::size_t num_threads,
             const std::function<void(std::size_t)>& body) {
  if (num_threads >= 2 && n >= 2) {
    ThreadPool::Shared().ParallelFor(0, n, 1, body);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }
}

Status WriteAll(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("write failed: ") +
                             std::strerror(errno));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

Result<std::shared_ptr<const Snapshot>> Snapshot::Open(
    const std::string& path, const SnapshotOpenOptions& options) {
  MappedFile map;
  HSPARQL_ASSIGN_OR_RETURN(map, MappedFile::Open(path));
  const std::uint8_t* d = map.data();
  if (map.size() < kSnapshotHeaderBytes) {
    return Invalid("file shorter than the snapshot header");
  }
  if (std::memcmp(d, kSnapshotMagic, kSnapshotMagicBytes) != 0) {
    return Invalid("bad magic (not a snapshot file)");
  }
  const std::uint32_t endian = LoadLE<std::uint32_t>(d + 8);
  if (endian != kSnapshotEndianSentinel) {
    if (endian == 0x04030201u) {
      return Invalid("wrong endianness (image written on a byte-swapped host)");
    }
    return Invalid("bad endian sentinel");
  }
  const std::uint32_t version = LoadLE<std::uint32_t>(d + 12);
  if (version != kSnapshotVersion) {
    return Invalid("unsupported snapshot version " + std::to_string(version));
  }
  // The header checksum is always verified — it is 56 bytes, and every
  // downstream bounds check trusts the counts it covers.
  if (Hash64({d, 56}) != LoadLE<std::uint64_t>(d + 56)) {
    return Invalid("header checksum mismatch");
  }
  if (LoadLE<std::uint64_t>(d + 16) != map.size()) {
    return Invalid("file size mismatch (truncated or padded image)");
  }
  const std::uint64_t triple_count = LoadLE<std::uint64_t>(d + 24);
  const std::uint64_t term_count = LoadLE<std::uint64_t>(d + 32);
  // Hash64 is non-cryptographic, so a crafted header can carry any counts
  // behind a valid checksum. Bound both against the file size before any
  // count-derived arithmetic runs: every valid image stores at least
  // sizeof(Triple) bytes per triple across the six orderings (raw is the
  // array verbatim; vbyte needs >= 2 payload bytes per triple per
  // ordering) and exactly 4 bytes per term in the sorted-id section, so
  // larger counts cannot name a real image — and would otherwise wrap
  // `count * stride` checks downstream (e.g. 2^62 * sizeof(Triple) == 0
  // mod 2^64, making an empty section "match" 2^62 triples).
  if (triple_count > map.size() / sizeof(Triple)) {
    return Invalid("implausible triple count");
  }
  if (term_count > map.size() / sizeof(std::uint32_t)) {
    return Invalid("implausible term count");
  }
  const std::uint32_t section_count = LoadLE<std::uint32_t>(d + 40);
  const std::uint32_t flags = LoadLE<std::uint32_t>(d + 44);
  if (section_count > kMaxSections) {
    return Invalid("implausible section count");
  }
  const std::size_t table_bytes =
      std::size_t{section_count} * kSnapshotSectionEntryBytes;
  if (kSnapshotHeaderBytes + table_bytes > map.size()) {
    return Invalid("truncated section table");
  }
  if (Hash64({d + kSnapshotHeaderBytes, table_bytes}) !=
      LoadLE<std::uint64_t>(d + 48)) {
    return Invalid("section table checksum mismatch");
  }

  auto snap = std::shared_ptr<Snapshot>(new Snapshot());
  snap->triple_count_ = triple_count;
  snap->term_count_ = term_count;
  snap->compressed_ = (flags & 1u) != 0;
  snap->sections_.reserve(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint8_t* row =
        d + kSnapshotHeaderBytes + i * kSnapshotSectionEntryBytes;
    SectionEntry e;
    e.kind = LoadLE<std::uint32_t>(row);
    e.aux = LoadLE<std::uint32_t>(row + 4);
    e.offset = LoadLE<std::uint64_t>(row + 8);
    e.bytes = LoadLE<std::uint64_t>(row + 16);
    e.checksum = LoadLE<std::uint64_t>(row + 24);
    if (e.offset > map.size() || e.bytes > map.size() - e.offset) {
      return Invalid("section extends past end of file");
    }
    if (e.offset % 8 != 0) return Invalid("misaligned section");
    snap->sections_.push_back(e);
  }
  snap->map_ = std::move(map);

  // One ordering section per collation order, of the kind the header
  // flags announce.
  const SectionKind want = snap->compressed_ ? SectionKind::kOrderingVbyte
                                             : SectionKind::kOrderingRaw;
  for (Ordering o : kAllOrderings) {
    const auto aux = static_cast<std::uint32_t>(o);
    if (snap->FindSection(want, aux) == nullptr) {
      return Invalid("missing " + std::string(OrderingName(o)) + " section");
    }
  }

  if (options.verify) {
    // Payload checksums, fanned out: the orderings dominate and hash
    // independently.
    std::vector<Status> statuses(snap->sections_.size());
    ForEach(snap->sections_.size(), options.num_threads, [&](std::size_t i) {
      const SectionEntry& e = snap->sections_[i];
      if (Hash64(snap->SectionBytes(e)) != e.checksum) {
        statuses[i] = Invalid("section checksum mismatch (kind " +
                              std::to_string(e.kind) + ", aux " +
                              std::to_string(e.aux) + ")");
      }
    });
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
  }
  return std::shared_ptr<const Snapshot>(std::move(snap));
}

const SectionEntry* Snapshot::FindSection(SectionKind kind,
                                          std::uint32_t aux) const {
  for (const SectionEntry& e : sections_) {
    if (e.kind == static_cast<std::uint32_t>(kind) && e.aux == aux) return &e;
  }
  return nullptr;
}

Result<TripleStore> TripleStore::OpenSnapshot(const std::string& path) {
  return OpenSnapshot(path, SnapshotOpenOptions{});
}

Result<TripleStore> TripleStore::OpenSnapshot(
    const std::string& path, const SnapshotOpenOptions& options) {
  std::shared_ptr<const Snapshot> snap;
  HSPARQL_ASSIGN_OR_RETURN(snap, Snapshot::Open(path, options));

  // Deep verification decodes (and checks) the dictionary here; the
  // default open only type-checks the section layout and defers the
  // decode into the dictionary's lazy loader — no payload page of the
  // image is read before a query needs it.
  std::vector<Term> terms;
  std::span<const std::uint32_t> sorted;
  if (options.verify) {
    if (Status s = DecodeDictionary(*snap, true, &terms, &sorted); !s.ok()) {
      return s;
    }
  } else {
    if (Status s = ValidateDictionarySections(*snap, &sorted); !s.ok()) {
      return s;
    }
  }
  const std::size_t term_count = snap->term_count();

  TripleStore store;
  const std::size_t count = snap->triple_count();
  std::array<Status, kNumOrderings> statuses;
  if (!snap->compressed_orderings()) {
    // Zero-copy: the base levels are spans straight into the mapping.
    for (Ordering o : kAllOrderings) {
      const std::size_t i = static_cast<std::size_t>(o);
      const SectionEntry* e =
          snap->FindSection(SectionKind::kOrderingRaw, static_cast<std::uint32_t>(o));
      const auto bytes = snap->SectionBytes(*e);
      // Division form: overflow-proof even without the header-count
      // plausibility bound in Snapshot::Open.
      if (bytes.size() % sizeof(Triple) != 0 ||
          bytes.size() / sizeof(Triple) != count) {
        return Invalid("size mismatch in " + std::string(OrderingName(o)) +
                       " section");
      }
      store.mmap_bases_[i] = std::span<const Triple>(
          reinterpret_cast<const Triple*>(bytes.data()), count);
    }
    // The default open deliberately never touches these pages — that is
    // the zero-copy cold start (faulting in 6x the triple bytes costs
    // more than everything else combined). Out-of-range components are
    // made harmless at the dictionary instead (Dictionary::Get's empty-
    // term fallback); verify reads everything and checks it all.
    if (options.verify) {
      ForEach(kNumOrderings, options.num_threads, [&](std::size_t i) {
        statuses[i] = VerifyOrdering(store.mmap_bases_[i], kAllOrderings[i],
                                     term_count);
      });
    }
  } else {
    // Compressed image: decode each ordering into a heap base level. The
    // codec yields sorted, deduplicated output by construction; the
    // TermId bounds pass is unconditional, as on the raw path.
    ForEach(kNumOrderings, options.num_threads, [&](std::size_t i) {
      const Ordering o = kAllOrderings[i];
      const SectionEntry* e =
          snap->FindSection(SectionKind::kOrderingVbyte, static_cast<std::uint32_t>(o));
      statuses[i] =
          DecodeVbyteOrdering(snap->SectionBytes(*e), o, count,
                              &store.relations_[i]);
      if (statuses[i].ok()) {
        statuses[i] =
            BoundsCheckOrdering(store.relations_[i], o, term_count);
      }
    });
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }

  if (options.verify) {
    store.dict_ = rdf::Dictionary::FromSnapshot(std::move(terms), sorted);
  } else {
    // The loader pins the mapping via its own shared_ptr, so the decode
    // stays valid even against a dictionary that outlives the store.
    store.dict_ = rdf::Dictionary::FromSnapshotLazy(
        term_count, sorted,
        [snap](std::vector<Term>* out) {
          std::span<const std::uint32_t> unused;
          return DecodeDictionary(*snap, /*verify=*/false, out, &unused).ok();
        });
  }
  store.snapshot_ = std::move(snap);
  return store;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

namespace {

struct SectionBuf {
  SectionKind kind;
  std::uint32_t aux;
  std::vector<std::uint8_t> bytes;
};

}  // namespace

Status TripleStore::SaveSnapshot(const std::string& path) const {
  return SaveSnapshot(path, SnapshotWriteOptions{});
}

Status TripleStore::SaveSnapshot(const std::string& path,
                                 const SnapshotWriteOptions& options) const {
  const std::size_t n_terms = dict_.size();
  const std::size_t n_triples = size();

  // Sorted-id permutation: the base-segment index of the reopened store.
  std::vector<std::uint32_t> sorted(n_terms);
  std::iota(sorted.begin(), sorted.end(), 0u);
  std::sort(sorted.begin(), sorted.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return rdf::Dictionary::TermOrderLess(dict_.Get(a), dict_.Get(b));
            });

  std::vector<SectionBuf> sections;
  {
    SectionBuf terms{SectionKind::kDictTerms, 0, {}};
    SectionBuf offsets{SectionKind::kDictOffsets, 0, {}};
    std::string_view prev;
    for (std::size_t r = 0; r < n_terms; ++r) {
      const Term& t = dict_.Get(sorted[r]);
      if (r % kTermBlockSize == 0) {
        AppendLE<std::uint64_t>(&offsets.bytes, terms.bytes.size());
        prev = {};  // front-coding restarts at every block head
      }
      const std::size_t max_prefix = std::min(prev.size(), t.lexical.size());
      std::size_t prefix = 0;
      while (prefix < max_prefix && prev[prefix] == t.lexical[prefix]) {
        ++prefix;
      }
      PutVarint(t.kind == TermKind::kLiteral ? 1 : 0, &terms.bytes);
      PutVarint(prefix, &terms.bytes);
      PutVarint(t.lexical.size() - prefix, &terms.bytes);
      terms.bytes.insert(
          terms.bytes.end(),
          t.lexical.begin() + static_cast<std::ptrdiff_t>(prefix),
          t.lexical.end());
      prev = t.lexical;
    }
    sections.push_back(std::move(terms));
    sections.push_back(std::move(offsets));
  }
  {
    SectionBuf s{SectionKind::kDictSorted, 0, {}};
    s.bytes.resize(n_terms * sizeof(std::uint32_t));
    if (n_terms > 0) {
      std::memcpy(s.bytes.data(), sorted.data(), s.bytes.size());
    }
    sections.push_back(std::move(s));
  }
  for (Ordering o : kAllOrderings) {
    SectionBuf s{options.compress_orderings ? SectionKind::kOrderingVbyte
                                            : SectionKind::kOrderingRaw,
                 static_cast<std::uint32_t>(o),
                 {}};
    const TripleView view = Scan(o);
    if (options.compress_orderings) {
      EncodeVbyteOrdering(view, o, &s.bytes);
    } else {
      s.bytes.resize(n_triples * sizeof(Triple));
      if (delta_size() == 0) {
        // Base-only store: one straight copy (possibly mapping-to-file).
        const auto base = BaseRelation(o);
        if (!base.empty()) {
          std::memcpy(s.bytes.data(), base.data(), base.size_bytes());
        }
      } else {
        TripleView::iterator it = view.begin();
        for (std::size_t i = 0; i < n_triples; ++i, ++it) {
          const Triple t = *it;
          std::memcpy(s.bytes.data() + i * sizeof(Triple), &t, sizeof(Triple));
        }
      }
    }
    sections.push_back(std::move(s));
  }

  // Layout: header, table, then 8-aligned sections.
  std::vector<SectionEntry> entries;
  entries.reserve(sections.size());
  std::uint64_t cursor = kSnapshotHeaderBytes +
                         sections.size() * kSnapshotSectionEntryBytes;
  for (const SectionBuf& s : sections) {
    cursor = (cursor + 7) & ~std::uint64_t{7};
    entries.push_back(SectionEntry{static_cast<std::uint32_t>(s.kind), s.aux,
                                   cursor, s.bytes.size(),
                                   Hash64(s.bytes)});
    cursor += s.bytes.size();
  }
  const std::uint64_t file_size = cursor;

  std::vector<std::uint8_t> table;
  table.reserve(entries.size() * kSnapshotSectionEntryBytes);
  for (const SectionEntry& e : entries) {
    AppendLE<std::uint32_t>(&table, e.kind);
    AppendLE<std::uint32_t>(&table, e.aux);
    AppendLE<std::uint64_t>(&table, e.offset);
    AppendLE<std::uint64_t>(&table, e.bytes);
    AppendLE<std::uint64_t>(&table, e.checksum);
  }

  std::vector<std::uint8_t> header(kSnapshotHeaderBytes, 0);
  std::memcpy(header.data(), kSnapshotMagic, kSnapshotMagicBytes);
  StoreLE<std::uint32_t>(header.data() + 8, kSnapshotEndianSentinel);
  StoreLE<std::uint32_t>(header.data() + 12, kSnapshotVersion);
  StoreLE<std::uint64_t>(header.data() + 16, file_size);
  StoreLE<std::uint64_t>(header.data() + 24, n_triples);
  StoreLE<std::uint64_t>(header.data() + 32, n_terms);
  StoreLE<std::uint32_t>(header.data() + 40,
                         static_cast<std::uint32_t>(sections.size()));
  StoreLE<std::uint32_t>(header.data() + 44,
                         options.compress_orderings ? 1u : 0u);
  StoreLE<std::uint64_t>(header.data() + 48, Hash64(table));
  StoreLE<std::uint64_t>(header.data() + 56, Hash64({header.data(), 56}));

  // Write to a unique temp file in the target directory, then rename into
  // place: a crashed save never leaves a half-written image under `path`,
  // and concurrent saves to the same path (legal — SaveSnapshot is const
  // and callable under a shared store lock) each write their own temp
  // file instead of interleaving into one.
  std::string tmp = path + ".tmp.XXXXXX";
  const int fd = ::mkstemp(tmp.data());
  if (fd < 0) {
    return Status::IoError("cannot create temp file for " + path + ": " +
                           std::strerror(errno));
  }
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  ::fchmod(fd, 0644);  // mkstemp creates 0600; match a plain O_CREAT
  Status st = WriteAll(fd, header.data(), header.size());
  if (st.ok()) st = WriteAll(fd, table.data(), table.size());
  std::uint64_t written = kSnapshotHeaderBytes + table.size();
  static constexpr std::uint8_t kPad[8] = {0};
  for (std::size_t i = 0; st.ok() && i < sections.size(); ++i) {
    assert(entries[i].offset >= written &&
           entries[i].offset - written < 8);
    st = WriteAll(fd, kPad, entries[i].offset - written);
    if (st.ok()) {
      st = WriteAll(fd, sections[i].bytes.data(), sections[i].bytes.size());
    }
    written = entries[i].offset + entries[i].bytes;
  }
  if (st.ok() && ::fsync(fd) != 0) {
    st = Status::IoError(std::string("fsync failed: ") + std::strerror(errno));
  }
  ::close(fd);
  if (st.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    st = Status::IoError("cannot rename " + tmp + " to " + path + ": " +
                         std::strerror(errno));
  } else if (st.ok()) {
    // The file's bytes are durable (fsync above), but the rename itself is
    // a directory-entry update: without an fsync of the containing
    // directory, a power failure can roll the replacement back.
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd < 0) {
      st = Status::IoError("cannot open directory " + dir + " for fsync: " +
                           std::strerror(errno));
    } else {
      if (::fsync(dfd) != 0) {
        st = Status::IoError("cannot fsync directory " + dir + ": " +
                             std::strerror(errno));
      }
      ::close(dfd);
    }
  }
  // After a successful rename the temp name no longer exists; this unlink
  // then fails harmlessly (it never touches `path`).
  if (!st.ok()) ::unlink(tmp.c_str());
  return st;
}

}  // namespace hsparql::storage
