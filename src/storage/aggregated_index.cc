#include "storage/aggregated_index.h"

#include <algorithm>
#include <cassert>

namespace hsparql::storage {

using rdf::Position;
using rdf::TermId;
using rdf::Triple;

std::pair<Position, Position> PairPositions(PairKind kind) {
  switch (kind) {
    case PairKind::kSp:
      return {Position::kSubject, Position::kPredicate};
    case PairKind::kPs:
      return {Position::kPredicate, Position::kSubject};
    case PairKind::kSo:
      return {Position::kSubject, Position::kObject};
    case PairKind::kOs:
      return {Position::kObject, Position::kSubject};
    case PairKind::kPo:
      return {Position::kPredicate, Position::kObject};
    case PairKind::kOp:
      return {Position::kObject, Position::kPredicate};
  }
  assert(false);
  return {Position::kSubject, Position::kPredicate};
}

std::string_view PairKindName(PairKind kind) {
  switch (kind) {
    case PairKind::kSp:
      return "sp";
    case PairKind::kPs:
      return "ps";
    case PairKind::kSo:
      return "so";
    case PairKind::kOs:
      return "os";
    case PairKind::kPo:
      return "po";
    case PairKind::kOp:
      return "op";
  }
  return "??";
}

namespace {

/// The collation order that sorts (major, minor) as its leading keys.
Ordering OrderingFor(PairKind kind) {
  auto [major, minor] = PairPositions(kind);
  for (Ordering ordering : kAllOrderings) {
    auto positions = OrderingPositions(ordering);
    if (positions[0] == major && positions[1] == minor) return ordering;
  }
  assert(false);
  return Ordering::kSpo;
}

}  // namespace

AggregatedIndexes AggregatedIndexes::Build(const TripleStore& store) {
  AggregatedIndexes idx;
  // Pair indexes: run-length over the (major, minor)-sorted relations.
  for (PairKind kind : kAllPairKinds) {
    auto [major, minor] = PairPositions(kind);
    auto& entries = idx.pairs_[static_cast<std::size_t>(kind)];
    for (const Triple& t : store.Scan(OrderingFor(kind))) {
      TermId a = t.at(major);
      TermId b = t.at(minor);
      if (!entries.empty() && entries.back().major == a &&
          entries.back().minor == b) {
        ++entries.back().count;
      } else {
        entries.push_back(PairEntry{a, b, 1});
      }
    }
  }
  // One-value indexes: run-length over the position-major relations.
  const std::array<std::pair<Position, Ordering>, 3> singles = {
      std::pair{Position::kSubject, Ordering::kSpo},
      std::pair{Position::kPredicate, Ordering::kPso},
      std::pair{Position::kObject, Ordering::kOps}};
  for (const auto& [pos, ordering] : singles) {
    auto& entries = idx.values_[static_cast<std::size_t>(pos)];
    for (const Triple& t : store.Scan(ordering)) {
      TermId v = t.at(pos);
      if (!entries.empty() && entries.back().value == v) {
        ++entries.back().count;
      } else {
        entries.push_back(ValueEntry{v, 1});
      }
    }
  }
  return idx;
}

std::uint64_t AggregatedIndexes::PairCount(PairKind kind, TermId major,
                                           TermId minor) const {
  const auto& entries = pairs_[static_cast<std::size_t>(kind)];
  auto it = std::lower_bound(
      entries.begin(), entries.end(), std::pair{major, minor},
      [](const PairEntry& e, const std::pair<TermId, TermId>& key) {
        return std::tie(e.major, e.minor) < std::tie(key.first, key.second);
      });
  if (it == entries.end() || it->major != major || it->minor != minor) {
    return 0;
  }
  return it->count;
}

std::uint64_t AggregatedIndexes::ValueCount(Position pos,
                                            TermId value) const {
  const auto& entries = values_[static_cast<std::size_t>(pos)];
  auto it = std::lower_bound(entries.begin(), entries.end(), value,
                             [](const ValueEntry& e, TermId v) {
                               return e.value < v;
                             });
  if (it == entries.end() || it->value != value) return 0;
  return it->count;
}

std::span<const AggregatedIndexes::PairEntry>
AggregatedIndexes::PairsWithMajor(PairKind kind, TermId major) const {
  const auto& entries = pairs_[static_cast<std::size_t>(kind)];
  auto lo = std::lower_bound(entries.begin(), entries.end(), major,
                             [](const PairEntry& e, TermId v) {
                               return e.major < v;
                             });
  auto hi = std::upper_bound(lo, entries.end(), major,
                             [](TermId v, const PairEntry& e) {
                               return v < e.major;
                             });
  return std::span<const PairEntry>(
      entries.data() + (lo - entries.begin()),
      static_cast<std::size_t>(hi - lo));
}

std::size_t AggregatedIndexes::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& p : pairs_) bytes += p.capacity() * sizeof(PairEntry);
  for (const auto& v : values_) bytes += v.capacity() * sizeof(ValueEntry);
  return bytes;
}

}  // namespace hsparql::storage
