// Delta-compressed sorted triple relations, after RDF-3X (§2 of the
// paper): "triples are compressed by lexicographically sorting them and
// storing only the changes between them. ... Despite the exhaustive
// indexing employed by RDF-3X, the size of the indexes does not exceed the
// size of the dataset thanks to the compression scheme."
//
// Encoding, per triple in collation order (components permuted to the
// ordering's sort priority, c0 major .. c2 minor):
//   header byte = index (0..3) of the first component differing from the
//   predecessor (3 == identical triple, never produced by deduped input;
//   0 for the first triple);
//   then a varint gap (delta - 1 for the changed component, except the
//   very first triple which stores the absolute value), followed by the
//   absolute values of the lower-priority components.
// A block directory (first triple of every kBlockSize-triple block) makes
// prefix lookups a binary search over block heads plus a bounded
// decompression scan — the shape of RDF-3X's clustered B+-tree leaves.
#ifndef HSPARQL_STORAGE_COMPRESSED_H_
#define HSPARQL_STORAGE_COMPRESSED_H_

#include <cstdint>
#include <span>
#include <vector>

#include "rdf/triple.h"
#include "storage/ordering.h"
#include "storage/triple_store.h"
#include "storage/triple_view.h"

namespace hsparql::storage {

/// One sorted relation, delta-compressed.
class CompressedRelation {
 public:
  static constexpr std::size_t kBlockSize = 1024;

  /// Compresses `triples` (a merged store view or a plain span), which
  /// must already be sorted by `ordering` and deduplicated.
  static CompressedRelation Build(const TripleView& triples,
                                  Ordering ordering);
  static CompressedRelation Build(std::span<const rdf::Triple> triples,
                                  Ordering ordering) {
    return Build(TripleView(triples, ordering), ordering);
  }

  Ordering ordering() const { return ordering_; }
  std::size_t size() const { return count_; }
  std::size_t byte_size() const { return bytes_.size(); }
  /// Compressed bytes per triple (raw is sizeof(Triple) = 12).
  double bytes_per_triple() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(bytes_.size()) /
                             static_cast<double>(count_);
  }

  /// Decompresses the whole relation (round-trip check, full scans).
  std::vector<rdf::Triple> Decompress() const;

  /// All triples matching the bound prefix of the ordering, decompressed.
  /// Equivalent to TripleStore::LookupPrefix on the same data.
  std::vector<rdf::Triple> LookupPrefix(
      std::span<const Binding> bindings) const;

 private:
  CompressedRelation() = default;

  /// Decompresses block `b` into `out` (appending).
  void DecompressBlock(std::size_t b, std::vector<rdf::Triple>* out) const;

  Ordering ordering_ = Ordering::kSpo;
  std::size_t count_ = 0;
  std::vector<std::uint8_t> bytes_;
  std::vector<std::size_t> block_offsets_;   // byte offset per block
  std::vector<rdf::Triple> block_heads_;     // first triple per block
};

}  // namespace hsparql::storage

#endif  // HSPARQL_STORAGE_COMPRESSED_H_
