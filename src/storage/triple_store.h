// The columnar triple store: six sorted relations as access paths.
//
// This is the MonetDB substitute described in DESIGN.md §2: every collation
// order of the (deduplicated) triple table is materialised as a sorted
// vector, and selections are evaluated by binary search over the bound
// prefix of an ordering ("logarithmic for binary search in MonetDB", §6.2).
#ifndef HSPARQL_STORAGE_TRIPLE_STORE_H_
#define HSPARQL_STORAGE_TRIPLE_STORE_H_

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "rdf/triple.h"
#include "storage/ordering.h"

namespace hsparql::storage {

/// A constant binding of one triple-pattern position, used to express
/// prefix lookups: "predicate = 42".
struct Binding {
  rdf::Position position;
  rdf::TermId value;
};

/// Immutable store over a dataset. Construction sorts the data six ways;
/// all reads are lock-free and allocation-free.
class TripleStore {
 public:
  /// Builds a store from `graph`, consuming it (the dictionary moves into
  /// the store). Duplicate triples are removed.
  static TripleStore Build(rdf::Graph&& graph);

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  /// Number of distinct triples.
  std::size_t size() const { return relations_[0].size(); }

  const rdf::Dictionary& dictionary() const { return dict_; }
  rdf::Dictionary& mutable_dictionary() { return dict_; }

  /// The full sorted relation for an ordering.
  std::span<const rdf::Triple> Scan(Ordering ordering) const {
    return relations_[static_cast<std::size_t>(ordering)];
  }

  /// All triples whose components match every binding, as a contiguous
  /// range of the given ordering. The bound positions must form a prefix of
  /// the ordering's sort priority (0, 1 or 2 leading positions): with 0
  /// bindings this is Scan(); with more, an equal_range binary search.
  /// Returns an empty span when nothing matches.
  std::span<const rdf::Triple> LookupPrefix(
      Ordering ordering, std::span<const Binding> bindings) const;

  /// Exact number of triples matching the bindings (any subset of
  /// positions; picks an ordering where they form a prefix). This is the
  /// information RDF-3X's aggregated indexes provide.
  std::size_t CountMatching(std::span<const Binding> bindings) const;

  /// True if the (fully bound) triple exists.
  bool Contains(const rdf::Triple& triple) const;

 private:
  TripleStore() = default;

  rdf::Dictionary dict_;
  std::array<std::vector<rdf::Triple>, kNumOrderings> relations_;
};

/// Chooses an ordering whose sort priority starts with exactly the given
/// bound positions (in any order among themselves). E.g. bound {p, o} ->
/// kPos or kOps; the first match in kAllOrderings is returned.
Ordering OrderingWithBoundPrefix(std::span<const rdf::Position> bound);

/// A contiguous half-open index range [begin, end).
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
  friend bool operator==(const IndexRange&, const IndexRange&) = default;
};

/// Range-partitions a sorted key column into at most `parts` contiguous
/// chunks of roughly equal size whose cut points fall on key boundaries:
/// all occurrences of one key land in the same chunk. Used by the parallel
/// merge join, which may only split its inputs between key groups. Returns
/// fewer chunks when heavy keys straddle the ideal cut points (possibly a
/// single chunk when one key dominates); never returns an empty chunk.
std::vector<IndexRange> SplitAtKeyBoundaries(
    std::span<const rdf::TermId> sorted_keys, std::size_t parts);

/// Same, over a sorted relation keyed on the triple component at
/// `key_position` — the morsel source for parallel scans that must respect
/// group boundaries of the relation's major sort key.
std::vector<std::span<const rdf::Triple>> SplitAtKeyBoundaries(
    std::span<const rdf::Triple> sorted_relation, rdf::Position key_position,
    std::size_t parts);

}  // namespace hsparql::storage

#endif  // HSPARQL_STORAGE_TRIPLE_STORE_H_
