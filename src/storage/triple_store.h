// The columnar triple store: six sorted relations as access paths.
//
// This is the MonetDB substitute described in DESIGN.md §2: every collation
// order of the (deduplicated) triple table is materialised as a sorted
// vector, and selections are evaluated by binary search over the bound
// prefix of an ordering ("logarithmic for binary search in MonetDB", §6.2).
//
// Since PR 4 each ordering is a two-level structure: an immutable sorted
// base plus a small sorted delta holding incrementally added triples.
// Reads (Scan/LookupPrefix) return a TripleView that merges the levels on
// the fly; a size-ratio-triggered compaction folds the delta back into the
// base with one O(n+m) merge per ordering. Bulk construction can fan the
// sorts out over common::ThreadPool::Shared() — the result is
// byte-identical to the serial build.
//
// The base level is backend-pluggable (DESIGN.md §4k): it is either the
// heap vectors Build() sorts, or — for a store restored with
// OpenSnapshot() — zero-copy spans into an mmap'd snapshot image
// (storage/snapshot.h). Every read path goes through the same
// std::span/TripleView surface, so the executor, the leapfrog cursors and
// the planners are backend-agnostic by construction; deltas stay on the
// heap and the first compaction migrates a mapped base back to vectors.
#ifndef HSPARQL_STORAGE_TRIPLE_STORE_H_
#define HSPARQL_STORAGE_TRIPLE_STORE_H_

#include <array>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "rdf/triple.h"
#include "storage/ordering.h"
#include "storage/triple_view.h"

namespace hsparql::storage {

class Snapshot;
struct SnapshotWriteOptions;
struct SnapshotOpenOptions;

/// Which storage backend serves a store's base levels (observability;
/// Engine::stats(), /healthz). The read API is identical over both.
enum class StoreBackend : std::uint8_t {
  kInMemory = 0,      // heap vectors built by TripleStore::Build
  kMmapSnapshot = 1,  // zero-copy spans into an mmap'd snapshot image
};

/// "in_memory" / "mmap_snapshot" — the stable label used by metrics,
/// /healthz and the stats snapshot.
std::string_view StoreBackendName(StoreBackend backend);

/// Byte-level residency of a store, for the obs layer: how much of the
/// triple data is served from the mapped image vs from heap vectors.
struct StorageFootprint {
  StoreBackend backend = StoreBackend::kInMemory;
  /// Size of the open snapshot image (0 for in-memory stores).
  std::size_t snapshot_bytes = 0;
  /// Ordering bytes served zero-copy from the mapping. Drops to 0 after a
  /// compaction folds the mmap'd base into fresh heap vectors.
  std::size_t mapped_triple_bytes = 0;
  /// Ordering bytes in heap vectors (base relations + deltas).
  std::size_t heap_triple_bytes = 0;
  std::size_t dictionary_terms = 0;
  /// Terms still indexed through the snapshot's sorted-id permutation.
  std::size_t base_dictionary_terms = 0;
};

/// A constant binding of one triple-pattern position, used to express
/// prefix lookups: "predicate = 42".
struct Binding {
  rdf::Position position;
  rdf::TermId value;
};

/// Store over a dataset: six sorted relations, each a base level plus a
/// sorted delta level. All reads are lock-free and allocation-free; the
/// only mutation is the two-phase PrepareAdd (read-only, can run
/// concurrently with readers) / Apply (requires external exclusive
/// locking, O(new terms) + vector swaps).
class TripleStore {
 public:
  /// Delta threshold: a delta holding >= base/kCompactionRatio triples is
  /// folded into the base during PrepareAdd (one linear merge per
  /// ordering), keeping merge-on-read overhead bounded.
  static constexpr std::size_t kCompactionRatio = 4;

  /// Builds a store from `graph`, consuming it (the dictionary moves into
  /// the store). Duplicate triples are removed. With `num_threads` >= 2
  /// the sorts run chunk-parallel on common::ThreadPool::Shared()
  /// (selection-split parallel merges), producing byte-identical relations
  /// to the serial build.
  static TripleStore Build(rdf::Graph&& graph, std::size_t num_threads = 0);

  /// Opens a snapshot image (storage/snapshot.h) as a store: the six base
  /// relations are spans straight into the mmap'd file (zero-copy; no
  /// sort, no re-interning), the dictionary is restored with its
  /// term -> id index borrowed from the image. The delta level starts
  /// empty and AddTriples/compaction work unchanged — a compaction folds
  /// the mapped base into fresh heap vectors. Typed kInvalidSnapshot on
  /// any validation failure; see SnapshotOpenOptions for the
  /// verification/trust knobs.
  static Result<TripleStore> OpenSnapshot(const std::string& path);
  static Result<TripleStore> OpenSnapshot(const std::string& path,
                                          const SnapshotOpenOptions& options);

  /// Serialises the merged store (base ∪ delta per ordering, plus the
  /// dictionary) into a snapshot image at `path`, written to a temp file
  /// and renamed into place. const — callable under a shared store lock
  /// concurrently with readers (engine::StoreView), so a serving process
  /// re-snapshots off-lock.
  Status SaveSnapshot(const std::string& path) const;
  Status SaveSnapshot(const std::string& path,
                      const SnapshotWriteOptions& options) const;

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  /// Number of distinct triples (base + delta).
  std::size_t size() const { return base_size() + delta_size(); }
  std::size_t base_size() const { return base_level(0).size(); }
  std::size_t delta_size() const { return deltas_[0].size(); }

  /// Which backend the base levels are served from. A snapshot-opened
  /// store reports kMmapSnapshot for its whole lifetime (the image also
  /// backs the dictionary index), even after a compaction moved the
  /// ordering data to heap vectors — footprint() has the byte-level view.
  StoreBackend backend() const {
    return snapshot_ == nullptr ? StoreBackend::kInMemory
                                : StoreBackend::kMmapSnapshot;
  }

  /// The open snapshot image, or null for an in-memory store.
  const Snapshot* snapshot() const { return snapshot_.get(); }

  /// Mapped-vs-heap residency for the obs layer.
  StorageFootprint footprint() const;

  const rdf::Dictionary& dictionary() const { return dict_; }
  rdf::Dictionary& mutable_dictionary() { return dict_; }

  /// The full sorted relation for an ordering, merged over both levels.
  TripleView Scan(Ordering ordering) const {
    const auto i = static_cast<std::size_t>(ordering);
    return TripleView(base_level(i), deltas_[i], ordering);
  }

  /// The base level of an ordering as a contiguous span — for consumers
  /// that require raw storage (compression, pointer-based splitting).
  /// Equals Scan() whenever delta_size() == 0. May point into the mmap'd
  /// snapshot image; valid for the lifetime of the store.
  std::span<const rdf::Triple> BaseRelation(Ordering ordering) const {
    return base_level(static_cast<std::size_t>(ordering));
  }

  /// All triples whose components match every binding, as a merged range
  /// of the given ordering. The bound positions must form a prefix of the
  /// ordering's sort priority (0, 1 or 2 leading positions): with 0
  /// bindings this is Scan(); with more, an equal_range binary search per
  /// level. Returns an empty view when nothing matches.
  TripleView LookupPrefix(Ordering ordering,
                          std::span<const Binding> bindings) const;

  /// Exact number of triples matching the bindings (any subset of
  /// positions; picks an ordering where they form a prefix). This is the
  /// information RDF-3X's aggregated indexes provide.
  std::size_t CountMatching(std::span<const Binding> bindings) const;

  /// True if the (fully bound) triple exists in either level.
  bool Contains(const rdf::Triple& triple) const;

  /// The staged, not-yet-visible product of an incremental add: the terms
  /// to intern and the six replacement levels. Built entirely outside the
  /// store by PrepareAdd; Apply swaps it in.
  struct PendingUpdate {
    /// Terms absent from the dictionary, in first-occurrence order; Apply
    /// interns them, which must yield ids dict.size(), dict.size()+1, ...
    std::vector<rdf::Term> new_terms;
    /// When `compacted`: the six merged base relations replacing both
    /// levels. Otherwise: the six new delta levels (old delta ∪ additions).
    std::array<std::vector<rdf::Triple>, kNumOrderings> levels;
    bool compacted = false;
    /// Distinct genuinely-new triples (not in the store, deduplicated).
    std::size_t added = 0;

    bool no_change() const { return added == 0; }
  };

  /// Stages `triples` for insertion: resolves/assigns TermIds (new terms
  /// get provisional ids following the current dictionary), drops triples
  /// already present, sorts the survivors six ways, merges them with the
  /// current delta and — when the delta outgrows base/kCompactionRatio —
  /// pre-merges everything into fresh base relations. Read-only: safe to
  /// run concurrently with readers, but writers must be serialised
  /// externally (provisional ids assume no interleaving PrepareAdd).
  /// With `num_threads` >= 2 the six orderings are staged as pool tasks.
  ///
  /// Lock discipline: the store itself is lock-free by construction — the
  /// const-ness of this method is the whole staging contract. The owner
  /// holds the capabilities: engine::Engine calls PrepareAdd under its
  /// shared store_mu_ (concurrently with queries) with writers serialised
  /// on mutation_mu_, both machine-checked at that layer (DESIGN.md §4i).
  PendingUpdate PrepareAdd(std::span<const std::array<rdf::Term, 3>> triples,
                           std::size_t num_threads = 0) const;

  /// Installs a staged update: interns the new terms and swaps the level
  /// vectors. O(new terms) plus six vector moves — callers hold their
  /// exclusive lock only for this (Engine::AddTriples: REQUIRES(store_mu_)
  /// exclusive, enforced by -Wthread-safety at the engine layer since the
  /// store is GUARDED_BY(store_mu_) there and Apply is non-const). The
  /// update must come from a PrepareAdd on this store with no intervening
  /// mutation.
  void Apply(PendingUpdate&& update);

  /// The merged view this store will present for `ordering` once `update`
  /// is applied — statistics are recomputed against this preview while
  /// readers still see the old state.
  TripleView Preview(const PendingUpdate& update, Ordering ordering) const;

 private:
  /// The snapshot reader (storage/snapshot.cc) assembles stores directly.
  friend class Snapshot;

  TripleStore() = default;

  /// The base level of ordering `i`: a span into the mmap'd image while
  /// snapshot-backed, the heap vector otherwise. THE accessor every read
  /// path goes through — nothing else touches relations_/mmap_bases_
  /// directly, which is what makes the backend pluggable.
  std::span<const rdf::Triple> base_level(std::size_t i) const {
    return mmap_bases_[i].data() != nullptr ? mmap_bases_[i]
                                            : std::span(relations_[i]);
  }

  /// equal_range of the bound prefix over one sorted level.
  static std::span<const rdf::Triple> PrefixRange(
      std::span<const rdf::Triple> rel, Ordering ordering,
      const std::array<rdf::TermId, 3>& probe, std::size_t k);

  rdf::Dictionary dict_;
  std::array<std::vector<rdf::Triple>, kNumOrderings> relations_;
  std::array<std::vector<rdf::Triple>, kNumOrderings> deltas_;

  /// The open image backing mmap_bases_ and the dictionary's base index.
  /// Shared so readers handed long-lived views could pin it if ever
  /// needed; within the store it simply outlives every span above.
  std::shared_ptr<const Snapshot> snapshot_;
  /// Per-ordering mapped base span; empty data() == ordering i is served
  /// from relations_[i]. Reset by the first compaction.
  std::array<std::span<const rdf::Triple>, kNumOrderings> mmap_bases_{};
};

/// Chooses an ordering whose sort priority starts with exactly the given
/// bound positions (in any order among themselves). E.g. bound {p, o} ->
/// kPos or kOps; the first match in kAllOrderings is returned.
Ordering OrderingWithBoundPrefix(std::span<const rdf::Position> bound);

/// A contiguous half-open index range [begin, end).
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
  friend bool operator==(const IndexRange&, const IndexRange&) = default;
};

/// Range-partitions a sorted key column into at most `parts` contiguous
/// chunks of roughly equal size whose cut points fall on key boundaries:
/// all occurrences of one key land in the same chunk. Used by the parallel
/// merge join, which may only split its inputs between key groups. Returns
/// fewer chunks when heavy keys straddle the ideal cut points (possibly a
/// single chunk when one key dominates); never returns an empty chunk.
std::vector<IndexRange> SplitAtKeyBoundaries(
    std::span<const rdf::TermId> sorted_keys, std::size_t parts);

/// Same, over a sorted relation keyed on the triple component at
/// `key_position` — the morsel source for parallel scans that must respect
/// group boundaries of the relation's major sort key.
std::vector<std::span<const rdf::Triple>> SplitAtKeyBoundaries(
    std::span<const rdf::Triple> sorted_relation, rdf::Position key_position,
    std::size_t parts);

/// Same, over a merged view whose major sort key is the component at
/// `key_position`. Returns merged-rank ranges: chunk [begin, end) of the
/// view's merged order, consumable via TripleView::IteratorAt(begin).
std::vector<IndexRange> SplitAtKeyBoundaries(const TripleView& view,
                                             rdf::Position key_position,
                                             std::size_t parts);

}  // namespace hsparql::storage

#endif  // HSPARQL_STORAGE_TRIPLE_STORE_H_
