#include "rdf/triple.h"

namespace hsparql::rdf {

char PositionLetter(Position pos) {
  switch (pos) {
    case Position::kSubject:
      return 's';
    case Position::kPredicate:
      return 'p';
    case Position::kObject:
      return 'o';
  }
  return '?';
}

std::ostream& operator<<(std::ostream& os, const Triple& t) {
  return os << "(" << t.s << ", " << t.p << ", " << t.o << ")";
}

}  // namespace hsparql::rdf
