#include "rdf/term.h"

namespace hsparql::rdf {

std::string Term::ToString() const {
  std::string out;
  out.reserve(lexical.size() + 2);
  if (is_iri()) {
    out += '<';
    out += lexical;
    out += '>';
  } else {
    out += '"';
    out += lexical;
    out += '"';
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Term& term) {
  return os << term.ToString();
}

}  // namespace hsparql::rdf
