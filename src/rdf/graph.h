// An RDF graph: a dictionary plus a bag of encoded triples.
#ifndef HSPARQL_RDF_GRAPH_H_
#define HSPARQL_RDF_GRAPH_H_

#include <span>
#include <string_view>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace hsparql::rdf {

/// In-memory RDF graph under construction. Triples are stored in insertion
/// order and may contain duplicates; storage::TripleStore deduplicates and
/// sorts when built from a Graph (matching the paper's YAGO preparation,
/// which removed duplicate triples).
class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Adds an encoded triple (ids must come from this graph's dictionary).
  void Add(Triple t) { triples_.push_back(t); }

  /// Bulk-appends encoded triples (ids must come from this graph's
  /// dictionary). Used by the parallel loader after its remap pass.
  void Append(std::span<const Triple> triples) {
    triples_.insert(triples_.end(), triples.begin(), triples.end());
  }

  /// Pre-sizes the triple vector for `n` total triples.
  void ReserveTriples(std::size_t n) { triples_.reserve(n); }

  /// Interns the terms and adds the triple.
  Triple Add(const Term& s, const Term& p, const Term& o);

  /// Convenience: subject/predicate IRIs and an IRI or literal object.
  Triple AddIri(std::string_view s, std::string_view p, std::string_view o);
  Triple AddLiteral(std::string_view s, std::string_view p,
                    std::string_view literal);

  Dictionary& dictionary() { return dict_; }
  const Dictionary& dictionary() const { return dict_; }

  const std::vector<Triple>& triples() const { return triples_; }
  std::size_t size() const { return triples_.size(); }

  /// Destructively moves out the triple vector (the dictionary stays).
  /// TripleStore::Build uses this to avoid copying the whole dataset.
  std::vector<Triple> TakeTriples() {
    std::vector<Triple> out = std::move(triples_);
    triples_.clear();
    return out;
  }

 private:
  Dictionary dict_;
  std::vector<Triple> triples_;
};

}  // namespace hsparql::rdf

#endif  // HSPARQL_RDF_GRAPH_H_
