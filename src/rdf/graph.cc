#include "rdf/graph.h"

namespace hsparql::rdf {

Triple Graph::Add(const Term& s, const Term& p, const Term& o) {
  Triple t{dict_.Intern(s), dict_.Intern(p), dict_.Intern(o)};
  triples_.push_back(t);
  return t;
}

Triple Graph::AddIri(std::string_view s, std::string_view p,
                     std::string_view o) {
  Triple t{dict_.InternIri(s), dict_.InternIri(p), dict_.InternIri(o)};
  triples_.push_back(t);
  return t;
}

Triple Graph::AddLiteral(std::string_view s, std::string_view p,
                         std::string_view literal) {
  Triple t{dict_.InternIri(s), dict_.InternIri(p),
           dict_.InternLiteral(literal)};
  triples_.push_back(t);
  return t;
}

}  // namespace hsparql::rdf
