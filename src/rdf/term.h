// RDF terms (Definition 1 of the paper): a triple is an element of
// U x U x (U ∪ L) where U is the set of IRIs and L the set of literals.
#ifndef HSPARQL_RDF_TERM_H_
#define HSPARQL_RDF_TERM_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

namespace hsparql::rdf {

/// Dictionary-encoded identifier of an RDF term. Ids are dense, starting at
/// 0, assigned in interning order by Dictionary.
using TermId = std::uint32_t;

/// Sentinel for "no term" (e.g. an unbound pattern position).
inline constexpr TermId kInvalidTermId = UINT32_MAX;

/// Kind of an RDF constant. Blank nodes are treated as IRIs (skolemised),
/// matching the paper's data model simplification.
enum class TermKind : std::uint8_t {
  kIri = 0,
  kLiteral = 1,
};

/// An RDF constant: an IRI or a literal, with its lexical form.
/// Plain value type; the lexical form of a literal excludes the quotes.
struct Term {
  TermKind kind = TermKind::kIri;
  std::string lexical;

  static Term Iri(std::string iri) {
    return Term{TermKind::kIri, std::move(iri)};
  }
  static Term Literal(std::string value) {
    return Term{TermKind::kLiteral, std::move(value)};
  }

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }

  friend bool operator==(const Term& a, const Term& b) = default;

  /// N-Triples rendering: <iri> or "literal".
  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const Term& term);

}  // namespace hsparql::rdf

#endif  // HSPARQL_RDF_TERM_H_
