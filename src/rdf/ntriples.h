// Line-based N-Triples reader and writer.
//
// Substitute for the Redland Raptor parser the paper bolted onto MonetDB.
// Supported per line: `<iri> <iri> (<iri> | "literal") .` with \-escapes in
// literals, optional `@lang` / `^^<datatype>` suffixes (accepted, folded
// into the plain literal), `_:b` blank nodes (skolemised to IRIs), `#`
// comment lines and blank lines.
//
// The loader can parse chunk-parallel on common::ThreadPool::Shared()
// (LoadOptions::num_threads >= 2): the document is split at newline
// boundaries, chunks are parsed concurrently into thread-local staging
// dictionaries, and a deterministic merge pass interns the staged terms in
// chunk order — so TermId assignment (and every downstream relation) is
// byte-identical to the serial path. See DESIGN.md §"Load pipeline".
#ifndef HSPARQL_RDF_NTRIPLES_H_
#define HSPARQL_RDF_NTRIPLES_H_

#include <cstddef>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "obs/registry.h"
#include "rdf/graph.h"

namespace hsparql::rdf {

/// Tuning knobs for the bulk loader.
struct LoadOptions {
  /// Parse with this many threads; 0 or 1 selects the serial path. Values
  /// >= 2 use common::ThreadPool::Shared() (the pool load-balances, so
  /// this is a chunking hint, not a hard thread count).
  std::size_t num_threads = 0;
  /// Optional metrics registry: every successful load records its stage
  /// latencies (loader.{split,parse,merge}_millis histograms) and volume
  /// counters (loader.documents, loader.triples, loader.lines) — the
  /// loader-side view of the same registry Engine::metrics() exposes.
  /// Null (the default) records nothing.
  obs::Registry* metrics = nullptr;
};

/// Stage timings of one load, for bench_load_scaling and diagnostics.
struct LoadStats {
  /// Chunks the document was split into (1 on the serial path).
  std::size_t chunks = 0;
  /// Physical lines in the document (including blank/comment lines).
  std::size_t lines = 0;
  /// Newline-boundary chunking + per-chunk line counting.
  double split_millis = 0.0;
  /// Wall time of the (parallel) chunk parse.
  double parse_millis = 0.0;
  /// Dictionary merge, TermId remap and triple append.
  double merge_millis = 0.0;
};

/// Parses N-Triples text into `graph`, appending triples. Returns the
/// number of triples read, or a ParseError naming the offending line.
Result<std::size_t> ReadNTriples(std::istream& in, Graph* graph);

/// Same, with loader options; with num_threads >= 2 the stream is slurped
/// and parsed chunk-parallel. Error messages (including line numbers) and
/// the resulting graph are byte-identical to the serial overload.
Result<std::size_t> ReadNTriples(std::istream& in, Graph* graph,
                                 const LoadOptions& options,
                                 LoadStats* stats = nullptr);

/// Convenience overload over an in-memory document.
Result<std::size_t> ReadNTriplesString(std::string_view text, Graph* graph);

/// Same, with loader options (the parallel entry point).
Result<std::size_t> ReadNTriplesString(std::string_view text, Graph* graph,
                                       const LoadOptions& options,
                                       LoadStats* stats = nullptr);

/// Serialises all triples of `graph` in N-Triples syntax (with literal
/// escaping). The output round-trips through ReadNTriples.
void WriteNTriples(const Graph& graph, std::ostream& out);

/// Escapes a literal body for N-Triples output (quotes, backslash, \n...).
std::string EscapeLiteral(std::string_view value);

}  // namespace hsparql::rdf

#endif  // HSPARQL_RDF_NTRIPLES_H_
