// Line-based N-Triples reader and writer.
//
// Substitute for the Redland Raptor parser the paper bolted onto MonetDB.
// Supported per line: `<iri> <iri> (<iri> | "literal") .` with \-escapes in
// literals, optional `@lang` / `^^<datatype>` suffixes (accepted, folded
// into the plain literal), `_:b` blank nodes (skolemised to IRIs), `#`
// comment lines and blank lines.
#ifndef HSPARQL_RDF_NTRIPLES_H_
#define HSPARQL_RDF_NTRIPLES_H_

#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "rdf/graph.h"

namespace hsparql::rdf {

/// Parses N-Triples text into `graph`, appending triples. Returns the
/// number of triples read, or a ParseError naming the offending line.
Result<std::size_t> ReadNTriples(std::istream& in, Graph* graph);

/// Convenience overload over an in-memory document.
Result<std::size_t> ReadNTriplesString(std::string_view text, Graph* graph);

/// Serialises all triples of `graph` in N-Triples syntax (with literal
/// escaping). The output round-trips through ReadNTriples.
void WriteNTriples(const Graph& graph, std::ostream& out);

/// Escapes a literal body for N-Triples output (quotes, backslash, \n...).
std::string EscapeLiteral(std::string_view value);

}  // namespace hsparql::rdf

#endif  // HSPARQL_RDF_NTRIPLES_H_
