#include "rdf/ntriples.h"

#include <sstream>

#include "common/string_util.h"

namespace hsparql::rdf {

namespace {

// Cursor over one N-Triples line.
class LineParser {
 public:
  LineParser(std::string_view line, std::size_t line_no)
      : line_(line), line_no_(line_no) {}

  Status Error(std::string_view what) const {
    std::ostringstream os;
    os << "line " << line_no_ << ": " << what << " in '" << line_ << "'";
    return Status::ParseError(os.str());
  }

  void SkipSpace() {
    while (pos_ < line_.size() && (line_[pos_] == ' ' || line_[pos_] == '\t'))
      ++pos_;
  }

  bool AtEnd() const { return pos_ >= line_.size(); }
  char Peek() const { return line_[pos_]; }

  /// Parses one term: IRI, literal, or blank node.
  Result<Term> ParseTerm() {
    SkipSpace();
    if (AtEnd()) return Error("unexpected end of line");
    char c = Peek();
    if (c == '<') return ParseIri();
    if (c == '"') return ParseLiteral();
    if (c == '_') return ParseBlank();
    return Error("expected '<', '\"' or '_'");
  }

  Status ExpectDot() {
    SkipSpace();
    if (AtEnd() || Peek() != '.') return Error("expected terminating '.'");
    ++pos_;
    SkipSpace();
    if (!AtEnd() && Peek() != '#') return Error("trailing content after '.'");
    return Status::OK();
  }

 private:
  Result<Term> ParseIri() {
    ++pos_;  // consume '<'
    std::size_t end = line_.find('>', pos_);
    if (end == std::string_view::npos) return Error("unterminated IRI");
    Term term = Term::Iri(std::string(line_.substr(pos_, end - pos_)));
    pos_ = end + 1;
    return term;
  }

  Result<Term> ParseBlank() {
    // _:label -- skolemised: kept as an IRI with the "_:" prefix so blank
    // nodes stay joinable but distinct from real IRIs.
    std::size_t end = pos_;
    while (end < line_.size() && line_[end] != ' ' && line_[end] != '\t')
      ++end;
    if (end < pos_ + 2 || line_[pos_ + 1] != ':')
      return Error("malformed blank node");
    Term term = Term::Iri(std::string(line_.substr(pos_, end - pos_)));
    pos_ = end;
    return term;
  }

  Result<Term> ParseLiteral() {
    ++pos_;  // consume opening quote
    std::string value;
    while (true) {
      if (AtEnd()) return Error("unterminated literal");
      char c = line_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (AtEnd()) return Error("dangling escape");
        char e = line_[pos_++];
        switch (e) {
          case 'n':
            value += '\n';
            break;
          case 't':
            value += '\t';
            break;
          case 'r':
            value += '\r';
            break;
          case '"':
            value += '"';
            break;
          case '\\':
            value += '\\';
            break;
          default:
            return Error("unsupported escape sequence");
        }
      } else {
        value += c;
      }
    }
    // Optional @lang or ^^<datatype>; both are folded into a plain literal,
    // mirroring the paper's YAGO normalisation.
    if (!AtEnd() && Peek() == '@') {
      while (!AtEnd() && Peek() != ' ' && Peek() != '\t') ++pos_;
    } else if (!AtEnd() && Peek() == '^') {
      if (pos_ + 1 >= line_.size() || line_[pos_ + 1] != '^')
        return Error("malformed datatype suffix");
      pos_ += 2;
      if (AtEnd() || Peek() != '<') return Error("malformed datatype IRI");
      std::size_t end = line_.find('>', pos_);
      if (end == std::string_view::npos)
        return Error("unterminated datatype IRI");
      pos_ = end + 1;
    }
    return Term::Literal(std::move(value));
  }

  std::string_view line_;
  std::size_t line_no_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<std::size_t> ReadNTriples(std::istream& in, Graph* graph) {
  std::string line;
  std::size_t line_no = 0;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view body = StripWhitespace(line);
    if (body.empty() || body.front() == '#') continue;
    LineParser parser(body, line_no);
    HSPARQL_ASSIGN_OR_RETURN(Term s, parser.ParseTerm());
    HSPARQL_ASSIGN_OR_RETURN(Term p, parser.ParseTerm());
    HSPARQL_ASSIGN_OR_RETURN(Term o, parser.ParseTerm());
    if (!s.is_iri() || !p.is_iri()) {
      return parser.Error("subject and predicate must be IRIs");
    }
    HSPARQL_RETURN_IF_ERROR(parser.ExpectDot());
    graph->Add(s, p, o);
    ++count;
  }
  return count;
}

Result<std::size_t> ReadNTriplesString(std::string_view text, Graph* graph) {
  std::istringstream in{std::string(text)};
  return ReadNTriples(in, graph);
}

std::string EscapeLiteral(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void WriteNTriples(const Graph& graph, std::ostream& out) {
  const Dictionary& dict = graph.dictionary();
  for (const Triple& t : graph.triples()) {
    const Term& s = dict.Get(t.s);
    const Term& p = dict.Get(t.p);
    const Term& o = dict.Get(t.o);
    out << '<' << s.lexical << "> <" << p.lexical << "> ";
    if (o.is_iri()) {
      out << '<' << o.lexical << '>';
    } else {
      out << '"' << EscapeLiteral(o.lexical) << '"';
    }
    out << " .\n";
  }
}

}  // namespace hsparql::rdf
