#include "rdf/ntriples.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace hsparql::rdf {

namespace {

// Cursor over one N-Triples line.
class LineParser {
 public:
  LineParser(std::string_view line, std::size_t line_no)
      : line_(line), line_no_(line_no) {}

  Status Error(std::string_view what) const {
    std::ostringstream os;
    os << "line " << line_no_ << ": " << what << " in '" << line_ << "'";
    return Status::ParseError(os.str());
  }

  void SkipSpace() {
    while (pos_ < line_.size() && (line_[pos_] == ' ' || line_[pos_] == '\t'))
      ++pos_;
  }

  bool AtEnd() const { return pos_ >= line_.size(); }
  char Peek() const { return line_[pos_]; }

  /// Parses one term: IRI, literal, or blank node.
  Result<Term> ParseTerm() {
    SkipSpace();
    if (AtEnd()) return Error("unexpected end of line");
    char c = Peek();
    if (c == '<') return ParseIri();
    if (c == '"') return ParseLiteral();
    if (c == '_') return ParseBlank();
    return Error("expected '<', '\"' or '_'");
  }

  Status ExpectDot() {
    SkipSpace();
    if (AtEnd() || Peek() != '.') return Error("expected terminating '.'");
    ++pos_;
    SkipSpace();
    if (!AtEnd() && Peek() != '#') return Error("trailing content after '.'");
    return Status::OK();
  }

 private:
  Result<Term> ParseIri() {
    ++pos_;  // consume '<'
    std::size_t end = line_.find('>', pos_);
    if (end == std::string_view::npos) return Error("unterminated IRI");
    Term term = Term::Iri(std::string(line_.substr(pos_, end - pos_)));
    pos_ = end + 1;
    return term;
  }

  Result<Term> ParseBlank() {
    // _:label -- skolemised: kept as an IRI with the "_:" prefix so blank
    // nodes stay joinable but distinct from real IRIs.
    std::size_t end = pos_;
    while (end < line_.size() && line_[end] != ' ' && line_[end] != '\t')
      ++end;
    if (end < pos_ + 2 || line_[pos_ + 1] != ':')
      return Error("malformed blank node");
    Term term = Term::Iri(std::string(line_.substr(pos_, end - pos_)));
    pos_ = end;
    return term;
  }

  Result<Term> ParseLiteral() {
    ++pos_;  // consume opening quote
    std::string value;
    while (true) {
      if (AtEnd()) return Error("unterminated literal");
      char c = line_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (AtEnd()) return Error("dangling escape");
        char e = line_[pos_++];
        switch (e) {
          case 'n':
            value += '\n';
            break;
          case 't':
            value += '\t';
            break;
          case 'r':
            value += '\r';
            break;
          case '"':
            value += '"';
            break;
          case '\\':
            value += '\\';
            break;
          default:
            return Error("unsupported escape sequence");
        }
      } else {
        value += c;
      }
    }
    // Optional @lang or ^^<datatype>; both are folded into a plain literal,
    // mirroring the paper's YAGO normalisation.
    if (!AtEnd() && Peek() == '@') {
      while (!AtEnd() && Peek() != ' ' && Peek() != '\t') ++pos_;
    } else if (!AtEnd() && Peek() == '^') {
      if (pos_ + 1 >= line_.size() || line_[pos_ + 1] != '^')
        return Error("malformed datatype suffix");
      pos_ += 2;
      if (AtEnd() || Peek() != '<') return Error("malformed datatype IRI");
      std::size_t end = line_.find('>', pos_);
      if (end == std::string_view::npos)
        return Error("unterminated datatype IRI");
      pos_ = end + 1;
    }
    return Term::Literal(std::move(value));
  }

  std::string_view line_;
  std::size_t line_no_;
  std::size_t pos_ = 0;
};

/// Parses the getline-style lines of `text` into `graph`, numbering them
/// from `first_line`. The final line may lack a trailing newline;
/// StripWhitespace absorbs CRLF endings — both exactly as the istream
/// path, so a chunk parsed here behaves as if it were the whole document
/// starting at line `first_line` (including error message text).
Result<std::size_t> ParseLines(std::string_view text, std::size_t first_line,
                               Graph* graph) {
  std::size_t count = 0;
  std::size_t line_no = first_line;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        eol == std::string_view::npos ? text.substr(pos)
                                      : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    std::string_view body = StripWhitespace(line);
    if (body.empty() || body.front() == '#') {
      ++line_no;
      continue;
    }
    LineParser parser(body, line_no);
    ++line_no;
    HSPARQL_ASSIGN_OR_RETURN(Term s, parser.ParseTerm());
    HSPARQL_ASSIGN_OR_RETURN(Term p, parser.ParseTerm());
    HSPARQL_ASSIGN_OR_RETURN(Term o, parser.ParseTerm());
    if (!s.is_iri() || !p.is_iri()) {
      return parser.Error("subject and predicate must be IRIs");
    }
    HSPARQL_RETURN_IF_ERROR(parser.ExpectDot());
    graph->Add(s, p, o);
    ++count;
  }
  return count;
}

/// Splits `text` into up to ~`target` chunks whose boundaries fall
/// immediately after a newline, so no line straddles two chunks. The last
/// chunk may lack a trailing newline (like the document itself).
std::vector<std::string_view> SplitChunksAtNewlines(std::string_view text,
                                                    std::size_t target) {
  std::vector<std::string_view> chunks;
  if (text.empty()) return chunks;
  const std::size_t approx =
      std::max<std::size_t>(1, text.size() / std::max<std::size_t>(1, target));
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = begin + approx;
    if (end >= text.size()) {
      end = text.size();
    } else {
      const std::size_t nl = text.find('\n', end);
      end = nl == std::string_view::npos ? text.size() : nl + 1;
    }
    chunks.push_back(text.substr(begin, end - begin));
    begin = end;
  }
  return chunks;
}

/// One chunk's staging state: a private Graph (own dictionary, local ids)
/// plus the first error, if any.
struct ParsedChunk {
  Graph graph;
  Status error;
  std::size_t triples = 0;
};

Result<std::size_t> ReadParallel(std::string_view text, Graph* graph,
                                 const LoadOptions& options,
                                 LoadStats* stats) {
  ThreadPool& pool = ThreadPool::Shared();
  Timer timer;

  // Stage 1: newline-boundary chunking, plus a newline count per chunk so
  // every chunk knows its global starting line number up front (errors can
  // then be formatted exactly like the serial path, in place).
  const std::size_t target_chunks = options.num_threads * 4;
  std::vector<std::string_view> chunks =
      SplitChunksAtNewlines(text, target_chunks);
  std::vector<std::size_t> newlines(chunks.size(), 0);
  pool.ParallelFor(0, chunks.size(), 1, [&](std::size_t c) {
    newlines[c] = static_cast<std::size_t>(
        std::count(chunks[c].begin(), chunks[c].end(), '\n'));
  });
  std::vector<std::size_t> first_line(chunks.size(), 1);
  for (std::size_t c = 1; c < chunks.size(); ++c) {
    first_line[c] = first_line[c - 1] + newlines[c - 1];
  }
  if (stats != nullptr) {
    stats->chunks = chunks.size();
    stats->lines = 0;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      stats->lines += newlines[c];
    }
    if (!text.empty() && text.back() != '\n') ++stats->lines;
    stats->split_millis = timer.ElapsedMillis();
  }

  // Stage 2: parse every chunk concurrently into its own staging graph.
  // Chunk-local TermIds are first-occurrence order within the chunk.
  Timer parse_timer;
  std::vector<ParsedChunk> parsed(chunks.size());
  pool.ParallelFor(0, chunks.size(), 1, [&](std::size_t c) {
    auto result = ParseLines(chunks[c], first_line[c], &parsed[c].graph);
    if (result.ok()) {
      parsed[c].triples = *result;
    } else {
      parsed[c].error = result.status();
    }
  });
  // The earliest failing chunk holds the document's first error.
  for (const ParsedChunk& p : parsed) {
    if (!p.error.ok()) return p.error;
  }
  if (stats != nullptr) stats->parse_millis = parse_timer.ElapsedMillis();

  // Stage 3: deterministic merge. Interning each chunk's staged terms in
  // chunk order reproduces the serial first-occurrence order exactly, so
  // the global ids are byte-identical to the serial path. The remap of the
  // chunk triples onto global ids is data-parallel again.
  Timer merge_timer;
  Dictionary& dict = graph->dictionary();
  std::size_t staged_terms = 0;
  std::size_t total_triples = 0;
  for (const ParsedChunk& p : parsed) {
    staged_terms += p.graph.dictionary().size();
    total_triples += p.triples;
  }
  dict.Reserve(dict.size() + staged_terms);
  graph->ReserveTriples(graph->size() + total_triples);

  std::vector<std::vector<TermId>> remap(parsed.size());
  std::vector<std::vector<Triple>> chunk_triples(parsed.size());
  for (std::size_t c = 0; c < parsed.size(); ++c) {
    std::vector<Term> terms = parsed[c].graph.dictionary().TakeTerms();
    remap[c].reserve(terms.size());
    for (Term& term : terms) remap[c].push_back(dict.Intern(std::move(term)));
    chunk_triples[c] = parsed[c].graph.TakeTriples();
  }
  pool.ParallelFor(0, parsed.size(), 1, [&](std::size_t c) {
    const std::vector<TermId>& m = remap[c];
    for (Triple& t : chunk_triples[c]) {
      t.s = m[t.s];
      t.p = m[t.p];
      t.o = m[t.o];
    }
  });
  for (const std::vector<Triple>& triples : chunk_triples) {
    graph->Append(triples);
  }
  if (stats != nullptr) stats->merge_millis = merge_timer.ElapsedMillis();
  return total_triples;
}

}  // namespace

Result<std::size_t> ReadNTriples(std::istream& in, Graph* graph) {
  std::string line;
  std::size_t line_no = 0;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view body = StripWhitespace(line);
    if (body.empty() || body.front() == '#') continue;
    LineParser parser(body, line_no);
    HSPARQL_ASSIGN_OR_RETURN(Term s, parser.ParseTerm());
    HSPARQL_ASSIGN_OR_RETURN(Term p, parser.ParseTerm());
    HSPARQL_ASSIGN_OR_RETURN(Term o, parser.ParseTerm());
    if (!s.is_iri() || !p.is_iri()) {
      return parser.Error("subject and predicate must be IRIs");
    }
    HSPARQL_RETURN_IF_ERROR(parser.ExpectDot());
    graph->Add(s, p, o);
    ++count;
  }
  return count;
}

Result<std::size_t> ReadNTriples(std::istream& in, Graph* graph,
                                 const LoadOptions& options,
                                 LoadStats* stats) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadNTriplesString(buffer.view(), graph, options, stats);
}

Result<std::size_t> ReadNTriplesString(std::string_view text, Graph* graph) {
  return ParseLines(text, /*first_line=*/1, graph);
}

namespace {

/// Records one successful load into the caller's registry (see
/// LoadOptions::metrics). Get-or-create by name each time: loads are rare
/// enough that the name lookup under the registry mutex is noise.
void RecordLoadMetrics(obs::Registry* metrics, const LoadStats& stats,
                       std::size_t triples) {
  if (metrics == nullptr) return;
  metrics->GetCounter("loader.documents", "N-Triples documents loaded")
      ->Add();
  metrics->GetCounter("loader.triples", "Triples parsed by the loader")
      ->Add(triples);
  metrics->GetCounter("loader.lines", "Physical lines read by the loader")
      ->Add(stats.lines);
  metrics
      ->GetHistogram("loader.split_millis",
                     "Newline-boundary chunking stage latency")
      ->Observe(stats.split_millis);
  metrics
      ->GetHistogram("loader.parse_millis",
                     "(Parallel) chunk-parse stage latency")
      ->Observe(stats.parse_millis);
  metrics
      ->GetHistogram("loader.merge_millis",
                     "Dictionary-merge and remap stage latency")
      ->Observe(stats.merge_millis);
}

}  // namespace

Result<std::size_t> ReadNTriplesString(std::string_view text, Graph* graph,
                                       const LoadOptions& options,
                                       LoadStats* stats) {
  // Metric recording needs the stage stats even when the caller passed no
  // LoadStats out-param.
  LoadStats local_stats;
  if (stats == nullptr && options.metrics != nullptr) stats = &local_stats;
  if (stats != nullptr) *stats = LoadStats{};
  if (options.num_threads <= 1) {
    Timer timer;
    auto result = ParseLines(text, /*first_line=*/1, graph);
    if (stats != nullptr) {
      stats->chunks = 1;
      stats->lines = static_cast<std::size_t>(
          std::count(text.begin(), text.end(), '\n'));
      if (!text.empty() && text.back() != '\n') ++stats->lines;
      stats->parse_millis = timer.ElapsedMillis();
      if (result.ok()) RecordLoadMetrics(options.metrics, *stats, *result);
    }
    return result;
  }
  auto result = ReadParallel(text, graph, options, stats);
  if (result.ok() && stats != nullptr) {
    RecordLoadMetrics(options.metrics, *stats, *result);
  }
  return result;
}

std::string EscapeLiteral(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void WriteNTriples(const Graph& graph, std::ostream& out) {
  const Dictionary& dict = graph.dictionary();
  for (const Triple& t : graph.triples()) {
    const Term& s = dict.Get(t.s);
    const Term& p = dict.Get(t.p);
    const Term& o = dict.Get(t.o);
    out << '<' << s.lexical << "> <" << p.lexical << "> ";
    if (o.is_iri()) {
      out << '<' << o.lexical << '>';
    } else {
      out << '"' << EscapeLiteral(o.lexical) << '"';
    }
    out << " .\n";
  }
}

}  // namespace hsparql::rdf
