#include "rdf/dictionary.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace hsparql::rdf {

namespace {

/// Binary search of the base segment: the id under `sorted` whose term
/// equals (kind, lexical), or nullopt. `terms` is the full id-ordered term
/// vector the permutation indexes into.
std::optional<TermId> FindInBase(std::span<const std::uint32_t> sorted,
                                 const std::vector<Term>& terms, TermKind kind,
                                 std::string_view lexical) {
  auto less = [&terms](std::uint32_t id, const std::pair<TermKind,
                                                         std::string_view>& k) {
    const Term& t = terms[id];
    if (t.kind != k.first) return t.kind < k.first;
    return std::string_view(t.lexical) < k.second;
  };
  const std::pair<TermKind, std::string_view> key{kind, lexical};
  auto it = std::lower_bound(sorted.begin(), sorted.end(), key, less);
  if (it == sorted.end()) return std::nullopt;
  const Term& t = terms[*it];
  if (t.kind != kind || std::string_view(t.lexical) != lexical) {
    return std::nullopt;
  }
  return static_cast<TermId>(*it);
}

}  // namespace

TermId Dictionary::Intern(TermKind kind, std::string_view lexical) {
  if (auto id = Find(kind, lexical)) return *id;
  assert(terms_.size() < kInvalidTermId);
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(Term{kind, std::string(lexical)});
  index_.emplace(Key{kind, std::string(lexical)}, id);
  return id;
}

TermId Dictionary::Intern(Term&& term) {
  if (auto id = Find(term.kind, term.lexical)) return *id;
  assert(terms_.size() < kInvalidTermId);
  TermId id = static_cast<TermId>(terms_.size());
  Key key{term.kind, term.lexical};  // index keeps its own copy
  terms_.push_back(std::move(term));
  index_.emplace(std::move(key), id);
  return id;
}

std::optional<TermId> Dictionary::Find(TermKind kind,
                                       std::string_view lexical) const {
  EnsureBaseTerms();
  if (!base_sorted_.empty()) {
    if (auto id = FindInBase(base_sorted_, terms_, kind, lexical)) return id;
  }
  auto it = index_.find(KeyView{kind, lexical});
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void Dictionary::Reserve(std::size_t n) {
  terms_.reserve(n);
  index_.reserve(n);
}

std::vector<Term> Dictionary::TakeTerms() {
  assert(base_count_ == 0 &&
         "TakeTerms on a snapshot-backed dictionary would drop the base "
         "segment's borrowed index");
  index_.clear();
  std::vector<Term> out = std::move(terms_);
  terms_.clear();
  return out;
}

Dictionary Dictionary::FromSnapshot(std::vector<Term>&& terms,
                                    std::span<const std::uint32_t> sorted_ids) {
  assert(terms.size() == sorted_ids.size());
  Dictionary dict;
  dict.terms_ = std::move(terms);
  dict.base_sorted_ = sorted_ids;
  dict.base_count_ = dict.terms_.size();
  return dict;
}

Dictionary Dictionary::FromSnapshotLazy(
    std::size_t term_count, std::span<const std::uint32_t> sorted_ids,
    BaseTermsLoader loader) {
  assert(term_count == sorted_ids.size());
  Dictionary dict;
  dict.base_sorted_ = sorted_ids;
  dict.base_count_ = term_count;
  dict.lazy_ = std::make_unique<LazyBase>();
  dict.lazy_->loader = std::move(loader);
  return dict;
}

void Dictionary::MaterialiseBase() const {
  std::call_once(lazy_->once, [this] {
    std::vector<Term> terms;
    if (lazy_->loader(&terms) && terms.size() == base_count_) {
      terms_ = std::move(terms);
    } else {
      // Corrupt base payload under the default (no deep verify) open:
      // detach the base segment entirely. Get falls back to the empty
      // term, Find skips the permutation — wrong answers, never a crash.
      base_sorted_ = {};
    }
    lazy_->done.store(true, std::memory_order_release);
  });
}

const Term& Dictionary::EmptyTerm() {
  static const Term kEmpty{};
  return kEmpty;
}

}  // namespace hsparql::rdf
