#include "rdf/dictionary.h"

#include <cassert>

namespace hsparql::rdf {

TermId Dictionary::Intern(const Term& term) {
  Key key{term.kind, term.lexical};
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  assert(terms_.size() < kInvalidTermId);
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  index_.emplace(std::move(key), id);
  return id;
}

std::optional<TermId> Dictionary::Find(const Term& term) const {
  auto it = index_.find(Key{term.kind, term.lexical});
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace hsparql::rdf
