#include "rdf/dictionary.h"

#include <cassert>
#include <utility>

namespace hsparql::rdf {

TermId Dictionary::Intern(TermKind kind, std::string_view lexical) {
  auto it = index_.find(KeyView{kind, lexical});
  if (it != index_.end()) return it->second;
  assert(terms_.size() < kInvalidTermId);
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(Term{kind, std::string(lexical)});
  index_.emplace(Key{kind, std::string(lexical)}, id);
  return id;
}

TermId Dictionary::Intern(Term&& term) {
  auto it = index_.find(KeyView{term.kind, term.lexical});
  if (it != index_.end()) return it->second;
  assert(terms_.size() < kInvalidTermId);
  TermId id = static_cast<TermId>(terms_.size());
  Key key{term.kind, term.lexical};  // index keeps its own copy
  terms_.push_back(std::move(term));
  index_.emplace(std::move(key), id);
  return id;
}

std::optional<TermId> Dictionary::Find(TermKind kind,
                                       std::string_view lexical) const {
  auto it = index_.find(KeyView{kind, lexical});
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void Dictionary::Reserve(std::size_t n) {
  terms_.reserve(n);
  index_.reserve(n);
}

std::vector<Term> Dictionary::TakeTerms() {
  index_.clear();
  std::vector<Term> out = std::move(terms_);
  terms_.clear();
  return out;
}

}  // namespace hsparql::rdf
