// Dictionary-encoded RDF triple and the subject/predicate/object positions.
#ifndef HSPARQL_RDF_TRIPLE_H_
#define HSPARQL_RDF_TRIPLE_H_

#include <array>
#include <compare>
#include <cstdint>
#include <ostream>

#include "rdf/term.h"

namespace hsparql::rdf {

/// One of the three components of a triple (pattern). The paper's
/// heuristics are all phrased over these positions.
enum class Position : std::uint8_t {
  kSubject = 0,
  kPredicate = 1,
  kObject = 2,
};

inline constexpr std::array<Position, 3> kAllPositions = {
    Position::kSubject, Position::kPredicate, Position::kObject};

/// One-letter name used in plan/explain output: s, p, o.
char PositionLetter(Position pos);

/// A dictionary-encoded triple. Ordering is component-wise (s, p, o), which
/// together with storage::Ordering permutations yields all six collation
/// orders.
struct Triple {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  TermId at(Position pos) const {
    switch (pos) {
      case Position::kSubject:
        return s;
      case Position::kPredicate:
        return p;
      case Position::kObject:
        return o;
    }
    return kInvalidTermId;
  }

  void set(Position pos, TermId id) {
    switch (pos) {
      case Position::kSubject:
        s = id;
        return;
      case Position::kPredicate:
        p = id;
        return;
      case Position::kObject:
        o = id;
        return;
    }
  }

  friend auto operator<=>(const Triple&, const Triple&) = default;
};

std::ostream& operator<<(std::ostream& os, const Triple& t);

}  // namespace hsparql::rdf

#endif  // HSPARQL_RDF_TRIPLE_H_
