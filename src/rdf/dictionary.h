// Mapping dictionary: RDF constants <-> dense integer ids.
//
// §2: "The majority of the systems replace constants (i.e., URIs and
// literals) appearing in RDF triples by identifiers using a mapping
// dictionary to avoid processing long strings." All storage and execution
// below this layer operates on TermIds only.
#ifndef HSPARQL_RDF_DICTIONARY_H_
#define HSPARQL_RDF_DICTIONARY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace hsparql::rdf {

/// Bidirectional Term <-> TermId map. Interning is append-only; ids are
/// dense and stable for the lifetime of the dictionary.
///
/// Lookups are heterogeneous: (kind, string_view) probes the index without
/// materialising a Term or a std::string, so the hit path of InternIri /
/// InternLiteral / Find is allocation-free.
///
/// Two-segment design (the snapshot backend, DESIGN.md §4k): a dictionary
/// restored from an mmap'd snapshot has an immutable *base* segment —
/// ids [0, base_count()) — whose term -> id index is a binary search over
/// the image's sorted-id permutation instead of a rebuilt hash table, so
/// opening a snapshot never re-hashes the term set. Terms interned after
/// the restore form the ordinary hash-indexed delta segment on top. A
/// dictionary built by interning alone has an empty base segment and
/// behaves exactly as before.
///
/// The base segment can additionally be *lazy* (FromSnapshotLazy): the
/// term vector is materialised by a caller-supplied loader on the first
/// access that needs term bytes (Get / Find / Intern), under a
/// std::call_once that makes concurrent readers safe. Until then only
/// base_count() is known — this is what lets a snapshot open finish
/// without reading any dictionary payload page. A failed load (corrupt
/// image opened without deep verification) degrades to an empty base
/// segment: every Get resolves to the empty-term fallback and Find
/// misses — wrong answers, never a crash. The lazy hook costs
/// non-snapshot dictionaries one always-false pointer test per lookup.
class Dictionary {
 public:
  Dictionary() = default;

  // Interning mutates shared lookup state; the dictionary is move-only to
  // make accidental deep copies visible.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Returns the id of the term, interning it if new.
  TermId Intern(const Term& term) { return Intern(term.kind, term.lexical); }
  /// Same, moving the lexical form into the dictionary on a miss.
  TermId Intern(Term&& term);
  /// Same, from the components (allocates only on a miss).
  TermId Intern(TermKind kind, std::string_view lexical);

  /// Convenience wrappers; allocation-free when the term is already known.
  TermId InternIri(std::string_view iri) {
    return Intern(TermKind::kIri, iri);
  }
  TermId InternLiteral(std::string_view value) {
    return Intern(TermKind::kLiteral, value);
  }

  /// Id of the term if already interned. Never allocates.
  std::optional<TermId> Find(const Term& term) const {
    return Find(term.kind, term.lexical);
  }
  std::optional<TermId> Find(TermKind kind, std::string_view lexical) const;

  /// The term for an id. Ids are valid by construction everywhere except
  /// one source: a snapshot image opened without deep verification may
  /// carry corrupted triple components, so an out-of-range id resolves to
  /// a static empty IRI instead of undefined behaviour — the mmap trust
  /// model (DESIGN.md §4k) turns payload corruption into wrong answers,
  /// never a crash or an out-of-bounds read.
  const Term& Get(TermId id) const {
    EnsureBaseTerms();
    return id < terms_.size() ? terms_[id] : EmptyTerm();
  }

  /// True if `id` names a literal (used by HEURISTIC 4 checks in tests).
  bool IsLiteral(TermId id) const { return Get(id).is_literal(); }

  /// Total interned terms. Known without materialising a lazy base
  /// segment (and must not touch terms_ while another thread may be
  /// materialising it).
  std::size_t size() const {
    if (lazy_ != nullptr &&
        !lazy_->done.load(std::memory_order_acquire)) {
      return base_count_;
    }
    return terms_.size();
  }

  /// Pre-sizes both the term vector and the hash index for `n` total
  /// entries. The bulk loader calls this before its merge pass.
  void Reserve(std::size_t n);

  /// Destructively moves out every interned term, in id order, leaving the
  /// dictionary empty. Used by the parallel loader to migrate a chunk's
  /// staging dictionary into the global one without copying the strings.
  /// Only valid on a dictionary without a base segment (staging
  /// dictionaries never have one).
  std::vector<Term> TakeTerms();

  /// The canonical total order of the sorted-id permutation: kind first
  /// (IRIs before literals), then byte-wise lexical comparison. Writer
  /// (snapshot save) and reader (base-segment Find) must agree on this.
  static bool TermOrderLess(const Term& a, const Term& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.lexical < b.lexical;
  }

  /// Restores a dictionary from a decoded snapshot: `terms` in id order
  /// plus `sorted_ids` — every id once, ordered by TermOrderLess over the
  /// terms — typically a view straight into the mmap'd image, which must
  /// outlive the dictionary (the owning TripleStore pins the mapping).
  /// O(1) beyond taking ownership: no hash index is built.
  static Dictionary FromSnapshot(std::vector<Term>&& terms,
                                 std::span<const std::uint32_t> sorted_ids);

  /// Decodes the base-segment term vector on first use: must produce
  /// exactly the `term_count` terms of FromSnapshotLazy in id order, or
  /// return false (the base segment then degrades to empty — see the
  /// class comment). Called at most once, possibly from any thread.
  using BaseTermsLoader = std::function<bool(std::vector<Term>* out)>;

  /// Like FromSnapshot, but the term vector is materialised by `loader`
  /// on first use instead of eagerly — the zero-copy open path
  /// (DESIGN.md §4k): no dictionary payload page is read until a query
  /// needs a term. `sorted_ids` must outlive the dictionary as above.
  static Dictionary FromSnapshotLazy(std::size_t term_count,
                                     std::span<const std::uint32_t> sorted_ids,
                                     BaseTermsLoader loader);

  /// Terms in the immutable base segment (0 for a heap-built dictionary).
  std::size_t base_count() const { return base_count_; }

 private:
  /// The out-of-range fallback of Get: an empty IRI with a stable address.
  static const Term& EmptyTerm();

  /// Deferred base-segment decode state (FromSnapshotLazy). Heap-held so
  /// the once_flag keeps a stable address across Dictionary moves; kept
  /// for the dictionary's lifetime (resetting it would race late callers
  /// of the fast path below).
  struct LazyBase {
    std::once_flag once;
    /// Fast-path skip; release-published by MaterialiseBase so readers
    /// that observe it may touch terms_ without further synchronisation.
    std::atomic<bool> done{false};
    BaseTermsLoader loader;
  };

  /// Fast path of the lazy hook: one always-false pointer test for
  /// dictionaries without a lazy base segment.
  void EnsureBaseTerms() const {
    if (lazy_ != nullptr && !lazy_->done.load(std::memory_order_acquire)) {
      MaterialiseBase();
    }
  }
  void MaterialiseBase() const;

  struct Key {
    TermKind kind;
    std::string lexical;
  };
  /// Heterogeneous probe: same identity as Key, no owned string.
  struct KeyView {
    TermKind kind;
    std::string_view lexical;
  };
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(const Key& k) const {
      return Mix(k.kind, k.lexical);
    }
    std::size_t operator()(const KeyView& k) const {
      return Mix(k.kind, k.lexical);
    }
    static std::size_t Mix(TermKind kind, std::string_view lexical) {
      // std::hash<string_view> agrees with std::hash<string> on equal
      // content, so owned keys and view probes land in the same bucket.
      return std::hash<std::string_view>()(lexical) * 3 +
             static_cast<std::size_t>(kind);
    }
  };
  struct KeyEq {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      return a.kind == b.kind &&
             std::string_view(a.lexical) == std::string_view(b.lexical);
    }
  };

  /// All terms, id order. Ids [0, base_count_) come from a snapshot and
  /// are absent from index_; their lookups go through base_sorted_.
  /// mutable: filled in by MaterialiseBase under lazy_->once.
  mutable std::vector<Term> terms_;
  /// Hash index over the delta segment only (ids >= base_count_).
  std::unordered_map<Key, TermId, KeyHash, KeyEq> index_;
  /// Base-segment index: ids sorted by TermOrderLess, borrowed from the
  /// snapshot image. Empty iff base_count_ == 0 — or after a failed lazy
  /// load (mutable for exactly that reset), which detaches Find from the
  /// base segment so no unchecked permutation id is ever used.
  mutable std::span<const std::uint32_t> base_sorted_;
  std::size_t base_count_ = 0;
  /// Non-null only for FromSnapshotLazy dictionaries.
  mutable std::unique_ptr<LazyBase> lazy_;
};

}  // namespace hsparql::rdf

#endif  // HSPARQL_RDF_DICTIONARY_H_
