// Mapping dictionary: RDF constants <-> dense integer ids.
//
// §2: "The majority of the systems replace constants (i.e., URIs and
// literals) appearing in RDF triples by identifiers using a mapping
// dictionary to avoid processing long strings." All storage and execution
// below this layer operates on TermIds only.
#ifndef HSPARQL_RDF_DICTIONARY_H_
#define HSPARQL_RDF_DICTIONARY_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace hsparql::rdf {

/// Bidirectional Term <-> TermId map. Interning is append-only; ids are
/// dense and stable for the lifetime of the dictionary.
class Dictionary {
 public:
  Dictionary() = default;

  // Interning mutates shared lookup state; the dictionary is move-only to
  // make accidental deep copies visible.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Returns the id of `term`, interning it if new.
  TermId Intern(const Term& term);

  /// Convenience wrappers.
  TermId InternIri(std::string_view iri) {
    return Intern(Term::Iri(std::string(iri)));
  }
  TermId InternLiteral(std::string_view value) {
    return Intern(Term::Literal(std::string(value)));
  }

  /// Id of `term` if already interned.
  std::optional<TermId> Find(const Term& term) const;

  /// The term for an id; id must be valid.
  const Term& Get(TermId id) const { return terms_[id]; }

  /// True if `id` names a literal (used by HEURISTIC 4 checks in tests).
  bool IsLiteral(TermId id) const { return terms_[id].is_literal(); }

  std::size_t size() const { return terms_.size(); }

 private:
  struct Key {
    TermKind kind;
    std::string lexical;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::string>()(k.lexical) * 3 +
             static_cast<std::size_t>(k.kind);
    }
  };

  std::vector<Term> terms_;
  std::unordered_map<Key, TermId, KeyHash> index_;
};

}  // namespace hsparql::rdf

#endif  // HSPARQL_RDF_DICTIONARY_H_
