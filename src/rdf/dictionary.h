// Mapping dictionary: RDF constants <-> dense integer ids.
//
// §2: "The majority of the systems replace constants (i.e., URIs and
// literals) appearing in RDF triples by identifiers using a mapping
// dictionary to avoid processing long strings." All storage and execution
// below this layer operates on TermIds only.
#ifndef HSPARQL_RDF_DICTIONARY_H_
#define HSPARQL_RDF_DICTIONARY_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace hsparql::rdf {

/// Bidirectional Term <-> TermId map. Interning is append-only; ids are
/// dense and stable for the lifetime of the dictionary.
///
/// Lookups are heterogeneous: (kind, string_view) probes the index without
/// materialising a Term or a std::string, so the hit path of InternIri /
/// InternLiteral / Find is allocation-free.
class Dictionary {
 public:
  Dictionary() = default;

  // Interning mutates shared lookup state; the dictionary is move-only to
  // make accidental deep copies visible.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Returns the id of the term, interning it if new.
  TermId Intern(const Term& term) { return Intern(term.kind, term.lexical); }
  /// Same, moving the lexical form into the dictionary on a miss.
  TermId Intern(Term&& term);
  /// Same, from the components (allocates only on a miss).
  TermId Intern(TermKind kind, std::string_view lexical);

  /// Convenience wrappers; allocation-free when the term is already known.
  TermId InternIri(std::string_view iri) {
    return Intern(TermKind::kIri, iri);
  }
  TermId InternLiteral(std::string_view value) {
    return Intern(TermKind::kLiteral, value);
  }

  /// Id of the term if already interned. Never allocates.
  std::optional<TermId> Find(const Term& term) const {
    return Find(term.kind, term.lexical);
  }
  std::optional<TermId> Find(TermKind kind, std::string_view lexical) const;

  /// The term for an id; id must be valid.
  const Term& Get(TermId id) const { return terms_[id]; }

  /// True if `id` names a literal (used by HEURISTIC 4 checks in tests).
  bool IsLiteral(TermId id) const { return terms_[id].is_literal(); }

  std::size_t size() const { return terms_.size(); }

  /// Pre-sizes both the term vector and the hash index for `n` total
  /// entries. The bulk loader calls this before its merge pass.
  void Reserve(std::size_t n);

  /// Destructively moves out every interned term, in id order, leaving the
  /// dictionary empty. Used by the parallel loader to migrate a chunk's
  /// staging dictionary into the global one without copying the strings.
  std::vector<Term> TakeTerms();

 private:
  struct Key {
    TermKind kind;
    std::string lexical;
  };
  /// Heterogeneous probe: same identity as Key, no owned string.
  struct KeyView {
    TermKind kind;
    std::string_view lexical;
  };
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(const Key& k) const {
      return Mix(k.kind, k.lexical);
    }
    std::size_t operator()(const KeyView& k) const {
      return Mix(k.kind, k.lexical);
    }
    static std::size_t Mix(TermKind kind, std::string_view lexical) {
      // std::hash<string_view> agrees with std::hash<string> on equal
      // content, so owned keys and view probes land in the same bucket.
      return std::hash<std::string_view>()(lexical) * 3 +
             static_cast<std::size_t>(kind);
    }
  };
  struct KeyEq {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      return a.kind == b.kind &&
             std::string_view(a.lexical) == std::string_view(b.lexical);
    }
  };

  std::vector<Term> terms_;
  std::unordered_map<Key, TermId, KeyHash, KeyEq> index_;
};

}  // namespace hsparql::rdf

#endif  // HSPARQL_RDF_DICTIONARY_H_
