#!/usr/bin/env python3
"""CI gate: always-on request tracing must stay cheap end to end.

Compares two bench_serving JSON artifacts — one run with request tracing
disabled (`--no-request-trace`) and one with the default always-on
tracing — and fails when the geometric-mean slowdown across the steady
phase's throughput and latency metrics exceeds the given budget.

The traced run does strictly more work per request (request id
generation, span timestamps, a forced engine trace, the flight-recorder
write, the access-log entry), so its slowdown bounds what tracing costs
every serving deployment. Both artifacts should come from
`bench_serving --repeat=N` (N >= 3): the bench keeps the best of N runs,
because scheduling and frequency noise on a shared CI runner only ever
slows a run down — best-of is the stable estimate of true cost, and the
only aggregate tight enough for a single-digit-percent gate (same
reasoning as tools/trace_overhead_gate.py, PR 5).

Metrics compared (from the "steady" object):
  qps    — ratio baseline/traced (higher is better)
  p50_ms — ratio traced/baseline (lower is better)

Usage: request_trace_overhead_gate.py <baseline.json> <traced.json> <max_pct>
"""

import json
import math
import sys


def load_steady(path, want_tracing):
    with open(path) as f:
        report = json.load(f)
    if report.get("bench") != "serving":
        sys.exit(f"gate error: {path} is not a bench_serving artifact")
    if report.get("request_tracing") is not want_tracing:
        sys.exit(
            f"gate error: {path} has request_tracing="
            f"{report.get('request_tracing')}, expected {want_tracing} "
            "(baseline must be run with --no-request-trace, traced without)"
        )
    return report["steady"]


def main():
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    baseline = load_steady(sys.argv[1], want_tracing=False)
    traced = load_steady(sys.argv[2], want_tracing=True)
    budget_pct = float(sys.argv[3])

    ratios = {}
    if baseline["qps"] > 0 and traced["qps"] > 0:
        ratios["qps"] = baseline["qps"] / traced["qps"]
    if baseline["p50_ms"] > 0 and traced["p50_ms"] > 0:
        ratios["p50_ms"] = traced["p50_ms"] / baseline["p50_ms"]
    if not ratios:
        sys.exit("gate error: no usable metrics (zero qps or p50 in a report)")

    log_sum = 0.0
    for name, ratio in sorted(ratios.items()):
        log_sum += math.log(ratio)
        print(
            f"{name}: base {baseline[name]} traced {traced[name]} "
            f"(slowdown {(ratio - 1) * 100:+.2f}%)"
        )
    geomean = math.exp(log_sum / len(ratios))
    overhead_pct = (geomean - 1.0) * 100.0
    print(
        f"geomean slowdown with request tracing on: {overhead_pct:+.2f}% "
        f"over {len(ratios)} metrics (budget {budget_pct:.1f}%)"
    )
    if overhead_pct > budget_pct:
        sys.exit(f"gate FAILED: {overhead_pct:.2f}% > {budget_pct:.1f}%")
    print("gate passed")


if __name__ == "__main__":
    main()
