#!/usr/bin/env python3
"""CI gate: EXPLAIN ANALYZE tracing must be (near-)free when disabled.

Compares two google-benchmark JSON result files from
bench/bench_micro_operators — one run with tracing disabled (the default)
and one with the trace forced on via HSPARQL_FORCE_TRACE — and fails when
the geometric-mean slowdown of the traced run exceeds the given budget.

The traced run does strictly more work than the untraced one (it assembles
the plan-shaped obs::QueryTrace tree on every Execute), so its slowdown is
an upper bound on what the tracing *hooks* can cost a run that never asks
for a trace. Per-benchmark *minima* across repetitions are compared (run
with --benchmark_repetitions): scheduling and frequency noise only ever
slows a repetition down, so the min is the stable estimate of each
benchmark's true cost and the only aggregate tight enough for a
single-digit-percent gate on a shared CI runner.

Usage: trace_overhead_gate.py <baseline.json> <traced.json> <max_pct>
"""

import json
import math
import sys


def minima(path):
    """run_name -> min real_time across repetitions of a JSON report."""
    with open(path) as f:
        report = json.load(f)
    out = {}
    for bench in report.get("benchmarks", []):
        # Skip mean/median/stddev aggregate rows; keep raw repetitions.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["run_name"]
        t = float(bench["real_time"])
        out[name] = min(out[name], t) if name in out else t
    return out


def main():
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    baseline = minima(sys.argv[1])
    traced = minima(sys.argv[2])
    budget_pct = float(sys.argv[3])

    shared = sorted(set(baseline) & set(traced))
    if not shared:
        sys.exit("gate error: no common benchmarks between the two reports")

    log_ratio_sum = 0.0
    for name in shared:
        ratio = traced[name] / baseline[name]
        log_ratio_sum += math.log(ratio)
        print(f"{name}: base {baseline[name]:.1f} traced {traced[name]:.1f} "
              f"({(ratio - 1) * 100:+.2f}%)")
    geomean = math.exp(log_ratio_sum / len(shared))
    overhead_pct = (geomean - 1.0) * 100.0
    print(f"geomean slowdown with tracing forced on: {overhead_pct:+.2f}% "
          f"over {len(shared)} benchmarks (budget {budget_pct:.1f}%)")
    if overhead_pct > budget_pct:
        sys.exit(f"gate FAILED: {overhead_pct:.2f}% > {budget_pct:.1f}%")
    print("gate passed")


if __name__ == "__main__":
    main()
