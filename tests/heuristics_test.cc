// Tests for the five heuristics of §4.
#include <gtest/gtest.h>

#include "hsp/heuristics.h"
#include "sparql/parser.h"

namespace hsparql::hsp {
namespace {

using rdf::Position;
using sparql::JoinClass;
using sparql::Query;
using sparql::TriplePattern;

Query ParseOrDie(std::string_view text) {
  auto q = sparql::Parse(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).ValueOrDie();
}

// One pattern per H1 class, in the paper's precedence order.
Query H1Ladder() {
  return ParseOrDie(
      "SELECT ?u WHERE {\n"
      "  <http://s> <http://p> <http://o> .\n"  // (s,p,o)
      "  <http://s> ?u <http://o> .\n"          // (s,?,o)
      "  ?u <http://p> <http://o> .\n"          // (?,p,o)
      "  <http://s> <http://p> ?u .\n"          // (s,p,?)
      "  ?u ?v <http://o> .\n"                  // (?,?,o)
      "  <http://s> ?u ?v .\n"                  // (s,?,?)
      "  ?u <http://p> ?v .\n"                  // (?,p,?)
      "  ?u ?v ?w .\n"                          // (?,?,?)
      "}");
}

TEST(H1Test, PrecedenceLadder) {
  Query q = H1Ladder();
  for (std::size_t i = 0; i < q.patterns.size(); ++i) {
    EXPECT_EQ(H1Rank(q.patterns[i]), static_cast<int>(i)) << "pattern " << i;
  }
}

TEST(H1Test, RdfTypeExceptionDemotesBoundPredicate) {
  Query q = ParseOrDie(
      "SELECT ?x WHERE {\n"
      "  ?x a <http://Class> .\n"          // (?,type,o)
      "  ?x <http://p> <http://o> .\n"     // (?,p,o)
      "  ?x a ?c .\n"                      // (?,type,?)
      "}");
  // With the exception, (?,type,o) ranks as (?,?,o) = 4, worse than
  // (?,p,o) = 2; without it both rank 2.
  EXPECT_EQ(H1Rank(q.patterns[0], /*type_exception=*/true), 4);
  EXPECT_EQ(H1Rank(q.patterns[0], /*type_exception=*/false), 2);
  EXPECT_EQ(H1Rank(q.patterns[1]), 2);
  EXPECT_EQ(H1Rank(q.patterns[2], /*type_exception=*/true), 7);
  EXPECT_TRUE(HasRdfTypePredicate(q.patterns[0]));
  EXPECT_FALSE(HasRdfTypePredicate(q.patterns[1]));
}

TEST(H2Test, PrecedenceOrder) {
  using P = Position;
  EXPECT_EQ(H2Rank(JoinClass::Make(P::kPredicate, P::kObject)), 0);
  EXPECT_EQ(H2Rank(JoinClass::Make(P::kSubject, P::kPredicate)), 1);
  EXPECT_EQ(H2Rank(JoinClass::Make(P::kSubject, P::kObject)), 2);
  EXPECT_EQ(H2Rank(JoinClass::Make(P::kObject, P::kObject)), 3);
  EXPECT_EQ(H2Rank(JoinClass::Make(P::kSubject, P::kSubject)), 4);
  EXPECT_EQ(H2Rank(JoinClass::Make(P::kPredicate, P::kPredicate)), 5);
}

TEST(H3H4Test, BoundCountsAndLiteralObjects) {
  Query q = ParseOrDie(
      "SELECT ?x WHERE {\n"
      "  ?x <http://p> \"literal\" .\n"
      "  ?x <http://p> <http://iri> .\n"
      "  ?x <http://p> ?y .\n"
      "}");
  EXPECT_EQ(H3BoundCount(q.patterns[0]), 2);
  EXPECT_EQ(H3BoundCount(q.patterns[2]), 1);
  EXPECT_TRUE(H4HasLiteralObject(q.patterns[0]));
  EXPECT_FALSE(H4HasLiteralObject(q.patterns[1]));
  EXPECT_FALSE(H4HasLiteralObject(q.patterns[2]));
}

TEST(ScanOrderTest, RanksByH1ThenH3ThenH4) {
  Query q = ParseOrDie(
      "SELECT ?x WHERE {\n"
      "  ?x <http://p> ?y .\n"           // 0: rank 6
      "  ?x <http://p> \"v\" .\n"        // 1: rank 2, literal object
      "  ?x <http://p> <http://o> .\n"   // 2: rank 2, IRI object
      "  ?x a <http://C> .\n"            // 3: rank 4 (type exception)
      "}");
  std::vector<std::size_t> order = {0, 1, 2, 3};
  std::sort(order.begin(), order.end(), ScanOrderLess{&q, true});
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 3, 0}));
}

TEST(JoinClassesOfVarTest, StarAndChainClasses) {
  Query q = ParseOrDie(
      "SELECT ?a WHERE {\n"
      "  ?a <http://p1> ?m .\n"
      "  ?a <http://p2> ?m .\n"
      "  ?m <http://p3> ?z .\n"
      "}");
  sparql::VarId m = *q.FindVar("m");
  std::vector<std::size_t> all = {0, 1, 2};
  auto classes = JoinClassesOfVar(q, m, all);
  // ?m: o in tp0, o in tp1, s in tp2 -> one o=o chain edge + one s=o link.
  ASSERT_EQ(classes.size(), 2u);
  using P = Position;
  EXPECT_EQ(classes[0], JoinClass::Make(P::kObject, P::kObject));
  EXPECT_EQ(classes[1], JoinClass::Make(P::kSubject, P::kObject));
}

TEST(TieBreakTest, H3PrefersBulkyCoverageByDefault) {
  // Y2's tie: {a} covers 5 constants, {m1,m2} covers 6. The default
  // (merge_prefers_bulky) keeps {a} — reproducing the paper's left-deep
  // merge chain on ?a.
  Query q = ParseOrDie(
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
      "PREFIX y: <http://yago-knowledge.org/resource/>\n"
      "SELECT ?a WHERE {\n"
      "  ?a rdf:type y:wordnet_actor .\n"
      "  ?a y:livesIn ?city .\n"
      "  ?a y:actedIn ?m1 .\n"
      "  ?m1 rdf:type y:wordnet_movie .\n"
      "  ?a y:directed ?m2 .\n"
      "  ?m2 rdf:type y:wordnet_movie .\n}");
  sparql::VarId a = *q.FindVar("a");
  sparql::VarId m1 = *q.FindVar("m1");
  sparql::VarId m2 = *q.FindVar("m2");
  std::vector<CandidateSet> sets;
  sets.push_back(CandidateSet{{a}, {0, 1, 2, 4}});
  sets.push_back(CandidateSet{{m1, m2}, {2, 3, 4, 5}});

  TieBreakConfig bulky;  // default
  auto kept = ApplyH3(q, sets, bulky);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].vars, std::vector<sparql::VarId>{a});

  TieBreakConfig selective;
  selective.merge_prefers_bulky = false;
  kept = ApplyH3(q, sets, selective);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].vars, (std::vector<sparql::VarId>{m1, m2}));
}

TEST(TieBreakTest, H4CountsLiteralObjects) {
  Query q = ParseOrDie(
      "SELECT ?x WHERE {\n"
      "  ?x <http://p> \"lit\" .\n"
      "  ?x <http://q> ?a .\n"
      "  ?y <http://p> <http://iri> .\n"
      "  ?y <http://q> ?b .\n}");
  sparql::VarId x = *q.FindVar("x");
  sparql::VarId y = *q.FindVar("y");
  std::vector<CandidateSet> sets;
  sets.push_back(CandidateSet{{x}, {0, 1}});  // one literal object
  sets.push_back(CandidateSet{{y}, {2, 3}});  // none
  TieBreakConfig bulky;
  auto kept = ApplyH4(q, sets, bulky);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].vars, std::vector<sparql::VarId>{y});
}

TEST(TieBreakTest, H5PrefersNonProjectedCoverage) {
  Query q = ParseOrDie(
      "SELECT ?x WHERE {\n"
      "  ?x <http://p> ?a .\n"
      "  ?x <http://q> ?b .\n"
      "  ?z <http://p> ?c .\n"
      "  ?z <http://q> ?d .\n}");
  sparql::VarId x = *q.FindVar("x");
  sparql::VarId z = *q.FindVar("z");
  std::vector<CandidateSet> sets;
  sets.push_back(CandidateSet{{x}, {0, 1}});  // covers projected ?x twice
  sets.push_back(CandidateSet{{z}, {2, 3}});  // no projection variables
  auto kept = ApplyH5(q, sets, TieBreakConfig{});
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].vars, std::vector<sparql::VarId>{z});
}

TEST(TieBreakTest, FiltersPreserveSingletons) {
  Query q = ParseOrDie("SELECT ?x WHERE { ?x <http://p> ?y }");
  std::vector<CandidateSet> one;
  one.push_back(CandidateSet{{0}, {0}});
  EXPECT_EQ(ApplyH3(q, one, {}).size(), 1u);
  EXPECT_EQ(ApplyH4(q, one, {}).size(), 1u);
  EXPECT_EQ(ApplyH2(q, one, {}).size(), 1u);
  EXPECT_EQ(ApplyH5(q, one, {}).size(), 1u);
}

}  // namespace
}  // namespace hsparql::hsp
