// Unit tests for the request-tracing building blocks (DESIGN.md §4l):
// request ids and W3C traceparent adoption, RequestTrace span math and
// JSON rendering, the AccessLog ring + error-only sink, the two-ring
// FlightRecorder (slow/error bias, filters, de-dup), and the trace-fed
// CardinalityMemo.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/cardinality_memo.h"
#include "obs/request_trace.h"
#include "obs/slow_query_log.h"

namespace hsparql::obs {
namespace {

bool IsLowerHex(std::string_view s) {
  for (char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return !s.empty();
}

// ---------------------------------------------------------------------------
// Request ids.

TEST(RequestIdTest, GeneratesDistinctLowerHexIds) {
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    std::string id = GenerateRequestId();
    EXPECT_EQ(id.size(), 16u);
    EXPECT_TRUE(IsLowerHex(id)) << id;
    seen.insert(std::move(id));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(RequestIdTest, GenerationIsThreadSafe) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::vector<std::string>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ids, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ids[static_cast<std::size_t>(t)].push_back(GenerateRequestId());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::set<std::string> all;
  for (const auto& batch : ids) all.insert(batch.begin(), batch.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

// ---------------------------------------------------------------------------
// traceparent parsing.

TEST(TraceparentTest, ParsesValidHeader) {
  std::string trace_id;
  std::string parent_id;
  ASSERT_TRUE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", &trace_id,
      &parent_id));
  EXPECT_EQ(trace_id, "4bf92f3577b34da6a3ce929d0e0e4736");
  EXPECT_EQ(parent_id, "00f067aa0ba902b7");
}

TEST(TraceparentTest, LowercasesMixedCaseIds) {
  std::string trace_id;
  std::string parent_id;
  ASSERT_TRUE(ParseTraceparent(
      "00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01", &trace_id,
      &parent_id));
  EXPECT_EQ(trace_id, "4bf92f3577b34da6a3ce929d0e0e4736");
  EXPECT_EQ(parent_id, "00f067aa0ba902b7");
}

TEST(TraceparentTest, RejectsMalformedHeaders) {
  std::string trace_id;
  std::string parent_id;
  // Empty / truncated / wrong separators / non-hex.
  EXPECT_FALSE(ParseTraceparent("", &trace_id, &parent_id));
  EXPECT_FALSE(ParseTraceparent("00-abc-def-01", &trace_id, &parent_id));
  EXPECT_FALSE(ParseTraceparent(
      "00_4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7_01", &trace_id,
      &parent_id));
  EXPECT_FALSE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e473z-00f067aa0ba902b7-01", &trace_id,
      &parent_id));
  // Version ff is forbidden by the spec.
  EXPECT_FALSE(ParseTraceparent(
      "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", &trace_id,
      &parent_id));
  // All-zero trace-id / parent-id are invalid.
  EXPECT_FALSE(ParseTraceparent(
      "00-00000000000000000000000000000000-00f067aa0ba902b7-01", &trace_id,
      &parent_id));
  EXPECT_FALSE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", &trace_id,
      &parent_id));
}

TEST(TraceparentTest, AcceptsFutureVersionWithTrailingData) {
  // Per spec, a longer header from a future version parses as long as the
  // known prefix is well-formed.
  std::string trace_id;
  std::string parent_id;
  EXPECT_TRUE(ParseTraceparent(
      "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
      &trace_id, &parent_id));
}

// ---------------------------------------------------------------------------
// RequestTrace spans + JSON.

RequestTrace MakeTrace(int status, double total_millis) {
  RequestTrace trace;
  trace.id = "00000000000000aa";
  trace.peer = "127.0.0.1:1234";
  trace.method = "GET";
  trace.target = "/sparql?query=x";
  trace.http_status = status;
  trace.response_bytes = 64;
  trace.unix_micros = 1754600000000000;
  trace.total_millis = total_millis;
  trace.AddSpan("parse_http", 0.0, 0.01);
  trace.AddSpan("queue", 0.01, 0.05);
  trace.AddSpan("exec", 0.06, total_millis - 0.06);
  return trace;
}

TEST(RequestTraceTest, SpanAccessors) {
  RequestTrace trace = MakeTrace(200, 2.0);
  EXPECT_DOUBLE_EQ(trace.SpanMillis("queue"), 0.05);
  EXPECT_DOUBLE_EQ(trace.SpanMillis("absent"), 0.0);
  EXPECT_NEAR(trace.SpanTotalMillis(), 2.0, 1e-9);
}

TEST(RequestTraceTest, ToJsonCarriesIdsSpansAndQueryAnnotations) {
  RequestTrace trace = MakeTrace(200, 2.0);
  trace.trace_id = "4bf92f3577b34da6a3ce929d0e0e4736";
  trace.engine_status = "ok";
  trace.planner = "hsp";
  trace.rows = 7;
  trace.query_hash = 0xabcdef;
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"id\":\"00000000000000aa\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"4bf92f3577b34da6a3ce929d0e0e4736\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue\""), std::string::npos);
  EXPECT_NE(json.find("\"engine_status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"planner\":\"hsp\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\":7"), std::string::npos);
  EXPECT_NE(json.find("\"query_hash\":\"0000000000abcdef\""),
            std::string::npos);
}

TEST(RequestTraceTest, ToJsonOmitsQuerySectionForNonQueryRequests) {
  RequestTrace trace = MakeTrace(200, 1.0);  // engine_status stays empty
  std::string json = trace.ToJson();
  EXPECT_EQ(json.find("engine_status"), std::string::npos);
  EXPECT_EQ(json.find("planner"), std::string::npos);
}

TEST(RequestTraceTest, ToJsonRendersOperatorTree) {
  RequestTrace trace = MakeTrace(200, 2.0);
  trace.engine_status = "ok";
  auto qt = std::make_shared<QueryTrace>();
  qt->root.label = "HashJoin";
  qt->root.output_rows = 5;
  OperatorTrace scan;
  scan.label = "Scan ?x <p> ?y";
  scan.output_rows = 10;
  scan.estimated_rows = 12.0;
  qt->root.children.push_back(scan);
  trace.query_trace = qt;
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"operators\":"), std::string::npos);
  EXPECT_NE(json.find("\"op\":\"HashJoin\""), std::string::npos);
  EXPECT_NE(json.find("\"op\":\"Scan ?x <p> ?y\""), std::string::npos);
  EXPECT_NE(json.find("\"est\":12.000"), std::string::npos);
}

// ---------------------------------------------------------------------------
// AccessLog.

/// Distinct (id, unix_micros) per trace: the recorder snapshot
/// de-duplicates notable traces by that pair, so reusing MakeTrace's
/// fixed id would collapse unrelated test traces.
std::shared_ptr<const RequestTrace> SharedTrace(int status,
                                                double total_millis) {
  static std::atomic<std::int64_t> seq{0};
  RequestTrace trace = MakeTrace(status, total_millis);
  trace.id = GenerateRequestId();
  trace.unix_micros += seq.fetch_add(1);
  return std::make_shared<RequestTrace>(std::move(trace));
}

TEST(AccessLogTest, RingKeepsMostRecentNewestFirst) {
  AccessLog::Options options;
  options.capacity = 3;
  AccessLog log(options);
  for (int i = 0; i < 5; ++i) {
    auto trace = std::make_shared<RequestTrace>(MakeTrace(200, 1.0));
    trace->response_bytes = static_cast<std::uint64_t>(i);
    log.Record(std::move(trace));
  }
  EXPECT_EQ(log.recorded_total(), 5u);
  std::vector<AccessLogEntry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].bytes, 4u);  // newest first
  EXPECT_EQ(entries[1].bytes, 3u);
  EXPECT_EQ(entries[2].bytes, 2u);
  EXPECT_EQ(log.Snapshot(1).size(), 1u);
}

TEST(AccessLogTest, ErrorsOnlySinkSkipsSuccesses) {
  std::vector<std::string> lines;
  AccessLog::Options options;
  options.sink = [&lines](std::string_view line) {
    lines.emplace_back(line);
  };
  AccessLog log(options);  // log_errors_only defaults to true
  log.Record(SharedTrace(200, 1.0));
  log.Record(SharedTrace(499, 3.0));
  log.Record(SharedTrace(408, 5.0));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"status\":499"), std::string::npos);
  EXPECT_NE(lines[1].find("\"status\":408"), std::string::npos);
  EXPECT_NE(lines[0].find("\"id\":\""), std::string::npos);
  EXPECT_EQ(log.recorded_total(), 3u);  // the ring records everything
}

TEST(AccessLogTest, FullSinkReceivesEveryRequest) {
  std::atomic<int> lines{0};
  AccessLog::Options options;
  options.log_errors_only = false;
  options.sink = [&lines](std::string_view) { lines++; };
  AccessLog log(options);
  log.Record(SharedTrace(200, 1.0));
  log.Record(SharedTrace(503, 1.0));
  EXPECT_EQ(lines.load(), 2);
}

// ---------------------------------------------------------------------------
// FlightRecorder.

TEST(FlightRecorderTest, RecordsAndSnapshotsNewestFirst) {
  FlightRecorder recorder;
  for (int i = 0; i < 3; ++i) {
    auto trace = SharedTrace(200, 1.0 + i);
    recorder.Record(std::move(trace));
  }
  EXPECT_EQ(recorder.recorded_total(), 3u);
  auto traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 3u);
}

TEST(FlightRecorderTest, NotableRingKeepsSlowAndErrorTracesAcrossWraps) {
  FlightRecorder::Options options;
  options.recent_capacity = 4;
  options.notable_capacity = 8;
  options.slow_millis = 100.0;
  FlightRecorder recorder(options);
  // One slow trace and one error trace, then enough fast 200s to wrap the
  // recent ring many times over.
  auto slow = std::make_shared<RequestTrace>(MakeTrace(200, 250.0));
  slow->id = GenerateRequestId();
  slow->target = "/sparql?query=slow";
  recorder.Record(slow);
  auto error = std::make_shared<RequestTrace>(MakeTrace(500, 1.0));
  error->id = GenerateRequestId();
  error->target = "/sparql?query=error";
  recorder.Record(error);
  for (int i = 0; i < 64; ++i) recorder.Record(SharedTrace(200, 1.0));

  auto traces = recorder.Snapshot();
  bool slow_survives = false;
  bool error_survives = false;
  for (const auto& t : traces) {
    if (t->target == "/sparql?query=slow") slow_survives = true;
    if (t->target == "/sparql?query=error") error_survives = true;
  }
  EXPECT_TRUE(slow_survives);
  EXPECT_TRUE(error_survives);
  EXPECT_EQ(recorder.notable_total(), 2u);
}

TEST(FlightRecorderTest, FiltersByDurationStatusAndLimit) {
  FlightRecorder recorder;
  recorder.Record(SharedTrace(200, 1.0));
  recorder.Record(SharedTrace(200, 50.0));
  recorder.Record(SharedTrace(404, 2.0));
  recorder.Record(SharedTrace(503, 2.0));

  FlightRecorder::Filter slow_only;
  slow_only.min_millis = 10.0;
  auto slow = recorder.Snapshot(slow_only);
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_DOUBLE_EQ(slow[0]->total_millis, 50.0);

  FlightRecorder::Filter by_class;
  by_class.status = 4;  // the 4xx class
  auto fourxx = recorder.Snapshot(by_class);
  ASSERT_EQ(fourxx.size(), 1u);
  EXPECT_EQ(fourxx[0]->http_status, 404);

  FlightRecorder::Filter exact;
  exact.status = 503;
  EXPECT_EQ(recorder.Snapshot(exact).size(), 1u);

  FlightRecorder::Filter limited;
  limited.limit = 2;
  EXPECT_EQ(recorder.Snapshot(limited).size(), 2u);
}

TEST(FlightRecorderTest, SnapshotDeduplicatesNotableTraces) {
  // A slow trace lands in both rings while the recent ring has not yet
  // wrapped; the snapshot must list it once.
  FlightRecorder recorder;
  auto slow = std::make_shared<RequestTrace>(MakeTrace(200, 500.0));
  recorder.Record(slow);
  EXPECT_EQ(recorder.Snapshot().size(), 1u);
}

TEST(FlightRecorderTest, ToJsonListsTraces) {
  FlightRecorder recorder;
  recorder.Record(SharedTrace(200, 1.0));
  std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"traces\":["), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"id\":\""), std::string::npos);
}

TEST(FlightRecorderTest, ConcurrentRecordIsSafe) {
  FlightRecorder::Options options;
  options.recent_capacity = 16;
  FlightRecorder recorder(options);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < 1000; ++i) recorder.Record(SharedTrace(200, 1.0));
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(recorder.recorded_total(), 4000u);
  // Every slot holds a valid trace; Snapshot must not crash or return
  // nulls after heavy wrapping.
  for (const auto& trace : recorder.Snapshot()) {
    ASSERT_NE(trace, nullptr);
    EXPECT_EQ(trace->http_status, 200);
  }
}

// ---------------------------------------------------------------------------
// CardinalityMemo.

TEST(CardinalityMemoTest, ObserveAndLookup) {
  CardinalityMemo memo;
  const std::uint64_t key = HashQueryText("?s <p> ?o");
  memo.Observe(key, "?s <p> ?o", 40, 50.0);
  memo.Observe(key, "?s <p> ?o", 60, 30.0);
  auto stats = memo.Lookup(key);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->label, "?s <p> ?o");
  EXPECT_EQ(stats->observations, 2u);
  EXPECT_EQ(stats->last_actual, 60u);
  EXPECT_DOUBLE_EQ(stats->mean_actual, 50.0);
  // q-error: geomean of {40/50, 60/30} = sqrt(0.8 * 2.0) ~= 1.2649.
  EXPECT_NEAR(stats->q_error, std::sqrt(1.6), 1e-9);
  EXPECT_FALSE(memo.Lookup(key + 1).has_value());
}

TEST(CardinalityMemoTest, ObservationsWithoutEstimatesHaveNoQError) {
  CardinalityMemo memo;
  memo.Observe(1, "?s ?p ?o", 100);
  auto stats = memo.Lookup(1);
  ASSERT_TRUE(stats.has_value());
  EXPECT_LT(stats->q_error, 0.0);  // -1 = unknown
  std::string json = memo.ToJson();
  EXPECT_EQ(json.find("q_error"), std::string::npos);
}

TEST(CardinalityMemoTest, RingOverwritesOldestObservation) {
  CardinalityMemo::Options options;
  options.ring_size = 2;
  CardinalityMemo memo(options);
  memo.Observe(1, "p", 10);
  memo.Observe(1, "p", 20);
  memo.Observe(1, "p", 30);  // evicts the 10
  auto stats = memo.Lookup(1);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->observations, 3u);
  EXPECT_EQ(stats->last_actual, 30u);
  EXPECT_DOUBLE_EQ(stats->mean_actual, 25.0);
}

TEST(CardinalityMemoTest, BoundedAtMaxPatternsWithDropCounter) {
  CardinalityMemo::Options options;
  options.max_patterns = 2;
  CardinalityMemo memo(options);
  memo.Observe(1, "a", 1);
  memo.Observe(2, "b", 1);
  memo.Observe(3, "c", 1);  // dropped: memo full
  memo.Observe(1, "a", 2);  // existing keys still update
  EXPECT_EQ(memo.size(), 2u);
  EXPECT_EQ(memo.observed_total(), 4u);
  EXPECT_EQ(memo.dropped_total(), 1u);
  EXPECT_FALSE(memo.Lookup(3).has_value());
}

TEST(CardinalityMemoTest, SnapshotOrdersByObservationCount) {
  CardinalityMemo memo;
  memo.Observe(1, "rare", 1);
  memo.Observe(2, "hot", 1);
  memo.Observe(2, "hot", 2);
  auto snapshot = memo.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].label, "hot");
  EXPECT_EQ(snapshot[1].label, "rare");
}

TEST(CardinalityMemoTest, ToJsonRendersPatternsAndCounters) {
  CardinalityMemo memo;
  memo.Observe(0xab, "?s <p> ?o", 40, 50.0);
  std::string json = memo.ToJson();
  EXPECT_NE(json.find("\"key\":\"00000000000000ab\""), std::string::npos);
  EXPECT_NE(json.find("\"pattern\":\"?s <p> ?o\""), std::string::npos);
  EXPECT_NE(json.find("\"observations\":1"), std::string::npos);
  EXPECT_NE(json.find("\"last_actual\":40"), std::string::npos);
  EXPECT_NE(json.find("\"observed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
}

}  // namespace
}  // namespace hsparql::obs
