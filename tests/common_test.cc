// Tests for src/common: Status/Result, RNG determinism, string utilities,
// and CancelToken's concurrent latched-expiry contract. This binary is
// part of the CI ThreadSanitizer job (.github/workflows/ci.yml), so the
// CancelToken race below gets data-race checking, not just assertion
// checking.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string_view>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace hsparql {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsParseError());
  EXPECT_EQ(st.message(), "bad token");
  EXPECT_EQ(st.ToString(), "Parse error: bad token");
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::NotFound("x");
  Status copy = st;
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_EQ(copy.message(), "x");
  st = Status::OK();
  EXPECT_TRUE(st.ok());
  EXPECT_TRUE(copy.IsNotFound());  // deep copy, not aliased
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kOutOfRange, StatusCode::kUnsupported,
        StatusCode::kInternal, StatusCode::kIoError,
        StatusCode::kDeadlineExceeded, StatusCode::kInvalidQuery,
        StatusCode::kCancelled, StatusCode::kOverloaded,
        StatusCode::kUnavailable}) {
    EXPECT_FALSE(StatusCodeToString(code).empty());
    EXPECT_NE(StatusCodeToString(code), "Unknown");
    // The wire-stable snake_case id must exist and be lowercase.
    std::string_view name = StatusCodeName(code);
    EXPECT_FALSE(name.empty());
    for (char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '_') << name;
    }
  }
}

TEST(StatusTest, TypedFactoriesAndPredicates) {
  EXPECT_TRUE(Status::InvalidQuery("q").IsInvalidQuery());
  EXPECT_TRUE(Status::Cancelled("c").IsCancelled());
  EXPECT_TRUE(Status::Overloaded("o").IsOverloaded());
  EXPECT_TRUE(Status::Unavailable("u").IsUnavailable());
  // InvalidQuery is distinct from ParseError (which covers data files).
  EXPECT_FALSE(Status::InvalidQuery("q").IsParseError());
}

TEST(StatusTest, HttpStatusMapping) {
  EXPECT_EQ(HttpStatusFor(StatusCode::kOk), 200);
  EXPECT_EQ(HttpStatusFor(StatusCode::kInvalidArgument), 400);
  EXPECT_EQ(HttpStatusFor(StatusCode::kInvalidQuery), 400);
  EXPECT_EQ(HttpStatusFor(StatusCode::kParseError), 400);
  EXPECT_EQ(HttpStatusFor(StatusCode::kNotFound), 404);
  EXPECT_EQ(HttpStatusFor(StatusCode::kDeadlineExceeded), 408);
  EXPECT_EQ(HttpStatusFor(StatusCode::kCancelled), 499);
  EXPECT_EQ(HttpStatusFor(StatusCode::kOverloaded), 503);
  EXPECT_EQ(HttpStatusFor(StatusCode::kUnavailable), 503);
  EXPECT_EQ(HttpStatusFor(StatusCode::kUnsupported), 501);
  EXPECT_EQ(HttpStatusFor(StatusCode::kInternal), 500);
  EXPECT_EQ(HttpStatusFor(StatusCode::kIoError), 500);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  HSPARQL_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(RngTest, Deterministic) {
  SplitMix64 a(7);
  SplitMix64 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  SplitMix64 rng(kDefaultSeed);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  SplitMix64 rng(kDefaultSeed);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, SkewFavoursLowRanks) {
  ZipfSampler zipf(1000, 1.2, 3);
  std::size_t low = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next() < 10) ++low;
  }
  // The top-10 of 1000 ranks should receive far more than their uniform
  // 1% share under skew 1.2.
  EXPECT_GT(low, static_cast<std::size_t>(kDraws) / 20);
}

TEST(ZipfTest, CoversRangeAndIsDeterministic) {
  ZipfSampler a(50, 1.0, 9);
  ZipfSampler b(50, 1.0, 9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = a.Next();
    EXPECT_EQ(v, b.Next());
    EXPECT_LT(v, 50u);
    seen.insert(v);
  }
  EXPECT_GT(seen.size(), 20u);  // not degenerate
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split("a,,c", ',')[1], "");
  EXPECT_EQ(Split("abc", ',')[0], "abc");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x \t\n"), "x");
  EXPECT_EQ(StripWhitespace("x"), "x");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("lo", "hello"));
}

TEST(StringUtilTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(16348563), "16,348,563");
}

// Concurrent counterpart of engine_test's single-threaded latch tests:
// extender threads race SetTimeout(+1h) against pollers while the token
// expires. The contract under test: once any poller has observed
// Expired() == true, no later poll on any schedule — including polls
// interleaved with further deadline extensions — may read false again. A
// worker that aborted on an expired token (leaving partial output behind)
// must never be contradicted by a subsequent "not expired".
TEST(CancelTokenTest, ConcurrentDeadlineExtensionCannotUnexpire) {
  constexpr int kExtenders = 4;
  constexpr int kPollers = 4;
  constexpr int kPollsAfterLatch = 20000;

  CancelToken token;
  // A deadline that expires almost immediately; the extenders then fight
  // to push it out before any poller notices.
  token.SetTimeout(std::chrono::milliseconds(1));

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kExtenders + kPollers);
  for (int i = 0; i < kExtenders; ++i) {
    threads.emplace_back([&token, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        token.SetTimeout(std::chrono::hours(1));
      }
    });
  }
  std::atomic<int> latched{0};
  for (int i = 0; i < kPollers; ++i) {
    threads.emplace_back([&token, &latched] {
      while (!token.Expired()) std::this_thread::yield();
      // Latched: from this thread's first true observation on, every
      // further poll must agree, extensions notwithstanding.
      for (int k = 0; k < kPollsAfterLatch; ++k) {
        ASSERT_TRUE(token.Expired());
      }
      latched.fetch_add(1, std::memory_order_relaxed);
    });
  }

  // If an extender won the race before the 1 ms deadline latched, the
  // pollers would wait an hour — Cancel() bounds the test either way
  // (cancellation latches regardless of any deadline games).
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  token.Cancel();
  for (std::size_t i = kExtenders; i < threads.size(); ++i) threads[i].join();
  stop.store(true, std::memory_order_relaxed);
  for (std::size_t i = 0; i < kExtenders; ++i) threads[i].join();

  EXPECT_EQ(latched.load(), kPollers);
  EXPECT_TRUE(token.Expired());
}

TEST(CancelTokenTest, ReasonDistinguishesCancelFromDeadline) {
  CancelToken cancelled;
  EXPECT_EQ(cancelled.reason(), CancelReason::kNone);
  cancelled.Cancel();
  EXPECT_EQ(cancelled.reason(), CancelReason::kCancelled);
  EXPECT_TRUE(cancelled.ToStatus("m").IsCancelled());

  CancelToken expired;
  expired.SetDeadline(std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(1));
  EXPECT_TRUE(expired.Expired());
  EXPECT_EQ(expired.reason(), CancelReason::kDeadline);
  EXPECT_TRUE(expired.ToStatus("m").IsDeadlineExceeded());
}

TEST(CancelTokenTest, ReasonIsFirstCauseWins) {
  // Deadline latches first; a later Cancel() must not relabel the cause.
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  EXPECT_TRUE(token.Expired());
  token.Cancel();
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
}

TEST(CancelTokenTest, ChildInheritsParentReason) {
  CancelToken parent;
  parent.Cancel();
  CancelToken child;
  child.set_parent(&parent);
  child.SetTimeout(std::chrono::hours(1));  // deadline is not the cause
  EXPECT_TRUE(child.Expired());
  EXPECT_EQ(child.reason(), CancelReason::kCancelled);
  EXPECT_TRUE(child.ToStatus("m").IsCancelled());
}

}  // namespace
}  // namespace hsparql
