// Tests for the LogicalPlan layer: construction, node ids, join counting,
// shape classification, merge-variable extraction, printing, and the
// shared solution-modifier epilogue.
#include <gtest/gtest.h>

#include "hsp/plan.h"
#include "sparql/parser.h"

namespace hsparql::hsp {
namespace {

using sparql::Query;
using sparql::VarId;
using storage::Ordering;

Query ParseOrDie(std::string_view text) {
  auto q = sparql::Parse(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).ValueOrDie();
}

std::unique_ptr<PlanNode> Scan(std::size_t i, VarId v) {
  return PlanNode::Scan(i, Ordering::kSpo, v);
}

TEST(PlanTest, IdsArePreOrderAndDense) {
  auto join = PlanNode::Join(JoinAlgo::kMerge, 0, Scan(0, 0), Scan(1, 0));
  LogicalPlan plan(PlanNode::Project({0}, false, std::move(join)));
  EXPECT_EQ(plan.num_nodes(), 4);
  EXPECT_EQ(plan.root()->id, 0);
  EXPECT_EQ(plan.root()->children[0]->id, 1);          // join
  EXPECT_EQ(plan.root()->children[0]->children[0]->id, 2);
  EXPECT_EQ(plan.root()->children[0]->children[1]->id, 3);
}

TEST(PlanTest, CountsJoinsAndScans) {
  auto mj = PlanNode::Join(JoinAlgo::kMerge, 0, Scan(0, 0), Scan(1, 0));
  auto hj =
      PlanNode::Join(JoinAlgo::kHash, 1, std::move(mj), Scan(2, 1));
  LogicalPlan plan(std::move(hj));
  EXPECT_EQ(plan.CountJoins(JoinAlgo::kMerge), 1);
  EXPECT_EQ(plan.CountJoins(JoinAlgo::kHash), 1);
  EXPECT_EQ(plan.CountScans(), 3);
}

TEST(PlanTest, ShapeLeftDeepVsBushy) {
  // Left-deep: every right child is a leaf.
  auto ld = PlanNode::Join(
      JoinAlgo::kHash, 1,
      PlanNode::Join(JoinAlgo::kMerge, 0, Scan(0, 0), Scan(1, 0)),
      Scan(2, 1));
  EXPECT_EQ(LogicalPlan(std::move(ld)).shape(), PlanShape::kLeftDeep);

  // Bushy: a join in a right subtree.
  auto bushy = PlanNode::Join(
      JoinAlgo::kHash, 1, Scan(0, 0),
      PlanNode::Join(JoinAlgo::kMerge, 1, Scan(1, 1), Scan(2, 1)));
  EXPECT_EQ(LogicalPlan(std::move(bushy)).shape(), PlanShape::kBushy);

  // A single scan is left-deep by convention.
  EXPECT_EQ(LogicalPlan(Scan(0, 0)).shape(), PlanShape::kLeftDeep);
}

TEST(PlanTest, FilterOnRightChildDoesNotMakeBushy) {
  Query q = ParseOrDie("SELECT ?a WHERE { ?a <p> ?b . ?a <q> ?c . "
                       "FILTER (?c > 1) }");
  auto right = PlanNode::Filter(q.filters[0], Scan(1, 0));
  auto join =
      PlanNode::Join(JoinAlgo::kHash, 0, Scan(0, 0), std::move(right));
  EXPECT_EQ(LogicalPlan(std::move(join)).shape(), PlanShape::kLeftDeep);
}

TEST(PlanTest, MergeJoinVariablesDeduped) {
  auto inner = PlanNode::Join(JoinAlgo::kMerge, 3, Scan(0, 3), Scan(1, 3));
  auto mid = PlanNode::Join(JoinAlgo::kMerge, 3, std::move(inner),
                            Scan(2, 3));
  auto outer = PlanNode::Join(JoinAlgo::kMerge, 1, std::move(mid),
                              Scan(3, 1));
  LogicalPlan plan(std::move(outer));
  EXPECT_EQ(plan.MergeJoinVariables(), (std::vector<VarId>{1, 3}));
}

TEST(PlanTest, PrinterShowsOperatorsAndCardinalities) {
  Query q = ParseOrDie("SELECT ?a WHERE { ?a <p> \"v\" . ?a <q> ?b }");
  auto join = PlanNode::Join(JoinAlgo::kMerge, *q.FindVar("a"),
                             Scan(0, *q.FindVar("a")),
                             Scan(1, *q.FindVar("a")));
  LogicalPlan plan(
      PlanNode::Project({*q.FindVar("a")}, true, std::move(join)));
  std::vector<std::uint64_t> cards = {5, 5, 10, 20};
  std::string text = plan.ToString(q, &cards);
  EXPECT_NE(text.find("project distinct [?a]"), std::string::npos);
  EXPECT_NE(text.find("mergejoin ?a"), std::string::npos);
  EXPECT_NE(text.find("select(spo) tp0"), std::string::npos);
  EXPECT_NE(text.find("(20)"), std::string::npos);
  EXPECT_NE(text.find("o=\"v\""), std::string::npos);
}

TEST(PlanTest, PrinterHandlesExtensionNodes) {
  Query q = ParseOrDie(
      "SELECT ?a WHERE { ?a <p> ?b } ORDER BY DESC(?b) LIMIT 3 OFFSET 1");
  std::unique_ptr<PlanNode> node = Scan(0, *q.FindVar("a"));
  node = PlanNode::Sort(q.order_by, std::move(node));
  node = PlanNode::Limit(3, 1, std::move(node));
  LogicalPlan plan(std::move(node));
  std::string text = plan.ToString(q);
  EXPECT_NE(text.find("sort [-?b]"), std::string::npos);
  EXPECT_NE(text.find("limit 3 offset 1"), std::string::npos);

  std::vector<std::unique_ptr<PlanNode>> branches;
  branches.push_back(Scan(0, 0));
  branches.push_back(Scan(0, 0));
  LogicalPlan uplan(PlanNode::Union(std::move(branches)));
  EXPECT_NE(uplan.ToString(q).find("union"), std::string::npos);

  auto outer = PlanNode::LeftOuterJoin(0, Scan(0, 0), Scan(0, 0));
  EXPECT_TRUE(outer->left_outer);
  LogicalPlan oplan(std::move(outer));
  EXPECT_NE(oplan.ToString(q).find("leftouterhashjoin"), std::string::npos);
}

TEST(PlanTest, AttachSolutionModifiersOrdering) {
  // ORDER BY sits below LIMIT; ASK forces LIMIT 1.
  Query q = ParseOrDie(
      "SELECT ?a WHERE { ?a <p> ?b } ORDER BY ?b LIMIT 5 OFFSET 2");
  auto node = AttachSolutionModifiers(q, Scan(0, 0));
  ASSERT_EQ(node->kind, PlanNode::Kind::kLimit);
  EXPECT_EQ(node->limit_count, 5u);
  EXPECT_EQ(node->limit_offset, 2u);
  ASSERT_EQ(node->children[0]->kind, PlanNode::Kind::kSort);

  Query ask = ParseOrDie("ASK { ?a <p> ?b }");
  auto ask_node = AttachSolutionModifiers(ask, Scan(0, 0));
  ASSERT_EQ(ask_node->kind, PlanNode::Kind::kLimit);
  EXPECT_EQ(ask_node->limit_count, 1u);

  Query plain = ParseOrDie("SELECT ?a WHERE { ?a <p> ?b }");
  auto plain_node = AttachSolutionModifiers(plain, Scan(0, 0));
  EXPECT_EQ(plain_node->kind, PlanNode::Kind::kScan);  // untouched
}

TEST(PlanTest, EmptyPlanBehaviour) {
  LogicalPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.num_nodes(), 0);
  EXPECT_EQ(plan.CountScans(), 0);
}

}  // namespace
}  // namespace hsparql::hsp
