// PlanLint tests: a mutation suite that corrupts one plan field at a time
// and asserts the expected rule fires, plus the whole-workload sweep
// proving all four planners emit lint-clean plans, plus the executor
// integration (ExecOptions::lint_plans and the shared runtime vocabulary).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <utility>

#include "cdp/cdp_planner.h"
#include "cdp/hybrid_planner.h"
#include "cdp/leftdeep_planner.h"
#include "exec/executor.h"
#include "hsp/hsp_planner.h"
#include "lint/plan_lint.h"
#include "sparql/parser.h"
#include "storage/statistics.h"
#include "storage/triple_store.h"
#include "test_util.h"
#include "workload/queries.h"
#include "workload/sp2bench_gen.h"
#include "workload/yago_gen.h"

namespace hsparql::lint {
namespace {

using hsp::JoinAlgo;
using hsp::LogicalPlan;
using hsp::PlanNode;
using sparql::Query;
using sparql::VarId;

constexpr const char* kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

Query ParseOrDie(std::string_view text) {
  auto q = sparql::Parse(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).ValueOrDie();
}

VarId VarByName(const Query& q, std::string_view name) {
  for (std::size_t i = 0; i < q.var_names.size(); ++i) {
    if (q.var_names[i] == name) return static_cast<VarId>(i);
  }
  ADD_FAILURE() << "no variable ?" << name;
  return sparql::kInvalidVarId;
}

PlanNode* FindNode(PlanNode* node,
                   const std::function<bool(const PlanNode&)>& pred) {
  if (pred(*node)) return node;
  for (auto& child : node->children) {
    if (PlanNode* found = FindNode(child.get(), pred)) return found;
  }
  return nullptr;
}

PlanNode* FindScan(LogicalPlan& plan, std::size_t pattern_index) {
  return FindNode(plan.mutable_root(), [&](const PlanNode& n) {
    return n.kind == PlanNode::Kind::kScan && n.pattern_index == pattern_index;
  });
}

PlanNode* FindMergeJoin(LogicalPlan& plan) {
  return FindNode(plan.mutable_root(), [](const PlanNode& n) {
    return n.kind == PlanNode::Kind::kJoin && n.algo == JoinAlgo::kMerge;
  });
}

// A star query whose HSP plan is a single merge block on ?a: the chain
// [tp1, tp2, tp0] (tp0 is the rdf:type pattern, demoted to last by H1).
Query StarQuery() {
  return ParseOrDie(std::string("SELECT ?a WHERE { ?a <") + kRdfType +
                    "> <bench:Article> . ?a <swrc:journal> ?j . "
                    "?a <dc:creator> ?p }");
}

hsp::PlannedQuery PlanStar() {
  hsp::HspPlanner planner;
  auto planned = planner.Plan(StarQuery());
  EXPECT_TRUE(planned.ok()) << planned.status();
  return std::move(planned).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Hand-built plans: one corruption, one rule.
// ---------------------------------------------------------------------------

// Two-pattern path query: tp0 = ?a <swrc:journal> ?j, tp1 = ?j <dc:title> ?t.
struct HandBuilt {
  Query query;
  VarId a, j, t;

  HandBuilt()
      : query(ParseOrDie("SELECT ?a ?j WHERE { ?a <swrc:journal> ?j . "
                         "?j <dc:title> ?t }")),
        a(VarByName(query, "a")),
        j(VarByName(query, "j")),
        t(VarByName(query, "t")) {}

  // scan of tp0 as pso: sorted [?a, ?j]; scan of tp1 as pso: sorted [?j, ?t].
  std::unique_ptr<PlanNode> Scan0() const {
    return PlanNode::Scan(0, storage::Ordering::kPso, a);
  }
  std::unique_ptr<PlanNode> Scan1() const {
    return PlanNode::Scan(1, storage::Ordering::kPso, j);
  }
};

TEST(PlanLintTest, CleanHandBuiltPlanPasses) {
  HandBuilt h;
  // Hash join on ?j (left is sorted on ?a, so merge would be illegal).
  LogicalPlan plan(PlanNode::Project(
      {h.a, h.j}, false,
      PlanNode::Join(JoinAlgo::kHash, h.j, h.Scan0(), h.Scan1())));
  LintReport report = LintPlan(h.query, plan);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(PlanLintTest, MergeJoinOverUnsortedInputFiresPL203) {
  HandBuilt h;
  LogicalPlan plan(PlanNode::Project(
      {h.a, h.j}, false,
      PlanNode::Join(JoinAlgo::kMerge, h.j, h.Scan0(), h.Scan1())));
  LintReport report = LintPlan(h.query, plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(RuleId::kMergeInputsUnsorted)) << report.ToString();
}

TEST(PlanLintTest, JoinVarUnboundOnOneSideFiresPL202) {
  HandBuilt h;
  // ?t only occurs in tp1: the left subtree cannot bind it.
  LogicalPlan plan(PlanNode::Project(
      {h.a, h.j}, false,
      PlanNode::Join(JoinAlgo::kHash, h.t, h.Scan0(), h.Scan1())));
  LintReport report = LintPlan(h.query, plan);
  EXPECT_TRUE(report.Has(RuleId::kJoinVarUnboundSide)) << report.ToString();
}

TEST(PlanLintTest, MergeJoinWithoutVariableFiresPL201) {
  HandBuilt h;
  LogicalPlan plan(PlanNode::Join(JoinAlgo::kMerge, sparql::kInvalidVarId,
                                  h.Scan0(), h.Scan1()));
  LintReport report = LintPlan(h.query, plan);
  EXPECT_TRUE(report.Has(RuleId::kMergeJoinNoVar)) << report.ToString();
}

TEST(PlanLintTest, LeftOuterMergeJoinFiresPL204) {
  HandBuilt h;
  LogicalPlan plan(PlanNode::LeftOuterJoin(h.j, h.Scan0(), h.Scan1()));
  plan.mutable_root()->algo = JoinAlgo::kMerge;
  LintReport report = LintPlan(h.query, plan);
  EXPECT_TRUE(report.Has(RuleId::kLeftOuterMergeJoin)) << report.ToString();
}

TEST(PlanLintTest, CartesianOverSharedVariablesWarnsPL205) {
  HandBuilt h;
  // Declared cartesian, but both subtrees bind ?j: legal yet suspicious.
  LogicalPlan plan(PlanNode::Join(JoinAlgo::kHash, sparql::kInvalidVarId,
                                  h.Scan0(), h.Scan1()));
  LintReport report = LintPlan(h.query, plan);
  EXPECT_TRUE(report.ok()) << report.ToString();   // warning, not error
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.Has(RuleId::kCartesianSharesVars));
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_EQ(report.diagnostics[0].severity, Severity::kWarning);
}

TEST(PlanLintTest, ConstantAfterVariableFiresPL101) {
  HandBuilt h;
  // spo puts ?a before the constant predicate: not a searchable prefix.
  LogicalPlan plan(PlanNode::Scan(0, storage::Ordering::kSpo, h.a));
  LintReport report = LintPlan(h.query, plan);
  EXPECT_TRUE(report.Has(RuleId::kScanBoundPrefix)) << report.ToString();
}

TEST(PlanLintTest, WrongDeclaredSortVarFiresPL102) {
  HandBuilt h;
  // pso sorts tp0 by ?a, not by the declared ?j.
  LogicalPlan plan(PlanNode::Scan(0, storage::Ordering::kPso, h.j));
  LintReport report = LintPlan(h.query, plan);
  EXPECT_TRUE(report.Has(RuleId::kScanSortVar)) << report.ToString();
}

TEST(PlanLintTest, PatternIndexOutOfRangeFiresPL004) {
  HandBuilt h;
  LogicalPlan plan(PlanNode::Scan(7, storage::Ordering::kPso, h.a));
  LintReport report = LintPlan(h.query, plan);
  EXPECT_TRUE(report.Has(RuleId::kPatternIndexOutOfRange))
      << report.ToString();
}

TEST(PlanLintTest, WrongChildCountFiresPL001) {
  HandBuilt h;
  auto join = std::make_unique<PlanNode>(PlanNode::Kind::kJoin);
  join->algo = JoinAlgo::kHash;
  join->join_var = h.j;
  join->children.push_back(h.Scan0());  // joins need two children
  LogicalPlan plan(std::move(join));
  LintReport report = LintPlan(h.query, plan);
  EXPECT_TRUE(report.Has(RuleId::kNodeArity)) << report.ToString();
}

TEST(PlanLintTest, DuplicateNodeIdFiresPL002) {
  HandBuilt h;
  LogicalPlan plan(
      PlanNode::Join(JoinAlgo::kHash, h.j, h.Scan0(), h.Scan1()));
  plan.mutable_root()->children[1]->id = plan.mutable_root()->id;
  LintReport report = LintPlan(h.query, plan);
  EXPECT_TRUE(report.Has(RuleId::kDuplicateNodeId)) << report.ToString();
}

TEST(PlanLintTest, UnassignedNodeIdFiresPL003) {
  HandBuilt h;
  LogicalPlan plan(PlanNode::Scan(0, storage::Ordering::kPso, h.a));
  plan.mutable_root()->id = -1;
  LintReport report = LintPlan(h.query, plan);
  EXPECT_TRUE(report.Has(RuleId::kNodeIdUnassigned)) << report.ToString();
}

TEST(PlanLintTest, FilterOverUnboundVariableFiresPL301) {
  HandBuilt h;
  sparql::Filter f;
  f.var = h.t;  // tp0 does not bind ?t
  LogicalPlan plan(PlanNode::Filter(f, h.Scan0()));
  LintReport report = LintPlan(h.query, plan);
  EXPECT_TRUE(report.Has(RuleId::kFilterVarUnbound)) << report.ToString();
}

TEST(PlanLintTest, ProjectionOfUnboundVariableFiresPL302) {
  HandBuilt h;
  LogicalPlan plan(PlanNode::Project({h.t}, false, h.Scan0()));
  LintReport report = LintPlan(h.query, plan);
  EXPECT_TRUE(report.Has(RuleId::kProjectionVarUnbound)) << report.ToString();
}

TEST(PlanLintTest, OrderByUnboundVariableFiresPL303) {
  HandBuilt h;
  Query::OrderKey key;
  key.var = h.t;
  LogicalPlan plan(PlanNode::Sort({key}, h.Scan0()));
  LintReport report = LintPlan(h.query, plan);
  EXPECT_TRUE(report.Has(RuleId::kOrderByVarUnbound)) << report.ToString();
}

TEST(PlanLintTest, SortDestroysSortednessForDownstreamMerges) {
  HandBuilt h;
  Query::OrderKey key;
  key.var = h.j;
  // tp0 sorted by ?a; re-sorting by ?j's *terms* is not a TermId order, so
  // a merge join on ?j above the sort must still be rejected.
  LogicalPlan plan(PlanNode::Join(JoinAlgo::kMerge, h.j,
                                  PlanNode::Sort({key}, h.Scan0()),
                                  h.Scan1()));
  LintReport report = LintPlan(h.query, plan);
  EXPECT_TRUE(report.Has(RuleId::kMergeInputsUnsorted)) << report.ToString();
}

// ---------------------------------------------------------------------------
// Mutations of genuine HSP planner output.
// ---------------------------------------------------------------------------

TEST(PlanLintMutationTest, UntouchedHspPlanIsClean) {
  hsp::PlannedQuery planned = PlanStar();
  LintReport report = LintHspPlan(planned);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(PlanLintMutationTest, ReorderedAccessPathFiresPL203) {
  hsp::PlannedQuery planned = PlanStar();
  // Re-point tp1's scan at pos: still a valid access path for the pattern
  // (bound p first, then ?j, ?a), but the merge block needs ?a first.
  PlanNode* scan = FindScan(planned.plan, 1);
  ASSERT_NE(scan, nullptr);
  scan->ordering = storage::Ordering::kPos;
  scan->sort_var = VarByName(planned.query, "j");
  LintReport report = LintPlan(planned.query, planned.plan);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(RuleId::kMergeInputsUnsorted)) << report.ToString();
  EXPECT_FALSE(report.Has(RuleId::kScanBoundPrefix)) << report.ToString();
  EXPECT_FALSE(report.Has(RuleId::kScanSortVar)) << report.ToString();
}

TEST(PlanLintMutationTest, SwappedJoinVariableFiresPL202) {
  hsp::PlannedQuery planned = PlanStar();
  PlanNode* join = FindMergeJoin(planned.plan);
  ASSERT_NE(join, nullptr);
  join->join_var = VarByName(planned.query, "j");  // the type scan lacks ?j
  LintReport report = LintPlan(planned.query, planned.plan);
  EXPECT_TRUE(report.Has(RuleId::kJoinVarUnboundSide) ||
              report.Has(RuleId::kMergeInputsUnsorted))
      << report.ToString();
  EXPECT_FALSE(report.ok());
}

TEST(PlanLintMutationTest, LeftOuterFlagOnMergeJoinFiresPL204) {
  hsp::PlannedQuery planned = PlanStar();
  PlanNode* join = FindMergeJoin(planned.plan);
  ASSERT_NE(join, nullptr);
  join->left_outer = true;
  LintReport report = LintPlan(planned.query, planned.plan);
  EXPECT_TRUE(report.Has(RuleId::kLeftOuterMergeJoin)) << report.ToString();
}

TEST(PlanLintMutationTest, DanglingProjectionVariableFiresPL302) {
  hsp::PlannedQuery planned = PlanStar();
  PlanNode* project = FindNode(
      planned.plan.mutable_root(),
      [](const PlanNode& n) { return n.kind == PlanNode::Kind::kProject; });
  ASSERT_NE(project, nullptr);
  project->projection.push_back(
      static_cast<VarId>(planned.query.num_vars() + 3));
  LintReport report = LintPlan(planned.query, planned.plan);
  EXPECT_TRUE(report.Has(RuleId::kProjectionVarUnbound)) << report.ToString();
}

TEST(PlanLintMutationTest, ChosenVariableSetMismatchFiresPL401) {
  hsp::PlannedQuery planned = PlanStar();
  // Forget what MWIS chose: every merge block now joins on a variable
  // Algorithm 1 never selected.
  planned.chosen_variables.clear();
  LintReport report = LintHspPlan(planned);
  EXPECT_TRUE(report.Has(RuleId::kHspMergeVarNotChosen)) << report.ToString();
}

TEST(PlanLintMutationTest, NonScanInMergeChainFiresPL402) {
  hsp::PlannedQuery planned = PlanStar();
  PlanNode* top = FindMergeJoin(planned.plan);
  ASSERT_NE(top, nullptr);
  // Splice a (semantically harmless) filter between the chain and its
  // right scan: the block is no longer a pure left-deep scan chain.
  sparql::Filter f;
  f.var = top->join_var;
  auto filter = std::make_unique<PlanNode>(PlanNode::Kind::kFilter);
  filter->id = planned.plan.num_nodes();
  filter->filter = f;
  filter->children.push_back(std::move(top->children[1]));
  top->children[1] = std::move(filter);
  EXPECT_TRUE(LintPlan(planned.query, planned.plan).clean());
  LintReport report = LintHspPlan(planned);
  EXPECT_TRUE(report.Has(RuleId::kHspMergeChainShape)) << report.ToString();
}

TEST(PlanLintMutationTest, SwappedChainScansFirePL403) {
  hsp::PlannedQuery planned = PlanStar();
  // H1 demotes the rdf:type pattern (tp0) to the end of the chain; swapping
  // it with tp2 keeps every scan self-consistent but breaks the H1 order.
  PlanNode* s0 = FindScan(planned.plan, 0);
  PlanNode* s2 = FindScan(planned.plan, 2);
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s2, nullptr);
  std::swap(s0->pattern_index, s2->pattern_index);
  std::swap(s0->ordering, s2->ordering);
  std::swap(s0->sort_var, s2->sort_var);
  EXPECT_TRUE(LintPlan(planned.query, planned.plan).clean());
  LintReport report = LintHspPlan(planned);
  EXPECT_TRUE(report.Has(RuleId::kHspScanOrder)) << report.ToString();
}

TEST(PlanLintMutationTest, ForeignAccessPathFiresPL404) {
  // Both patterns bind only ?a with two constants, so ops and pos are both
  // prefix-valid and ?a-sorted — but Algorithm 2 assigns exactly one.
  hsp::HspPlanner planner;
  auto planned = planner.Plan(
      ParseOrDie(std::string("SELECT ?a WHERE { ?a <") + kRdfType +
                 "> <bench:Article> . ?a <swrc:pages> \"42\" }"));
  ASSERT_TRUE(planned.ok()) << planned.status();
  PlanNode* scan = FindScan(planned->plan, 1);
  ASSERT_NE(scan, nullptr);
  scan->ordering = scan->ordering == storage::Ordering::kOps
                       ? storage::Ordering::kPos
                       : storage::Ordering::kOps;
  EXPECT_TRUE(LintPlan(planned->query, planned->plan).clean());
  LintReport report = LintHspPlan(*planned);
  EXPECT_TRUE(report.Has(RuleId::kHspAccessPathMismatch))
      << report.ToString();
}

// ---------------------------------------------------------------------------
// Diagnostics plumbing.
// ---------------------------------------------------------------------------

TEST(PlanLintTest, DiagnosticFormatting) {
  Diagnostic d{Severity::kError, RuleId::kMergeInputsUnsorted, 3, "boom"};
  EXPECT_EQ(d.ToString(), "error PL203 [merge-inputs-unsorted] node 3: boom");
  EXPECT_EQ(RuleIdCode(RuleId::kHspScanOrder), "PL403");
  EXPECT_EQ(RuleIdName(RuleId::kCartesianSharesVars),
            "cartesian-shares-vars");
}

TEST(PlanLintTest, ReportToStatusSummarisesErrors) {
  LintReport report;
  EXPECT_TRUE(ReportToStatus(report).ok());
  report.diagnostics.push_back(
      Diagnostic{Severity::kWarning, RuleId::kCartesianSharesVars, 1, "w"});
  EXPECT_TRUE(ReportToStatus(report).ok());  // warnings do not fail plans
  report.diagnostics.push_back(
      Diagnostic{Severity::kError, RuleId::kMergeJoinNoVar, 2, "e1"});
  report.diagnostics.push_back(
      Diagnostic{Severity::kError, RuleId::kScanSortVar, 3, "e2"});
  Status status = ReportToStatus(report);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("plan-lint: error PL201"),
            std::string::npos)
      << status;
  EXPECT_NE(status.message().find("(+1 more)"), std::string::npos) << status;
}

TEST(PlanLintTest, RuntimeViolationSharesVocabulary) {
  Status status =
      RuntimeViolation(RuleId::kMergeInputsUnsorted, 5, "not sorted");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("plan-lint: error PL203"),
            std::string::npos)
      << status;
}

// ---------------------------------------------------------------------------
// Executor integration: static gate and runtime checks share the rules.
// ---------------------------------------------------------------------------

struct ExecEnv {
  storage::TripleStore store;
  explicit ExecEnv()
      : store(storage::TripleStore::Build(testing::SmallBibGraph())) {}
};

TEST(PlanLintExecutorTest, LintingExecutorRejectsCorruptPlanUpFront) {
  ExecEnv env;
  hsp::PlannedQuery planned = PlanStar();
  PlanNode* join = FindMergeJoin(planned.plan);
  ASSERT_NE(join, nullptr);
  join->left_outer = true;
  exec::ExecOptions options;
  options.lint_plans = true;
  exec::Executor executor(&env.store, options);
  auto run = executor.Execute(planned.query, planned.plan);
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.status().message().find("plan-lint"), std::string::npos)
      << run.status();
  EXPECT_NE(run.status().message().find("PL204"), std::string::npos)
      << run.status();
}

TEST(PlanLintExecutorTest, RuntimeCheckPhrasesErrorInLintVocabulary) {
  ExecEnv env;
  hsp::PlannedQuery planned = PlanStar();
  PlanNode* join = FindMergeJoin(planned.plan);
  ASSERT_NE(join, nullptr);
  join->left_outer = true;
  exec::Executor executor(&env.store);  // lint_plans off: fails mid-flight
  auto run = executor.Execute(planned.query, planned.plan);
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.status().message().find("plan-lint"), std::string::npos)
      << run.status();
  EXPECT_NE(run.status().message().find("PL204"), std::string::npos)
      << run.status();
}

TEST(PlanLintExecutorTest, CleanPlanExecutesWithLintingEnabled) {
  ExecEnv env;
  hsp::PlannedQuery planned = PlanStar();
  exec::ExecOptions options;
  options.lint_plans = true;
  exec::Executor executor(&env.store, options);
  auto run = executor.Execute(planned.query, planned.plan);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_GT(run->table.rows, 0u);
}

// ---------------------------------------------------------------------------
// Whole-workload sweep: every planner's output for every workload query
// must produce zero diagnostics (warnings included).
// ---------------------------------------------------------------------------

struct SweepEnv {
  storage::TripleStore store;
  storage::Statistics stats;
  explicit SweepEnv(rdf::Graph&& g)
      : store(storage::TripleStore::Build(std::move(g))),
        stats(storage::Statistics::Compute(store)) {}
};

SweepEnv* Sp2bEnv() {
  static SweepEnv* env = new SweepEnv(workload::GenerateSp2b(
      workload::Sp2bConfig::FromTargetTriples(20000)));
  return env;
}

SweepEnv* YagoEnv() {
  static SweepEnv* env = new SweepEnv(workload::GenerateYago(
      workload::YagoConfig::FromTargetTriples(20000)));
  return env;
}

class WorkloadLintSweep
    : public ::testing::TestWithParam<workload::WorkloadQuery> {};

TEST_P(WorkloadLintSweep, AllFourPlannersEmitLintCleanPlans) {
  const workload::WorkloadQuery& wq = GetParam();
  SweepEnv* env =
      wq.dataset == workload::Dataset::kSp2Bench ? Sp2bEnv() : YagoEnv();
  auto parsed = sparql::Parse(wq.sparql);
  ASSERT_TRUE(parsed.ok()) << wq.id << ": " << parsed.status();
  const Query& query = *parsed;

  hsp::HspPlanner hsp_planner;
  testing::PlanOrLint(hsp_planner, query, /*hsp_pack=*/true);
  cdp::CdpPlanner cdp_planner(&env->store, &env->stats);
  testing::PlanOrLint(cdp_planner, query);
  cdp::LeftDeepPlanner sql_planner(&env->store, &env->stats);
  testing::PlanOrLint(sql_planner, query);
  cdp::HybridPlanner hybrid_planner(&env->store, &env->stats);
  testing::PlanOrLint(hybrid_planner, query);
}

INSTANTIATE_TEST_SUITE_P(
    Workload, WorkloadLintSweep,
    ::testing::ValuesIn(workload::AllQueries()),
    [](const auto& param_info) { return param_info.param.id; });

}  // namespace
}  // namespace hsparql::lint
