// Whole-pipeline round-trips: generated datasets serialised to N-Triples
// and re-loaded must reproduce the same store and the same query answers —
// the contract behind the `generate_data` + `explain` tool pair.
#include <gtest/gtest.h>

#include <sstream>

#include "exec/executor.h"
#include "hsp/hsp_planner.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"
#include "storage/triple_store.h"
#include "test_util.h"
#include "workload/queries.h"
#include "workload/sp2bench_gen.h"
#include "workload/yago_gen.h"

namespace hsparql {
namespace {

testing::ResultBag RunQuery(const storage::TripleStore& store,
                            const workload::WorkloadQuery& wq) {
  auto q = sparql::Parse(wq.sparql);
  EXPECT_TRUE(q.ok());
  hsp::HspPlanner planner;
  auto planned = planner.Plan(*q);
  EXPECT_TRUE(planned.ok());
  exec::Executor executor(&store);
  auto run = executor.Execute(planned->query, planned->plan);
  EXPECT_TRUE(run.ok()) << run.status();
  return testing::ToResultBag(run->table, planned->query, store.dictionary(),
                              q->projection);
}

TEST(RoundTripTest, Sp2bSurvivesNTriplesSerialisation) {
  rdf::Graph original = workload::GenerateSp2b(
      workload::Sp2bConfig::FromTargetTriples(15000));
  std::ostringstream nt;
  rdf::WriteNTriples(original, nt);
  std::size_t original_size = original.size();

  rdf::Graph reloaded;
  auto read = rdf::ReadNTriplesString(nt.str(), &reloaded);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, original_size);

  storage::TripleStore store_a =
      storage::TripleStore::Build(std::move(original));
  storage::TripleStore store_b =
      storage::TripleStore::Build(std::move(reloaded));
  ASSERT_EQ(store_a.size(), store_b.size());

  // Query answers are identical on both stores (dictionary ids differ;
  // the comparison is on rendered terms).
  for (const char* id : {"SP1", "SP3a", "SP5", "SP6", "SP4b"}) {
    const workload::WorkloadQuery* wq = workload::FindQuery(id);
    EXPECT_EQ(RunQuery(store_a, *wq), RunQuery(store_b, *wq)) << id;
  }
}

TEST(RoundTripTest, YagoSurvivesNTriplesSerialisation) {
  rdf::Graph original = workload::GenerateYago(
      workload::YagoConfig::FromTargetTriples(15000));
  std::ostringstream nt;
  rdf::WriteNTriples(original, nt);
  std::size_t original_size = original.size();

  rdf::Graph reloaded;
  auto read = rdf::ReadNTriplesString(nt.str(), &reloaded);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, original_size);

  storage::TripleStore store_a =
      storage::TripleStore::Build(std::move(original));
  storage::TripleStore store_b =
      storage::TripleStore::Build(std::move(reloaded));
  ASSERT_EQ(store_a.size(), store_b.size());
  for (const char* id : {"Y1", "Y2", "Y3", "Y4"}) {
    const workload::WorkloadQuery* wq = workload::FindQuery(id);
    EXPECT_EQ(RunQuery(store_a, *wq), RunQuery(store_b, *wq)) << id;
  }
}

}  // namespace
}  // namespace hsparql
