// Tests for the persistent snapshot store (storage/snapshot.h, DESIGN.md
// §4k): byte-identical query answers over the mmap backend across every
// planner, leapfrog on/off and 1-8 threads; dictionary id stability and
// base-segment interning; AddTriples deltas and compaction on a
// snapshot-backed store; the compressed-orderings variant; and fuzz-style
// robustness — truncations and mutated bytes must come back as typed
// kInvalidSnapshot, never crash or silently misread.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "engine/engine.h"
#include "exec/executor.h"
#include "lint/plan_lint.h"
#include "plan/planner.h"
#include "rdf/graph.h"
#include "sparql/parser.h"
#include "storage/snapshot.h"
#include "storage/statistics.h"
#include "storage/triple_store.h"
#include "test_util.h"
#include "workload/queries.h"
#include "workload/sp2bench_gen.h"
#include "workload/yago_gen.h"

namespace hsparql {
namespace {

using plan::PlannerKind;
using sparql::Query;
using sparql::VarId;
using storage::SnapshotOpenOptions;
using storage::SnapshotWriteOptions;
using storage::StoreBackend;
using storage::TripleStore;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

sparql::Query ParseOrDie(std::string_view text) {
  auto q = sparql::Parse(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).ValueOrDie();
}

/// Plans `query` with the given planner kind and leapfrog setting; fails
/// the test on planning or lint errors.
hsp::PlannedQuery PlanWith(PlannerKind kind, const TripleStore& store,
                           const storage::Statistics& stats,
                           const Query& query, bool leapfrog) {
  plan::PlannerFactoryOptions options;
  options.use_leapfrog = leapfrog;
  auto planner = plan::MakePlanner(kind, &store, &stats, options);
  EXPECT_TRUE(planner.ok()) << planner.status();
  auto planned = (*planner)->Plan(plan::AnalyzedQuery::From(query));
  EXPECT_TRUE(planned.ok()) << planned.status();
  lint::LintReport report = lint::LintPlan(planned->query, planned->plan);
  EXPECT_TRUE(report.clean())
      << report.ToString() << planned->plan.ToString(planned->query);
  return std::move(planned).ValueOrDie();
}

/// Executes a planned query and canonicalises the answer for
/// order-insensitive comparison.
testing::ResultBag RunToBag(const TripleStore& store,
                            const hsp::PlannedQuery& planned,
                            std::size_t threads) {
  exec::ExecOptions options;
  options.num_threads = threads;
  exec::Executor executor(&store, options);
  auto result = executor.Execute(planned.query, planned.plan);
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok()) return {};
  std::vector<VarId> projection = planned.query.projection;
  if (planned.query.select_all) {
    projection.clear();
    for (const sparql::TriplePattern& tp : planned.query.patterns) {
      for (VarId v : tp.Variables()) {
        if (std::find(projection.begin(), projection.end(), v) ==
            projection.end()) {
          projection.push_back(v);
        }
      }
    }
  }
  return testing::ToResultBag(result->table, planned.query,
                              store.dictionary(), projection);
}

/// Every triple of every ordering rendered through the dictionary — the
/// strongest store-level identity check that is independent of TermIds.
std::vector<std::string> RenderAll(const TripleStore& store) {
  std::vector<std::string> out;
  for (storage::Ordering o : storage::kAllOrderings) {
    const storage::TripleView view = store.Scan(o);
    storage::TripleView::iterator it = view.begin();
    for (std::size_t i = 0; i < view.size(); ++i, ++it) {
      const rdf::Triple t = *it;
      out.push_back(std::string(OrderingName(o)) + "|" +
                    store.dictionary().Get(t.s).ToString() + " " +
                    store.dictionary().Get(t.p).ToString() + " " +
                    store.dictionary().Get(t.o).ToString());
    }
  }
  return out;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Recomputes the header checksum after a test patched header fields, so
/// the mutation under test (and not the checksum guard) is what the
/// reader rejects.
void FixHeaderChecksum(std::string* image) {
  ASSERT_GE(image->size(), storage::kSnapshotHeaderBytes);
  const std::uint64_t sum = Hash64(
      {reinterpret_cast<const std::uint8_t*>(image->data()), 56});
  std::memcpy(image->data() + 56, &sum, sizeof(sum));
}

// ---------------------------------------------------------------------------
// Round-trip identity.

TEST(SnapshotTest, FullWorkloadSweepIsByteIdentical) {
  struct DatasetCase {
    workload::Dataset dataset;
    rdf::Graph graph;
    std::string path;
  };
  std::vector<DatasetCase> cases;
  cases.push_back({workload::Dataset::kSp2Bench,
                   workload::GenerateSp2b(
                       workload::Sp2bConfig::FromTargetTriples(15000)),
                   TempPath("sweep_sp2b.snap")});
  cases.push_back({workload::Dataset::kYago,
                   workload::GenerateYago(
                       workload::YagoConfig::FromTargetTriples(15000)),
                   TempPath("sweep_yago.snap")});

  for (DatasetCase& c : cases) {
    const TripleStore built = TripleStore::Build(std::move(c.graph));
    ASSERT_TRUE(built.SaveSnapshot(c.path).ok());
    auto reopened = TripleStore::OpenSnapshot(c.path);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    ASSERT_EQ(reopened->size(), built.size());
    EXPECT_EQ(reopened->backend(), StoreBackend::kMmapSnapshot);
    EXPECT_GT(reopened->footprint().mapped_triple_bytes, 0u);

    const storage::Statistics built_stats =
        storage::Statistics::Compute(built);
    const storage::Statistics reopened_stats =
        storage::Statistics::Compute(*reopened);
    for (const workload::WorkloadQuery& wq : workload::AllQueries()) {
      if (wq.dataset != c.dataset) continue;
      const Query q = ParseOrDie(wq.sparql);
      for (PlannerKind kind : plan::kAllPlannerKinds) {
        for (bool leapfrog : {false, true}) {
          const hsp::PlannedQuery p_built =
              PlanWith(kind, built, built_stats, q, leapfrog);
          const hsp::PlannedQuery p_reopened =
              PlanWith(kind, *reopened, reopened_stats, q, leapfrog);
          for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
            EXPECT_EQ(RunToBag(built, p_built, threads),
                      RunToBag(*reopened, p_reopened, threads))
                << wq.id << " planner=" << static_cast<int>(kind)
                << " leapfrog=" << leapfrog << " threads=" << threads;
          }
        }
      }
    }
  }
}

TEST(SnapshotTest, CompressedOrderingsRoundTripAndShrink) {
  rdf::Graph g = workload::GenerateSp2b(
      workload::Sp2bConfig::FromTargetTriples(12000));
  const TripleStore built = TripleStore::Build(std::move(g));

  const std::string raw_path = TempPath("compress_raw.snap");
  const std::string vbyte_path = TempPath("compress_vbyte.snap");
  ASSERT_TRUE(built.SaveSnapshot(raw_path).ok());
  SnapshotWriteOptions compress;
  compress.compress_orderings = true;
  ASSERT_TRUE(built.SaveSnapshot(vbyte_path, compress).ok());
  EXPECT_LT(ReadFile(vbyte_path).size(), ReadFile(raw_path).size());

  auto reopened = TripleStore::OpenSnapshot(vbyte_path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ASSERT_EQ(reopened->size(), built.size());
  // Compressed images decode into heap vectors: snapshot-backed but
  // nothing served zero-copy.
  EXPECT_EQ(reopened->backend(), StoreBackend::kMmapSnapshot);
  EXPECT_EQ(reopened->footprint().mapped_triple_bytes, 0u);
  EXPECT_GT(reopened->footprint().heap_triple_bytes, 0u);
  EXPECT_EQ(RenderAll(*reopened), RenderAll(built));
}

TEST(SnapshotTest, ParallelOpenMatchesSerialOpen) {
  rdf::Graph g = workload::GenerateSp2b(
      workload::Sp2bConfig::FromTargetTriples(12000));
  const TripleStore built = TripleStore::Build(std::move(g));
  const std::string path = TempPath("parallel_open.snap");
  ASSERT_TRUE(built.SaveSnapshot(path).ok());

  // Deep verify on the threaded open exercises the parallel checksum and
  // sortedness passes; the serial open takes the default trust tier.
  SnapshotOpenOptions parallel;
  parallel.num_threads = 4;
  parallel.verify = true;
  auto serial = TripleStore::OpenSnapshot(path);
  auto threaded = TripleStore::OpenSnapshot(path, parallel);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(threaded.ok()) << threaded.status();
  EXPECT_EQ(RenderAll(*serial), RenderAll(*threaded));
}

TEST(SnapshotTest, EmptyStoreRoundTrips) {
  const TripleStore built = TripleStore::Build(rdf::Graph());
  const std::string path = TempPath("empty.snap");
  ASSERT_TRUE(built.SaveSnapshot(path).ok());
  auto reopened = TripleStore::OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->size(), 0u);
  EXPECT_EQ(reopened->dictionary().size(), 0u);
}

// ---------------------------------------------------------------------------
// Dictionary restoration.

TEST(SnapshotTest, DictionaryPreservesIdsAndKeepsInterning) {
  const TripleStore built =
      TripleStore::Build(hsparql::testing::SmallBibGraph());
  const std::string path = TempPath("dict.snap");
  ASSERT_TRUE(built.SaveSnapshot(path).ok());
  auto reopened = TripleStore::OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();

  const rdf::Dictionary& a = built.dictionary();
  rdf::Dictionary& b = reopened->mutable_dictionary();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(b.base_count(), b.size());
  for (rdf::TermId id = 0; id < a.size(); ++id) {
    // Ids are stable across save/open, not just the term set.
    EXPECT_EQ(a.Get(id), b.Get(id)) << id;
    // The base-segment binary search finds every restored term.
    EXPECT_EQ(b.Find(a.Get(id)), id);
  }
  // Interning an existing term hits the base segment without growing.
  const std::size_t before = b.size();
  EXPECT_EQ(b.Intern(a.Get(3)), 3u);
  EXPECT_EQ(b.size(), before);
  // A genuinely new term lands in the hash-indexed delta segment.
  const rdf::TermId fresh = b.InternIri("ex:not-in-the-snapshot");
  EXPECT_EQ(fresh, before);
  EXPECT_EQ(b.Find(rdf::TermKind::kIri, "ex:not-in-the-snapshot"), fresh);
  EXPECT_EQ(b.base_count(), before);
}

// ---------------------------------------------------------------------------
// Mutation on a snapshot-backed store.

TEST(SnapshotTest, AddTriplesAndCompactionOverMmapBase) {
  const std::string path = TempPath("mutate.snap");
  {
    const TripleStore built =
        TripleStore::Build(hsparql::testing::SmallBibGraph());
    ASSERT_TRUE(built.SaveSnapshot(path).ok());
  }
  auto snap_store = TripleStore::OpenSnapshot(path);
  ASSERT_TRUE(snap_store.ok()) << snap_store.status();

  // Mirror: the identical additions applied to a heap-built store.
  TripleStore mirror = TripleStore::Build(hsparql::testing::SmallBibGraph());

  // Enough batches to push the delta past base/kCompactionRatio.
  const std::size_t base = snap_store->base_size();
  std::size_t added = 0;
  bool compacted_once = false;
  for (int batch = 0; batch < 6; ++batch) {
    std::vector<std::array<rdf::Term, 3>> triples;
    for (int i = 0; i < 4; ++i) {
      triples.push_back({rdf::Term::Iri("ex:new" + std::to_string(added)),
                         rdf::Term::Iri("ex:added-by"),
                         rdf::Term::Literal("batch " + std::to_string(batch))});
      ++added;
    }
    auto update = snap_store->PrepareAdd(triples);
    compacted_once = compacted_once || update.compacted;
    snap_store->Apply(std::move(update));
    auto mirror_update = mirror.PrepareAdd(triples);
    mirror.Apply(std::move(mirror_update));
    EXPECT_EQ(RenderAll(*snap_store), RenderAll(mirror)) << "batch " << batch;
  }
  ASSERT_GT(added, base / TripleStore::kCompactionRatio);
  EXPECT_TRUE(compacted_once);
  // Compaction migrated the base levels off the mapping; the store stays
  // snapshot-backed (the image still backs the dictionary's base index).
  EXPECT_EQ(snap_store->backend(), StoreBackend::kMmapSnapshot);
  EXPECT_EQ(snap_store->footprint().mapped_triple_bytes, 0u);
  EXPECT_GT(snap_store->footprint().base_dictionary_terms, 0u);
  for (const rdf::Term& probe :
       {rdf::Term::Iri("ex:new0"), rdf::Term::Iri("ex:added-by")}) {
    EXPECT_TRUE(snap_store->dictionary().Find(probe).has_value());
  }
}

TEST(SnapshotTest, SaveMergesDeltaAndReopensClean) {
  TripleStore store = TripleStore::Build(hsparql::testing::SmallBibGraph());
  std::vector<std::array<rdf::Term, 3>> extra;
  extra.push_back({rdf::Term::Iri("ex:a9"), rdf::Term::Iri("dc:creator"),
                   rdf::Term::Iri("ex:p1")});
  auto update = store.PrepareAdd(extra);
  store.Apply(std::move(update));

  const std::string path = TempPath("delta.snap");
  ASSERT_TRUE(store.SaveSnapshot(path).ok());
  auto reopened = TripleStore::OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  // The image holds the merged store: reopened has everything in its base.
  EXPECT_EQ(reopened->size(), store.size());
  EXPECT_EQ(reopened->delta_size(), 0u);
  EXPECT_EQ(RenderAll(*reopened), RenderAll(store));
}

TEST(SnapshotTest, EngineStatsReportBackend) {
  const std::string path = TempPath("engine.snap");
  {
    const TripleStore built =
        TripleStore::Build(hsparql::testing::SmallBibGraph());
    ASSERT_TRUE(built.SaveSnapshot(path).ok());
  }
  auto store = TripleStore::OpenSnapshot(path);
  ASSERT_TRUE(store.ok()) << store.status();
  engine::Engine eng(std::move(*store));
  const engine::EngineStats stats = eng.stats();
  EXPECT_EQ(stats.backend, StoreBackend::kMmapSnapshot);
  EXPECT_GT(stats.footprint.snapshot_bytes, 0u);
  EXPECT_EQ(StoreBackendName(stats.backend), "mmap_snapshot");
  const std::string metrics =
      eng.ExportMetrics(engine::Engine::MetricsFormat::kPrometheus);
  EXPECT_NE(metrics.find("engine_store_backend"), std::string::npos);
  EXPECT_NE(metrics.find("engine_store_snapshot_bytes"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Robustness: corrupted and hostile images.

TEST(SnapshotTest, MissingFileIsNotFound) {
  auto r = TripleStore::OpenSnapshot(TempPath("does_not_exist.snap"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound()) << r.status();
}

TEST(SnapshotTest, NonSnapshotFileIsRejected) {
  const std::string path = TempPath("not_a_snapshot.bin");
  WriteFile(path, "this is definitely not a snapshot image, but is long "
                  "enough to clear the header-size check ............");
  auto r = TripleStore::OpenSnapshot(path);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidSnapshot()) << r.status();
}

TEST(SnapshotTest, TruncationsAreTypedErrors) {
  const std::string path = TempPath("truncate_src.snap");
  const TripleStore built =
      TripleStore::Build(hsparql::testing::SmallBibGraph());
  ASSERT_TRUE(built.SaveSnapshot(path).ok());
  const std::string image = ReadFile(path);
  ASSERT_GT(image.size(), 128u);

  const std::string cut_path = TempPath("truncate_cut.snap");
  for (std::size_t cut :
       {std::size_t{1}, std::size_t{8}, std::size_t{63}, std::size_t{64},
        std::size_t{100}, image.size() / 2, image.size() - 1}) {
    WriteFile(cut_path, std::string_view(image).substr(0, cut));
    auto r = TripleStore::OpenSnapshot(cut_path);
    ASSERT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_TRUE(r.status().IsInvalidSnapshot())
        << "cut=" << cut << ": " << r.status();
  }
  // An empty file cannot even be mapped — an IO error, not a snapshot one.
  WriteFile(cut_path, "");
  auto r = TripleStore::OpenSnapshot(cut_path);
  ASSERT_FALSE(r.ok());
}

TEST(SnapshotTest, WrongVersionAndEndiannessAreTyped) {
  const std::string path = TempPath("version_src.snap");
  const TripleStore built =
      TripleStore::Build(hsparql::testing::SmallBibGraph());
  ASSERT_TRUE(built.SaveSnapshot(path).ok());
  std::string image = ReadFile(path);

  // Future format version, checksum made valid again: the version check
  // itself must fire.
  std::string patched = image;
  const std::uint32_t v2 = 99;
  std::memcpy(patched.data() + 12, &v2, sizeof(v2));
  FixHeaderChecksum(&patched);
  const std::string patched_path = TempPath("version_patched.snap");
  WriteFile(patched_path, patched);
  auto r = TripleStore::OpenSnapshot(patched_path);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidSnapshot());
  EXPECT_NE(r.status().message().find("version"), std::string::npos)
      << r.status();

  // Byte-swapped endian sentinel — what this image would look like to a
  // wrong-endian reader.
  patched = image;
  const std::uint32_t swapped = 0x04030201;
  std::memcpy(patched.data() + 8, &swapped, sizeof(swapped));
  FixHeaderChecksum(&patched);
  WriteFile(patched_path, patched);
  r = TripleStore::OpenSnapshot(patched_path);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidSnapshot());
  EXPECT_NE(r.status().message().find("endian"), std::string::npos)
      << r.status();
}

TEST(SnapshotTest, CraftedOverflowingCountsAreTypedErrors) {
  // Hash64 is not cryptographic, so an attacker can patch header counts
  // and recompute valid checksums. Counts chosen to wrap `count * stride`
  // mod 2^64 must still be typed rejections, never spans over nothing.
  //
  // Raw image of an EMPTY store: triple_count = 2^62 makes
  // count * sizeof(Triple) == 0 mod 2^64, "matching" the empty ordering
  // sections — the plausibility bound must fire before a span is formed.
  const std::string raw_path = TempPath("crafted_raw.snap");
  ASSERT_TRUE(TripleStore::Build(rdf::Graph{}).SaveSnapshot(raw_path).ok());
  {
    std::string image = ReadFile(raw_path);
    const std::uint64_t huge = std::uint64_t{1} << 62;
    std::memcpy(image.data() + 24, &huge, sizeof(huge));
    FixHeaderChecksum(&image);
    const std::string crafted = TempPath("crafted_raw_patched.snap");
    WriteFile(crafted, image);
    auto r = TripleStore::OpenSnapshot(crafted);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsInvalidSnapshot()) << r.status();
  }

  // Same image, term_count = 2^62: n * sizeof(uint32_t) wraps to 0 and
  // would "match" the empty sorted-id section.
  {
    std::string image = ReadFile(raw_path);
    const std::uint64_t huge = std::uint64_t{1} << 62;
    std::memcpy(image.data() + 32, &huge, sizeof(huge));
    FixHeaderChecksum(&image);
    const std::string crafted = TempPath("crafted_terms_patched.snap");
    WriteFile(crafted, image);
    auto r = TripleStore::OpenSnapshot(crafted);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsInvalidSnapshot()) << r.status();
  }

  // Vbyte image: triple_count near 2^64 wraps the expected-block-count
  // sum to 0, matching the empty directory — and must not reach
  // reserve(count) (which would throw, terminating the process).
  const std::string vb_path = TempPath("crafted_vbyte.snap");
  SnapshotWriteOptions compressed;
  compressed.compress_orderings = true;
  ASSERT_TRUE(TripleStore::Build(rdf::Graph{})
                  .SaveSnapshot(vb_path, compressed)
                  .ok());
  {
    std::string image = ReadFile(vb_path);
    const std::uint64_t huge =
        ~std::uint64_t{0} - storage::kTripleBlockSize / 2;
    std::memcpy(image.data() + 24, &huge, sizeof(huge));
    FixHeaderChecksum(&image);
    const std::string crafted = TempPath("crafted_vbyte_patched.snap");
    WriteFile(crafted, image);
    auto r = TripleStore::OpenSnapshot(crafted);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsInvalidSnapshot()) << r.status();
  }
}

TEST(SnapshotTest, ConcurrentSavesToSamePathDoNotCorrupt) {
  // SaveSnapshot is const and documented as callable under a shared store
  // lock, so two concurrent saves to the same path are legal. Each must
  // write its own unique temp file; the survivor must be a valid image.
  const TripleStore built =
      TripleStore::Build(hsparql::testing::SmallBibGraph());
  const std::string path = TempPath("concurrent.snap");
  const std::vector<std::string> baseline = RenderAll(built);
  std::array<Status, 4> statuses;
  std::array<std::thread, 4> savers;
  for (std::size_t i = 0; i < savers.size(); ++i) {
    savers[i] = std::thread(
        [&built, &path, &statuses, i] { statuses[i] = built.SaveSnapshot(path); });
  }
  for (std::thread& t : savers) t.join();
  for (const Status& s : statuses) ASSERT_TRUE(s.ok()) << s;
  auto reopened = TripleStore::OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(RenderAll(*reopened), baseline);
}

TEST(SnapshotTest, HeaderAndTableFuzzNeverCrashes) {
  const std::string path = TempPath("fuzz_src.snap");
  const TripleStore built =
      TripleStore::Build(hsparql::testing::SmallBibGraph());
  ASSERT_TRUE(built.SaveSnapshot(path).ok());
  const std::string image = ReadFile(path);
  const std::string fuzz_path = TempPath("fuzz_header.snap");

  // Every header and section-table byte is covered by a checksum, so any
  // single-byte corruption there must be a typed rejection.
  const std::size_t guarded =
      std::min(image.size(), std::size_t{64 + 9 * 32});
  for (std::size_t i = 0; i < guarded; ++i) {
    std::string mutated = image;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x5a);
    WriteFile(fuzz_path, mutated);
    auto r = TripleStore::OpenSnapshot(fuzz_path);
    ASSERT_FALSE(r.ok()) << "byte " << i;
    EXPECT_TRUE(r.status().IsInvalidSnapshot())
        << "byte " << i << ": " << r.status();
  }
}

TEST(SnapshotTest, PayloadFuzzUnderVerifyIsTypedOrHarmless) {
  const std::string path = TempPath("fuzz_body_src.snap");
  const TripleStore built =
      TripleStore::Build(hsparql::testing::SmallBibGraph());
  ASSERT_TRUE(built.SaveSnapshot(path).ok());
  const std::string image = ReadFile(path);
  const std::vector<std::string> baseline = RenderAll(built);
  const std::string fuzz_path = TempPath("fuzz_body.snap");

  // Under deep verify, a flipped payload byte either trips a section
  // checksum (typed error) or landed in alignment padding (open succeeds
  // and the data is untouched). Nothing in between, and never a crash.
  SnapshotOpenOptions deep;
  deep.verify = true;
  for (std::size_t i = 64; i < image.size(); i += 37) {
    std::string mutated = image;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x5a);
    WriteFile(fuzz_path, mutated);
    auto r = TripleStore::OpenSnapshot(fuzz_path, deep);
    if (r.ok()) {
      EXPECT_EQ(RenderAll(*r), baseline) << "byte " << i;
    } else {
      EXPECT_TRUE(r.status().IsInvalidSnapshot())
          << "byte " << i << ": " << r.status();
    }
  }
}

TEST(SnapshotTest, PayloadFuzzOnDefaultOpenNeverCrashes) {
  const std::string path = TempPath("fuzz_trust_src.snap");
  const TripleStore built =
      TripleStore::Build(hsparql::testing::SmallBibGraph());
  ASSERT_TRUE(built.SaveSnapshot(path).ok());
  const std::string image = ReadFile(path);
  const std::string fuzz_path = TempPath("fuzz_trust.snap");

  // The default open trusts payload bytes (no section checksums), so a
  // mutated image may open and serve wrong data — the guarantee under
  // test is the memory-safety tier: every open is either a typed error
  // or a store that can be fully scanned and rendered without crashing
  // (all TermIds in bounds, all decodes bounds-checked).
  for (std::size_t i = 64; i < image.size(); i += 31) {
    std::string mutated = image;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xff);
    WriteFile(fuzz_path, mutated);
    auto r = TripleStore::OpenSnapshot(fuzz_path);
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsInvalidSnapshot())
          << "byte " << i << ": " << r.status();
      continue;
    }
    const std::vector<std::string> rendered = RenderAll(*r);
    EXPECT_LE(rendered.size(), 6 * r->size()) << "byte " << i;
    for (const rdf::Term& probe :
         {rdf::Term::Iri("ex:a1"), rdf::Term::Literal("Alice")}) {
      (void)r->dictionary().Find(probe);  // binary search must not crash
    }
  }
}

}  // namespace
}  // namespace hsparql
