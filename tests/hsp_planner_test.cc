// Tests for the HSP planner: Algorithm 2 access-path assignment (checked
// against the paper's Figures 2/3), Algorithm 1 plan characteristics
// (checked against Table 4's HSP rows for the whole workload), and
// structural invariants of the produced plans.
#include <gtest/gtest.h>

#include "hsp/hsp_planner.h"
#include "sparql/parser.h"
#include "storage/ordering.h"
#include "workload/queries.h"

namespace hsparql::hsp {
namespace {

using sparql::Query;
using sparql::VarId;
using storage::Ordering;
using workload::WorkloadQuery;

Query ParseOrDie(std::string_view text) {
  auto q = sparql::Parse(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).ValueOrDie();
}

// ---- Algorithm 2 (AssignOrderedRelation) against the paper's figures. ----

TEST(AssignOrderedRelationTest, Figure2AccessPaths) {
  // YAGO query Y3 (paper Table 5 / Figure 2).
  const WorkloadQuery* y3 = workload::FindQuery("Y3");
  ASSERT_NE(y3, nullptr);
  Query q = ParseOrDie(y3->sparql);
  VarId c1 = *q.FindVar("c1");
  VarId c2 = *q.FindVar("c2");

  // tp2 = (?c1 rdf:type wordnet_village), join var ?c1 at subject:
  // constants o,p first (object most selective), then ?c1 -> OPS.
  auto tp2 = AssignOrderedRelation(q.patterns[2], c1);
  EXPECT_EQ(tp2.ordering, Ordering::kOps);
  EXPECT_EQ(tp2.sort_var, c1);

  // tp3 = (?c1 locatedIn ?X), join var at subject, constant p -> PSO.
  auto tp3 = AssignOrderedRelation(q.patterns[3], c1);
  EXPECT_EQ(tp3.ordering, Ordering::kPso);

  // tp0 = (?p ?ss ?c1), all variables, join var ?c1 at object -> OSP.
  auto tp0 = AssignOrderedRelation(q.patterns[0], c1);
  EXPECT_EQ(tp0.ordering, Ordering::kOsp);
  EXPECT_EQ(tp0.sort_var, c1);

  // Same pattern joined on ?c2 instead.
  auto tp4 = AssignOrderedRelation(q.patterns[4], c2);
  EXPECT_EQ(tp4.ordering, Ordering::kOps);
}

TEST(AssignOrderedRelationTest, Figure3AccessPaths) {
  // YAGO query Y2 (paper Table 9 / Figure 3a, HSP side).
  const WorkloadQuery* y2 = workload::FindQuery("Y2");
  ASSERT_NE(y2, nullptr);
  Query q = ParseOrDie(y2->sparql);
  VarId a = *q.FindVar("a");
  // tp1 = (?a livesIn ?city), v=?a at subject -> PSO.
  EXPECT_EQ(AssignOrderedRelation(q.patterns[1], a).ordering, Ordering::kPso);
  // tp0 = (?a rdf:type wordnet_actor) -> OPS.
  EXPECT_EQ(AssignOrderedRelation(q.patterns[0], a).ordering, Ordering::kOps);
  // tp2 = (?a actedIn ?m1) -> PSO.
  EXPECT_EQ(AssignOrderedRelation(q.patterns[2], a).ordering, Ordering::kPso);
}

TEST(AssignOrderedRelationTest, NilJoinVariable) {
  Query q = ParseOrDie(
      "SELECT ?u WHERE {\n"
      "  <http://s> <http://p> ?u .\n"   // 2 constants
      "  <http://s> ?u ?v .\n"           // 1 constant
      "  ?u ?v ?w .\n"                   // 0 constants
      "}");
  // 2 constants at s,p; object scanned last -> OSP? No: constants first by
  // o,s,p priority = s then p, then the variable o -> SPO.
  auto c2 = AssignOrderedRelation(q.patterns[0], sparql::kInvalidVarId);
  EXPECT_EQ(c2.ordering, Ordering::kSpo);
  EXPECT_EQ(c2.sort_var, *q.FindVar("u"));
  // 1 constant at s, then variables in syntactic order p, o -> SPO.
  auto c1 = AssignOrderedRelation(q.patterns[1], sparql::kInvalidVarId);
  EXPECT_EQ(c1.ordering, Ordering::kSpo);
  EXPECT_EQ(c1.sort_var, *q.FindVar("u"));
  // 0 constants -> natural SPO, sorted by the subject variable.
  auto c0 = AssignOrderedRelation(q.patterns[2], sparql::kInvalidVarId);
  EXPECT_EQ(c0.ordering, Ordering::kSpo);
  EXPECT_EQ(c0.sort_var, *q.FindVar("u"));
}

TEST(AssignOrderedRelationTest, JoinVarAlwaysFollowsConstants) {
  // Property: for every pattern shape and join-var position, the chosen
  // ordering sorts all constants first and the join variable immediately
  // after.
  Query q = ParseOrDie(
      "SELECT ?v WHERE {\n"
      "  ?v <http://p> <http://o> .\n"
      "  <http://s> ?v <http://o> .\n"
      "  <http://s> <http://p> ?v .\n"
      "  ?v ?u <http://o> .\n"
      "  ?u ?v <http://o> .\n"
      "  <http://s> ?u ?v .\n"
      "  ?v ?u ?w .\n"
      "  ?u ?v ?w .\n"
      "  ?u ?w ?v .\n"
      "}");
  VarId v = *q.FindVar("v");
  for (const sparql::TriplePattern& tp : q.patterns) {
    auto choice = AssignOrderedRelation(tp, v);
    auto positions = storage::OrderingPositions(choice.ordering);
    std::size_t n_const = static_cast<std::size_t>(tp.num_constants());
    for (std::size_t i = 0; i < n_const; ++i) {
      EXPECT_TRUE(tp.at(positions[i]).is_constant());
    }
    const sparql::PatternTerm& after = tp.at(positions[n_const]);
    ASSERT_TRUE(after.is_variable());
    EXPECT_EQ(after.var, v);
    EXPECT_EQ(choice.sort_var, v);
  }
}

// ---- Algorithm 1: Table 4 HSP rows for the whole workload. ----

class HspTable4Sweep : public ::testing::TestWithParam<WorkloadQuery> {};

TEST_P(HspTable4Sweep, JoinCountsAndShapeMatchPaper) {
  const WorkloadQuery& wq = GetParam();
  Query q = ParseOrDie(wq.sparql);
  HspPlanner planner;
  auto planned = planner.Plan(q);
  ASSERT_TRUE(planned.ok()) << wq.id << ": " << planned.status();
  const LogicalPlan& plan = planned->plan;

  EXPECT_EQ(plan.CountJoins(JoinAlgo::kMerge), wq.table4.hsp_merge) << wq.id;
  EXPECT_EQ(plan.CountJoins(JoinAlgo::kHash), wq.table4.hsp_hash) << wq.id;
  PlanShape expected_shape =
      wq.table4.hsp_shape == 'L' ? PlanShape::kLeftDeep : PlanShape::kBushy;
  EXPECT_EQ(plan.shape(), expected_shape) << wq.id;
  // Every pattern appears in exactly one scan.
  EXPECT_EQ(plan.CountScans(),
            static_cast<int>(planned->query.patterns.size()))
      << wq.id;
}

INSTANTIATE_TEST_SUITE_P(
    Workload, HspTable4Sweep, ::testing::ValuesIn(workload::AllQueries()),
    [](const auto& param_info) { return param_info.param.id; });

// ---- Structural invariants and specific planning behaviours. ----

TEST(HspPlannerTest, RejectsEmptyQuery) {
  Query empty;
  HspPlanner planner;
  EXPECT_FALSE(planner.Plan(empty).ok());
}

TEST(HspPlannerTest, Y3ChoosesBothStarVariables) {
  const WorkloadQuery* y3 = workload::FindQuery("Y3");
  Query q = ParseOrDie(y3->sparql);
  HspPlanner planner;
  auto planned = planner.Plan(q);
  ASSERT_TRUE(planned.ok());
  // MWIS = {?c1, ?c2} (weight 6) beats {?p} (weight 2).
  std::vector<std::string> chosen;
  for (VarId v : planned->chosen_variables) {
    chosen.push_back(planned->query.VarName(v));
  }
  std::sort(chosen.begin(), chosen.end());
  EXPECT_EQ(chosen, (std::vector<std::string>{"c1", "c2"}));
  auto merge_vars = planned->plan.MergeJoinVariables();
  EXPECT_EQ(merge_vars.size(), 2u);
}

TEST(HspPlannerTest, Y2TieBreakKeepsSingleChainOnA) {
  const WorkloadQuery* y2 = workload::FindQuery("Y2");
  Query q = ParseOrDie(y2->sparql);
  HspPlanner planner;
  auto planned = planner.Plan(q);
  ASSERT_TRUE(planned.ok());
  ASSERT_EQ(planned->chosen_variables.size(), 1u);
  EXPECT_EQ(planned->query.VarName(planned->chosen_variables[0]), "a");
  EXPECT_EQ(planned->plan.shape(), PlanShape::kLeftDeep);
}

TEST(HspPlannerTest, FilterRewriteIsAppliedByDefault) {
  const WorkloadQuery* sp3 = workload::FindQuery("SP3a");
  Query q = ParseOrDie(sp3->sparql);
  HspPlanner planner;
  auto planned = planner.Plan(q);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->rewrite_report.constants_folded, 1);
  EXPECT_TRUE(planned->query.filters.empty());

  HspOptions no_rewrite;
  no_rewrite.rewrite_filters = false;
  HspPlanner raw(no_rewrite);
  auto planned_raw = raw.Plan(q);
  ASSERT_TRUE(planned_raw.ok());
  EXPECT_EQ(planned_raw->rewrite_report.constants_folded, 0);
  EXPECT_EQ(planned_raw->query.filters.size(), 1u);
}

TEST(HspPlannerTest, DisconnectedQueryGetsCartesianHashJoin) {
  Query q = ParseOrDie(
      "SELECT ?a ?c WHERE { ?a <http://p> ?b . ?c <http://q> ?d }");
  HspPlanner planner;
  auto planned = planner.Plan(q);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->plan.CountJoins(JoinAlgo::kHash), 1);
  EXPECT_EQ(planned->plan.CountJoins(JoinAlgo::kMerge), 0);
}

TEST(HspPlannerTest, DeterministicAcrossRuns) {
  const WorkloadQuery* sp4a = workload::FindQuery("SP4a");
  Query q = ParseOrDie(sp4a->sparql);
  HspPlanner planner;
  auto p1 = planner.Plan(q);
  auto p2 = planner.Plan(q);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1->plan.ToString(p1->query), p2->plan.ToString(p2->query));
}

TEST(HspPlannerTest, MergeBlockScansFollowH1Order) {
  // Y3 block on ?c1: the 2-constant type pattern scans first, the
  // 1-constant locatedIn second, the 0-constant pattern last (Figure 2).
  const WorkloadQuery* y3 = workload::FindQuery("Y3");
  Query q = ParseOrDie(y3->sparql);
  HspPlanner planner;
  auto planned = planner.Plan(q);
  ASSERT_TRUE(planned.ok());
  std::string text = planned->plan.ToString(planned->query);
  // tp2 must appear above tp3 which must appear above tp0 in the tree.
  std::size_t pos2 = text.find("tp2");
  std::size_t pos3 = text.find("tp3");
  std::size_t pos0 = text.find("tp0");
  ASSERT_NE(pos2, std::string::npos);
  ASSERT_NE(pos3, std::string::npos);
  ASSERT_NE(pos0, std::string::npos);
  EXPECT_LT(pos2, pos3);
  EXPECT_LT(pos3, pos0);
}

TEST(HspPlannerTest, AblationDisablingHeuristicsStillPlans) {
  const WorkloadQuery* y2 = workload::FindQuery("Y2");
  Query q = ParseOrDie(y2->sparql);
  HspOptions options;
  options.use_h3 = options.use_h4 = options.use_h2 = options.use_h5 = false;
  HspPlanner planner(options);
  auto planned = planner.Plan(q);
  ASSERT_TRUE(planned.ok());
  // Same merge/hash totals regardless of which tie survives.
  EXPECT_EQ(planned->plan.CountJoins(JoinAlgo::kMerge), 3);
  EXPECT_EQ(planned->plan.CountJoins(JoinAlgo::kHash), 2);
}

TEST(HspPlannerTest, ProjectRootCarriesDistinct) {
  Query q = ParseOrDie("SELECT DISTINCT ?x WHERE { ?x <http://p> ?y }");
  HspPlanner planner;
  auto planned = planner.Plan(q);
  ASSERT_TRUE(planned.ok());
  ASSERT_EQ(planned->plan.root()->kind, PlanNode::Kind::kProject);
  EXPECT_TRUE(planned->plan.root()->distinct);
}

}  // namespace
}  // namespace hsparql::hsp
