// Tests for src/storage: the six orderings, prefix lookups (verified
// against linear scans with a parameterized sweep), statistics.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "rdf/graph.h"
#include "storage/ordering.h"
#include "storage/statistics.h"
#include "storage/triple_store.h"

namespace hsparql::storage {
namespace {

using rdf::Position;
using rdf::Triple;

TEST(OrderingTest, NamesRoundTrip) {
  for (Ordering o : kAllOrderings) {
    auto parsed = OrderingFromName(OrderingName(o));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, o);
  }
  EXPECT_FALSE(OrderingFromName("xyz").has_value());
  EXPECT_FALSE(OrderingFromName("SPO").has_value());
}

TEST(OrderingTest, PositionsAreDistinctPermutations) {
  std::vector<std::array<Position, 3>> seen;
  for (Ordering o : kAllOrderings) {
    auto pos = OrderingPositions(o);
    EXPECT_NE(pos[0], pos[1]);
    EXPECT_NE(pos[1], pos[2]);
    EXPECT_NE(pos[0], pos[2]);
    EXPECT_EQ(OrderingFromPositions(pos[0], pos[1], pos[2]), o);
    EXPECT_EQ(std::count(seen.begin(), seen.end(), pos), 0);
    seen.push_back(pos);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(OrderingTest, ComparatorSortsMajorFirst) {
  OrderingLess less(Ordering::kPos);
  // p major, o middle, s minor.
  EXPECT_TRUE(less(Triple{9, 1, 1}, Triple{0, 2, 0}));
  EXPECT_TRUE(less(Triple{9, 1, 1}, Triple{0, 1, 2}));
  EXPECT_TRUE(less(Triple{1, 1, 1}, Triple{2, 1, 1}));
  EXPECT_FALSE(less(Triple{1, 1, 1}, Triple{1, 1, 1}));
}

rdf::Graph RandomGraph(std::size_t n, std::uint32_t s_card,
                       std::uint32_t p_card, std::uint32_t o_card,
                       std::uint64_t seed) {
  rdf::Graph g;
  // Pre-intern ids so TermIds are dense and predictable.
  for (std::uint32_t i = 0; i < std::max({s_card, p_card, o_card}); ++i) {
    g.dictionary().InternIri("http://e/" + std::to_string(i));
  }
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    g.Add(Triple{static_cast<rdf::TermId>(rng.NextBounded(s_card)),
                 static_cast<rdf::TermId>(rng.NextBounded(p_card)),
                 static_cast<rdf::TermId>(rng.NextBounded(o_card))});
  }
  return g;
}

TEST(TripleStoreTest, DeduplicatesAndSortsAllOrderings) {
  rdf::Graph g = RandomGraph(500, 20, 5, 30, 1);
  std::vector<Triple> raw = g.triples();
  std::sort(raw.begin(), raw.end());
  std::size_t distinct = static_cast<std::size_t>(
      std::unique(raw.begin(), raw.end()) - raw.begin());

  TripleStore store = TripleStore::Build(std::move(g));
  EXPECT_EQ(store.size(), distinct);
  for (Ordering o : kAllOrderings) {
    auto rel = store.Scan(o);
    ASSERT_EQ(rel.size(), distinct);
    EXPECT_TRUE(std::is_sorted(rel.begin(), rel.end(), OrderingLess(o)));
  }
}

TEST(TripleStoreTest, ContainsFindsExactTriples) {
  rdf::Graph g = RandomGraph(200, 10, 4, 10, 2);
  Triple present = g.triples().front();
  TripleStore store = TripleStore::Build(std::move(g));
  EXPECT_TRUE(store.Contains(present));
  EXPECT_FALSE(store.Contains(Triple{999, 999, 999}));
}

TEST(OrderingWithBoundPrefixTest, CoversAllSubsets) {
  using P = Position;
  // Every subset of positions must be a prefix of some ordering.
  std::vector<std::vector<P>> subsets = {
      {},
      {P::kSubject},
      {P::kPredicate},
      {P::kObject},
      {P::kSubject, P::kPredicate},
      {P::kSubject, P::kObject},
      {P::kPredicate, P::kObject},
      {P::kSubject, P::kPredicate, P::kObject}};
  for (const auto& subset : subsets) {
    Ordering o = OrderingWithBoundPrefix(subset);
    auto pos = OrderingPositions(o);
    for (std::size_t i = 0; i < subset.size(); ++i) {
      EXPECT_NE(std::find(subset.begin(), subset.end(), pos[i]), subset.end())
          << "ordering " << OrderingName(o) << " does not start with subset";
    }
  }
}

// Parameterized sweep: LookupPrefix must agree with a linear scan for every
// ordering and every bound-prefix depth.
class LookupPrefixSweep
    : public ::testing::TestWithParam<std::tuple<Ordering, int>> {};

TEST_P(LookupPrefixSweep, MatchesLinearScan) {
  auto [ordering, depth] = GetParam();
  rdf::Graph g = RandomGraph(800, 15, 6, 25, 42);
  std::vector<Triple> all = g.triples();
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  TripleStore store = TripleStore::Build(std::move(g));

  const auto positions = OrderingPositions(ordering);
  SplitMix64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    // Probe with values drawn from a real triple half the time.
    Triple probe{static_cast<rdf::TermId>(rng.NextBounded(15)),
                 static_cast<rdf::TermId>(rng.NextBounded(6)),
                 static_cast<rdf::TermId>(rng.NextBounded(25))};
    if (trial % 2 == 0) probe = all[rng.NextBounded(all.size())];

    std::vector<Binding> bindings;
    for (int i = 0; i < depth; ++i) {
      bindings.push_back(Binding{positions[static_cast<std::size_t>(i)],
                                 probe.at(positions[static_cast<std::size_t>(i)])});
    }
    auto range = store.LookupPrefix(ordering, bindings);

    std::size_t expected = 0;
    for (const Triple& t : all) {
      bool match = true;
      for (const Binding& b : bindings) {
        if (t.at(b.position) != b.value) {
          match = false;
          break;
        }
      }
      if (match) ++expected;
    }
    ASSERT_EQ(range.size(), expected)
        << OrderingName(ordering) << " depth " << depth;
    for (const Triple& t : range) {
      for (const Binding& b : bindings) EXPECT_EQ(t.at(b.position), b.value);
    }
    EXPECT_EQ(store.CountMatching(bindings), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOrderingsAndDepths, LookupPrefixSweep,
    ::testing::Combine(::testing::ValuesIn(kAllOrderings),
                       ::testing::Values(0, 1, 2, 3)),
    [](const auto& param_info) {
      std::string name(OrderingName(std::get<0>(param_info.param)));
      name.append("_depth");
      name.append(std::to_string(std::get<1>(param_info.param)));
      return name;
    });

TEST(StatisticsTest, GlobalDistincts) {
  rdf::Graph g;
  g.AddIri("s1", "p1", "o1");
  g.AddIri("s1", "p1", "o2");
  g.AddIri("s2", "p2", "o1");
  g.AddIri("s3", "p1", "o3");
  TripleStore store = TripleStore::Build(std::move(g));
  Statistics stats = Statistics::Compute(store);
  EXPECT_EQ(stats.total_triples(), 4u);
  EXPECT_EQ(stats.DistinctAt(Position::kSubject), 3u);
  EXPECT_EQ(stats.DistinctAt(Position::kPredicate), 2u);
  EXPECT_EQ(stats.DistinctAt(Position::kObject), 3u);
}

TEST(StatisticsTest, PerPredicateAggregates) {
  rdf::Graph g;
  g.AddIri("s1", "p1", "o1");
  g.AddIri("s1", "p1", "o2");
  g.AddIri("s2", "p1", "o1");
  g.AddIri("s9", "p2", "o9");
  rdf::TermId p1 = *g.dictionary().Find(rdf::Term::Iri("p1"));
  rdf::TermId p2 = *g.dictionary().Find(rdf::Term::Iri("p2"));
  TripleStore store = TripleStore::Build(std::move(g));
  Statistics stats = Statistics::Compute(store);

  PredicateStats s1 = stats.ForPredicate(p1);
  EXPECT_EQ(s1.count, 3u);
  EXPECT_EQ(s1.distinct_subjects, 2u);
  EXPECT_EQ(s1.distinct_objects, 2u);
  PredicateStats s2 = stats.ForPredicate(p2);
  EXPECT_EQ(s2.count, 1u);
  EXPECT_EQ(stats.ForPredicate(9999).count, 0u);
}

TEST(StatisticsTest, EstimateDistinctExactForPredicateOnly) {
  rdf::Graph g;
  for (int i = 0; i < 10; ++i) {
    g.AddIri("s" + std::to_string(i % 4), "p", "o" + std::to_string(i));
  }
  rdf::TermId p = *g.dictionary().Find(rdf::Term::Iri("p"));
  TripleStore store = TripleStore::Build(std::move(g));
  Statistics stats = Statistics::Compute(store);
  Binding b{Position::kPredicate, p};
  EXPECT_EQ(stats.EstimateDistinct({&b, 1}, Position::kSubject), 4u);
  EXPECT_EQ(stats.EstimateDistinct({&b, 1}, Position::kObject), 10u);
}

TEST(SplitAtKeyBoundariesTest, EmptyAndZeroParts) {
  EXPECT_TRUE(SplitAtKeyBoundaries(std::span<const rdf::TermId>{}, 4)
                  .empty());
  std::vector<rdf::TermId> keys{1, 2, 3};
  EXPECT_TRUE(SplitAtKeyBoundaries(std::span<const rdf::TermId>(keys), 0)
                  .empty());
}

TEST(SplitAtKeyBoundariesTest, ChunksCoverRangeWithoutSplittingKeys) {
  SplitMix64 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    // Sorted keys with heavy duplication to stress boundary extension.
    std::vector<rdf::TermId> keys;
    std::size_t n = 1 + rng.NextBounded(500);
    rdf::TermId k = 0;
    while (keys.size() < n) {
      k += static_cast<rdf::TermId>(1 + rng.NextBounded(3));
      std::size_t run = 1 + rng.NextBounded(20);
      for (std::size_t i = 0; i < run && keys.size() < n; ++i) {
        keys.push_back(k);
      }
    }
    std::size_t parts = 1 + rng.NextBounded(8);
    auto chunks = SplitAtKeyBoundaries(std::span<const rdf::TermId>(keys),
                                       parts);
    ASSERT_FALSE(chunks.empty());
    EXPECT_LE(chunks.size(), parts);
    EXPECT_EQ(chunks.front().begin, 0u);
    EXPECT_EQ(chunks.back().end, keys.size());
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      EXPECT_GT(chunks[c].size(), 0u);
      if (c > 0) {
        EXPECT_EQ(chunks[c].begin, chunks[c - 1].end);
        // A key never spans a chunk boundary.
        EXPECT_NE(keys[chunks[c].begin], keys[chunks[c].begin - 1]);
      }
    }
  }
}

TEST(SplitAtKeyBoundariesTest, SingleDominantKeyYieldsOneChunk) {
  std::vector<rdf::TermId> keys(100, 7);
  auto chunks = SplitAtKeyBoundaries(std::span<const rdf::TermId>(keys), 8);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (IndexRange{0, 100}));
}

TEST(SplitAtKeyBoundariesTest, TripleOverloadSplitsOnPosition) {
  rdf::Graph g;
  for (int s = 0; s < 40; ++s) {
    for (int o = 0; o < 3; ++o) {
      g.AddIri("s" + std::to_string(s), "p", "o" + std::to_string(o));
    }
  }
  TripleStore store = TripleStore::Build(std::move(g));
  // Span overload over the contiguous base relation.
  auto base = store.BaseRelation(Ordering::kSpo);
  auto chunks = SplitAtKeyBoundaries(base, Position::kSubject, 4);
  ASSERT_GT(chunks.size(), 1u);
  std::size_t total = 0;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    total += chunks[c].size();
    if (c > 0) {
      // Chunks are contiguous and never split a subject group.
      EXPECT_EQ(chunks[c].data(), chunks[c - 1].data() + chunks[c - 1].size());
      EXPECT_NE(chunks[c].front().s, chunks[c - 1].back().s);
    }
  }
  EXPECT_EQ(total, base.size());

  // View overload over the same data returns the same cuts as merged
  // ranks; with an empty delta they must line up with the span chunks.
  auto view_chunks =
      SplitAtKeyBoundaries(store.Scan(Ordering::kSpo), Position::kSubject, 4);
  ASSERT_EQ(view_chunks.size(), chunks.size());
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    EXPECT_EQ(view_chunks[c], (IndexRange{begin, begin + chunks[c].size()}));
    begin += chunks[c].size();
  }
}

}  // namespace
}  // namespace hsparql::storage
