// Tests for the vertically partitioned store: equivalence against the
// triple table on every lookup shape (parameterized sweep on random data).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "rdf/graph.h"
#include "storage/vertical_store.h"

namespace hsparql::storage {
namespace {

using rdf::Position;
using rdf::TermId;
using rdf::Triple;

rdf::Graph RandomGraph(std::size_t n, std::uint64_t seed) {
  rdf::Graph g;
  for (int i = 0; i < 40; ++i) {
    g.dictionary().InternIri("http://e/" + std::to_string(i));
  }
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    g.Add(Triple{static_cast<TermId>(rng.NextBounded(25)),
                 static_cast<TermId>(rng.NextBounded(6)),
                 static_cast<TermId>(rng.NextBounded(30))});
  }
  return g;
}

TEST(VerticalStoreTest, PartitionsCoverEveryTriple) {
  TripleStore ts = TripleStore::Build(RandomGraph(600, 5));
  VerticalStore vs = VerticalStore::Build(ts);
  EXPECT_EQ(vs.size(), ts.size());
  std::size_t sum = 0;
  for (TermId p : vs.predicates()) {
    EXPECT_EQ(vs.BySubject(p).size(), vs.ByObject(p).size());
    sum += vs.BySubject(p).size();
  }
  EXPECT_EQ(sum, ts.size());
}

TEST(VerticalStoreTest, TablesAreSortedBothWays) {
  TripleStore ts = TripleStore::Build(RandomGraph(600, 6));
  VerticalStore vs = VerticalStore::Build(ts);
  for (TermId p : vs.predicates()) {
    auto by_s = vs.BySubject(p);
    EXPECT_TRUE(std::is_sorted(by_s.begin(), by_s.end()));
    auto by_o = vs.ByObject(p);
    EXPECT_TRUE(std::is_sorted(by_o.begin(), by_o.end(),
                               [](const SoPair& a, const SoPair& b) {
                                 return std::tie(a.o, a.s) <
                                        std::tie(b.o, b.s);
                               }));
  }
}

TEST(VerticalStoreTest, UnknownPredicateIsEmpty) {
  TripleStore ts = TripleStore::Build(RandomGraph(100, 7));
  VerticalStore vs = VerticalStore::Build(ts);
  EXPECT_TRUE(vs.BySubject(9999).empty());
  EXPECT_TRUE(vs.LookupSubject(9999, 1).empty());
  EXPECT_TRUE(vs.Match(std::nullopt, TermId{9999}, std::nullopt).empty());
}

TEST(VerticalStoreTest, MemoryBytesScalesWithData) {
  TripleStore ts = TripleStore::Build(RandomGraph(500, 8));
  VerticalStore vs = VerticalStore::Build(ts);
  EXPECT_GE(vs.MemoryBytes(), vs.size() * 2 * sizeof(SoPair));
}

// Every bound/unbound combination of (s, p, o) must agree with the triple
// table's CountMatching.
class VerticalMatchSweep : public ::testing::TestWithParam<int> {};

TEST_P(VerticalMatchSweep, AgreesWithTripleTable) {
  const int mask = GetParam();  // bit 0: s bound, bit 1: p, bit 2: o
  TripleStore ts = TripleStore::Build(RandomGraph(800, 42));
  VerticalStore vs = VerticalStore::Build(ts);
  auto all = ts.Scan(Ordering::kSpo);
  SplitMix64 rng(static_cast<std::uint64_t>(mask) * 31 + 5);

  for (int trial = 0; trial < 40; ++trial) {
    const Triple& probe = all[rng.NextBounded(all.size())];
    std::optional<TermId> s, p, o;
    std::vector<Binding> bindings;
    if (mask & 1) {
      s = probe.s;
      bindings.push_back(Binding{Position::kSubject, probe.s});
    }
    if (mask & 2) {
      p = probe.p;
      bindings.push_back(Binding{Position::kPredicate, probe.p});
    }
    if (mask & 4) {
      o = probe.o;
      bindings.push_back(Binding{Position::kObject, probe.o});
    }
    std::vector<Triple> matched = vs.Match(s, p, o);
    EXPECT_EQ(matched.size(), ts.CountMatching(bindings)) << "mask " << mask;
    for (const Triple& t : matched) {
      EXPECT_TRUE(ts.Contains(t));
      if (s.has_value()) {
        EXPECT_EQ(t.s, *s);
      }
      if (p.has_value()) {
        EXPECT_EQ(t.p, *p);
      }
      if (o.has_value()) {
        EXPECT_EQ(t.o, *o);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBindingMasks, VerticalMatchSweep,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace hsparql::storage
