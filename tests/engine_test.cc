// Tests for the engine::Engine query-service facade (src/engine/):
// query-text normalization, plan-cache fingerprint identity across hits,
// result-cache invalidation through the store generation counter, LRU
// eviction order, deadline/cancellation, and prepared queries.
#include "engine/engine.h"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "rdf/term.h"
#include "storage/triple_store.h"
#include "test_util.h"

namespace hsparql::engine {
namespace {

// Chain query over testing::SmallBibGraph(): authors who published in the
// 1940 journal. Two answers: Alice and Bob.
constexpr std::string_view kChainQuery =
    "SELECT ?name WHERE { ?j <dc:title> \"Journal 1 (1940)\" . "
    "?a <swrc:journal> ?j . ?a <dc:creator> ?p . ?p <foaf:name> ?name }";

storage::TripleStore BibStore() {
  return storage::TripleStore::Build(hsparql::testing::SmallBibGraph());
}

std::vector<std::string> Names(const Engine& engine,
                               const QueryResponse& response) {
  const plan::PlannedQuery& planned = response.planned->planned;
  std::vector<std::string> out;
  for (const auto& row : hsparql::testing::ToResultBag(
           response.result->table, planned.query,
           engine.read_view().dictionary(), planned.query.projection)) {
    out.push_back(row.at(0));
  }
  return out;
}

TEST(NormalizeQueryTextTest, CollapsesWhitespaceAndTrims) {
  EXPECT_EQ(NormalizeQueryText("  SELECT\t?x\n\nWHERE  { ?x <p> ?y }\r\n"),
            "SELECT ?x WHERE { ?x <p> ?y }");
  EXPECT_EQ(NormalizeQueryText(""), "");
  EXPECT_EQ(NormalizeQueryText(" \t\n "), "");
  EXPECT_EQ(NormalizeQueryText("a"), "a");
}

TEST(NormalizeQueryTextTest, PreservesWhitespaceInsideLiterals) {
  EXPECT_EQ(NormalizeQueryText("{ ?x <p> \"two  spaces\\n\" }"),
            "{ ?x <p> \"two  spaces\\n\" }");
  // Escaped quotes do not end the literal early.
  EXPECT_EQ(NormalizeQueryText("{ ?x <p> \"a \\\"b\\\"  c\" .\n}"),
            "{ ?x <p> \"a \\\"b\\\"  c\" . }");
  EXPECT_EQ(NormalizeQueryText("'it  is'   x"), "'it  is' x");
  // Unterminated literal: the rest of the text is taken verbatim.
  EXPECT_EQ(NormalizeQueryText("\"open  ended"), "\"open  ended");
}

TEST(NormalizeQueryTextTest, StripsLineComments) {
  // A comment acts as a token separator (the lexer skips it like
  // whitespace), so it normalizes to a single space.
  EXPECT_EQ(NormalizeQueryText("SELECT ?x # pick x\nWHERE { ?x <p> ?y }"),
            "SELECT ?x WHERE { ?x <p> ?y }");
  EXPECT_EQ(NormalizeQueryText("?x#c\n?y"), "?x ?y");
  // Trailing comment without a final newline.
  EXPECT_EQ(NormalizeQueryText("?x <p> ?y # trailing"), "?x <p> ?y");
  // Comment-only text.
  EXPECT_EQ(NormalizeQueryText("# nothing here"), "");
}

TEST(NormalizeQueryTextTest, HashInsideLiteralsAndIrisIsNotAComment) {
  EXPECT_EQ(NormalizeQueryText("{ ?x <p> \"a # b\"  }"),
            "{ ?x <p> \"a # b\" }");
  EXPECT_EQ(NormalizeQueryText("{ ?x <http://e/p#frag>  ?y }"),
            "{ ?x <http://e/p#frag> ?y }");
}

TEST(NormalizeQueryTextTest, CommentPlacementKeepsQueriesApart) {
  // REVIEW regression: these parse to two patterns vs. one (the second
  // comment swallows the second pattern), so they must not share a key.
  const std::string two_patterns =
      "SELECT ?x WHERE { ?s ?p ?x . # n\n?x ?q ?y }";
  const std::string one_pattern =
      "SELECT ?x WHERE { ?s ?p ?x . # n ?x ?q ?y\n}";
  EXPECT_NE(NormalizeQueryText(two_patterns), NormalizeQueryText(one_pattern));
  EXPECT_EQ(NormalizeQueryText(two_patterns),
            "SELECT ?x WHERE { ?s ?p ?x . ?x ?q ?y }");
  EXPECT_EQ(NormalizeQueryText(one_pattern),
            "SELECT ?x WHERE { ?s ?p ?x . }");
}

TEST(NormalizeQueryTextTest, LessThanComparisonIsNotAnIriOpener) {
  // Mirrors the lexer's heuristic: '<' before whitespace, '=', '?', '"'
  // or a digit is a comparison, so a comment after it is still stripped.
  EXPECT_EQ(NormalizeQueryText("FILTER(?y < 5) # tail\n?a ?b ?c"),
            "FILTER(?y < 5) ?a ?b ?c");
  EXPECT_EQ(NormalizeQueryText("FILTER(?y <= ?z)"), "FILTER(?y <= ?z)");
}

TEST(NormalizeQueryTextTest, EquivalentTextsShareOneKey) {
  std::string spread(kChainQuery);
  spread.insert(spread.find("WHERE"), "\n\t ");
  EXPECT_EQ(NormalizeQueryText(spread),
            NormalizeQueryText(std::string(kChainQuery)));
}

TEST(EngineTest, QueryRunsFullPipeline) {
  Engine engine(BibStore());
  auto response = engine.Query(kChainQuery);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->rows(), 2u);
  EXPECT_EQ(Names(engine, *response),
            (std::vector<std::string>{"\"Alice\"", "\"Bob\""}));
  EXPECT_EQ(response->planner, "hsp");
  EXPECT_FALSE(response->plan_cache_hit);
  EXPECT_GE(response->parse_millis, 0.0);
  EXPECT_GE(response->plan_millis, 0.0);
  EXPECT_GE(response->exec_millis, 0.0);
  EXPECT_GE(response->total_millis,
            response->parse_millis + response->plan_millis);
}

TEST(EngineTest, ParseErrorSurfacesAsStatus) {
  Engine engine(BibStore());
  auto response = engine.Query("SELECT WHERE {");
  EXPECT_FALSE(response.ok());
}

TEST(EngineTest, PlanCacheHitReturnsIdenticalPlanFingerprint) {
  Engine engine(BibStore());
  auto cold = engine.Query(kChainQuery);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_FALSE(cold->plan_cache_hit);

  // Same query, reformatted: must normalize onto the cached entry.
  std::string spread = "  SELECT ?name\nWHERE {\n ?j <dc:title> "
                       "\"Journal 1 (1940)\" .\n ?a <swrc:journal> ?j .\n "
                       "?a <dc:creator> ?p .\n ?p <foaf:name> ?name \n}\n";
  auto warm = engine.Query(spread);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_TRUE(warm->plan_cache_hit);
  // Hits share the cached plan object itself, so the fingerprint is
  // identical by construction — assert both the pointer and the rendered
  // plan, which is what downstream consumers compare.
  EXPECT_EQ(warm->planned.get(), cold->planned.get());
  EXPECT_EQ(warm->planned->planned.plan.ToString(warm->planned->planned.query),
            cold->planned->planned.plan.ToString(cold->planned->planned.query));
  EXPECT_EQ(Names(engine, *warm), Names(engine, *cold));

  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.plan_cache.hits, 1u);
  EXPECT_EQ(stats.plan_cache.misses, 1u);
  EXPECT_EQ(stats.plan_cache_size, 1u);
}

TEST(EngineTest, PlannerKindIsPartOfThePlanCacheKey) {
  Engine engine(BibStore());
  QueryOptions cdp;
  cdp.planner = plan::PlannerKind::kCdp;
  ASSERT_TRUE(engine.Query(kChainQuery).ok());
  auto second = engine.Query(kChainQuery, cdp);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_FALSE(second->plan_cache_hit);
  EXPECT_EQ(second->planner, "cdp");
  EXPECT_EQ(engine.stats().plan_cache_size, 2u);
}

TEST(EngineTest, ZeroCapacityDisablesThePlanCache) {
  EngineOptions options;
  options.plan_cache_capacity = 0;
  Engine engine(BibStore(), options);
  ASSERT_TRUE(engine.Query(kChainQuery).ok());
  auto second = engine.Query(kChainQuery);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->plan_cache_hit);
  EXPECT_EQ(engine.stats().plan_cache_size, 0u);
}

TEST(EngineTest, LruEvictsLeastRecentlyUsedPlanFirst) {
  EngineOptions options;
  options.plan_cache_capacity = 2;
  Engine engine(BibStore(), options);
  const std::string a = "SELECT ?t WHERE { <ex:j1940> <dc:title> ?t }";
  const std::string b = "SELECT ?t WHERE { <ex:j1941> <dc:title> ?t }";
  const std::string c = "SELECT ?y WHERE { <ex:j1940> <dcterms:issued> ?y }";

  ASSERT_TRUE(engine.Query(a).ok());  // miss        {a}
  ASSERT_TRUE(engine.Query(b).ok());  // miss        {a b}
  ASSERT_TRUE(engine.Query(c).ok());  // miss, -a    {b c}
  auto rb = engine.Query(b);          // hit         {c b}
  ASSERT_TRUE(rb.ok());
  EXPECT_TRUE(rb->plan_cache_hit);
  auto ra = engine.Query(a);          // miss, -c    {b a}
  ASSERT_TRUE(ra.ok());
  EXPECT_FALSE(ra->plan_cache_hit);
  auto rc = engine.Query(c);          // miss, -b    {a c}
  ASSERT_TRUE(rc.ok());
  EXPECT_FALSE(rc->plan_cache_hit);

  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.plan_cache.hits, 1u);
  EXPECT_EQ(stats.plan_cache.misses, 5u);
  EXPECT_EQ(stats.plan_cache.evictions, 3u);
  EXPECT_EQ(stats.plan_cache_size, 2u);
}

TEST(EngineTest, ResultCacheHitSkipsExecution) {
  EngineOptions options;
  options.result_cache_capacity = 8;
  Engine engine(BibStore(), options);
  auto cold = engine.Query(kChainQuery);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->result_cache_hit);
  auto warm = engine.Query(kChainQuery);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->result_cache_hit);
  EXPECT_EQ(warm->result.get(), cold->result.get());
  EXPECT_EQ(warm->exec_millis, 0.0);

  // Per-query opt-out bypasses the cache without invalidating it.
  QueryOptions no_cache;
  no_cache.use_result_cache = false;
  auto bypass = engine.Query(kChainQuery, no_cache);
  ASSERT_TRUE(bypass.ok());
  EXPECT_FALSE(bypass->result_cache_hit);
}

TEST(EngineTest, MutationBumpsGenerationAndInvalidatesResults) {
  EngineOptions options;
  options.result_cache_capacity = 8;
  Engine engine(BibStore(), options);
  ASSERT_TRUE(engine.Query(kChainQuery).ok());
  auto cached = engine.Query(kChainQuery);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->result_cache_hit);
  EXPECT_EQ(engine.generation(), 0u);

  // A third author publishing in the 1940 journal.
  const std::array<std::array<rdf::Term, 3>, 3> triples = {{
      {rdf::Term::Iri("ex:a9"), rdf::Term::Iri("swrc:journal"),
       rdf::Term::Iri("ex:j1940")},
      {rdf::Term::Iri("ex:a9"), rdf::Term::Iri("dc:creator"),
       rdf::Term::Iri("ex:p9")},
      {rdf::Term::Iri("ex:p9"), rdf::Term::Iri("foaf:name"),
       rdf::Term::Literal("Carol")},
  }};
  ASSERT_TRUE(engine.AddTriples(triples).ok());
  EXPECT_EQ(engine.generation(), 1u);

  // The stale entry is keyed on the old generation: never served again.
  auto fresh = engine.Query(kChainQuery);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_FALSE(fresh->result_cache_hit);
  EXPECT_EQ(fresh->rows(), 3u);
  EXPECT_EQ(Names(engine, *fresh),
            (std::vector<std::string>{"\"Alice\"", "\"Bob\"", "\"Carol\""}));

  // The new result is cached under the new generation.
  auto recached = engine.Query(kChainQuery);
  ASSERT_TRUE(recached.ok());
  EXPECT_TRUE(recached->result_cache_hit);
  EXPECT_EQ(recached->rows(), 3u);
}

TEST(EngineTest, CancelledTokenReturnsCancelled) {
  Engine engine(BibStore());
  CancelToken cancelled;
  cancelled.Cancel();
  QueryOptions options;
  options.cancel = &cancelled;
  auto response = engine.Query(kChainQuery, options);
  ASSERT_FALSE(response.ok());
  // An explicit Cancel() is typed kCancelled (HTTP 499), distinct from a
  // deadline expiry's kDeadlineExceeded (HTTP 408).
  EXPECT_TRUE(response.status().IsCancelled()) << response.status();

  // The engine (and the shared pool behind it) keeps serving afterwards —
  // cancellation is cooperative, nothing leaks.
  auto after = engine.Query(kChainQuery);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->rows(), 2u);
}

TEST(CancelTokenTest, ExpiryIsLatched) {
  // REVIEW regression: extending the deadline after a worker observed
  // expiry must not flip Expired() back to false — a truncated result
  // would otherwise be reported (and cached) as complete.
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  ASSERT_TRUE(token.Expired());
  token.SetDeadline(std::chrono::steady_clock::now() +
                    std::chrono::hours(1));
  EXPECT_TRUE(token.Expired());

  // An unexpired token can still have its deadline extended freely.
  CancelToken fresh;
  fresh.SetTimeout(std::chrono::hours(1));
  EXPECT_FALSE(fresh.Expired());
  fresh.SetTimeout(std::chrono::hours(2));
  EXPECT_FALSE(fresh.Expired());
}

TEST(CancelTokenTest, ParentExpiryLatchesChild) {
  CancelToken parent;
  CancelToken child;
  child.set_parent(&parent);
  EXPECT_FALSE(child.Expired());
  parent.Cancel();
  EXPECT_TRUE(child.Expired());
}

TEST(EngineTest, TimeoutChainsOntoCallerToken) {
  Engine engine(BibStore());
  CancelToken cancelled;
  cancelled.Cancel();
  QueryOptions options;
  options.timeout_ms = 60000;  // generous deadline; the parent is expired
  options.cancel = &cancelled;
  auto response = engine.Query(kChainQuery, options);
  ASSERT_FALSE(response.ok());
  // The engine's internal deadline token inherits the parent's reason:
  // the caller cancelled, so the typed code is kCancelled, not a timeout.
  EXPECT_TRUE(response.status().IsCancelled()) << response.status();
}

TEST(EngineTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  Engine engine(BibStore());
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  QueryOptions options;
  options.cancel = &token;
  auto response = engine.Query(kChainQuery, options);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsDeadlineExceeded()) << response.status();
}

TEST(EngineTest, PrepareThenExecuteMatchesQuery) {
  Engine engine(BibStore());
  auto prepared = engine.Prepare(kChainQuery);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  ASSERT_TRUE(prepared->valid());
  const std::string fingerprint =
      prepared->planned().plan.ToString(prepared->planned().query);

  auto executed = engine.ExecutePrepared(*prepared);
  ASSERT_TRUE(executed.ok()) << executed.status();
  EXPECT_TRUE(executed->plan_cache_hit);
  EXPECT_EQ(executed->rows(), 2u);
  EXPECT_EQ(
      executed->planned->planned.plan.ToString(executed->planned->planned.query),
      fingerprint);

  // Executing a default-constructed handle is a usage error, not a crash.
  PreparedQuery invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_TRUE(engine.ExecutePrepared(invalid).status().IsInvalidArgument());
}

TEST(EngineTest, ClearCachesDropsPlansAndResults) {
  EngineOptions options;
  options.result_cache_capacity = 8;
  Engine engine(BibStore(), options);
  ASSERT_TRUE(engine.Query(kChainQuery).ok());
  engine.ClearCaches();
  EXPECT_EQ(engine.stats().plan_cache_size, 0u);
  EXPECT_EQ(engine.stats().result_cache_size, 0u);
  auto rerun = engine.Query(kChainQuery);
  ASSERT_TRUE(rerun.ok());
  EXPECT_FALSE(rerun->plan_cache_hit);
}

}  // namespace
}  // namespace hsparql::engine
