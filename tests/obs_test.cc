// Tests for the observability layer (src/obs/) and its integration into
// the engine and executor: the metrics registry with its JSON/Prometheus
// expositions, EXPLAIN ANALYZE traces (per-operator actuals must equal
// the executor's own cardinality accounting, for every planner), the
// structured slow-query log, scripted LRU-cache accounting including
// generation-bump invalidation, and thread-pool stats.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "engine/lru_cache.h"
#include "exec/executor.h"
#include "obs/registry.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "rdf/term.h"
#include "storage/triple_store.h"
#include "test_util.h"
#include "workload/queries.h"
#include "workload/sp2bench_gen.h"

namespace hsparql {
namespace {

using engine::Engine;
using engine::EngineOptions;
using engine::QueryOptions;

// Same chain query engine_test.cc uses over testing::SmallBibGraph():
// authors who published in the 1940 journal (Alice and Bob).
constexpr std::string_view kChainQuery =
    "SELECT ?name WHERE { ?j <dc:title> \"Journal 1 (1940)\" . "
    "?a <swrc:journal> ?j . ?a <dc:creator> ?p . ?p <foaf:name> ?name }";

storage::TripleStore BibStore() {
  return storage::TripleStore::Build(hsparql::testing::SmallBibGraph());
}

bool TraceForcedByEnv() {
  // Mirrors TraceForced() in src/exec/executor.cc; single-threaded test
  // setup, no setenv anywhere. NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv("HSPARQL_FORCE_TRACE");
  return v != nullptr && *v != '\0';
}

std::string HashHex(std::uint64_t hash) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << hash;
  return os.str();
}

// ---------------------------------------------------------------------------
// obs::Registry

TEST(RegistryTest, CounterGaugeHistogramSemantics) {
  obs::Registry registry;
  obs::Counter* counter = registry.GetCounter("t.count", "help");
  counter->Add();
  counter->Add(4);
  EXPECT_EQ(counter->value(), 5u);
  // Get-or-create: same name, same metric.
  EXPECT_EQ(registry.GetCounter("t.count"), counter);

  obs::Gauge* gauge = registry.GetGauge("t.gauge");
  gauge->Set(10);
  gauge->Add(3);
  gauge->Sub(14);
  EXPECT_EQ(gauge->value(), -1);

  const std::array<double, 2> bounds = {1.0, 10.0};
  obs::Histogram* histogram = registry.GetHistogram("t.hist", "h", bounds);
  histogram->Observe(0.5);
  histogram->Observe(5.0);
  histogram->Observe(100.0);
  obs::Histogram::Snapshot snap = histogram->Snap();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 105.5);
  ASSERT_EQ(snap.counts.size(), 3u);  // two finite buckets + +Inf
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);

  obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("t.count"), 5u);
  EXPECT_EQ(snapshot.GaugeValue("t.gauge"), -1);
  ASSERT_NE(snapshot.Find("t.hist"), nullptr);
  EXPECT_EQ(snapshot.Find("t.hist")->histogram.count, 3u);
  EXPECT_EQ(snapshot.Find("t.missing"), nullptr);
  EXPECT_EQ(snapshot.CounterValue("t.missing", 99), 99u);
}

TEST(RegistryTest, TypeMismatchReturnsNullNeverCrashes) {
  obs::Registry registry;
  obs::Counter* counter = registry.GetCounter("metric");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(registry.GetGauge("metric"), nullptr);
  EXPECT_EQ(registry.GetHistogram("metric"), nullptr);
  EXPECT_EQ(registry.GetCounter("metric"), counter);
  // A gauge read through CounterValue falls back to the default.
  registry.GetGauge("g")->Set(5);
  EXPECT_EQ(registry.Snapshot().CounterValue("g", 42), 42u);
}

TEST(RegistryTest, CallbackMetricsEvaluatedAtSnapshotTime) {
  obs::Registry registry;
  std::uint64_t count = 0;
  std::int64_t depth = 0;
  registry.AddCallbackCounter("cb.count", "", [&] { return count; });
  registry.AddCallbackGauge("cb.depth", "", [&] { return depth; });
  EXPECT_EQ(registry.Snapshot().CounterValue("cb.count"), 0u);
  count = 7;
  depth = -3;
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("cb.count"), 7u);
  EXPECT_EQ(snapshot.GaugeValue("cb.depth"), -3);
}

TEST(RegistryTest, ScopedGaugeAndScopedTimer) {
  obs::Registry registry;
  obs::Gauge* active = registry.GetGauge("active");
  obs::Histogram* latency = registry.GetHistogram("latency");
  double accumulated = 0.0;
  {
    obs::ScopedGauge in_flight(active);
    EXPECT_EQ(active->value(), 1);
    obs::ScopedTimer timer(latency, &accumulated);
    EXPECT_GE(timer.ElapsedMillis(), 0.0);
  }
  EXPECT_EQ(active->value(), 0);
  EXPECT_EQ(latency->Snap().count, 1u);
  EXPECT_GT(accumulated, 0.0);
}

TEST(RegistryTest, JsonExpositionIsExact) {
  obs::Registry registry;
  registry.GetCounter("app.requests", "Requests")->Add(3);
  registry.GetGauge("app.depth")->Set(-2);
  const std::array<double, 2> bounds = {1.0, 10.0};
  obs::Histogram* h = registry.GetHistogram("app.latency", "", bounds);
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(100.0);
  EXPECT_EQ(registry.Snapshot().ToJson(),
            "{\"counters\":{\"app.requests\":3},"
            "\"gauges\":{\"app.depth\":-2},"
            "\"histograms\":{\"app.latency\":{\"count\":3,\"sum\":105.5,"
            "\"buckets\":[[\"1\",1],[\"10\",2],[\"+Inf\",3]]}}}");
}

TEST(RegistryTest, PrometheusExpositionRewritesNamesAndCumulates) {
  obs::Registry registry;
  registry.GetCounter("app.requests", "Total requests")->Add(3);
  registry.GetGauge("app.depth")->Set(-2);
  const std::array<double, 1> bounds = {10.0};
  obs::Histogram* h = registry.GetHistogram("app.latency", "", bounds);
  h->Observe(5.0);
  h->Observe(100.0);
  const std::string text = registry.Snapshot().ToPrometheus();
  EXPECT_NE(text.find("# HELP app_requests Total requests\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE app_requests counter\napp_requests 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE app_depth gauge\napp_depth -2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE app_latency histogram\n"), std::string::npos);
  EXPECT_NE(text.find("app_latency_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("app_latency_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("app_latency_sum 105\n"), std::string::npos);
  EXPECT_NE(text.find("app_latency_count 2\n"), std::string::npos);
}

// Line-by-line conformance check against the text exposition format
// (https://prometheus.io/docs/instrumenting/exposition_formats/): every
// line must be a well-formed comment or sample, TYPE must precede its
// samples and appear once, histogram buckets must be cumulative and end
// at +Inf == _count, and HELP text must escape backslash and line feed.
TEST(RegistryTest, PrometheusExpositionConformance) {
  obs::Registry registry;
  registry.GetCounter("app.requests", "Total\nrequests \\ served")->Add(3);
  registry.GetGauge("app.depth", "Queue depth")->Set(-2);
  const std::array<double, 3> bounds = {0.5, 1.0, 10.0};
  obs::Histogram* h = registry.GetHistogram("app.latency", "Latency", bounds);
  h->Observe(0.7);
  h->Observe(5.0);
  h->Observe(100.0);
  const std::string text = registry.Snapshot().ToPrometheus();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n') << "exposition must end with a line feed";

  const auto valid_name = [](const std::string& name) {
    if (name.empty()) return false;
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9');
      if (!ok) return false;
    }
    return true;
  };

  std::map<std::string, std::string> type_of;       // metric -> TYPE
  std::map<std::string, std::uint64_t> last_bucket;  // histogram -> cumulative
  std::map<std::string, std::uint64_t> inf_bucket;
  std::map<std::string, std::uint64_t> count_value;
  std::set<std::string> histograms_with_sum;
  std::set<std::string> seen_samples;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, name;
      ls >> hash >> kind >> name;
      ASSERT_TRUE(kind == "HELP" || kind == "TYPE") << line;
      EXPECT_TRUE(valid_name(name)) << line;
      if (kind == "HELP") {
        // Raw newlines would split the comment; the escaped forms stay
        // on one line.
        EXPECT_EQ(line.find('\n'), std::string::npos);
      } else {
        std::string type;
        ls >> type;
        EXPECT_TRUE(type == "counter" || type == "gauge" ||
                    type == "histogram" || type == "summary" ||
                    type == "untyped")
            << line;
        EXPECT_EQ(type_of.count(name), 0u)
            << "duplicate TYPE for " << name;
        EXPECT_EQ(seen_samples.count(name), 0u)
            << "TYPE after samples for " << name;
        type_of[name] = type;
      }
      continue;
    }
    // Sample: name[{labels}] value
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string series = line.substr(0, space);
    const std::string value_text = line.substr(space + 1);
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    ASSERT_TRUE(end != nullptr && *end == '\0' && errno == 0)
        << "unparsable sample value: " << line;
    std::string le;
    const std::size_t brace = series.find('{');
    if (brace != std::string::npos) {
      ASSERT_EQ(series.back(), '}') << line;
      std::string labels = series.substr(brace + 1,
                                         series.size() - brace - 2);
      ASSERT_EQ(labels.substr(0, 4), "le=\"") << line;
      ASSERT_EQ(labels.back(), '"') << line;
      le = labels.substr(4, labels.size() - 5);
      series = series.substr(0, brace);
    }
    EXPECT_TRUE(valid_name(series)) << line;
    seen_samples.insert(series);

    const auto strip_suffix = [&series](std::string_view suffix) {
      return series.size() > suffix.size() &&
                     series.compare(series.size() - suffix.size(),
                                    suffix.size(), suffix) == 0
                 ? series.substr(0, series.size() - suffix.size())
                 : std::string();
    };
    const std::string bucket_base = strip_suffix("_bucket");
    const std::string sum_base = strip_suffix("_sum");
    const std::string count_base = strip_suffix("_count");
    if (!bucket_base.empty() && type_of[bucket_base] == "histogram") {
      ASSERT_FALSE(le.empty()) << "bucket without le label: " << line;
      const auto cumulative = static_cast<std::uint64_t>(value);
      EXPECT_GE(cumulative, last_bucket[bucket_base])
          << "buckets must be cumulative: " << line;
      last_bucket[bucket_base] = cumulative;
      if (le == "+Inf") inf_bucket[bucket_base] = cumulative;
    } else if (!sum_base.empty() && type_of[sum_base] == "histogram") {
      histograms_with_sum.insert(sum_base);
    } else if (!count_base.empty() && type_of[count_base] == "histogram") {
      count_value[count_base] = static_cast<std::uint64_t>(value);
    } else {
      // A plain counter/gauge sample must carry a TYPE seen earlier.
      EXPECT_EQ(type_of.count(series), 1u) << "sample without TYPE: " << line;
      EXPECT_TRUE(le.empty()) << line;
    }
  }

  // Every declared histogram produced buckets ending at +Inf == _count
  // plus a _sum series.
  bool saw_histogram = false;
  for (const auto& [name, type] : type_of) {
    if (type != "histogram") continue;
    saw_histogram = true;
    ASSERT_EQ(inf_bucket.count(name), 1u) << name << " missing +Inf bucket";
    ASSERT_EQ(count_value.count(name), 1u) << name << " missing _count";
    EXPECT_EQ(inf_bucket[name], count_value[name]) << name;
    EXPECT_EQ(histograms_with_sum.count(name), 1u) << name << " missing _sum";
  }
  EXPECT_TRUE(saw_histogram);

  // The escaped HELP text survives round-tripping on a single line.
  EXPECT_NE(text.find("# HELP app_requests Total\\nrequests \\\\ served\n"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// obs::QueryTrace

obs::QueryTrace MakeTestTrace() {
  obs::QueryTrace trace;
  trace.root.node_id = 2;
  trace.root.label = "mergejoin ?x";
  trace.root.self_millis = 1.0;
  obs::OperatorTrace left;
  left.node_id = 0;
  left.label = "select(pos) tp0";
  left.self_millis = 5.0;
  obs::OperatorTrace right;
  right.node_id = 1;
  right.label = "select(pos) tp1";
  right.self_millis = 3.0;
  trace.root.children = {left, right};
  return trace;
}

TEST(QueryTraceTest, FindAndTopBySelfTime) {
  obs::QueryTrace trace = MakeTestTrace();
  ASSERT_NE(trace.Find(1), nullptr);
  EXPECT_EQ(trace.Find(1)->label, "select(pos) tp1");
  EXPECT_EQ(trace.Find(99), nullptr);

  auto top = trace.TopBySelfTime(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0]->node_id, 0);  // 5ms
  EXPECT_EQ(top[1]->node_id, 1);  // 3ms
  EXPECT_EQ(trace.TopBySelfTime(10).size(), 3u);
}

TEST(QueryTraceTest, AnnotateEstimatesByNodeId) {
  obs::QueryTrace trace = MakeTestTrace();
  EXPECT_FALSE(trace.root.has_estimate());
  const std::array<std::uint64_t, 2> estimates = {40, 7};
  obs::AnnotateEstimates(&trace, estimates);
  // Ids 0 and 1 are covered; the root (id 2) is out of range and keeps
  // no estimate.
  EXPECT_FALSE(trace.root.has_estimate());
  ASSERT_TRUE(trace.root.children[0].has_estimate());
  EXPECT_DOUBLE_EQ(trace.root.children[0].estimated_rows, 40.0);
  EXPECT_DOUBLE_EQ(trace.root.children[1].estimated_rows, 7.0);
  obs::AnnotateEstimates(nullptr, estimates);  // must be a safe no-op
}

TEST(QueryTraceTest, ToStringRendersActualsAndRatios) {
  obs::QueryTrace trace = MakeTestTrace();
  trace.root.output_rows = 10;
  trace.root.children[0].output_rows = 20;
  trace.root.children[0].probes = 3;
  const std::array<std::uint64_t, 3> estimates = {40, 7, 10};
  obs::AnnotateEstimates(&trace, estimates);
  const std::string text = trace.ToString();
  EXPECT_NE(text.find("mergejoin ?x  rows=10 est=10 (1.00x)"),
            std::string::npos);
  EXPECT_NE(text.find("  select(pos) tp0  rows=20 est=40 (2.00x)"),
            std::string::npos);
  EXPECT_NE(text.find("probes=3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE through the engine, all four planners, SP2Bench workload

Engine* Sp2bEngine() {
  static Engine* engine = new Engine(storage::TripleStore::Build(
      workload::GenerateSp2b(workload::Sp2bConfig::FromTargetTriples(20000))));
  return engine;
}

/// Recursively checks one trace node against the executor's own
/// accounting: reported output rows must equal the actual per-node
/// cardinality, inputs must equal the children's outputs, and every node
/// must carry a cardinality estimate (the engine has statistics).
void CheckTraceNode(const obs::OperatorTrace& node,
                    const exec::ExecResult& result, const std::string& tag,
                    std::size_t* nodes_seen) {
  ++*nodes_seen;
  ASSERT_GE(node.node_id, 0) << tag;
  ASSERT_LT(static_cast<std::size_t>(node.node_id),
            result.cardinalities.size())
      << tag;
  EXPECT_EQ(node.output_rows,
            result.cardinalities[static_cast<std::size_t>(node.node_id)])
      << tag << " node " << node.node_id << " (" << node.label << ")";
  EXPECT_TRUE(node.has_estimate())
      << tag << " node " << node.node_id << " (" << node.label << ")";
  if (!node.children.empty()) {
    std::uint64_t child_rows = 0;
    for (const obs::OperatorTrace& child : node.children) {
      child_rows += child.output_rows;
    }
    EXPECT_EQ(node.input_rows, child_rows)
        << tag << " node " << node.node_id << " (" << node.label << ")";
  } else {
    // Leaves are index scans: at least one binary-search descent each.
    EXPECT_GT(node.probes, 0u)
        << tag << " node " << node.node_id << " (" << node.label << ")";
  }
  for (const obs::OperatorTrace& child : node.children) {
    CheckTraceNode(child, result, tag, nodes_seen);
  }
}

TEST(ExplainAnalyzeTest, TraceRowsEqualActualRowsForAllFourPlanners) {
  Engine& engine = *Sp2bEngine();
  const struct {
    plan::PlannerKind kind;
    const char* name;
  } kPlanners[] = {{plan::PlannerKind::kHsp, "hsp"},
                   {plan::PlannerKind::kCdp, "cdp"},
                   {plan::PlannerKind::kLeftDeep, "sql"},
                   {plan::PlannerKind::kHybrid, "hybrid"}};
  for (const workload::WorkloadQuery& wq : workload::AllQueries()) {
    if (wq.dataset != workload::Dataset::kSp2Bench) continue;
    for (const auto& planner : kPlanners) {
      const std::string tag = wq.id + "/" + planner.name;
      QueryOptions options;
      options.planner = planner.kind;
      options.collect_trace = true;
      auto response = engine.Query(wq.sparql, options);
      ASSERT_TRUE(response.ok()) << tag << ": " << response.status();
      ASSERT_NE(response->trace, nullptr) << tag;
      const exec::ExecResult& result = *response->result;

      // The root emits the final answer.
      EXPECT_EQ(response->trace->root.output_rows, result.table.rows) << tag;
      EXPECT_DOUBLE_EQ(response->trace->total_millis, result.total_millis)
          << tag;

      std::size_t nodes_seen = 0;
      CheckTraceNode(response->trace->root, result, tag, &nodes_seen);
      // The trace mirrors the plan: one node per recorded operator.
      EXPECT_EQ(nodes_seen, result.stats.size()) << tag;
    }
  }
}

TEST(ExplainAnalyzeTest, TraceIsOptInAndAnnotated) {
  Engine engine(BibStore());
  auto untraced = engine.Query(kChainQuery);
  ASSERT_TRUE(untraced.ok()) << untraced.status();
  if (!TraceForcedByEnv()) {
    EXPECT_EQ(untraced->trace, nullptr);
  }

  QueryOptions options;
  options.collect_trace = true;
  auto traced = engine.Query(kChainQuery, options);
  ASSERT_TRUE(traced.ok()) << traced.status();
  ASSERT_NE(traced->trace, nullptr);
  EXPECT_EQ(traced->trace->root.output_rows, 2u);
  EXPECT_TRUE(traced->trace->root.has_estimate());
  const std::string rendering = traced->trace->ToString();
  EXPECT_NE(rendering.find("rows=2"), std::string::npos);
  EXPECT_NE(rendering.find("est="), std::string::npos);
}

TEST(ExplainAnalyzeTest, ResultCacheHitReturnsOriginalTrace) {
  EngineOptions engine_options;
  engine_options.result_cache_capacity = 8;
  Engine engine(BibStore(), engine_options);
  QueryOptions options;
  options.collect_trace = true;
  auto first = engine.Query(kChainQuery, options);
  ASSERT_TRUE(first.ok());
  ASSERT_NE(first->trace, nullptr);
  auto second = engine.Query(kChainQuery, options);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->result_cache_hit);
  // The hit hands back the trace captured when the entry was computed.
  EXPECT_EQ(second->trace.get(), first->trace.get());
}

// ---------------------------------------------------------------------------
// Engine metrics + ExportMetrics round-trip

TEST(EngineMetricsTest, CountersGaugesAndHistogramsTrackQueries) {
  Engine engine(BibStore());
  ASSERT_TRUE(engine.Query(kChainQuery).ok());
  obs::MetricsSnapshot snapshot = engine.metrics().Snapshot();
  EXPECT_EQ(snapshot.CounterValue("engine.queries.total"), 1u);
  EXPECT_EQ(snapshot.CounterValue("engine.queries.errors"), 0u);
  EXPECT_EQ(snapshot.CounterValue("engine.rows.emitted"), 2u);
  EXPECT_GT(snapshot.CounterValue("engine.rows.scanned"), 0u);
  EXPECT_EQ(snapshot.GaugeValue("engine.queries.active"), 0);
  EXPECT_EQ(snapshot.GaugeValue("engine.store.generation"), 0);
  EXPECT_EQ(snapshot.GaugeValue("engine.store.base_triples"),
            static_cast<std::int64_t>(engine.store_size()));
  EXPECT_EQ(snapshot.GaugeValue("engine.store.delta_triples"), 0);
  EXPECT_EQ(snapshot.CounterValue("engine.plan_cache.misses"), 1u);
  EXPECT_EQ(snapshot.CounterValue("engine.plan_cache.hits"), 0u);
  ASSERT_NE(snapshot.Find("engine.query.total_millis"), nullptr);
  EXPECT_EQ(snapshot.Find("engine.query.total_millis")->histogram.count, 1u);
  // The shared thread pool exports through callbacks.
  EXPECT_NE(snapshot.Find("threadpool.tasks_executed"), nullptr);
  EXPECT_NE(snapshot.Find("threadpool.queue_depth"), nullptr);

  ASSERT_TRUE(engine.Query(kChainQuery).ok());
  snapshot = engine.metrics().Snapshot();
  EXPECT_EQ(snapshot.CounterValue("engine.queries.total"), 2u);
  EXPECT_EQ(snapshot.CounterValue("engine.plan_cache.hits"), 1u);
}

TEST(EngineMetricsTest, ExportMetricsRoundTripsJsonAndPrometheus) {
  Engine engine(BibStore());
  ASSERT_TRUE(engine.Query(kChainQuery).ok());
  ASSERT_TRUE(engine.Query(kChainQuery).ok());

  const std::string json = engine.ExportMetrics(Engine::MetricsFormat::kJson);
  EXPECT_EQ(json.rfind("{\"counters\":{", 0), 0u);
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"engine.queries.total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"engine.rows.emitted\":4"), std::string::npos);
  EXPECT_NE(json.find("\"engine.plan_cache.hits\":1"), std::string::npos);
  EXPECT_NE(json.find("\"engine.query.total_millis\":{\"count\":2"),
            std::string::npos);

  const std::string prom =
      engine.ExportMetrics(Engine::MetricsFormat::kPrometheus);
  EXPECT_NE(prom.find("engine_queries_total 2\n"), std::string::npos);
  EXPECT_NE(prom.find("engine_rows_emitted 4\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE engine_query_total_millis histogram\n"),
            std::string::npos);
  EXPECT_NE(prom.find("engine_query_total_millis_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("engine_query_total_millis_count 2\n"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Slow-query log

TEST(SlowQueryLogTest, ToJsonLineIsExact) {
  obs::SlowQueryEvent event;
  event.query_hash = 0xabc;
  event.planner = "hsp";
  event.parse_millis = 1.0;
  event.plan_millis = 2.0;
  event.exec_millis = 3.0;
  event.total_millis = 6.5;
  event.plan_cache_hit = true;
  event.rows = 42;
  event.generation = 7;
  event.top_operators.push_back({"scan tp1", 3.25, 10});
  EXPECT_EQ(obs::ToJsonLine(event),
            "{\"query_hash\":\"0000000000000abc\",\"planner\":\"hsp\","
            "\"status\":\"ok\",\"parse_millis\":1.000,\"plan_millis\":2.000,"
            "\"exec_millis\":3.000,\"total_millis\":6.500,"
            "\"plan_cache_hit\":true,\"result_cache_hit\":false,"
            "\"rows\":42,\"generation\":7,\"top_operators\":"
            "[{\"op\":\"scan tp1\",\"self_millis\":3.250,\"rows\":10}]}");
}

TEST(SlowQueryLogTest, HashIsStableUnderReformatting) {
  // FNV-1a 64 offset basis: hash of the empty string.
  EXPECT_EQ(obs::HashQueryText(""), 14695981039346656037ULL);
  std::string spread(kChainQuery);
  spread.insert(spread.find("WHERE"), "\n\t ");
  EXPECT_EQ(obs::HashQueryText(engine::NormalizeQueryText(spread)),
            obs::HashQueryText(engine::NormalizeQueryText(kChainQuery)));
  EXPECT_NE(obs::HashQueryText("a"), obs::HashQueryText("b"));
}

TEST(SlowQueryLogTest, ThresholdGatesEmission) {
  std::vector<std::string> lines;
  obs::SlowQueryLog log(10.0, [&lines](std::string_view line) {
    lines.emplace_back(line);
  });
  EXPECT_TRUE(log.enabled());
  obs::SlowQueryEvent event;
  event.total_millis = 9.9;
  EXPECT_FALSE(log.MaybeLog(event));
  event.total_millis = 10.0;  // threshold is inclusive
  EXPECT_TRUE(log.MaybeLog(event));
  ASSERT_EQ(lines.size(), 1u);

  obs::SlowQueryLog disabled(0.0);
  event.total_millis = 1e9;
  EXPECT_FALSE(disabled.enabled());
  EXPECT_FALSE(disabled.MaybeLog(event));
}

TEST(SlowQueryLogTest, EngineEmitsLineWithNormalizedHash) {
  std::vector<std::string> lines;
  EngineOptions options;
  options.slow_query_millis = 1e-6;  // everything is "slow"
  options.slow_query_sink = [&lines](std::string_view line) {
    lines.emplace_back(line);
  };
  Engine engine(BibStore(), options);
  ASSERT_TRUE(engine.Query(kChainQuery).ok());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"planner\":\"hsp\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"rows\":2"), std::string::npos);
  EXPECT_NE(lines[0].find("\"plan_cache_hit\":false"), std::string::npos);
  EXPECT_NE(lines[0].find("\"top_operators\":[{"), std::string::npos);
  const std::string expected_hash =
      "\"query_hash\":\"" +
      HashHex(obs::HashQueryText(
          engine::NormalizeQueryText(kChainQuery))) +
      "\"";
  EXPECT_NE(lines[0].find(expected_hash), std::string::npos);

  // A reformatted copy of the query logs the same hash (and hits the
  // plan cache).
  std::string spread(kChainQuery);
  spread.insert(spread.find("WHERE"), "\n\t ");
  ASSERT_TRUE(engine.Query(spread).ok());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find(expected_hash), std::string::npos);
  EXPECT_NE(lines[1].find("\"plan_cache_hit\":true"), std::string::npos);
  EXPECT_EQ(engine.metrics().Snapshot().CounterValue("engine.queries.slow"),
            2u);
}

TEST(SlowQueryLogTest, DeadlineExpiredQueryIsLogged) {
  std::vector<std::string> lines;
  EngineOptions options;
  options.slow_query_millis = 1e-6;
  options.slow_query_sink = [&lines](std::string_view line) {
    lines.emplace_back(line);
  };
  Engine engine(BibStore(), options);
  CancelToken expired;
  expired.SetDeadline(std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(1));
  QueryOptions query_options;
  query_options.cancel = &expired;
  auto response = engine.Query(kChainQuery, query_options);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsDeadlineExceeded()) << response.status();

  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"status\":\"deadline_exceeded\""),
            std::string::npos);
  obs::MetricsSnapshot snapshot = engine.metrics().Snapshot();
  EXPECT_EQ(snapshot.CounterValue("engine.queries.errors"), 1u);
  EXPECT_EQ(snapshot.CounterValue("engine.queries.deadline_exceeded"), 1u);
  EXPECT_EQ(snapshot.CounterValue("engine.queries.slow"), 1u);
}

TEST(SlowQueryLogTest, CancelledQueryIsLoggedWithCancelledStatus) {
  std::vector<std::string> lines;
  EngineOptions options;
  options.slow_query_millis = 1e-6;
  options.slow_query_sink = [&lines](std::string_view line) {
    lines.emplace_back(line);
  };
  Engine engine(BibStore(), options);
  CancelToken cancelled;
  cancelled.Cancel();
  QueryOptions query_options;
  query_options.timeout_ms = 60000;  // generous; the parent is cancelled
  query_options.cancel = &cancelled;
  auto response = engine.Query(kChainQuery, query_options);
  ASSERT_FALSE(response.ok());
  // Explicit cancellation is typed kCancelled, not kDeadlineExceeded.
  EXPECT_TRUE(response.status().IsCancelled()) << response.status();

  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"status\":\"cancelled\""), std::string::npos);
  obs::MetricsSnapshot snapshot = engine.metrics().Snapshot();
  EXPECT_EQ(snapshot.CounterValue("engine.queries.errors"), 1u);
  EXPECT_EQ(snapshot.CounterValue("engine.queries.cancelled"), 1u);
  EXPECT_EQ(snapshot.CounterValue("engine.queries.deadline_exceeded"), 0u);
}

TEST(SlowQueryLogTest, CacheHitQueryUnderThresholdIsNotLogged) {
  std::vector<std::string> lines;
  EngineOptions options;
  // A cache hit on this four-triple-pattern query over 20 triples is
  // orders of magnitude under a minute.
  options.slow_query_millis = 60000.0;
  options.result_cache_capacity = 8;
  options.slow_query_sink = [&lines](std::string_view line) {
    lines.emplace_back(line);
  };
  Engine engine(BibStore(), options);
  ASSERT_TRUE(engine.Query(kChainQuery).ok());
  auto hit = engine.Query(kChainQuery);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->result_cache_hit);
  EXPECT_TRUE(lines.empty());
  EXPECT_EQ(engine.metrics().Snapshot().CounterValue("engine.queries.slow"),
            0u);
}

// ---------------------------------------------------------------------------
// LRU-cache accounting: scripted access sequences with exact counters

TEST(LruCacheAccountingTest, ScriptedSequenceMatchesExactly) {
  engine::LruCache<std::string, int> cache(2);
  auto expect = [&cache](std::uint64_t hits, std::uint64_t misses,
                         std::uint64_t insertions, std::uint64_t evictions,
                         int line) {
    SCOPED_TRACE(::testing::Message() << "after step at line " << line);
    EXPECT_EQ(cache.counters().hits, hits);
    EXPECT_EQ(cache.counters().misses, misses);
    EXPECT_EQ(cache.counters().insertions, insertions);
    EXPECT_EQ(cache.counters().evictions, evictions);
  };

  EXPECT_FALSE(cache.Get("a").has_value());
  expect(0, 1, 0, 0, __LINE__);
  cache.Put("a", 1);
  expect(0, 1, 1, 0, __LINE__);
  EXPECT_EQ(cache.Get("a"), 1);
  expect(1, 1, 1, 0, __LINE__);
  cache.Put("b", 2);
  cache.Put("c", 3);  // evicts "a" (least recent)
  expect(1, 1, 3, 1, __LINE__);
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_EQ(cache.Get("b"), 2);
  EXPECT_EQ(cache.Get("c"), 3);
  expect(3, 2, 3, 1, __LINE__);
  // Touch "b" so "c" is the LRU entry, then insert "d": "c" goes.
  EXPECT_EQ(cache.Get("b"), 2);
  cache.Put("d", 4);
  expect(4, 2, 4, 2, __LINE__);
  EXPECT_FALSE(cache.Get("c").has_value());
  EXPECT_EQ(cache.Get("b"), 2);
  expect(5, 3, 4, 2, __LINE__);
  // Overwriting an existing key is neither an insertion nor an eviction.
  cache.Put("b", 20);
  expect(5, 3, 4, 2, __LINE__);
  EXPECT_EQ(cache.Get("b"), 20);
  EXPECT_EQ(cache.size(), 2u);
  // Clear drops entries but never counters.
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  expect(6, 3, 4, 2, __LINE__);

  // Capacity 0 disables the cache entirely.
  engine::LruCache<std::string, int> off(0);
  off.Put("a", 1);
  EXPECT_EQ(off.size(), 0u);
  EXPECT_FALSE(off.Get("a").has_value());
  EXPECT_EQ(off.counters().insertions, 0u);
}

TEST(LruCacheAccountingTest, EngineCachesFollowScriptIncludingGenerationBump) {
  EngineOptions options;
  options.plan_cache_capacity = 2;
  options.result_cache_capacity = 2;
  Engine engine(BibStore(), options);
  const std::string a(kChainQuery);
  const std::string b =
      "SELECT ?j WHERE { ?j <dc:title> \"Journal 1 (1940)\" }";
  const std::string c = "SELECT ?p WHERE { ?p <foaf:name> ?n }";

  auto expect = [&engine](std::uint64_t plan_h, std::uint64_t plan_m,
                          std::uint64_t plan_e, std::uint64_t result_h,
                          std::uint64_t result_m, std::uint64_t result_e,
                          int line) {
    SCOPED_TRACE(::testing::Message() << "after step at line " << line);
    engine::EngineStats stats = engine.stats();
    EXPECT_EQ(stats.plan_cache.hits, plan_h);
    EXPECT_EQ(stats.plan_cache.misses, plan_m);
    EXPECT_EQ(stats.plan_cache.evictions, plan_e);
    EXPECT_EQ(stats.result_cache.hits, result_h);
    EXPECT_EQ(stats.result_cache.misses, result_m);
    EXPECT_EQ(stats.result_cache.evictions, result_e);
  };

  ASSERT_TRUE(engine.Query(a).ok());  // both caches: miss + insert
  expect(0, 1, 0, 0, 1, 0, __LINE__);
  auto hit = engine.Query(a);  // both caches: hit
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->plan_cache_hit);
  EXPECT_TRUE(hit->result_cache_hit);
  expect(1, 1, 0, 1, 1, 0, __LINE__);
  ASSERT_TRUE(engine.Query(b).ok());  // miss + insert
  ASSERT_TRUE(engine.Query(c).ok());  // miss + insert, evicts a's entries
  expect(1, 3, 1, 1, 3, 1, __LINE__);
  auto remiss = engine.Query(a);  // miss again: evicted; evicts b's entries
  ASSERT_TRUE(remiss.ok());
  EXPECT_FALSE(remiss->plan_cache_hit);
  EXPECT_FALSE(remiss->result_cache_hit);
  expect(1, 4, 2, 1, 4, 2, __LINE__);

  // Mutation: bumps the generation, drops every cached plan, and strands
  // old-generation result entries (they age out via LRU, never hit).
  const std::array<std::array<rdf::Term, 3>, 1> triples = {{
      {rdf::Term::Iri("ex:a9"), rdf::Term::Iri("swrc:journal"),
       rdf::Term::Iri("ex:j1940")},
  }};
  ASSERT_TRUE(engine.AddTriples(triples).ok());
  engine::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.generation, 1u);
  EXPECT_EQ(stats.plan_cache_size, 0u);
  EXPECT_EQ(stats.result_cache_size, 2u);  // stale but still resident

  // Same text again: the plan must be rebuilt and the old-generation
  // result entry can never be served — both caches miss.
  auto fresh = engine.Query(a);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->plan_cache_hit);
  EXPECT_FALSE(fresh->result_cache_hit);
  expect(1, 5, 2, 1, 5, 3, __LINE__);
  stats = engine.stats();
  EXPECT_EQ(stats.plan_cache_size, 1u);
  EXPECT_EQ(stats.result_cache_size, 2u);
}

// ---------------------------------------------------------------------------
// Thread-pool stats

TEST(ThreadPoolStatsTest, CountsTasksAndDrainsQueues) {
  ThreadPool pool(2);
  ThreadPool::Stats before = pool.stats();
  EXPECT_EQ(before.tasks_executed, 0u);
  EXPECT_EQ(before.queue_depth, 0u);

  std::atomic<std::uint64_t> sum{0};
  pool.ParallelFor(0, 1000, 10, [&sum](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1000u * 999u / 2);

  ThreadPool::Stats after = pool.stats();
  EXPECT_GT(after.tasks_executed, 0u);
  EXPECT_EQ(after.queue_depth, 0u);  // ParallelFor returns after the drain

  // Single-chunk ranges run inline: no tasks are ever queued.
  ThreadPool::Stats before_inline = pool.stats();
  pool.ParallelFor(0, 5, 100, [&sum](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(pool.stats().tasks_executed, before_inline.tasks_executed);
}

}  // namespace
}  // namespace hsparql
